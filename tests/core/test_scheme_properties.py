"""Hypothesis property tests for recovery-scheme generation.

Broad sweep over all codes, primes up to 13, every disk, and arbitrary
contiguous error extents — the full input space the simulators feed the
planner.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import make_code
from repro.codes.registry import available_codes
from repro.core import PriorityDictionary, generate_plan

LAYOUTS = {
    (name, p): make_code(name, p)
    for name in available_codes()
    for p in (3, 5, 7, 11, 13)
}


@st.composite
def plan_cases(draw):
    key = draw(st.sampled_from(sorted(LAYOUTS)))
    layout = LAYOUTS[key]
    disk = draw(st.integers(0, layout.num_disks - 1))
    length = draw(st.integers(1, layout.rows))
    start = draw(st.integers(0, layout.rows - length))
    mode = draw(st.sampled_from(["typical", "fbf", "greedy"]))
    return layout, disk, start, length, mode


@given(plan_cases())
@settings(max_examples=150, deadline=None)
def test_plan_invariants(case):
    layout, disk, start, length, mode = case
    failed = [(r, disk) for r in range(start, start + length)]
    plan = generate_plan(layout, failed, mode)

    # one assignment per failed cell, in order
    assert list(plan.failed_cells) == failed
    failed_set = set(failed)
    for a in plan.assignments:
        # each chain contains exactly its own failed cell
        assert a.chain.cells & failed_set == {a.failed_cell}
        # reads are the chain minus the failed cell, sorted
        assert set(a.reads) == set(a.chain.others(a.failed_cell))
        assert list(a.reads) == sorted(a.reads)

    # bookkeeping identities
    assert plan.total_requests == sum(len(a.reads) for a in plan.assignments)
    assert plan.unique_reads == len(set(plan.request_sequence))
    assert sum(plan.chain_share_count.values()) == plan.total_requests

    # priorities follow Table II
    pd = PriorityDictionary(plan)
    for cell, count in plan.chain_share_count.items():
        assert pd[cell] == min(count, 3)
    assert set(pd) == set(plan.chain_share_count)


@given(plan_cases())
@settings(max_examples=100, deadline=None)
def test_mode_orderings(case):
    layout, disk, start, length, _ = case
    failed = [(r, disk) for r in range(start, start + length)]
    typical = generate_plan(layout, failed, "typical")
    greedy = generate_plan(layout, failed, "greedy")
    # greedy never fetches more unique chunks than typical
    assert greedy.unique_reads <= typical.unique_reads
    # whenever typical actually got horizontal chains (always possible for
    # data/H-parity disks), those chains are disjoint: zero sharing.
    from repro.codes import Direction

    if all(a.chain.direction is Direction.HORIZONTAL for a in typical.assignments):
        assert typical.total_requests == typical.unique_reads
    else:
        # errors on a diagonal-parity disk of an adjuster code: even
        # "typical" recovery shares the adjuster cells between chains.
        assert typical.total_requests >= typical.unique_reads


@given(plan_cases())
@settings(max_examples=60, deadline=None)
def test_plan_determinism(case):
    layout, disk, start, length, mode = case
    failed = [(r, disk) for r in range(start, start + length)]
    a = generate_plan(layout, failed, mode)
    b = generate_plan(layout, failed, mode)
    assert a.request_sequence == b.request_sequence
    assert [x.chain.chain_id for x in a.assignments] == [
        x.chain.chain_id for x in b.assignments
    ]
