"""End-to-end checks against the paper's worked examples.

Cell coordinates differ from the paper's figures because our TIP layout is
a documented substitute (DESIGN.md §4), so these tests assert the
*structural* facts the examples illustrate rather than exact cell ids.
"""

import pytest

from repro.codes import make_code
from repro.core import FBFCache, PriorityDictionary, generate_plan


class TestFigure1:
    def test_tip_p5_is_a_six_disk_array(self):
        """Paper Figure 1: 'Encoding of TIP-code (P = 5)' on 6 disks."""
        layout = make_code("tip", 5)
        assert layout.num_disks == 6
        assert layout.rows == 4

    def test_faulty_chunks_have_multiple_recovery_directions(self):
        """Paper: each chunk can be shared by *up to* three chain directions.

        In RDP-style constructions each column misses exactly one diagonal
        and one anti-diagonal, so every data cell has at least two
        directions and most have all three.
        """
        layout = make_code("tip", 5)
        dir_counts = [
            len({c.direction for c in layout.chains_for(cell)})
            for cell in layout.data_cells
        ]
        assert min(dir_counts) >= 2
        assert sum(1 for n in dir_counts if n == 3) > len(dir_counts) / 2

    def test_star_cells_always_have_three_directions(self):
        """With adjusters, every STAR data cell reaches all three directions."""
        layout = make_code("star", 5)
        for cell in layout.data_cells:
            assert len({c.direction for c in layout.chains_for(cell)}) == 3


class TestFigure2:
    """Typical vs FBF chain selection for TIP (P=5)."""

    def test_fbf_scheme_fetches_fewer_chunks(self):
        layout = make_code("tip", 5)
        failed = [(r, 0) for r in range(4)]
        typical = generate_plan(layout, failed, "typical")
        fbf = generate_plan(layout, failed, "fbf")
        assert fbf.unique_reads < typical.unique_reads


class TestFigure3AndTableIII:
    """Five contiguous failed chunks on disk 0, TIP (P=7, n=8)."""

    @pytest.fixture
    def priorities(self):
        layout = make_code("tip", 7)
        plan = generate_plan(layout, [(r, 0) for r in range(5)], "fbf")
        return PriorityDictionary(plan)

    def test_three_priority_levels_populated(self, priorities):
        hist = priorities.histogram()
        assert hist[3] >= 1
        assert hist[2] >= 1
        assert hist[1] >= 10

    def test_priority_one_dominates(self, priorities):
        """Table III: most fetched chunks are referenced only once."""
        hist = priorities.histogram()
        assert hist[1] > hist[2] + hist[3]

    def test_small_high_priority_set(self, priorities):
        """Table III shows exactly 1 priority-3 and 2 priority-2 chunks; our
        substitute layout yields the same order of magnitude."""
        hist = priorities.histogram()
        assert hist[3] <= 3
        assert hist[2] <= 5


class TestTableII:
    def test_reduced_io_interpretation(self):
        """A chunk shared by k chains saves k-1 disk reads if held: verify
        by replaying one stripe's request stream against an infinite FBF."""
        layout = make_code("tip", 7)
        plan = generate_plan(layout, [(r, 0) for r in range(5)], "fbf")
        pd = PriorityDictionary(plan)
        cache = FBFCache(capacity=10_000)
        for cell in plan.request_sequence:
            cache.request(cell, priority=pd.lookup(cell))
        saved = cache.stats.hits
        expected_savings = sum(
            count - 1 for count in plan.chain_share_count.values()
        )
        assert saved == expected_savings == plan.total_requests - plan.unique_reads


class TestHeadlineClaim:
    def test_fbf_beats_all_baselines_at_small_cache(self):
        """The abstract's claim, at one representative configuration."""
        from repro.cache import PAPER_BASELINES, make_policy
        from repro.workloads import ErrorTraceConfig, generate_errors
        from repro.sim import simulate_cache_trace

        layout = make_code("tip", 7)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=40, seed=3))
        fbf = simulate_cache_trace(
            layout, errors, policy="fbf", capacity_blocks=48, workers=8
        )
        for baseline in PAPER_BASELINES:
            base = simulate_cache_trace(
                layout, errors, policy=baseline, capacity_blocks=48, workers=8
            )
            assert fbf.hit_ratio >= base.hit_ratio, baseline
            assert fbf.disk_reads <= base.disk_reads, baseline
