"""Tests for the FBF replacement policy (paper Algorithm 1, Figures 5-7)."""

import pytest

from repro.core import FBFCache


class TestAdmission:
    def test_attaches_to_queue_matching_priority(self):
        c = FBFCache(8)
        c.request("p1", priority=1)
        c.request("p2", priority=2)
        c.request("p3", priority=3)
        assert c.queue_of("p1") == 1
        assert c.queue_of("p2") == 2
        assert c.queue_of("p3") == 3

    def test_priority_none_defaults_to_one(self):
        c = FBFCache(4)
        c.request("x")
        assert c.queue_of("x") == 1

    def test_priority_above_three_caps(self):
        c = FBFCache(4)
        c.request("x", priority=9)
        assert c.queue_of("x") == 3

    def test_priority_validation(self):
        c = FBFCache(4)
        with pytest.raises(ValueError):
            c.request("x", priority=0)
        with pytest.raises(TypeError):
            c.request("y", priority="high")


class TestReplacement:
    def test_evicts_queue1_first(self):
        """Figure 7: low-priority chunks leave before idle high-priority ones."""
        c = FBFCache(3)
        c.request("hi", priority=3)
        c.request("mid", priority=2)
        c.request("lo", priority=1)
        c.request("new", priority=1)
        assert "lo" not in c
        assert "hi" in c and "mid" in c

    def test_evicts_queue2_when_queue1_empty(self):
        c = FBFCache(2)
        c.request("hi", priority=3)
        c.request("mid", priority=2)
        c.request("new", priority=3)
        assert "mid" not in c and "hi" in c

    def test_evicts_queue3_last(self):
        c = FBFCache(2)
        c.request("a", priority=3)
        c.request("b", priority=3)
        c.request("d", priority=1)
        assert "a" not in c  # LRU of Queue3
        assert "b" in c and "d" in c

    def test_lru_order_within_queue(self):
        c = FBFCache(2)
        c.request("a", priority=1)
        c.request("b", priority=1)
        c.request("a", priority=1)  # hit: a moves to MRU end of Queue1
        c.request("x", priority=1)  # evicts b
        assert "b" not in c and "a" in c


class TestDemotion:
    def test_queue3_hit_demotes_to_queue2(self):
        """Figure 6: one rereference consumed, one queue down."""
        c = FBFCache(4)
        c.request("x", priority=3)
        assert c.request("x") is True
        assert c.queue_of("x") == 2

    def test_full_demotion_chain(self):
        c = FBFCache(4)
        c.request("x", priority=3)
        c.request("x")
        c.request("x")
        assert c.queue_of("x") == 1
        c.request("x")  # Queue1 hits stay in Queue1
        assert c.queue_of("x") == 1

    def test_demoted_block_attached_at_mru(self):
        c = FBFCache(4)
        c.request("old1", priority=1)
        c.request("x", priority=2)
        c.request("x")  # demote into Queue1 at the MRU end
        assert c.queue_contents(1) == ("old1", "x")

    def test_sticky_mode_never_demotes(self):
        c = FBFCache(4, demote_on_hit=False)
        c.request("x", priority=3)
        c.request("x")
        c.request("x")
        assert c.queue_of("x") == 3


class TestPaperWarmupExample:
    def test_figure5_warmup(self):
        """Figure 5: requests C(1,1), C(2,2), C(4,4), C(5,5), C(0,6) with
        priorities 3, 1, 2, 1, 1 land in Queue3/Queue1/Queue2/Queue1/Queue1."""
        c = FBFCache(8)
        seq = [((1, 1), 3), ((2, 2), 1), ((4, 4), 2), ((5, 5), 1), ((0, 6), 1)]
        for cell, prio in seq:
            assert c.request(cell, priority=prio) is False
        assert c.queue_contents(3) == ((1, 1),)
        assert c.queue_contents(2) == ((4, 4),)
        assert c.queue_contents(1) == ((2, 2), (5, 5), (0, 6))

    def test_figure6_two_hits_demote_c11_to_queue1(self):
        c = FBFCache(8)
        c.request((1, 1), priority=3)
        c.request((1, 1))
        assert c.queue_of((1, 1)) == 2
        c.request((1, 1))
        assert c.queue_of((1, 1)) == 1


class TestQueueCountVariants:
    def test_n_queues_validation(self):
        with pytest.raises(ValueError):
            FBFCache(4, n_queues=0)

    def test_hints_capped_at_n_queues(self):
        c = FBFCache(8, n_queues=5)
        c.request("x", priority=17)
        assert c.queue_of("x") == 5

    def test_extra_queues_rank_beyond_three(self):
        c = FBFCache(8, n_queues=5)
        c.request("mid", priority=3)
        c.request("hot", priority=5)
        # evict 6 fillers' worth to reach the high queues
        for i in range(16):
            c.request(i, priority=1)
        assert "mid" in c and "hot" in c
        c2 = FBFCache(2, n_queues=5)
        c2.request("mid", priority=3)
        c2.request("hot", priority=5)
        c2.request("new", priority=1)  # evicts mid (lowest populated queue)
        assert "mid" not in c2 and "hot" in c2

    def test_single_queue_behaves_like_lru(self):
        from repro.cache import LRUCache

        fbf = FBFCache(3, n_queues=1)
        lru = LRUCache(3)
        stream = [("a", 1), ("b", 3), ("a", 2), ("c", 1), ("d", 2), ("b", 1)]
        for key, prio in stream:
            assert fbf.request(key, priority=prio) == lru.request(key)

    def test_demotion_chain_spans_all_queues(self):
        c = FBFCache(8, n_queues=4)
        c.request("x", priority=4)
        for expected in (3, 2, 1, 1):
            c.request("x")
            assert c.queue_of("x") == expected


class TestBookkeeping:
    def test_len_counts_all_queues(self):
        c = FBFCache(8)
        for i, p in enumerate((1, 2, 3, 1)):
            c.request(i, priority=p)
        assert len(c) == 4

    def test_zero_capacity(self):
        c = FBFCache(0)
        assert c.request("x", priority=3) is False
        assert len(c) == 0

    def test_capacity_never_exceeded(self):
        c = FBFCache(3)
        for i in range(20):
            c.request(i, priority=(i % 3) + 1)
            assert len(c) <= 3

    def test_reset(self):
        c = FBFCache(4)
        c.request("x", priority=3)
        c.reset()
        assert len(c) == 0 and c.stats.requests == 0
        assert "x" not in c

    def test_queue_of_unknown_raises(self):
        with pytest.raises(KeyError):
            FBFCache(4).queue_of("ghost")
