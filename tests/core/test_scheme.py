"""Tests for recovery-scheme generation."""

import pytest

from repro.codes import Direction, make_code
from repro.core import UnrecoverableError, generate_plan
from repro.core.scheme import DIRECTION_LOOP


class TestValidation:
    def test_unknown_mode(self, tip7):
        with pytest.raises(ValueError, match="unknown scheme mode"):
            generate_plan(tip7, [(0, 0)], "magic")

    def test_empty_failure_set(self, tip7):
        with pytest.raises(ValueError, match="no failed cells"):
            generate_plan(tip7, [])

    def test_cell_outside_layout(self, tip7):
        with pytest.raises(KeyError):
            generate_plan(tip7, [(99, 0)])


class TestTypicalScheme:
    def test_data_cells_use_horizontal_chains(self, layout):
        failed = [(r, 0) for r in range(min(3, layout.rows))]
        plan = generate_plan(layout, failed, "typical")
        for a in plan.assignments:
            assert a.chain.direction is Direction.HORIZONTAL

    def test_no_shared_chunks_on_horizontal_recovery(self, layout):
        """Horizontal chains of different rows are disjoint: zero overlap."""
        failed = [(r, 0) for r in range(min(3, layout.rows))]
        plan = generate_plan(layout, failed, "typical")
        assert plan.total_requests == plan.unique_reads

    def test_parity_disk_error_recovers_via_own_chain(self, tip7):
        # TIP p=7: column 7 is the anti-diagonal parity disk
        anti_col = tip7.num_disks - 1
        plan = generate_plan(tip7, [(0, anti_col)], "typical")
        assert plan.assignments[0].chain.direction is Direction.ANTIDIAGONAL


class TestFBFScheme:
    def test_directions_cycle(self, tip7):
        failed = [(r, 0) for r in range(6)]
        plan = generate_plan(tip7, failed, "fbf")
        dirs = [a.chain.direction for a in plan.assignments]
        assert dirs == [DIRECTION_LOOP[i % 3] for i in range(6)]

    def test_creates_shared_chunks(self, tip7):
        failed = [(r, 0) for r in range(5)]
        plan = generate_plan(tip7, failed, "fbf")
        assert plan.total_requests > plan.unique_reads

    def test_fewer_unique_reads_than_typical(self, tip7):
        failed = [(r, 0) for r in range(5)]
        typical = generate_plan(tip7, failed, "typical")
        fbf = generate_plan(tip7, failed, "fbf")
        assert fbf.unique_reads < typical.unique_reads

    def test_every_failed_cell_assigned_exactly_once(self, layout):
        failed = [(r, 1) for r in range(layout.rows)]
        plan = generate_plan(layout, failed, "fbf")
        assert sorted(plan.failed_cells) == sorted(failed)

    def test_chains_contain_their_failed_cell(self, layout):
        failed = [(r, 0) for r in range(min(4, layout.rows))]
        plan = generate_plan(layout, failed, "fbf")
        for a in plan.assignments:
            assert a.failed_cell in a.chain

    def test_chain_never_contains_another_failed_cell(self, layout):
        """Strict eligibility: chains only read intact, surviving chunks."""
        failed = [(r, 0) for r in range(layout.rows)]
        plan = generate_plan(layout, failed, "fbf")
        failed_set = set(failed)
        for a in plan.assignments:
            assert a.chain.cells & failed_set == {a.failed_cell}

    def test_single_chunk_error(self, layout):
        plan = generate_plan(layout, [(0, 0)], "fbf")
        assert len(plan.assignments) == 1
        assert plan.unique_reads == len(plan.assignments[0].reads)


class TestGreedyScheme:
    def test_at_least_as_few_unique_reads_as_typical(self, layout):
        failed = [(r, 0) for r in range(min(5, layout.rows))]
        greedy = generate_plan(layout, failed, "greedy")
        typical = generate_plan(layout, failed, "typical")
        assert greedy.unique_reads <= typical.unique_reads


class TestPlanProperties:
    def test_request_sequence_matches_assignments(self, tip7):
        plan = generate_plan(tip7, [(0, 0), (1, 0)], "fbf")
        expected = [c for a in plan.assignments for c in a.reads]
        assert list(plan.request_sequence) == expected

    def test_reads_exclude_all_failed_cells(self, tip7):
        plan = generate_plan(tip7, [(r, 0) for r in range(4)], "fbf")
        failed = set(plan.failed_cells)
        assert not (set(plan.request_sequence) & failed)

    def test_direction_histogram_totals(self, tip7):
        plan = generate_plan(tip7, [(r, 0) for r in range(5)], "fbf")
        assert sum(plan.direction_histogram().values()) == 5

    def test_share_counts_cover_all_reads(self, tip7):
        plan = generate_plan(tip7, [(r, 0) for r in range(5)], "fbf")
        assert sum(plan.chain_share_count.values()) == plan.total_requests
        assert set(plan.chain_share_count) == set(plan.request_sequence)


class TestAllDisksAllSizes:
    def test_every_single_disk_partial_error_is_plannable(self, layout):
        """Any contiguous error on any one disk gets a full plan, all modes."""
        for disk in range(layout.num_disks):
            cells_on_disk = layout.cells_on_disk(disk)
            for length in (1, len(cells_on_disk)):
                failed = list(cells_on_disk[:length])
                for mode in ("typical", "fbf", "greedy"):
                    plan = generate_plan(layout, failed, mode)
                    assert len(plan.assignments) == len(failed)
