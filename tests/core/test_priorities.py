"""Tests for the priority dictionary (paper Table II)."""

import pytest

from repro.core import PriorityDictionary, generate_plan, priority_of_count
from repro.core.priorities import MAX_PRIORITY


class TestPriorityOfCount:
    def test_table_ii_mapping(self):
        assert priority_of_count(1) == 1
        assert priority_of_count(2) == 2
        assert priority_of_count(3) == 3

    def test_saturates_above_three(self):
        """'>= Three' shared chains all map to priority 3 (STAR adjusters)."""
        assert priority_of_count(4) == 3
        assert priority_of_count(17) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            priority_of_count(0)


@pytest.fixture
def plan(tip7):
    return generate_plan(tip7, [(r, 0) for r in range(5)], "fbf")


@pytest.fixture
def priorities(plan):
    return PriorityDictionary(plan)


class TestPriorityDictionary:
    def test_mapping_protocol(self, priorities):
        assert len(priorities) > 0
        for cell in priorities:
            assert priorities[cell] in (1, 2, 3)

    def test_lookup_default_is_one(self, priorities):
        assert priorities.lookup(("not", "a", "cell")) == 1

    def test_share_count_zero_for_unknown(self, priorities):
        assert priorities.share_count((99, 99)) == 0

    def test_consistency_with_plan(self, plan, priorities):
        for cell, count in plan.chain_share_count.items():
            assert priorities[cell] == min(count, MAX_PRIORITY)
            assert priorities.share_count(cell) == count

    def test_histogram_sums_to_len(self, priorities):
        hist = priorities.histogram()
        assert sum(hist.values()) == len(priorities)
        assert set(hist) == {1, 2, 3}

    def test_cells_at_partition(self, priorities):
        all_cells = set()
        for p in (1, 2, 3):
            cells = priorities.cells_at(p)
            assert list(cells) == sorted(cells)
            all_cells |= set(cells)
        assert all_cells == set(priorities)

    def test_table_renders(self, priorities):
        table = priorities.table()
        assert "Priority" in table
        for p in ("3", "2", "1"):
            assert p in table

    def test_typical_plan_is_all_priority_one(self, tip7):
        plan = generate_plan(tip7, [(r, 0) for r in range(5)], "typical")
        pd = PriorityDictionary(plan)
        assert pd.histogram() == {1: len(pd), 2: 0, 3: 0}


class TestStarAdjusterEffect:
    def test_adjuster_cells_hit_priority_cap(self, star5):
        """Paper §IV-B-1: STAR's adjusters are referenced >3 times and always
        get the highest priority."""
        failed = [(r, 0) for r in range(star5.rows)]
        plan = generate_plan(star5, failed, "fbf")
        pd = PriorityDictionary(plan)
        over_cap = [c for c in pd if pd.share_count(c) > MAX_PRIORITY]
        if over_cap:  # depends on how many diagonal chains got selected
            for cell in over_cap:
                assert pd[cell] == MAX_PRIORITY
        # at minimum, some cell must be shared by multiple chains
        assert any(pd[c] >= 2 for c in pd)
