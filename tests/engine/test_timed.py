"""The unified timed replay: backend-parameterized event simulation."""

import pytest

from repro.codes import make_code
from repro.engine import make_backend, run_timed_replay
from repro.sim import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors


class TestXORTimedReplay:
    def test_wrapper_equivalence(self):
        """run_reconstruction is a thin shim: same simulated clocks."""
        layout = make_code("tip", 5)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=8, seed=3))
        config = SimConfig(cache_size="512KB", workers=4)
        via_wrapper = run_reconstruction(layout, errors, config)
        via_engine = run_timed_replay(make_backend("tip", 5), errors, config)
        assert via_engine.cache_hits == via_wrapper.cache_hits
        assert via_engine.disk_reads == via_wrapper.disk_reads
        assert via_engine.reconstruction_time == via_wrapper.reconstruction_time
        assert via_engine.avg_response_time == via_wrapper.avg_response_time
        assert via_engine.code == layout.name

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="no events"):
            run_timed_replay(make_backend("tip", 5), [])


class TestLRCTimedReplay:
    """New capability: LRC through the event kernel via FlatGeometry."""

    @pytest.fixture(scope="class")
    def report(self):
        backend = make_backend("lrc(12,2,2)")
        events = backend.generate_events(15, seed=4)
        return run_timed_replay(
            backend, events, SimConfig(cache_size="256KB", workers=4)
        )

    def test_accounting(self, report):
        assert report.code == "LRC(12,2,2)" and report.p == 0
        assert report.n_errors == 15
        assert report.chunks_recovered > 0
        assert report.total_requests == report.cache_hits + report.cache_misses
        assert report.disk_reads == report.cache_misses
        assert report.reconstruction_time > 0
        # every rebuilt block lands on its spare via a timed write
        assert report.disk_writes == report.chunks_recovered

    def test_deterministic(self, report):
        backend = make_backend("lrc(12,2,2)")
        events = backend.generate_events(15, seed=4)
        again = run_timed_replay(
            backend, events, SimConfig(cache_size="256KB", workers=4)
        )
        assert again.cache_hits == report.cache_hits
        assert again.reconstruction_time == report.reconstruction_time
        assert again.avg_response_time == report.avg_response_time

    def test_sanitized_run(self):
        backend = make_backend("lrc(12,2,2)")
        events = backend.generate_events(10, seed=4)
        clean = run_timed_replay(
            backend, events, SimConfig(cache_size="256KB", workers=2)
        )
        checked = run_timed_replay(
            backend, events, SimConfig(cache_size="256KB", workers=2, sanitize=True)
        )
        assert checked.cache_hits == clean.cache_hits
        assert checked.reconstruction_time == clean.reconstruction_time

    def test_verify_payloads_rejected(self):
        backend = make_backend("lrc(12,2,2)")
        events = backend.generate_events(3, seed=4)
        with pytest.raises(ValueError, match="verify_payloads"):
            run_timed_replay(backend, events, SimConfig(verify_payloads=True))
