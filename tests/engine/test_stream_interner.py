"""StreamInterner's contract: windows equal fresh interning, bit for bit.

The incremental interner exists so the serve layer can replay a sliding
window without re-interning it; that is only sound if ``window(start,
stop)`` is indistinguishable from ``intern_stream`` over the same slice
— same keys, same dense ids, same hints, same offsets — regardless of
how the events were batched on the way in, and regardless of whether
:meth:`compact` has dropped a consumed prefix in between.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import intern_stream, make_backend, simulate_trace
from repro.engine.stream import ReplayConfig, StreamInterner, simulate_grid_pass


def _events(n: int, seed: int = 42, code: str = "tip", p: int = 5):
    return make_backend(code, p).generate_events(n, seed)


def _streams_equal(left, right) -> None:
    assert left.keys == right.keys
    assert left.bids == right.bids
    assert left.hints == right.hints
    assert left.offsets == right.offsets
    assert left.hint == right.hint
    assert left.total_requests == right.total_requests


class TestWindowEquivalence:
    @given(
        batching=st.lists(st.integers(1, 17), min_size=1, max_size=6),
        hint=st.sampled_from(("priority", "share")),
        start=st.integers(0, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_window_matches_fresh_intern(self, batching, hint, start):
        backend = make_backend("tip", 5)
        events = _events(40)
        interner = StreamInterner(backend, hint=hint)
        fed = 0
        for size in batching:
            interner.extend(events[fed:fed + size])
            fed = min(fed + size, len(events))
        interner.extend(events[fed:])
        fresh = intern_stream(backend, events[start:], hint=hint)
        _streams_equal(interner.window(start), fresh)

    def test_window_slice_matches_fresh_intern(self):
        backend = make_backend("star", 5)
        events = _events(30, code="star")
        interner = StreamInterner(backend)
        interner.extend(events)
        for start, stop in ((0, 30), (5, 25), (12, 13), (29, 30)):
            fresh = intern_stream(backend, events[start:stop])
            _streams_equal(interner.window(start, stop), fresh)

    def test_events_slice_round_trips(self):
        backend = make_backend("tip", 5)
        events = _events(20)
        interner = StreamInterner(backend)
        interner.extend(events[:11])
        interner.extend(events[11:])
        assert interner.events_slice(0) == events
        assert interner.events_slice(4, 9) == events[4:9]


class TestCompaction:
    def test_compact_preserves_window_identity(self):
        backend = make_backend("tip", 5)
        events = _events(48)
        interner = StreamInterner(backend)
        interner.extend(events)
        before = interner.window(30)
        dropped = interner.compact(keep_last=18)
        assert dropped == 30
        assert interner.first_event == 30
        assert interner.events_seen == 48
        _streams_equal(interner.window(30), before)
        _streams_equal(
            interner.window(30), intern_stream(backend, events[30:])
        )

    def test_compact_equals_fresh_interner_of_suffix(self):
        backend = make_backend("hdd1", 5)
        events = _events(36, code="hdd1")
        interner = StreamInterner(backend)
        interner.extend(events)
        interner.compact(keep_last=12)
        suffix = StreamInterner(backend)
        suffix.extend(events[24:])
        _streams_equal(interner.snapshot(), suffix.snapshot())
        assert interner.n_blocks == suffix.n_blocks

    def test_window_before_first_event_rejected(self):
        interner = StreamInterner(make_backend("tip", 5))
        interner.extend(_events(20))
        interner.compact(keep_last=5)
        with pytest.raises(ValueError, match="compacted away"):
            interner.window(3)


class TestReplayThroughWindows:
    def test_grid_pass_over_window_equals_per_point(self):
        """The serve evaluation path — grid pass on a window stream —
        equals offline per-point simulate_trace on the same slice."""
        backend = make_backend("tip", 5)
        events = _events(32)
        interner = StreamInterner(backend)
        interner.extend(events[:17])
        interner.extend(events[17:])
        configs = [
            ReplayConfig(policy=p, capacity_blocks=c, workers=4)
            for p in ("fbf", "lru", "arc")
            for c in (8, 64)
        ]
        rows = simulate_grid_pass(
            backend,
            interner.events_slice(10),
            configs,
            plan_cache=interner.plan_cache,
            stream=interner.window(10),
        )
        for config, row in zip(configs, rows):
            assert row == simulate_trace(
                backend,
                events[10:],
                policy=config.policy,
                capacity_blocks=config.capacity_blocks,
                workers=config.workers,
            )
