"""The numpy replay backend's contract: rows equal the python pass, bit for bit.

Hypothesis samples a backend and a bag of configurations — including
sanitized and factory-built ones the fleet must refuse and fall back to
stepping for — and asserts :func:`~repro.engine.stream.simulate_grid_pass`
returns the identical row list under ``replay_backend="numpy"``.  The
wiring tests pin down eligibility, degenerate-cell fallback, argument
validation, and the sampled-profile dispatch at ``rate=1.0`` (where
SHARDS is exact by construction).
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.engine import (
    NUMPY_AVAILABLE,
    VECTOR_POLICIES,
    PlanCache,
    make_backend,
    simulate_grid_pass,
)
from repro.engine.stream import (
    ReplayConfig,
    _is_vector_eligible,
    _replay_vector_rows,
)

pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy required")

BACKEND_SPECS = (
    ("tip", 5),
    ("star", 5),
    ("triple-star", 5),
    ("lrc(6,2,2)", 0),
)

backends = st.sampled_from(BACKEND_SPECS)

configs = st.builds(
    ReplayConfig,
    policy=st.sampled_from(sorted(VECTOR_POLICIES)),
    capacity_blocks=st.sampled_from((0, 1, 2, 4, 8, 16, 48, 512)),
    workers=st.sampled_from((1, 2, 4, 8)),
    hint=st.sampled_from(("priority", "share")),
    sanitize=st.booleans(),
)


def _valid(config: ReplayConfig, n_events: int) -> bool:
    """Drop combos the partition contract rejects (tested elsewhere)."""
    eff_workers = min(config.workers, n_events)
    return not 0 < config.capacity_blocks < eff_workers


@settings(max_examples=40, deadline=None)
@given(
    spec=backends,
    config_list=st.lists(configs, min_size=1, max_size=6),
    n_events=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
    fast_path=st.booleans(),
)
@example(
    # Regression: the longest worker's every cell saturated, so the lane
    # arena was shorter than that worker's substream and the request-matrix
    # copy in _Lanes broke on shape.
    spec=("lrc(6,2,2)", 0),
    config_list=[
        ReplayConfig(
            policy="arc",
            capacity_blocks=48,
            workers=2,
            hint="priority",
            sanitize=False,
        )
    ],
    n_events=9,
    seed=0,
    fast_path=False,
)
def test_numpy_rows_equal_python(spec, config_list, n_events, seed, fast_path):
    name, p = spec
    backend = make_backend(name, p)
    events = backend.generate_events(n_events, seed)
    config_list = [c for c in config_list if _valid(c, len(events))]
    if not config_list:
        return
    plans = PlanCache(backend)
    reference = simulate_grid_pass(
        backend, events, config_list, plan_cache=plans, lru_fast_path=fast_path
    )
    rows = simulate_grid_pass(
        backend,
        events,
        config_list,
        plan_cache=plans,
        lru_fast_path=fast_path,
        replay_backend="numpy",
    )
    assert rows == reference


def test_sampled_rate_one_equals_exact():
    # At rate=1.0 every block is sampled with weight 1: the SHARDS
    # profile degenerates to the exact Mattson profile, so the sampled
    # grid pass must be bit-identical to the exact one.
    backend = make_backend("star", 5)
    events = backend.generate_events(12, 9)
    config_list = [
        ReplayConfig(policy="lru", capacity_blocks=cap, workers=4)
        for cap in (4, 16, 64, 512)
    ]
    plans = PlanCache(backend)
    exact = simulate_grid_pass(backend, events, config_list, plan_cache=plans)
    sampled = simulate_grid_pass(
        backend,
        events,
        config_list,
        plan_cache=plans,
        stackdist="sampled",
        shards_rate=1.0,
    )
    assert sampled == exact


class TestEligibility:
    def test_plain_policies_eligible(self):
        for policy in sorted(VECTOR_POLICIES):
            assert _is_vector_eligible(ReplayConfig(policy=policy))

    def test_sanitize_steps(self):
        assert not _is_vector_eligible(ReplayConfig(policy="lru", sanitize=True))

    def test_factory_steps(self):
        config = ReplayConfig(policy="lru", policy_factory=LRUCache)
        assert not _is_vector_eligible(config)

    def test_kwargs_step(self):
        config = ReplayConfig(
            policy="fbf", policy_kwargs={"demote_on_hit": True}
        )
        assert not _is_vector_eligible(config)


class TestVectorRows:
    def _stream_for(self, backend, events):
        from repro.engine.stream import intern_stream

        plans = PlanCache(backend)
        memo = {}

        def stream_for(hint):
            if hint not in memo:
                memo[hint] = intern_stream(
                    backend, events, hint=hint, plan_cache=plans
                )
            return memo[hint]

        return stream_for

    def test_degenerate_capacity_falls_back(self):
        # capacity 0 -> per_worker 0: the fleet refuses the cell and the
        # stepped path owns it, so no row comes back for that index.
        backend = make_backend("tip", 5)
        events = backend.generate_events(4, 1)
        stream_for = self._stream_for(backend, events)
        rows = _replay_vector_rows(
            [ReplayConfig(policy="fifo", capacity_blocks=0, workers=2)],
            stream_for,
            True,
        )
        assert rows == {}

    def test_lru_ownership_flag(self):
        backend = make_backend("tip", 5)
        events = backend.generate_events(4, 1)
        stream_for = self._stream_for(backend, events)
        config = [ReplayConfig(policy="lru", capacity_blocks=8, workers=2)]
        assert _replay_vector_rows(config, stream_for, True) == {}
        taken = _replay_vector_rows(config, stream_for, False)
        assert set(taken) == {0}


class TestValidation:
    BACKEND = make_backend("tip", 5)
    EVENTS = BACKEND.generate_events(2, 0)
    CONFIGS = [ReplayConfig(policy="lru", capacity_blocks=4)]

    def _pass(self, **kwargs):
        return simulate_grid_pass(
            self.BACKEND, self.EVENTS, self.CONFIGS, **kwargs
        )

    def test_bad_backend(self):
        with pytest.raises(ValueError, match="replay_backend"):
            self._pass(replay_backend="cuda")

    def test_bad_stackdist(self):
        with pytest.raises(ValueError, match="stackdist"):
            self._pass(stackdist="guessed")

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_rate(self, rate):
        with pytest.raises(ValueError, match="shards_rate"):
            self._pass(stackdist="sampled", shards_rate=rate)

    def test_numpy_unavailable_raises(self, monkeypatch):
        import repro.engine.stream as stream_mod

        monkeypatch.setattr(stream_mod, "_np", None)
        with pytest.raises(RuntimeError, match="numpy"):
            self._pass(replay_backend="numpy")


class TestFleetApi:
    def test_unknown_policy_rejected(self):
        from repro.engine import VectorFleet
        from repro.engine.stream import intern_stream

        backend = make_backend("tip", 5)
        events = backend.generate_events(3, 2)
        stream = intern_stream(
            backend, events, plan_cache=PlanCache(backend)
        )
        fleet = VectorFleet()
        fleet.add(stream, 2, (4,))
        with pytest.raises(ValueError, match="mru"):
            fleet.solve(["mru"])
