"""Property tests: any backend x policy replay is sane and deterministic.

Hypothesis samples a registered :class:`~repro.engine.backend.CodeBackend`,
a replacement policy, and replay parameters; every replay runs under the
strict :class:`~repro.checks.SimSanitizer` (``sanitize=True``), so any
FBF invariant violation — single residency, demotion order, capacity
accounting — raises inside the engine and fails the test.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.registry import available_policies
from repro.engine import PlanCache, make_backend, simulate_trace

# Small p keeps XOR plan construction fast; the LRC spec rides along in
# the same namespace — the point of the unified registry.
BACKEND_SPECS = (
    ("tip", 5),
    ("hdd1", 5),
    ("triple-star", 5),
    ("star", 5),
    ("lrc(12,2,2)", 0),
    ("lrc(6,2,2)", 0),
)

backends = st.sampled_from(BACKEND_SPECS)
policies = st.sampled_from(sorted(available_policies()))
hints = st.sampled_from(("priority", "share"))


@settings(max_examples=60, deadline=None)
@given(
    spec=backends,
    policy=policies,
    hint=hints,
    n_events=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.integers(min_value=0, max_value=48),
    workers=st.integers(min_value=1, max_value=8),
)
def test_replay_satisfies_invariants(
    spec, policy, hint, n_events, seed, capacity, workers
):
    name, p = spec
    backend = make_backend(name, p)
    events = backend.generate_events(n_events, seed)
    eff_workers = min(workers, n_events)
    if 0 < capacity < eff_workers:
        # round-robin would hand some worker a zero-block cache slice:
        # rejected loudly instead of silently simulating a cacheless array
        with pytest.raises(ValueError, match="exceeds capacity_blocks"):
            simulate_trace(
                backend,
                events,
                policy=policy,
                capacity_blocks=capacity,
                workers=workers,
                hint=hint,
            )
        return
    res = simulate_trace(
        backend,
        events,
        policy=policy,
        capacity_blocks=capacity,
        workers=workers,
        hint=hint,
        sanitize=True,  # strict: raises on any cache invariant violation
    )
    # accounting: every request either hit the cache or read a disk
    assert res.requests == res.hits + res.disk_reads
    assert res.n_errors == n_events
    assert res.code == backend.code_label
    # the effective SOR width never exceeds the batch
    assert res.workers == eff_workers
    assert res.per_worker_blocks == capacity // eff_workers
    if capacity == 0:
        assert res.hits == 0  # a cacheless array cannot hit


@settings(max_examples=30, deadline=None)
@given(
    spec=backends,
    policy=policies,
    n_events=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.integers(min_value=1, max_value=48),
)
def test_replay_is_deterministic(spec, policy, n_events, seed, capacity):
    """Same inputs, same row — with or without a shared plan cache."""
    assume(capacity >= min(4, n_events))  # else the partition contract raises
    name, p = spec
    backend = make_backend(name, p)
    events = backend.generate_events(n_events, seed)
    first = simulate_trace(
        backend, events, policy=policy, capacity_blocks=capacity, workers=4
    )
    again = simulate_trace(
        backend,
        events,
        policy=policy,
        capacity_blocks=capacity,
        workers=4,
        plan_cache=PlanCache(backend),
    )
    assert first == again


@settings(max_examples=30, deadline=None)
@given(
    spec=backends,
    n_events=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_request_stream_is_policy_independent(spec, n_events, seed):
    """The plan-driven request count is a property of the workload alone."""
    name, p = spec
    backend = make_backend(name, p)
    events = backend.generate_events(n_events, seed)
    plans = PlanCache(backend)
    counts = {
        simulate_trace(
            backend, events, policy=pol, capacity_blocks=16, workers=2,
            plan_cache=plans,
        ).requests
        for pol in available_policies()
    }
    assert len(counts) == 1
