"""The batched grid replay's contract: rows equal per-point replay, bit for bit.

Hypothesis samples a backend, a bag of (policy x capacity x workers)
configurations (including sanitized ones and both hint models) and
asserts that :func:`~repro.engine.stream.simulate_grid_pass` returns
exactly the row per-point :func:`~repro.engine.simulate_trace` produces
for each — with the LRU/saturation fast paths both on and off.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.registry import available_policies
from repro.engine import (
    PlanCache,
    intern_stream,
    make_backend,
    simulate_grid_pass,
    simulate_trace,
)
from repro.engine.stream import ReplayConfig

BACKEND_SPECS = (
    ("tip", 5),
    ("hdd1", 5),
    ("star", 5),
    ("triple-star", 5),
    ("lrc(6,2,2)", 0),
)

backends = st.sampled_from(BACKEND_SPECS)

configs = st.builds(
    ReplayConfig,
    policy=st.sampled_from(sorted(available_policies())),
    capacity_blocks=st.sampled_from((0, 1, 2, 4, 8, 16, 48, 512)),
    workers=st.sampled_from((1, 2, 4, 8)),
    hint=st.sampled_from(("priority", "share")),
    sanitize=st.booleans(),
)


def _valid(config: ReplayConfig, n_events: int) -> bool:
    """Drop combos the partition contract rejects (tested elsewhere)."""
    eff_workers = min(config.workers, n_events)
    return not 0 < config.capacity_blocks < eff_workers


@settings(max_examples=40, deadline=None)
@given(
    spec=backends,
    config_list=st.lists(configs, min_size=1, max_size=6),
    n_events=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
    fast_path=st.booleans(),
)
def test_grid_pass_rows_equal_per_point(
    spec, config_list, n_events, seed, fast_path
):
    name, p = spec
    backend = make_backend(name, p)
    events = backend.generate_events(n_events, seed)
    config_list = [c for c in config_list if _valid(c, n_events)]
    if not config_list:
        return

    rows = simulate_grid_pass(
        backend, events, config_list, lru_fast_path=fast_path
    )
    assert len(rows) == len(config_list)
    for config, row in zip(config_list, rows):
        expected = simulate_trace(
            backend,
            events,
            policy=config.policy,
            capacity_blocks=config.capacity_blocks,
            workers=config.workers,
            hint=config.hint,
            sanitize=config.sanitize,
        )
        assert row == expected, (config, row, expected)


def test_shared_stream_and_plan_cache_reused():
    backend = make_backend("tip", 7)
    events = backend.generate_events(6, 1)
    plans = PlanCache(backend)
    stream = intern_stream(backend, events, plan_cache=plans)
    grid = [
        ReplayConfig(policy=policy, capacity_blocks=cap, workers=4)
        for policy in ("lru", "fbf", "arc")
        for cap in (8, 64)
    ]
    rows = simulate_grid_pass(
        backend, events, grid, plan_cache=plans, stream=stream
    )
    for config, row in zip(grid, rows):
        assert row == simulate_trace(
            backend,
            events,
            policy=config.policy,
            capacity_blocks=config.capacity_blocks,
            workers=config.workers,
        )


def test_foreign_stream_rejected():
    backend = make_backend("tip", 5)
    other = make_backend("star", 5)
    events = backend.generate_events(3, 0)
    stream = intern_stream(other, other.generate_events(3, 0))
    with pytest.raises(ValueError, match="different backend"):
        simulate_grid_pass(backend, events, [ReplayConfig()], stream=stream)


def test_foreign_plan_cache_rejected():
    backend = make_backend("tip", 5)
    other = make_backend("star", 5)
    with pytest.raises(ValueError, match="different backend"):
        intern_stream(backend, backend.generate_events(3, 0), plan_cache=PlanCache(other))


def test_custom_factory_rows_match():
    from repro.core.fbf_cache import FBFCache

    backend = make_backend("hdd1", 7)
    events = backend.generate_events(5, 3)
    for demote in (True, False):
        factory = lambda cap, d=demote: FBFCache(cap, demote_on_hit=d)
        (row,) = simulate_grid_pass(
            backend,
            events,
            [ReplayConfig(capacity_blocks=32, workers=4, policy_factory=factory)],
        )
        assert row == simulate_trace(
            backend,
            events,
            capacity_blocks=32,
            workers=4,
            policy_factory=factory,
        )
