"""Unit tests for the engine contract: backends, registry, plans, caches."""

import pytest

from repro.codes import make_code
from repro.engine import (
    CodeBackend,
    EnginePlan,
    LRCBackend,
    MAX_PRIORITY,
    PlanCache,
    RecoveryStep,
    XORBackend,
    available_backends,
    make_backend,
    make_priority_model,
    register_backend,
    simulate_trace,
)
from repro.engine.registry import BACKENDS
from repro.lrc import LRCCode


class TestRegistry:
    @pytest.mark.parametrize("name", ["tip", "hdd1", "triple-star", "star"])
    def test_xor_backends_resolve(self, name):
        backend = make_backend(name, 7)
        assert isinstance(backend, CodeBackend)
        assert backend.p == 7
        assert backend.scheme_label == "fbf"

    def test_scheme_mode_forwarded(self):
        assert make_backend("tip", 7, scheme_mode="typical").scheme_label == "typical"

    def test_aliases(self):
        assert make_backend("triplestar", 7).code_label == \
            make_backend("triple-star", 7).code_label
        assert make_backend("TIP-Code", 7).code_label == \
            make_backend("tip", 7).code_label

    def test_lrc_default_and_parameterised(self):
        assert make_backend("lrc").code_label == LRCCode().name
        assert make_backend("lrc(12,2,2)").code_label == "LRC(12,2,2)"
        assert make_backend("lrc(6,2,2)").code_label == "LRC(6,2,2)"

    def test_lrc_ignores_p(self):
        assert make_backend("lrc(12,2,2)", 0).p == 0

    def test_xor_requires_p(self):
        with pytest.raises(ValueError, match="requires the prime"):
            make_backend("tip")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("raid6")

    def test_bad_lrc_spec(self):
        with pytest.raises(ValueError, match="LRC spec"):
            make_backend("lrc(12,2)")

    def test_available_backends_lists_all(self):
        names = available_backends()
        for name in ("tip", "hdd1", "triple-star", "star", "lrc"):
            assert name in names

    def test_register_round_trip(self):
        sentinel = XORBackend(make_code("tip", 5))
        register_backend("custom-code", lambda spec, p, mode: sentinel)
        try:
            assert make_backend("custom-code") is sentinel
            assert "custom-code" in available_backends()
        finally:
            del BACKENDS["custom-code"]
        with pytest.raises(ValueError):
            make_backend("custom-code")

    def test_every_registered_backend_round_trips(self):
        """Each registry name builds a backend that satisfies the protocol
        and produces replayable plans for its own events."""
        for name in available_backends():
            backend = make_backend(name, 7)
            assert isinstance(backend, CodeBackend)
            events = backend.generate_events(4, seed=3)
            assert len(events) == 4
            for event in events:
                plan = backend.build_plan(event)
                assert plan.steps and plan.request_sequence
                assert backend.plan_key(event) == backend.plan_key(event)


class TestEnginePlan:
    def test_derived_views(self):
        plan = EnginePlan(
            steps=(
                RecoveryStep(target="a", reads=("x", "y")),
                RecoveryStep(target="b", reads=("y", "z")),
                RecoveryStep(target="c", reads=("y", "x", "w")),
                RecoveryStep(target="d", reads=("y",)),
            )
        )
        assert plan.request_sequence == ("x", "y", "y", "z", "y", "x", "w", "y")
        assert plan.share_counts == {"x": 2, "y": 4, "z": 1, "w": 1}
        # Table II: share counts capped at MAX_PRIORITY, default 1.
        assert plan.priorities["y"] == MAX_PRIORITY
        assert plan.priority_of("x") == 2
        assert plan.priority_of("nope") == 1
        assert plan.targets == ("a", "b", "c", "d")
        assert plan.unique_reads == 4
        assert plan.total_requests == 8

    def test_source_excluded_from_equality(self):
        steps = (RecoveryStep(target="a", reads=("x",)),)
        assert EnginePlan(steps, source=object()) == EnginePlan(steps, source=None)


class TestPriorityModels:
    def test_unknown_hint(self):
        with pytest.raises(ValueError, match="hint"):
            make_priority_model("nope")

    def test_share_model_uncapped(self):
        plan = EnginePlan(
            steps=tuple(
                RecoveryStep(target=i, reads=("hot",)) for i in range(5)
            )
        )
        lookup = make_priority_model("share").bind(plan)
        assert lookup("hot") == 5  # raw share count, not capped at 3
        assert lookup("cold") == 1
        table = make_priority_model("priority").bind(plan)
        assert table("hot") == MAX_PRIORITY


class TestPlanCache:
    @pytest.fixture
    def backend(self):
        return make_backend("tip", 5)

    def test_memoizes_by_shape(self, backend):
        events = backend.generate_events(30, seed=1)
        cache = PlanCache(backend)
        plans = [cache.get(e) for e in events]
        again = [cache.get(e) for e in events]
        for a, b in zip(plans, again):
            assert a is b  # identity, not just equality
        stats = cache.stats()
        assert stats["misses"] == len(cache)
        assert stats["hits"] >= len(events)  # repeats + second pass

    def test_max_entries_fifo_eviction(self, backend):
        events = backend.generate_events(30, seed=1)
        distinct = {backend.plan_key(e): e for e in events}
        assert len(distinct) > 2
        cache = PlanCache(backend, max_entries=2)
        for event in distinct.values():
            cache.get(event)
        assert len(cache) == 2

    def test_max_entries_validation(self, backend):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(backend, max_entries=0)

    def test_backend_mismatch_rejected(self, backend):
        other = make_backend("tip", 5)
        events = backend.generate_events(5, seed=1)
        with pytest.raises(ValueError, match="different backend"):
            simulate_trace(other, events, plan_cache=PlanCache(backend))


class TestUnifiedResult:
    """One result dataclass for every code (the old LRCTraceResult is gone)."""

    def test_code_field_distinguishes_worlds(self):
        xor = make_backend("tip", 5)
        lrc = make_backend("lrc(12,2,2)")
        rx = simulate_trace(xor, xor.generate_events(10, seed=2), capacity_blocks=16)
        rl = simulate_trace(lrc, lrc.generate_events(10, seed=2), capacity_blocks=16)
        assert type(rx) is type(rl)
        assert rx.code == "TIP" and rx.p == 5
        assert rl.code == "LRC(12,2,2)" and rl.p == 0
        for res in (rx, rl):
            assert res.requests == res.hits + res.disk_reads
            assert res.n_events == res.n_errors == 10

    def test_validation(self):
        backend = make_backend("tip", 5)
        events = backend.generate_events(5, seed=2)
        with pytest.raises(ValueError, match="capacity_blocks"):
            simulate_trace(backend, events, capacity_blocks=-1)
        with pytest.raises(ValueError, match="workers"):
            simulate_trace(backend, events, workers=0)
        with pytest.raises(ValueError, match="hint"):
            simulate_trace(backend, events, hint="nope")


class TestLRCBackendDetails:
    def test_steps_zip_failures_to_equations(self):
        backend = LRCBackend(LRCCode(12, 2, 2))
        for event in backend.generate_events(40, seed=7):
            plan = backend.build_plan(event)
            assert plan.targets == plan.source.failed
            assert len(plan.steps) == len(plan.source.equations)

    def test_datapath_unsupported(self):
        with pytest.raises(ValueError, match="verify_payloads"):
            LRCBackend().make_datapath(payload_size=64, seed=0)

    def test_xor_scheme_validation(self):
        with pytest.raises(ValueError, match="scheme mode"):
            XORBackend(make_code("tip", 5), "nope")
