"""The refactor's determinism gate (ISSUE 3, DESIGN.md §10).

``golden_rows.json`` was captured from the PRE-unification replay
implementations (``repro.sim.tracesim.simulate_cache_trace``,
``repro.lrc.tracesim.simulate_lrc_trace``, ``repro.sim.reconstruction.
run_reconstruction``) before any engine code existed.  The unified
engine must reproduce every row bit-for-bit: hit counts, request counts,
disk reads — for all four XOR 3DFT codes and the LRC — and the timed
replay's simulated clocks.  Regenerating the fixture from current code
would defeat the gate; treat it as append-only.
"""

import json
from pathlib import Path

import pytest

from repro.engine import PlanCache, make_backend, simulate_trace
from repro.lrc import LRCCode, LRCWorkloadConfig, generate_lrc_failures
from repro.sim.reconstruction import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors
from repro.codes import make_code

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_rows.json").read_text(encoding="utf-8")
)


def _xor_cases():
    for row in GOLDEN["xor_trace"]:
        label = (
            f"{row['code']}-p{row['p']}-{row['scheme_mode']}-{row['policy']}"
            f"-c{row['capacity_blocks']}" + ("-share" if row.get("hint") else "")
        )
        yield pytest.param(row, id=label)


class TestXORGolden:
    @pytest.fixture(scope="class")
    def shared(self):
        """Per-(code, p, scheme) backends/events/plan caches, shared like
        a sweep group would share them — sharing must not change rows."""
        return {}

    @pytest.mark.parametrize("row", _xor_cases())
    def test_row(self, row, shared):
        key = (row["code"], row["p"], row["scheme_mode"])
        if key not in shared:
            backend = make_backend(row["code"], row["p"], scheme_mode=row["scheme_mode"])
            errors = generate_errors(
                make_code(row["code"], row["p"]),
                ErrorTraceConfig(n_errors=row["n_errors"], seed=42),
            )
            shared[key] = (backend, errors, PlanCache(backend))
        backend, errors, plans = shared[key]
        res = simulate_trace(
            backend,
            errors,
            policy=row["policy"],
            capacity_blocks=row["capacity_blocks"],
            workers=row["workers"],
            plan_cache=plans,
            hint=row.get("hint", "priority"),
        )
        assert res.requests == row["requests"]
        assert res.hits == row["hits"]
        assert res.disk_reads == row["disk_reads"]
        assert res.hit_ratio == row["hit_ratio"]


class TestLRCGolden:
    @pytest.fixture(scope="class")
    def setup(self):
        backend = make_backend("lrc(12,2,2)")
        events = generate_lrc_failures(
            LRCCode(12, 2, 2),
            LRCWorkloadConfig(
                n_events=60, seed=9, batch_size_weights=(0.3, 0.3, 0.25, 0.15)
            ),
        )
        return backend, events, PlanCache(backend)

    @pytest.mark.parametrize(
        "row",
        [
            pytest.param(r, id=f"{r['policy']}-c{r['capacity_blocks']}")
            for r in GOLDEN["lrc_trace"]
        ],
    )
    def test_row(self, row, setup):
        backend, events, plans = setup
        res = simulate_trace(
            backend,
            events,
            policy=row["policy"],
            capacity_blocks=row["capacity_blocks"],
            workers=row["workers"],
            plan_cache=plans,
        )
        assert res.n_events == row["n_events"]
        assert res.requests == row["requests"]
        assert res.hits == row["hits"]
        assert res.disk_reads == row["disk_reads"]
        assert res.hit_ratio == row["hit_ratio"]


class TestDESGolden:
    """The timed replay's simulated clocks survived the backend refactor."""

    @pytest.mark.parametrize("variant", ["des_serial", "des_parallel"])
    def test_row(self, variant):
        row = GOLDEN[variant]
        layout = make_code(row["code"], row["p"])
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=12, seed=42))
        rep = run_reconstruction(
            layout,
            errors,
            SimConfig(
                policy=row["policy"],
                cache_size=64 * 32 * 1024,
                workers=row["workers"],
                parallel_chain_reads=(variant == "des_parallel"),
            ),
        )
        assert rep.cache_hits == row["cache_hits"]
        assert rep.disk_reads == row["disk_reads"]
        assert rep.chunks_recovered == row["chunks_recovered"]
        assert rep.reconstruction_time == row["reconstruction_time"]
        assert rep.avg_response_time == row["avg_response_time"]
