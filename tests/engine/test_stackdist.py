"""Unit tests for the Mattson stack-distance machinery.

The profile's one claim — ``hits_at(c)`` equals the hit count of a
stepped c-block LRU replay, for every c — is checked against both a
brute-force reuse-distance oracle and the real :class:`LRUCache`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.engine.stackdist import (
    FenwickTree,
    SampledStackDistanceProfile,
    StackDistanceProfile,
    reuse_distances,
)

streams = st.lists(st.integers(min_value=0, max_value=12), max_size=120)


def brute_force_distances(stream):
    """O(n^2) oracle: distinct blocks strictly between same-key accesses."""
    last: dict[int, int] = {}
    out = []
    for t, block in enumerate(stream):
        prev = last.get(block)
        if prev is None:
            out.append(-1)
        else:
            out.append(len(set(stream[prev + 1 : t])))
        last[block] = t
    return out


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        for i, delta in ((1, 3), (4, 2), (8, 5)):
            tree.add(i, delta)
        assert [tree.prefix(i) for i in range(9)] == [0, 3, 3, 3, 5, 5, 5, 5, 10]

    def test_prefix_clamps_past_the_end(self):
        tree = FenwickTree(3)
        tree.add(2, 7)
        assert tree.prefix(100) == 7
        assert tree.prefix(-5) == 0

    def test_add_out_of_range_rejected(self):
        tree = FenwickTree(3)
        with pytest.raises(IndexError):
            tree.add(0, 1)
        with pytest.raises(IndexError):
            tree.add(4, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_empty_tree(self):
        assert FenwickTree(0).prefix(0) == 0


class TestReuseDistances:
    def test_known_stream(self):
        # a b c a: 'a' sees b,c in between -> distance 2
        assert list(reuse_distances([1, 2, 3, 1])) == [-1, -1, -1, 2]

    def test_immediate_rereference_is_zero(self):
        assert list(reuse_distances([5, 5])) == [-1, 0]

    @settings(max_examples=80, deadline=None)
    @given(stream=streams)
    def test_matches_brute_force(self, stream):
        assert list(reuse_distances(stream)) == brute_force_distances(stream)


class TestStackDistanceProfile:
    @settings(max_examples=60, deadline=None)
    @given(
        stream=streams,
        capacity=st.integers(min_value=0, max_value=16),
    )
    def test_matches_stepped_lru(self, stream, capacity):
        cache = LRUCache(capacity)
        for block in stream:
            cache.request(block)
        profile = StackDistanceProfile(stream)
        assert profile.hits_at(capacity) == cache.stats.hits

    def test_all_capacities_from_one_profile(self):
        stream = [1, 2, 3, 1, 2, 3, 4, 1]
        profile = StackDistanceProfile(stream)
        for capacity in range(0, 10):
            cache = LRUCache(capacity)
            for block in stream:
                cache.request(block)
            assert profile.hits_at(capacity) == cache.stats.hits, capacity

    def test_huge_capacity_clamps(self):
        profile = StackDistanceProfile([1, 2, 1, 2])
        assert profile.hits_at(10**9) == 2

    def test_empty_stream(self):
        profile = StackDistanceProfile([])
        assert profile.requests == 0
        assert profile.hits_at(4) == 0


class TestSampledStackDistanceProfile:
    @settings(max_examples=60, deadline=None)
    @given(
        stream=streams,
        capacity=st.integers(min_value=0, max_value=16),
    )
    def test_rate_one_is_exact(self, stream, capacity):
        # At rate=1.0 every block is sampled with weight 1: SHARDS
        # degenerates to the exact Mattson profile.
        exact = StackDistanceProfile(stream)
        sampled = SampledStackDistanceProfile(stream, rate=1.0)
        assert sampled.hits_at(capacity) == exact.hits_at(capacity)
        assert sampled.min_rate == 1.0

    def test_error_bounded_on_skewed_stream(self):
        # Deterministic 60/40 hot/cold mixture: 60k requests over 8k
        # blocks, no single block heavy enough to defeat spatial
        # sampling (that regime is covered by the bench's SHARDS gate).
        # At 10% sampling the adjusted estimate lands within one
        # percentage point of the exact hit ratio at every capacity;
        # the splitmix hash makes the sample — and this bound —
        # reproducible.
        rng = random.Random(1234)
        hot, blocks = 800, 8000
        stream = [
            rng.randrange(hot) if rng.random() < 0.6
            else rng.randrange(hot, blocks)
            for _ in range(60_000)
        ]
        exact = StackDistanceProfile(stream)
        sampled = SampledStackDistanceProfile(stream, rate=0.1)
        n = len(stream)
        for capacity in (16, 64, 256, 1024, 4096, 8192):
            err = abs(sampled.estimated_hits_at(capacity)
                      - exact.hits_at(capacity)) / n
            assert err < 0.01, (capacity, err)

    def test_fixed_size_mode_bounds_memory(self):
        rng = random.Random(7)
        stream = [rng.randrange(5000) for _ in range(30_000)]
        sampled = SampledStackDistanceProfile(
            stream, rate=1.0, max_tracked=64
        )
        # peak is recorded just before the over-budget eviction.
        assert sampled.peak_tracked <= 65
        assert 0.0 < sampled.min_rate < 1.0

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.0000001])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError, match="rate"):
            SampledStackDistanceProfile([1, 2], rate=rate)

    def test_rejects_bad_max_tracked(self):
        with pytest.raises(ValueError, match="max_tracked"):
            SampledStackDistanceProfile([1, 2], max_tracked=0)

    def test_empty_stream(self):
        sampled = SampledStackDistanceProfile([], rate=0.5)
        assert sampled.requests == 0
        assert sampled.estimated_hits_at(8) == 0.0

    def test_hit_ratio_at(self):
        sampled = SampledStackDistanceProfile([1, 1, 1, 1], rate=1.0)
        assert sampled.hit_ratio_at(2) == pytest.approx(0.75)
