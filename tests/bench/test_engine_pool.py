"""EnginePool: one process pool, many grids — rows identical to serial."""

from __future__ import annotations

import pytest

from repro.bench import EngineConfig, Scale, experiment_grid, rows_equivalent, run_grid
from repro.bench.engine import EnginePool

TINY = Scale(
    n_errors=6,
    workers=2,
    cache_mbs=(0.25,),
    seed=5,
    codes=("tip",),
    ps_main=(5,),
    ps_tip=(5,),
)


class TestLifecycle:
    def test_lazy_until_first_use_then_reusable(self):
        pool = EnginePool(workers=1)
        assert not pool.active
        assert pool.resolved_workers() == 1
        with pool:
            assert pool.executor() is pool.executor()  # one executor, reused
            assert pool.active
        assert not pool.active
        # the handle survives close(): next use builds a fresh executor
        assert pool.executor() is not None
        pool.close()

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            EnginePool(workers="sometimes")
        with pytest.raises(ValueError):
            EnginePool(workers=-1)

    def test_zero_workers_has_no_executor(self):
        pool = EnginePool(workers=0)
        with pytest.raises(RuntimeError):
            pool.executor()


class TestRunGridReuse:
    def test_two_grids_one_pool_rows_match_serial(self):
        grid_a = experiment_grid("fig8", TINY)
        grid_b = experiment_grid("fig9", TINY)
        with EnginePool(workers=2) as pool:
            pooled_a = run_grid(grid_a, EngineConfig(workers=1), pool=pool)
            pooled_b = run_grid(grid_b, EngineConfig(workers=1), pool=pool)
        serial_a = run_grid(grid_a, EngineConfig(workers=0))
        serial_b = run_grid(grid_b, EngineConfig(workers=0))
        assert rows_equivalent(pooled_a.points, serial_a.points)
        assert rows_equivalent(pooled_b.points, serial_b.points)
        # the pool's fan-out, not the EngineConfig's, is what actually ran
        assert pooled_a.workers == 2
