"""Tests for the kernel-dispatch CI gate (`repro.bench.kernel_bench`)."""

import copy

import pytest

from repro.bench.kernel_bench import (
    WORKLOADS,
    compare_to_baseline,
    run_kernel_bench,
)


@pytest.fixture(scope="module")
def payload():
    # One round keeps the wall-clock measurement cheap; its speedup is
    # noise, so only the floor check may legitimately come out False.
    return run_kernel_bench(rounds=1, n_errors=4)


class TestKernelBench:
    def test_payload_invariants_hold_at_small_scale(self, payload):
        checks = dict(payload["checks"])
        checks.pop("speedup_at_least_floor")  # wall-clock, not asserted here
        assert all(checks.values()), checks
        assert payload["kind"] == "kernel"
        assert set(payload["rows"]) == {"fig10", "fig11", "cluster"}
        names = [w["name"] for w in payload["throughput"]["workloads"]]
        assert names == [name for name, _ in WORKLOADS]
        assert payload["throughput"]["total_events"] > 0
        assert payload["aggregate"]["speedup"] > 0
        assert payload["aggregate"]["events_per_s"] > 0

    def test_rows_carry_virtual_time_only(self, payload):
        # The wall-clock planning-overhead columns must be stripped, or
        # the bit-exact row comparison would flake across machines.
        for row in payload["rows"].values():
            assert "overhead_mean_s" not in row
            assert "overhead_total_s" not in row
            assert row["total_requests"] > 0

    def test_self_comparison_passes_and_drift_fails(self, payload):
        baseline = copy.deepcopy(payload)
        # A committed baseline always demonstrates the floor; a 1-round
        # local measurement need not, so pin the flag rather than the
        # measurement.
        baseline["checks"]["speedup_at_least_floor"] = True
        ok, message = compare_to_baseline(payload, baseline)
        assert ok, message

        tampered = copy.deepcopy(payload)
        tampered["rows"]["fig11"]["cache_hits"] += 1
        ok, message = compare_to_baseline(tampered, baseline)
        assert not ok
        assert "fig11" in message and "cache_hits" in message

    def test_speedup_regression_fails(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["checks"]["speedup_at_least_floor"] = True
        baseline["aggregate"]["speedup"] = payload["aggregate"]["speedup"] * 2
        ok, message = compare_to_baseline(payload, baseline)
        assert not ok
        assert "fell below" in message

    def test_baseline_without_floor_rejected(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["checks"]["speedup_at_least_floor"] = False
        ok, message = compare_to_baseline(payload, baseline)
        assert not ok
        assert "does not demonstrate" in message
