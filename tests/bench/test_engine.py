"""Tests for the parallel sweep engine (determinism contract + cache)."""

import json

import pytest

from repro.bench import (
    ENGINE_CACHE_VERSION,
    EngineConfig,
    GridPoint,
    ResultCache,
    Scale,
    SweepPoint,
    experiment_grid,
    rows_equivalent,
    run_grid,
    write_bench_json,
)
from repro.bench.engine import bench_payload

TINY = Scale(
    n_errors=8,
    workers=4,
    cache_mbs=(0.25, 1.0),
    seed=3,
    codes=("tip",),
    ps_main=(5,),
    ps_tip=(5,),
)

SERIAL = EngineConfig(workers=0)


def tiny_grid(name: str):
    return experiment_grid(name, TINY)


class TestGridPoint:
    def test_hashable_and_frozen(self):
        a = tiny_grid("fig8")[0]
        b = tiny_grid("fig8")[0]
        assert a == b and hash(a) == hash(b)

    def test_cache_key_stable_and_sensitive(self):
        a = tiny_grid("fig8")[0]
        assert a.cache_key() == a.cache_key()
        from dataclasses import replace

        assert a.cache_key() != replace(a, seed=a.seed + 1).cache_key()
        assert a.cache_key() != a.cache_key(salt="other-version")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            GridPoint(kind="nope", experiment="x", code="tip", p=5,
                      policy="fbf", cache_mb=1.0)

    def test_demotion_requires_flag(self):
        with pytest.raises(ValueError, match="demote_on_hit"):
            GridPoint(kind="demotion", experiment="x", code="tip", p=5,
                      policy="fbf", cache_mb=1.0)


class TestEngineConfig:
    def test_auto_resolves_positive(self):
        assert EngineConfig(workers="auto").resolved_workers() >= 1

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=-1)
        with pytest.raises(ValueError):
            EngineConfig(workers="many")


class TestReplayBackendConfig:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="replay_backend"):
            EngineConfig(replay_backend="cuda")

    def test_rejects_bad_stackdist(self):
        with pytest.raises(ValueError, match="stackdist"):
            EngineConfig(stackdist="guessed")

    def test_rejects_bad_shards_rate(self):
        with pytest.raises(ValueError, match="shards_rate"):
            EngineConfig(stackdist="sampled", shards_rate=0.0)

    def test_exact_keeps_base_salt(self):
        assert EngineConfig().replay_salt() == ENGINE_CACHE_VERSION
        assert (
            EngineConfig(replay_backend="numpy").replay_salt()
            == ENGINE_CACHE_VERSION
        )

    def test_sampled_salts_by_rate(self):
        a = EngineConfig(stackdist="sampled", shards_rate=0.01)
        b = EngineConfig(stackdist="sampled", shards_rate=0.05)
        assert a.replay_salt() != ENGINE_CACHE_VERSION
        assert a.replay_salt() != b.replay_salt()

    def test_numpy_rows_equal_python_through_run_grid(self):
        grid = tiny_grid("fig8")
        reference = run_grid(grid, SERIAL)
        rows = run_grid(grid, EngineConfig(workers=0, replay_backend="numpy"))
        assert rows_equivalent(reference.points, rows.points)


class TestParallelSerialEquivalence:
    """engine(workers=N) must reproduce engine(workers=0) row for row."""

    @pytest.mark.parametrize(
        "experiment", ["fig8", "fig10", "ablation-scheme", "ablation-demotion"]
    )
    def test_each_family(self, experiment):
        grid = tiny_grid(experiment)
        serial = run_grid(grid, SERIAL)
        parallel = run_grid(grid, EngineConfig(workers=4))
        assert serial.workers == 0 and parallel.workers >= 1
        assert rows_equivalent(serial.points, parallel.points)
        # trace replays carry no measured columns -> fully identical
        if experiment != "fig10":
            assert serial.points == parallel.points

    def test_trace_rows_survive_pickle_equality(self):
        # regression: nan defaults must compare equal across transports
        grid = tiny_grid("fig8")[:1]
        import pickle

        row = run_grid(grid, SERIAL).points[0]
        assert pickle.loads(pickle.dumps(row)) == row


class TestBatchedDispatch:
    """batch=True groups hit-ratio cells into one interned-stream pass."""

    @pytest.mark.parametrize(
        "experiment", ["fig8", "fig9", "ablation-scheme", "ablation-demotion"]
    )
    def test_batched_rows_equal_golden(self, experiment):
        grid = tiny_grid(experiment)
        golden = run_grid(grid, EngineConfig(workers=0, batch=False))
        batched = run_grid(grid, SERIAL)  # batch defaults to True
        assert golden.points == batched.points

    def test_parallel_batched_rows_equal_golden(self):
        grid = tiny_grid("fig8")
        golden = run_grid(grid, EngineConfig(workers=0, batch=False))
        parallel = run_grid(grid, EngineConfig(workers=4))
        assert golden.points == parallel.points

    def test_des_points_stay_per_point(self):
        # fig10 rows carry measured wall-clock columns; the event-driven
        # simulation never joins a batch group but must still run.
        grid = tiny_grid("fig10")
        batched = run_grid(grid, SERIAL)
        golden = run_grid(grid, EngineConfig(workers=0, batch=False))
        assert rows_equivalent(batched.points, golden.points)

    def test_batched_preserves_order_timings_and_progress(self):
        grid = tiny_grid("fig8")
        seen = []
        result = run_grid(
            grid, SERIAL, on_progress=lambda done, total: seen.append((done, total))
        )
        assert [(t.policy, t.cache_mb) for t in result.timings] == [
            (g.policy, g.cache_mb) for g in grid
        ]
        assert seen == [(i + 1, len(grid)) for i in range(len(grid))]
        assert all(t.seconds > 0 for t in result.timings)

    def test_batched_populates_result_cache(self, tmp_path):
        grid = tiny_grid("fig8")
        cold = run_grid(grid, EngineConfig(workers=0, cache_dir=tmp_path))
        assert cold.cache_misses == len(grid)
        warm = run_grid(
            grid, EngineConfig(workers=0, cache_dir=tmp_path, batch=False)
        )
        assert (warm.cache_hits, warm.cache_misses) == (len(grid), 0)
        assert warm.points == cold.points


class TestResultCache:
    def test_warm_run_recomputes_nothing(self, tmp_path):
        grid = tiny_grid("fig8")
        cold = run_grid(grid, EngineConfig(workers=0, cache_dir=tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, len(grid))
        warm = run_grid(grid, EngineConfig(workers=2, cache_dir=tmp_path))
        assert (warm.cache_hits, warm.cache_misses) == (len(grid), 0)
        assert warm.points == cold.points
        assert all(t.cached for t in warm.timings)

    def test_salt_bump_invalidates(self, tmp_path):
        grid = tiny_grid("fig8")[:2]
        run_grid(grid, EngineConfig(workers=0, cache_dir=tmp_path))
        stale = ResultCache(tmp_path, salt=ENGINE_CACHE_VERSION + "-next")
        assert stale.get(grid[0]) is None

    def test_round_trip_preserves_row(self, tmp_path):
        grid = tiny_grid("fig10")[:1]
        result = run_grid(grid, EngineConfig(workers=0, cache_dir=tmp_path))
        cached = ResultCache(tmp_path).get(grid[0])
        assert cached == result.points[0]
        assert isinstance(cached, SweepPoint)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        grid = tiny_grid("fig8")[:1]
        cache = ResultCache(tmp_path)
        path = cache._path(grid[0].cache_key())
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(grid[0]) is None
        result = run_grid(grid, EngineConfig(workers=0, cache_dir=tmp_path))
        assert result.cache_misses == 1
        assert cache.get(grid[0]) == result.points[0]


class TestEngineResult:
    def test_canonical_order_and_stats(self):
        grid = tiny_grid("fig9")
        result = run_grid(grid, SERIAL)
        assert [(t.policy, t.cache_mb) for t in result.timings] == [
            (g.policy, g.cache_mb) for g in grid
        ]
        assert result.n_points == len(grid)
        assert result.compute_s > 0
        assert result.wall_s > 0

    def test_progress_callback(self):
        grid = tiny_grid("fig9")[:3]
        seen = []
        run_grid(grid, SERIAL, on_progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestPlanCacheSurfacing:
    def test_serial_run_reports_plan_activity(self):
        from repro.bench.engine import _reset_worker_state

        _reset_worker_state()
        result = run_grid(tiny_grid("fig8"), SERIAL)
        assert result.plan_cache_misses > 0
        # Second run in the same process hits the warm memo: no new
        # misses, and the delta honestly reports zero plan work.
        warm = run_grid(tiny_grid("fig8"), SERIAL)
        assert warm.plan_cache_misses == 0
        assert warm.points == result.points

    def test_payload_carries_plan_counts(self):
        from repro.bench.engine import _reset_worker_state

        _reset_worker_state()
        result = run_grid(tiny_grid("fig8"), SERIAL)
        payload = bench_payload("fig8", "quick", result)
        assert payload["plan_cache_misses"] == result.plan_cache_misses
        assert payload["plan_cache_hits"] == result.plan_cache_hits


class TestRemovedConfigKwarg:
    def test_config_kwarg_is_gone(self):
        grid = tiny_grid("fig9")[:2]
        with pytest.raises(TypeError):
            run_grid(grid, config=SERIAL)


class TestBenchJson:
    def test_payload_schema(self, tmp_path):
        grid = tiny_grid("fig9")[:2]
        result = run_grid(grid, SERIAL)
        payload = bench_payload("fig9", "quick", result, {"serial_identical": True})
        for key in (
            "schema", "experiment", "scale", "wall_s", "n_points", "workers",
            "cache_hits", "cache_misses", "speedup_estimate", "per_point",
            "engine_version", "git_rev",
        ):
            assert key in payload
        assert payload["serial_identical"] is True
        assert len(payload["per_point"]) == 2
        path = write_bench_json(tmp_path / "BENCH_fig9.json", "fig9", "quick", result)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["n_points"] == 2
