"""Tests for report rendering."""

from repro.bench import SweepPoint, figure_report, series_table, table4_report, table5_report


def _pt(**kw):
    defaults = dict(
        experiment="fig8",
        code="TIP",
        p=7,
        policy="lru",
        cache_mb=8.0,
        hit_ratio=0.25,
    )
    defaults.update(kw)
    return SweepPoint(**defaults)


class TestSeriesTable:
    def test_basic_layout(self):
        pts = [
            _pt(policy="lru", cache_mb=8, hit_ratio=0.1),
            _pt(policy="fbf", cache_mb=8, hit_ratio=0.3),
            _pt(policy="lru", cache_mb=16, hit_ratio=0.2),
            _pt(policy="fbf", cache_mb=16, hit_ratio=0.4),
        ]
        text = series_table(pts, "hit_ratio")
        lines = text.splitlines()
        assert "cache(MB)" in lines[0]
        assert "lru" in lines[0] and "fbf" in lines[0]
        assert "0.1000" in text and "0.4000" in text

    def test_policy_ordering_follows_paper(self):
        pts = [_pt(policy=p) for p in ("fbf", "arc", "fifo", "lfu", "lru")]
        header = series_table(pts, "hit_ratio").splitlines()[0]
        cols = header.split()
        assert cols[1:] == ["fifo", "lru", "lfu", "arc", "fbf"]

    def test_missing_cell_rendered_as_dash(self):
        pts = [_pt(policy="lru", cache_mb=8), _pt(policy="fbf", cache_mb=16)]
        assert "-" in series_table(pts, "hit_ratio")

    def test_nan_rendered_as_dash(self):
        pts = [_pt(hit_ratio=float("nan"))]
        body = series_table(pts, "hit_ratio").splitlines()[2]
        assert "-" in body


class TestFigureReport:
    def test_one_panel_per_code_p(self):
        pts = [
            _pt(code="TIP", p=7),
            _pt(code="TIP", p=11),
            _pt(code="STAR", p=7),
        ]
        text = figure_report(pts, "hit_ratio", "Figure 8")
        assert text.count("--") >= 3
        assert "Figure 8" in text
        assert "TIP, P=11" in text and "STAR, P=7" in text

    def test_ablation_columns_are_schemes(self):
        pts = [
            _pt(policy="fbf", scheme_mode="typical", hit_ratio=0.0),
            _pt(policy="fbf", scheme_mode="fbf", hit_ratio=0.3),
        ]
        text = figure_report(pts, "hit_ratio", "Ablation")
        assert "typical" in text


class TestSparklines:
    def test_monotone_series(self):
        from repro.bench.reporting import sparkline

        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        from repro.bench.reporting import sparkline

        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_nan_renders_as_space(self):
        from repro.bench.reporting import sparkline

        assert sparkline([0.0, float("nan"), 1.0]) == "▁ █"

    def test_shared_scale(self):
        from repro.bench.reporting import sparkline

        low = sparkline([1, 2], lo=0, hi=8)
        assert low[0] in "▁▂" and low[1] in "▂▃"

    def test_series_sparklines_layout(self):
        from repro.bench.reporting import series_sparklines

        pts = [
            _pt(policy="lru", cache_mb=8, hit_ratio=0.0),
            _pt(policy="lru", cache_mb=16, hit_ratio=0.1),
            _pt(policy="fbf", cache_mb=8, hit_ratio=0.2),
            _pt(policy="fbf", cache_mb=16, hit_ratio=0.4),
        ]
        text = series_sparklines(pts, "hit_ratio")
        lines = text.splitlines()
        assert lines[0].startswith("lru")
        assert lines[1].startswith("fbf")
        assert lines[1].endswith("█")  # fbf holds the max on the shared scale

    def test_empty_data(self):
        from repro.bench.reporting import series_sparklines

        assert series_sparklines([_pt(hit_ratio=float("nan"))], "hit_ratio") == "(no data)"


class TestTable4Report:
    def test_renders_all_codes_and_ps(self):
        pts = [
            SweepPoint(
                experiment="table4", code=c, p=p, policy="fbf", cache_mb=8,
                overhead_ms=0.1, overhead_percent=1.5,
            )
            for c in ("TIP", "STAR")
            for p in (5, 7)
        ]
        text = table4_report(pts)
        assert "P = 5" in text and "P = 7" in text
        assert "TIP" in text and "STAR" in text
        assert "overhead(ms)" in text and "percent(%)" in text


class TestTable5Report:
    def test_renders_metrics_and_baselines(self):
        result = {
            "hit_ratio": {"fifo": 134.06, "lru": 142.70, "lfu": 247.67, "arc": 63.74},
            "disk_reads": {"fifo": 14.13, "lru": 17.14, "lfu": 22.52, "arc": 12.37},
            "response_time": {"fifo": 24.51, "lru": 24.46, "lfu": 31.39, "arc": 18.02},
            "reconstruction_time": {"fifo": 11.77, "lru": 14.9, "lfu": 13.42, "arc": 12.04},
        }
        text = table5_report(result)
        assert "Hit ratio" in text
        assert "FIFO" in text and "ARC" in text
        assert "247.67%" in text
