"""Tests for the one-shot full report generator."""

from repro.bench import Scale, write_full_report

TINY = Scale(
    n_errors=8,
    workers=4,
    cache_mbs=(0.25, 1.0),
    seed=1,
    codes=("tip",),
    ps_main=(5,),
    ps_tip=(5,),
)


def test_writes_every_report(tmp_path):
    paths = write_full_report(TINY, tmp_path / "report")
    names = {p.name for p in paths}
    assert "INDEX.md" in names
    for expected in (
        "fig8_hit_ratio.txt",
        "fig9_read_ops.txt",
        "fig10_response_time.txt",
        "fig11_reconstruction_time.txt",
        "table4_overhead.txt",
        "table5_max_improvement.txt",
        "ablation_scheme.txt",
        "ablation_demotion.txt",
    ):
        assert expected in names, expected
    for path in paths:
        assert path.exists()
        assert path.read_text().strip()


def test_index_lists_runtimes(tmp_path):
    paths = write_full_report(TINY, tmp_path / "r")
    index = next(p for p in paths if p.name == "INDEX.md")
    text = index.read_text()
    assert "fig8" in text and "table5" in text
    assert "| experiment | file | runtime (s) |" in text


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli-report"
    rc = main([
        "report", "--out", str(out), "--scale", "quick",
        "--errors", "6", "--workers", "2", "--cache-mbs", "0.25,1",
    ])
    assert rc == 0
    assert (out / "INDEX.md").exists()
    assert "wrote" in capsys.readouterr().out
