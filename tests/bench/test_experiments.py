"""Tests for the experiment runners (tiny scales)."""

import math

import pytest

from repro.bench import (
    Scale,
    ablation_demotion,
    ablation_scheme,
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    table4_overhead,
    table5_max_improvement,
)

TINY = Scale(
    n_errors=10,
    workers=4,
    cache_mbs=(0.25, 1.0),
    seed=1,
    codes=("tip",),
    ps_main=(5,),
    ps_tip=(5,),
)


@pytest.fixture(scope="module")
def fig8_points():
    return fig8_hit_ratio(TINY)


@pytest.fixture(scope="module")
def fig10_points():
    return fig10_response_time(TINY)


class TestScale:
    def test_blocks_for(self):
        assert TINY.blocks_for(1.0) == 32
        assert TINY.blocks_for(0.25) == 8


class TestFig8:
    def test_grid_complete(self, fig8_points):
        assert len(fig8_points) == 1 * 1 * 5 * 2  # codes x ps x policies x sizes
        assert all(0.0 <= p.hit_ratio <= 1.0 for p in fig8_points)

    def test_fbf_wins_or_ties_everywhere(self, fig8_points):
        by_cfg = {}
        for p in fig8_points:
            by_cfg.setdefault((p.p, p.cache_mb), {})[p.policy] = p.hit_ratio
        for cfg, vals in by_cfg.items():
            for pol, hr in vals.items():
                assert vals["fbf"] >= hr - 1e-9, (cfg, pol)

    def test_hit_ratio_monotone_in_cache_for_fbf(self, fig8_points):
        fbf = sorted(
            (p.cache_mb, p.hit_ratio) for p in fig8_points if p.policy == "fbf"
        )
        assert fbf[0][1] <= fbf[-1][1] + 1e-9


class TestFig9:
    def test_reads_decrease_with_cache(self):
        pts = fig9_read_ops(TINY)
        for pol in {p.policy for p in pts}:
            series = sorted((p.cache_mb, p.disk_reads) for p in pts if p.policy == pol)
            assert series[-1][1] <= series[0][1]

    def test_tip_only(self):
        assert {p.code for p in fig9_read_ops(TINY)} == {"TIP"}


class TestFig10:
    def test_metrics_populated(self, fig10_points):
        for p in fig10_points:
            assert p.avg_response_time > 0
            assert p.reconstruction_time > 0
            assert not math.isnan(p.overhead_ms)

    def test_fbf_response_time_competitive(self, fig10_points):
        by_cfg = {}
        for p in fig10_points:
            by_cfg.setdefault(p.cache_mb, {})[p.policy] = p.avg_response_time
        for mb, vals in by_cfg.items():
            assert vals["fbf"] <= min(vals.values()) * 1.05, mb


class TestFig11:
    def test_larger_cache_not_slower(self):
        pts = fig11_reconstruction_time(TINY)
        fbf = sorted(
            (p.cache_mb, p.reconstruction_time) for p in pts if p.policy == "fbf"
        )
        assert fbf[-1][1] <= fbf[0][1] * 1.05


class TestTable4:
    def test_one_row_per_code_p(self):
        pts = table4_overhead(TINY)
        assert {(p.code, p.p) for p in pts} == {("TIP", 5)}
        assert all(p.policy == "fbf" for p in pts)
        assert all(p.overhead_ms >= 0 for p in pts)

    def test_overhead_grows_with_p(self):
        scale = Scale(
            n_errors=8, workers=4, cache_mbs=(1.0,), codes=("tip",), ps_tip=(5, 13)
        )
        pts = table4_overhead(scale)
        by_p = {p.p: p.overhead_ms for p in pts}
        assert by_p[13] > by_p[5]


class TestTable5:
    def test_structure_and_positivity(self, fig8_points, fig10_points):
        result = table5_max_improvement(
            TINY,
            fig8=fig8_points,
            fig9=fig9_read_ops(TINY),
            fig10=fig10_points,
            fig11=fig11_reconstruction_time(TINY),
        )
        assert set(result) == {
            "hit_ratio",
            "disk_reads",
            "response_time",
            "reconstruction_time",
        }
        for metric, per_baseline in result.items():
            assert set(per_baseline) == {"fifo", "lru", "lfu", "arc"}
        # the headline: FBF improves hit ratio over every baseline somewhere
        assert all(v > 0 for v in result["hit_ratio"].values())


class TestAblations:
    def test_scheme_ablation_orders_modes(self):
        pts = ablation_scheme(TINY)
        assert {p.scheme_mode for p in pts} == {"typical", "fbf", "greedy"}
        hr = {}
        for p in pts:
            hr.setdefault(p.scheme_mode, []).append(p.hit_ratio)
        # typical recovery shares nothing -> zero hit ratio
        assert max(hr["typical"]) == 0.0
        assert max(hr["fbf"]) > 0.0

    def test_demotion_ablation_labels(self):
        pts = ablation_demotion(TINY)
        assert {p.policy for p in pts} == {"fbf", "fbf-sticky"}
