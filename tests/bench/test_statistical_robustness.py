"""Seed robustness: FBF's win is not workload luck.

Runs the core hit-ratio comparison over several independently-seeded
traces and requires FBF to win (or tie within noise) on *every* seed, and
to win strictly on most — a statistical statement the single-seed
benchmarks cannot make.
"""

import pytest

from repro.codes import make_code
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import ErrorTraceConfig, generate_errors

SEEDS = (1, 7, 42, 1234, 99991)
BASELINES = ("fifo", "lru", "lfu", "arc")


@pytest.mark.parametrize("code_p", [("tip", 7), ("star", 7)])
def test_fbf_wins_across_seeds(code_p):
    code, p = code_p
    layout = make_code(code, p)
    plans = PlanCache(layout, "fbf")
    strict_wins = 0
    for seed in SEEDS:
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=50, seed=seed))
        fbf = simulate_cache_trace(
            layout, errors, policy="fbf", capacity_blocks=96, workers=8,
            plan_cache=plans,
        )
        best_baseline = max(
            simulate_cache_trace(
                layout, errors, policy=b, capacity_blocks=96, workers=8,
                plan_cache=plans,
            ).hit_ratio
            for b in BASELINES
        )
        assert fbf.hit_ratio >= best_baseline - 1e-9, seed
        if fbf.hit_ratio > best_baseline + 0.01:
            strict_wins += 1
    assert strict_wins >= len(SEEDS) - 1, strict_wins


def test_read_savings_stable_across_seeds():
    """The scheme-level saving (unique reads vs typical) is a geometric
    property: its per-seed variation stays small."""
    layout = make_code("tip", 11)
    fractions = []
    for seed in SEEDS:
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=60, seed=seed))
        fbf_plans = PlanCache(layout, "fbf")
        typ_plans = PlanCache(layout, "typical")
        fbf_unique = sum(fbf_plans.get(e)[0].unique_reads for e in errors)
        typ_unique = sum(typ_plans.get(e)[0].unique_reads for e in errors)
        fractions.append(1 - fbf_unique / typ_unique)
    spread = max(fractions) - min(fractions)
    assert all(f > 0.05 for f in fractions)
    assert spread < 0.10
