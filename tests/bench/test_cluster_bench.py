"""Tests for the cluster-recovery CI gate (`repro.bench.cluster_bench`)."""

import copy

from repro.bench.cluster_bench import compare_to_baseline, run_cluster_bench


class TestClusterBench:
    def test_payload_invariants_hold_at_small_scale(self):
        payload = run_cluster_bench(n_errors=4)
        assert all(payload["checks"].values())
        assert len(payload["rows"]) == 8
        assert payload["aggregate"]["traffic_ratio"] > 1.0

    def test_self_comparison_passes_and_drift_fails(self):
        payload = run_cluster_bench(n_errors=4)
        ok, message = compare_to_baseline(payload, payload)
        assert ok, message
        tampered = copy.deepcopy(payload)
        tampered["rows"][0]["cross_rack_bytes"] += 1
        ok, message = compare_to_baseline(tampered, payload)
        assert not ok
        assert "diverged on cross_rack_bytes" in message
