"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--scale", "quick", "--errors", "10", "--cache-mbs", "1,2"]
        )
        assert args.scale == "quick" and args.errors == 10

    def test_removed_flags_are_gone(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--quick"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig9", "--sor-workers", "2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig9", "--workers", "auto"])

    def test_replay_backend_flags(self):
        args = build_parser().parse_args(
            ["bench", "fig8", "--replay-backend", "numpy",
             "--stackdist", "sampled", "--shards-rate", "0.05"]
        )
        assert args.replay_backend == "numpy"
        assert args.stackdist == "sampled"
        assert args.shards_rate == 0.05

    def test_replay_backend_defaults_to_python(self):
        from repro.cli import _engine_config

        args = build_parser().parse_args(["bench", "fig8", "--no-cache"])
        engine = _engine_config(args, default_cache=False)
        assert engine.replay_backend == "python"
        assert engine.stackdist == "exact"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig8", "--replay-backend", "cuda"])


class TestInfo:
    def test_prints_layout(self, capsys):
        assert main(["info", "--code", "tip", "--p", "5"]) == 0
        out = capsys.readouterr().out
        assert "6 disks" in out
        assert "TIP" in out


class TestTrace:
    def test_stdout(self, capsys):
        assert main(["trace", "--errors", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# repro-fbf-trace v1")
        data_lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert len(data_lines) == 5

    def test_file_roundtrips(self, tmp_path):
        from repro.workloads import read_trace

        out = tmp_path / "t.txt"
        assert main(["trace", "--errors", "7", "--out", str(out)]) == 0
        assert len(read_trace(out)) == 7


class TestExperiments:
    def _run(self, capsys, cmd, extra=()):
        rc = main(
            [cmd, "--scale", "quick", "--errors", "6", "--workers", "2",
             "--cache-mbs", "0.25,1", *extra]
        )
        assert rc == 0
        return capsys.readouterr().out

    def test_fig8(self, capsys):
        out = self._run(capsys, "fig8")
        assert "Figure 8" in out and "fbf" in out

    def test_fig9(self, capsys):
        out = self._run(capsys, "fig9")
        assert "Figure 9" in out and "TIP" in out

    def test_table4(self, capsys):
        out = self._run(capsys, "table4")
        assert "Table IV" in out and "overhead(ms)" in out

    def test_ablation_scheme(self, capsys):
        out = self._run(capsys, "ablation-scheme")
        assert "typical" in out


class TestBench:
    _ARGS = ["--scale", "quick", "--errors", "6", "--workers", "2",
             "--cache-mbs", "0.25,1"]

    def test_writes_bench_json(self, capsys, tmp_path):
        import json

        from repro.bench.engine import _reset_worker_state

        _reset_worker_state()  # warm memos would zero the plan-cache delta
        rc = main(["bench", "fig9", *self._ARGS, "--engine-workers", "0",
                   "--no-cache", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "wall time" in out
        payload = json.loads((tmp_path / "BENCH_fig9.json").read_text())
        assert payload["experiment"] == "fig9"
        assert payload["workers"] == 0
        assert payload["n_points"] == len(payload["per_point"]) > 0
        assert payload["plan_cache_misses"] > 0

    def test_check_serial_reports_identical(self, capsys, tmp_path):
        rc = main(["bench", "fig8", *self._ARGS, "--engine-workers", "2",
                   "--no-cache", "--check-serial", "--out", str(tmp_path)])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_warm_cache_recomputes_nothing(self, capsys, tmp_path):
        import json

        cache = tmp_path / "cache"
        args = ["bench", "fig9", *self._ARGS, "--engine-workers", "0",
                "--cache-dir", str(cache), "--out", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        payload = json.loads((tmp_path / "BENCH_fig9.json").read_text())
        assert payload["cache_misses"] == 0
        assert payload["cache_hits"] == payload["n_points"]

    def test_show_prints_report(self, capsys, tmp_path):
        rc = main(["bench", "ablation-scheme", *self._ARGS,
                   "--engine-workers", "0", "--no-cache", "--show",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert "typical" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCluster:
    def test_scenario_table(self, capsys):
        assert main(["cluster", "--errors", "4"]) == 0
        out = capsys.readouterr().out
        assert "cross-rack recovery" in out
        for token in ("healthy", "limplock", "rep", "fbf", "rack0.uplink"):
            assert token in out

    def test_bench_cluster_show(self, capsys, tmp_path):
        rc = main(["bench", "cluster", "--scale", "quick", "--errors", "4",
                   "--engine-workers", "0", "--no-cache", "--show",
                   "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EC decode vs replication" in out
        assert "limplocked node" in out
        assert (tmp_path / "BENCH_cluster.json").exists()


class TestObsCommand:
    def test_summary_covers_layers(self, capsys, tmp_path):
        rc = main(["obs", "fig8", "--scale", "quick", "--errors", "6",
                   "--workers", "2", "--cache-mbs", "0.25,1",
                   "--jsonl", str(tmp_path / "obs.jsonl"),
                   "--prometheus", str(tmp_path / "obs.prom")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability summary" in out
        for layer in ("[kernel]", "[engine]", "[bench]"):
            assert layer in out
        assert "(no data)" not in out
        assert "engine.plan_cache" in out
        jsonl = (tmp_path / "obs.jsonl").read_text().splitlines()
        assert len(jsonl) > 3
        prom = (tmp_path / "obs.prom").read_text()
        assert "repro_bench_points" in prom

    def test_no_kernel_probe(self, capsys):
        rc = main(["obs", "fig8", "--scale", "quick", "--errors", "6",
                   "--workers", "2", "--cache-mbs", "0.25,1",
                   "--no-kernel-probe"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(no data)" in out  # kernel section stays empty but visible

    def test_obs_left_disabled_after_run(self, capsys):
        from repro.obs import runtime

        assert main(["obs", "fig8", "--scale", "quick", "--errors", "6",
                     "--workers", "2", "--cache-mbs", "0.25,1",
                     "--no-kernel-probe"]) == 0
        assert runtime.ENABLED is False


class TestReplay:
    def test_replays_all_policies(self, capsys, tmp_path):
        trace = tmp_path / "t.trace"
        main(["trace", "--errors", "10", "--out", str(trace)])
        capsys.readouterr()
        assert main(["replay", str(trace), "--blocks", "32", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        for policy in ("fbf", "lru", "arc", "mq"):
            assert policy in out


class TestMttdl:
    def test_reports_gain(self, capsys):
        assert main(["mttdl", "--baseline-hours", "10",
                     "--improved-hours", "8.51"]) == 0
        out = capsys.readouterr().out
        assert "14.9% smaller" in out
        assert "MTTDL" in out


class TestLRC:
    def test_sweep(self, capsys):
        assert main(["lrc", "--events", "30", "--blocks", "8,32"]) == 0
        out = capsys.readouterr().out
        assert "LRC(12,2,2)" in out
        assert "fbf" in out


class TestVerify:
    def test_grid_reports_bit_exact(self, capsys):
        assert main(["verify", "--errors", "3"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "STAR" in out and "TIP" in out


class TestRebuild:
    def test_savings_table(self, capsys):
        assert main(["rebuild", "--p", "5", "--stripes", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "typical" in out and "greedy" in out
        assert "saved" in out
        assert "timed rebuild" in out
