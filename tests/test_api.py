"""The ``repro.api`` facade: exports, conveniences, deprecation shims."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro
from repro import api


_SMALL = None


def _small_grid():
    global _SMALL
    if _SMALL is None:
        scale = replace(api.QUICK, n_errors=6, workers=2, cache_mbs=(0.25, 1.0))
        _SMALL = api.experiment_grid("fig8", scale)
    return _SMALL


class TestSurface:
    def test_every_declared_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_lazy_package_attributes(self):
        assert repro.api is api
        assert repro.obs is api.obs
        assert "api" in repro.__all__ and "obs" in repro.__all__

    def test_registries_reachable(self):
        assert "tip" in api.available_backends()
        assert "fbf" in api.available_policies()
        assert "star" in api.available_codes()


class TestRunGridFacade:
    def test_engine_config_passthrough(self):
        engine = api.EngineConfig(workers=0, cache_dir=None)
        result = api.run_grid(_small_grid(), engine)
        assert result.n_points == len(_small_grid())

    def test_conveniences_assemble_a_config(self):
        base = api.run_grid(_small_grid())
        conv = api.run_grid(_small_grid(), engine_workers=0, batch=False)
        assert conv.points == base.points

    def test_mixing_engine_and_conveniences_raises(self):
        with pytest.raises(TypeError, match="not both"):
            api.run_grid(_small_grid(), api.EngineConfig(), engine_workers=0)

    def test_config_kwarg_removed(self):
        engine = api.EngineConfig(workers=0, cache_dir=None)
        with pytest.raises(TypeError):
            api.run_grid(_small_grid(), config=engine)

    def test_cluster_names_reachable(self):
        report = api.run_cluster_recovery(api.ClusterSpec(n_errors=2))
        assert isinstance(report, api.ClusterReport)
        assert report.redundancy == "ec"
        assert report.cross_rack_bytes > 0
        assert api.TopologySpec().num_nodes == 1
        points = api.cluster_grid(api.QUICK)
        assert {p.redundancy for p in points} == {"ec", "rep"}


class TestSimulationNames:
    def test_simulate_trace_via_facade(self):
        backend = api.make_backend("tip", 7)
        events = backend.generate_events(8, 11)
        row = api.simulate_trace(
            backend, events, policy="fbf", capacity_blocks=64, workers=4
        )
        assert isinstance(row, api.TraceSimResult)
        assert 0.0 <= row.hit_ratio <= 1.0

    def test_grid_pass_via_facade(self):
        backend = api.make_backend("tip", 7)
        events = backend.generate_events(8, 11)
        configs = [
            api.ReplayConfig(policy="lru", capacity_blocks=c, workers=2)
            for c in (16, 64)
        ]
        rows = api.simulate_grid_pass(backend, events, configs)
        assert len(rows) == 2
