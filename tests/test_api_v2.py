"""The versioned facade: v2 namespaces own the names, v1 warns and forwards.

Satellite contracts of the api redesign (DESIGN.md §17):

* every v1 ``repro.api`` name emits exactly one ``DeprecationWarning``
  and resolves to *the same object* the v2 namespace exports;
* :class:`repro.api.v2.bench.GridRequest` is frozen and rejects unknown
  keys eagerly;
* each v2 namespace has its own committed API001 manifest.
"""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.api import v2
from repro.api.v2 import bench, cluster, replay, serve
from repro.checks.program_rules import V2_NAMESPACES, default_manifest_path


def _v2_object(name: str):
    module_name, attr = api._V2_HOMES[name]
    if attr is None:
        import importlib

        return importlib.import_module(module_name)
    namespace = module_name.rsplit(".", 1)[1]
    return getattr({"replay": replay, "bench": bench, "cluster": cluster,
                    "serve": serve}.get(namespace), attr)


class TestDeprecationShim:
    def test_every_v1_name_warns_once_and_resolves_to_v2(self):
        for name in api.__all__:
            api._warned.discard(name)  # re-arm: other tests may have tripped it
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = getattr(api, name)
                second = getattr(api, name)
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1, name  # exactly once, not per access
            assert name in str(deprecations[0].message)
            assert first is second
            assert first is _v2_object(name), name

    def test_shim_surface_is_exactly_the_v1_names(self):
        assert len(api.__all__) == len(set(api.__all__))
        assert set(api._V2_HOMES) == set(api.__all__)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            api.no_such_export

    def test_v2_namespaces_importable_without_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert replay.simulate_trace is not None
            assert bench.run_grid is not None
            assert cluster.run_cluster_recovery is not None
            assert serve.CacheAdvisor is not None
            assert v2.obs is not None
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestGridRequest:
    def test_frozen(self):
        request = bench.GridRequest(points=())
        with pytest.raises(AttributeError):
            request.batch = False

    def test_unknown_key_rejected_eagerly(self):
        with pytest.raises(TypeError, match="unknown GridRequest key.*typo_key"):
            bench.GridRequest.from_mapping({"points": (), "typo_key": 1})

    def test_mixing_engine_and_conveniences_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            bench.GridRequest(
                points=(), engine=bench.EngineConfig(), engine_workers=0
            )

    def test_run_grid_accepts_request_and_v1_shape_identically(self):
        grid = tuple(bench.experiment_grid("fig8", bench.QUICK))[:2]
        via_request = bench.run_grid(
            bench.GridRequest(points=grid, engine_workers=0, batch=False)
        )
        via_kwargs = bench.run_grid(grid, engine_workers=0, batch=False)
        assert bench.rows_equivalent(via_request.points, via_kwargs.points)

    def test_options_alongside_request_rejected(self):
        with pytest.raises(TypeError, match="inside the GridRequest"):
            bench.run_grid(bench.GridRequest(points=()), engine_workers=0)

    def test_resolved_engine_defaults(self):
        assert bench.GridRequest(points=()).resolved_engine() is None
        resolved = bench.GridRequest(points=(), engine_workers=0).resolved_engine()
        assert resolved is not None
        assert resolved.workers == 0


class TestManifests:
    def test_each_namespace_has_a_committed_manifest(self):
        for namespace, module in V2_NAMESPACES.items():
            path = default_manifest_path(namespace)
            assert path.is_file(), f"missing manifest for {namespace}"
            text = path.read_text(encoding="utf-8")
            assert module in text.splitlines()[0]

    def test_manifests_cover_each_namespace_all(self):
        import importlib

        for namespace, module_name in V2_NAMESPACES.items():
            module = importlib.import_module(module_name)
            path = default_manifest_path(namespace)
            committed = {
                line.split("=")[0].strip()
                for line in path.read_text(encoding="utf-8").splitlines()
                if line.strip() and not line.startswith("#")
            }
            assert committed == set(module.__all__), namespace

    def test_unknown_namespace_rejected(self):
        with pytest.raises(KeyError):
            default_manifest_path("nope")
