"""The obs overhead contract: enabling instrumentation never changes rows.

Every simulated value — hit ratios, disk reads, virtual-time metrics —
must be bit-identical with observability on and off; obs may only add
wall-clock cost (bounded separately by the replay-bench time gate).
"""

from __future__ import annotations

from dataclasses import replace

from repro import api
from repro.obs import runtime


def _small_scale():
    return replace(api.QUICK, n_errors=6, workers=2, cache_mbs=(0.25, 1.0))


def _fig8_rows():
    grid = api.experiment_grid("fig8", _small_scale())
    return api.run_grid(grid).points


class TestRowEquality:
    def test_fig8_grid_rows_identical(self):
        runtime.disable()
        rows_off = _fig8_rows()
        runtime.enable(fresh=True)
        rows_on = _fig8_rows()
        runtime.disable()
        assert rows_on == rows_off

    def test_simulate_trace_identical(self):
        backend = api.make_backend("tip", 7)
        events = backend.generate_events(12, 42)
        kwargs = dict(policy="fbf", capacity_blocks=64, workers=4)
        runtime.disable()
        row_off = api.simulate_trace(backend, events, **kwargs)
        runtime.enable(fresh=True)
        row_on = api.simulate_trace(backend, events, **kwargs)
        runtime.disable()
        assert row_on == row_off

    def test_grid_pass_identical(self):
        backend = api.make_backend("star", 5)
        events = backend.generate_events(10, 7)
        configs = [
            api.ReplayConfig(policy=policy, capacity_blocks=cap, workers=2)
            for policy in ("fbf", "lru", "arc")
            for cap in (16, 64)
        ]
        runtime.disable()
        rows_off = api.simulate_grid_pass(backend, events, configs)
        runtime.enable(fresh=True)
        rows_on = api.simulate_grid_pass(backend, events, configs)
        runtime.disable()
        assert rows_on == rows_off

    def test_timed_kernel_replay_identical(self):
        from repro.engine.timed import run_timed_replay
        from repro.sim import SimConfig

        backend = api.make_backend("tip", 7)
        events = backend.generate_events(6, 3)
        config = SimConfig(workers=4)
        runtime.disable()
        rep_off = run_timed_replay(backend, events, config)
        runtime.enable(fresh=True)
        rep_on = run_timed_replay(backend, events, config)
        runtime.disable()
        assert rep_on.hit_ratio == rep_off.hit_ratio
        assert rep_on.disk_reads == rep_off.disk_reads
        assert rep_on.reconstruction_time == rep_off.reconstruction_time
        assert rep_on.avg_response_time == rep_off.avg_response_time


class TestCollectedMetrics:
    def test_grid_run_populates_engine_and_bench_layers(self):
        from repro.bench.engine import _reset_worker_state

        _reset_worker_state()  # warm memos would hide all plan-cache work
        registry = runtime.enable(fresh=True)
        result = api.run_grid(api.experiment_grid("fig8", _small_scale()))
        runtime.disable()
        snap = registry.snapshot()
        assert snap["counters"]["bench.points"] == result.n_points
        assert snap["counters"]["engine.grid.configs"] == result.n_points
        assert snap["counters"]["engine.plan_cache.misses"] > 0
        assert snap["counters"]["bench.plan_cache.misses"] == (
            result.plan_cache_misses
        )
        assert "bench.run_grid" in snap["spans"]
        assert "engine.grid_pass" in snap["spans"]
        assert snap["histograms"]["bench.point_seconds"]["count"] == result.n_points

    def test_kernel_run_populates_kernel_layer(self):
        from repro.engine.timed import run_timed_replay
        from repro.sim import SimConfig

        backend = api.make_backend("tip", 7)
        events = backend.generate_events(6, 3)
        registry = runtime.enable(fresh=True)
        run_timed_replay(backend, events, SimConfig(workers=4))
        runtime.disable()
        snap = registry.snapshot()
        assert snap["counters"]["kernel.events_dispatched"] > 0
        assert snap["counters"]["kernel.runs"] >= 1
        assert "kernel.run" in snap["spans"]
        # SOR workers contend for disks, so some requests must queue.
        assert snap["histograms"]["kernel.resource.wait_vtime"]["count"] > 0

    def test_plan_cache_counts_surface_through_run_grid(self):
        from repro.bench.engine import _reset_worker_state

        runtime.disable()
        _reset_worker_state()
        result = api.run_grid(api.experiment_grid("fig8", _small_scale()))
        assert result.plan_cache_hits + result.plan_cache_misses > 0
