"""Exporter tests: JSONL schema and Prometheus text format."""

from __future__ import annotations

import json

from repro.obs import MetricRegistry, to_prometheus, write_jsonl
from repro.obs.export import jsonl_records


def _populated_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("engine.replays").inc(3)
    reg.gauge("bench.workers").set(2)
    hist = reg.histogram("bench.point_seconds")
    hist.observe(0.002)
    hist.observe(0.2)
    with reg.span("engine.simulate_trace", {"code": "TIP"}):
        pass
    return reg


class TestJsonl:
    def test_records_cover_every_kind(self):
        records = jsonl_records(_populated_registry())
        kinds = {record["type"] for record in records}
        assert kinds == {"meta", "counter", "gauge", "histogram",
                         "span_summary", "span"}

    def test_file_is_valid_jsonl(self, tmp_path):
        path = write_jsonl(_populated_registry(), tmp_path / "obs.jsonl")
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        counter = next(r for r in parsed if r["type"] == "counter")
        assert counter == {"type": "counter", "name": "engine.replays", "value": 3}
        span = next(r for r in parsed if r["type"] == "span")
        assert span["attrs"] == {"code": "TIP"}


class TestPrometheus:
    def test_names_are_mangled_with_prefix(self):
        text = to_prometheus(_populated_registry())
        assert "repro_engine_replays 3" in text
        assert "repro_bench_workers 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(_populated_registry())
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_bench_point_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert lines[-1].startswith('repro_bench_point_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 2
        assert "repro_bench_point_seconds_count 2" in text

    def test_span_aggregates_exported(self):
        text = to_prometheus(_populated_registry())
        assert "repro_span_engine_simulate_trace_seconds_total" in text
        assert "repro_span_engine_simulate_trace_count 1" in text
