"""Obs tests must never leak an enabled registry into other tests."""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def obs_disabled_after():
    yield
    runtime.disable()
