"""Unit tests for the metric primitives and the runtime switch."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    render_summary,
)
from repro.obs import runtime


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_gauge(self):
        g = Gauge("x")
        g.set(2.5)
        g.inc()
        g.dec(0.5)
        assert g.snapshot() == 3.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["counts"] == [1, 1, 1]  # <=1, <=10, overflow
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(55.5 / 3)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(2.0, 1.0))

    def test_quantile_interpolates_within_observed_range(self):
        h = Histogram("x", bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 3.5, 6.0):
            h.observe(value)
        assert h.quantile(0.0) == 0.5  # clamped to the observed min
        assert h.quantile(1.0) == 6.0  # ... and max
        for q in (0.25, 0.5, 0.9, 0.99):
            assert 0.5 <= h.quantile(q) <= 6.0
        assert h.quantile(0.5) <= h.quantile(0.99)  # monotone

    def test_quantile_overflow_bucket_reports_max(self):
        h = Histogram("x", bounds=(1.0,))
        for value in (50.0, 60.0, 70.0):
            h.observe(value)
        assert h.quantile(0.99) == 70.0

    def test_quantile_edge_cases(self):
        h = Histogram("x")
        import math

        assert math.isnan(h.quantile(0.5))  # empty
        with pytest.raises(ValueError):
            h.quantile(1.5)
        h.observe(2.0)
        assert h.quantile(0.99) == 2.0

    def test_snapshot_carries_p99(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        assert h.snapshot()["p99"] is None
        h.observe(5.0)
        assert h.snapshot()["p99"] == h.quantile(0.99)

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc()
        NULL_METRIC.dec()
        NULL_METRIC.set(1)
        NULL_METRIC.observe(2)
        NULL_METRIC["attr"] = "value"
        with NULL_METRIC as span:
            assert span is NULL_METRIC


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_span_records_aggregate_and_attrs(self):
        reg = MetricRegistry()
        with reg.span("phase", {"k": 1}) as span:
            span["extra"] = "v"
        snap = reg.snapshot()
        assert snap["spans"]["phase"]["count"] == 1
        assert snap["spans"]["phase"]["total_s"] >= 0
        assert reg.spans[0].attrs == {"k": 1, "extra": "v"}

    def test_span_retention_cap(self):
        reg = MetricRegistry(max_spans=2)
        for _ in range(5):
            with reg.span("phase"):
                pass
        assert len(reg.spans) == 2
        assert reg.spans_dropped == 3
        assert reg.snapshot()["spans"]["phase"]["count"] == 5  # aggregate unbounded


class TestRuntime:
    def test_disabled_returns_null(self):
        runtime.disable()
        assert runtime.counter("x") is NULL_METRIC
        assert runtime.span("x") is NULL_METRIC
        assert not runtime.enabled()

    def test_enable_fresh_resets(self):
        reg = runtime.enable(fresh=True)
        runtime.counter("x").inc()
        assert runtime.enabled() and runtime.ENABLED
        reg2 = runtime.enable(fresh=True)
        assert reg2 is not reg
        assert reg2.snapshot()["counters"] == {}

    def test_disable_keeps_registry_for_export(self):
        reg = runtime.enable(fresh=True)
        runtime.counter("x").inc()
        runtime.disable()
        assert runtime.registry() is reg
        assert reg.snapshot()["counters"]["x"] == 1


class TestSummary:
    def test_layer_sections_always_present(self):
        reg = MetricRegistry()
        reg.counter("engine.replays").inc()
        text = render_summary(reg.snapshot())
        assert "[kernel]" in text and "[engine]" in text and "[bench]" in text
        assert "(no data)" in text  # kernel and bench are empty
        assert "engine.replays" in text
