"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import Encoder, make_code
from repro.codes.registry import available_codes

ALL_CODES = available_codes()
SMALL_PRIMES = (3, 5, 7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=ALL_CODES)
def code_name(request) -> str:
    return request.param


@pytest.fixture(params=SMALL_PRIMES)
def prime(request) -> int:
    return request.param


@pytest.fixture
def layout(code_name, prime):
    return make_code(code_name, prime)


@pytest.fixture
def tip7():
    """The paper's running example: TIP with p=7 (8 disks)."""
    return make_code("tip", 7)


@pytest.fixture
def star5():
    return make_code("star", 5)


@pytest.fixture
def encoded_stripe(layout, rng):
    """(layout, stripe) pair with random encoded payloads."""
    return layout, Encoder(layout).random_stripe(32, rng)
