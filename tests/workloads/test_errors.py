"""Tests for partial-stripe-error generation."""

import numpy as np
import pytest

from repro.workloads import ErrorTraceConfig, PartialStripeError, generate_errors


class TestPartialStripeError:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartialStripeError(time=-1, stripe=0, disk=0, start_row=0, length=1)
        with pytest.raises(ValueError):
            PartialStripeError(time=0, stripe=0, disk=0, start_row=0, length=0)
        with pytest.raises(ValueError):
            PartialStripeError(time=0, stripe=-1, disk=0, start_row=0, length=1)

    def test_cells(self, tip7):
        e = PartialStripeError(time=0, stripe=3, disk=2, start_row=1, length=3)
        assert e.cells(tip7) == ((1, 2), (2, 2), (3, 2))

    def test_cells_bounds_checked(self, tip7):
        e = PartialStripeError(time=0, stripe=0, disk=2, start_row=4, length=4)
        with pytest.raises(ValueError, match="exceed"):
            e.cells(tip7)
        e = PartialStripeError(time=0, stripe=0, disk=99, start_row=0, length=1)
        with pytest.raises(ValueError, match="disks"):
            e.cells(tip7)

    def test_shape_ignores_stripe_and_time(self):
        a = PartialStripeError(time=1, stripe=10, disk=2, start_row=1, length=3)
        b = PartialStripeError(time=9, stripe=77, disk=2, start_row=1, length=3)
        assert a.shape == b.shape

    def test_ordering_by_time(self):
        a = PartialStripeError(time=5, stripe=0, disk=0, start_row=0, length=1)
        b = PartialStripeError(time=2, stripe=9, disk=0, start_row=0, length=1)
        assert sorted([a, b])[0] is b


class TestErrorTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorTraceConfig(n_errors=0)
        with pytest.raises(ValueError):
            ErrorTraceConfig(n_errors=10, array_stripes=5)
        with pytest.raises(ValueError):
            ErrorTraceConfig(spatial_locality=1.5)
        with pytest.raises(ValueError):
            ErrorTraceConfig(neighbor_distance=0)
        with pytest.raises(ValueError):
            ErrorTraceConfig(burst_gap=0)


class TestGenerateErrors:
    def test_count_and_sorted_times(self, tip7):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=50, seed=0))
        assert len(errors) == 50
        times = [e.time for e in errors]
        assert times == sorted(times)

    def test_deterministic_for_seed(self, tip7):
        cfg = ErrorTraceConfig(n_errors=30, seed=5)
        assert generate_errors(tip7, cfg) == generate_errors(tip7, cfg)

    def test_different_seeds_differ(self, tip7):
        a = generate_errors(tip7, ErrorTraceConfig(n_errors=30, seed=1))
        b = generate_errors(tip7, ErrorTraceConfig(n_errors=30, seed=2))
        assert a != b

    def test_one_error_per_stripe(self, tip7):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=200, seed=0))
        stripes = [e.stripe for e in errors]
        assert len(stripes) == len(set(stripes))

    def test_sizes_within_paper_bounds(self, layout):
        """Sizes in [1 chunk, (p-1) chunks], rows fit the stripe."""
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=100, seed=0))
        for e in errors:
            assert 1 <= e.length <= layout.rows
            assert e.start_row + e.length <= layout.rows
            assert 0 <= e.disk < layout.num_disks
            e.cells(layout)  # must not raise

    def test_spatial_locality_observable(self, tip7):
        near_cfg = ErrorTraceConfig(
            n_errors=300, seed=0, spatial_locality=0.9, neighbor_distance=10
        )
        far_cfg = ErrorTraceConfig(
            n_errors=300, seed=0, spatial_locality=0.0, neighbor_distance=10
        )

        def near_fraction(errors):
            count = 0
            for prev, cur in zip(errors, errors[1:]):
                if abs(cur.stripe - prev.stripe) <= 10:
                    count += 1
            return count / (len(errors) - 1)

        assert near_fraction(generate_errors(tip7, near_cfg)) > 0.5
        assert near_fraction(generate_errors(tip7, far_cfg)) < 0.1

    def test_temporal_bursts(self, tip7):
        cfg = ErrorTraceConfig(
            n_errors=300, seed=0, burst_gap=1000.0, intra_burst_gap=0.1
        )
        errors = generate_errors(tip7, cfg)
        gaps = np.diff([e.time for e in errors])
        assert (gaps < 1.0).sum() > (gaps > 100.0).sum()

    def test_all_sizes_appear(self, tip7):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=300, seed=0))
        assert {e.length for e in errors} == set(range(1, tip7.rows + 1))
