"""Tests for the foreground application workload generator."""

import pytest

from repro.workloads import AppWorkloadConfig, generate_app_requests


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AppWorkloadConfig(n_requests=0)
        with pytest.raises(ValueError):
            AppWorkloadConfig(zipf_s=1.0)
        with pytest.raises(ValueError):
            AppWorkloadConfig(working_set=0)
        with pytest.raises(ValueError):
            AppWorkloadConfig(interarrival=0)


class TestGeneration:
    def test_count_and_ordering(self, tip7):
        reqs = generate_app_requests(tip7, AppWorkloadConfig(n_requests=200))
        assert len(reqs) == 200
        times = [r.time for r in reqs]
        assert times == sorted(times)

    def test_deterministic(self, tip7):
        cfg = AppWorkloadConfig(n_requests=100, seed=3)
        assert generate_app_requests(tip7, cfg) == generate_app_requests(tip7, cfg)

    def test_requests_target_data_cells(self, tip7):
        reqs = generate_app_requests(tip7, AppWorkloadConfig(n_requests=150))
        data = set(tip7.data_cells)
        assert all(r.cell in data for r in reqs)

    def test_popularity_skew(self, tip7):
        """Zipf popularity: the hottest stripe dominates."""
        reqs = generate_app_requests(
            tip7, AppWorkloadConfig(n_requests=2000, zipf_s=1.5, working_set=64)
        )
        from collections import Counter

        counts = Counter(r.stripe for r in reqs)
        top = counts.most_common(1)[0][1]
        assert top > len(reqs) / 10

    def test_stripes_within_array(self, tip7):
        cfg = AppWorkloadConfig(n_requests=300, array_stripes=1000)
        reqs = generate_app_requests(tip7, cfg)
        assert all(0 <= r.stripe < 1000 for r in reqs)

    def test_sequential_runs_present(self, tip7):
        reqs = generate_app_requests(tip7, AppWorkloadConfig(n_requests=300))
        same_time_pairs = sum(
            1 for a, b in zip(reqs, reqs[1:]) if a.time == b.time and a.stripe == b.stripe
        )
        assert same_time_pairs > 0
