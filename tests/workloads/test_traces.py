"""Tests for trace file round-tripping and validation."""

import io

import pytest

from repro.workloads import (
    ErrorTraceConfig,
    TraceFormatError,
    generate_errors,
    read_trace,
    write_trace,
)


@pytest.fixture
def errors(tip7):
    return generate_errors(tip7, ErrorTraceConfig(n_errors=30, seed=11))


class TestRoundTrip:
    def test_via_path(self, errors, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, errors, metadata={"code": "tip", "p": "7"})
        loaded = read_trace(path)
        assert [e.shape for e in loaded] == [e.shape for e in errors]
        assert [e.stripe for e in loaded] == [e.stripe for e in errors]
        assert all(
            abs(a.time - b.time) < 1e-6 for a, b in zip(loaded, errors)
        )

    def test_via_stream(self, errors):
        buf = io.StringIO()
        write_trace(buf, errors)
        buf.seek(0)
        assert len(read_trace(buf)) == len(errors)

    def test_metadata_is_comment_only(self, errors):
        buf = io.StringIO()
        write_trace(buf, errors, metadata={"hello": "world"})
        text = buf.getvalue()
        assert "# hello=world" in text


class TestValidation:
    def test_bad_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            read_trace(io.StringIO("not a trace\n"))

    def test_wrong_field_count(self):
        body = "# repro-fbf-trace v1\n1.0 2 3\n"
        with pytest.raises(TraceFormatError, match="5 fields"):
            read_trace(io.StringIO(body))

    def test_non_numeric_field(self):
        body = "# repro-fbf-trace v1\nabc 1 2 3 4\n"
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(io.StringIO(body))

    def test_semantic_validation_applied(self):
        body = "# repro-fbf-trace v1\n1.0 5 0 0 0\n"  # length 0
        with pytest.raises(TraceFormatError, match="length"):
            read_trace(io.StringIO(body))

    def test_blank_lines_and_comments_skipped(self):
        body = "# repro-fbf-trace v1\n\n# comment\n1.0 5 0 0 1\n"
        assert len(read_trace(io.StringIO(body))) == 1

    def test_empty_trace(self):
        assert read_trace(io.StringIO("# repro-fbf-trace v1\n")) == []
