"""Tests for field-calibrated error workloads."""

import numpy as np
import pytest

from repro.workloads import (
    FieldModel,
    expected_error_count,
    generate_field_trace,
)


class TestFieldModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FieldModel(lse_disk_fraction=0.0)
        with pytest.raises(ValueError):
            FieldModel(lse_disk_fraction=1.0)
        with pytest.raises(ValueError):
            FieldModel(study_months=0)
        with pytest.raises(ValueError):
            FieldModel(events_per_affected_disk=0.5)
        with pytest.raises(ValueError):
            FieldModel(spatial_locality=2.0)

    def test_rate_calibration(self):
        """P(>=1 onset over the study window) == lse_disk_fraction."""
        model = FieldModel(events_per_affected_disk=1.0)
        days = model.study_months * 30.44
        p = 1.0 - np.exp(-model.per_disk_event_rate_per_day * days)
        assert p == pytest.approx(model.lse_disk_fraction, rel=1e-9)

    def test_reoccurrence_scales_rate(self):
        base = FieldModel(events_per_affected_disk=1.0)
        triple = FieldModel(events_per_affected_disk=3.0)
        assert triple.per_disk_event_rate_per_day == pytest.approx(
            3 * base.per_disk_event_rate_per_day
        )


class TestExpectedErrorCount:
    def test_linear_in_disks_and_time(self):
        m = FieldModel()
        assert expected_error_count(m, 16, 100) == pytest.approx(
            2 * expected_error_count(m, 8, 100)
        )
        assert expected_error_count(m, 8, 200) == pytest.approx(
            2 * expected_error_count(m, 8, 100)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_error_count(FieldModel(), 0, 100)
        with pytest.raises(ValueError):
            expected_error_count(FieldModel(), 8, 0)


class TestGenerateFieldTrace:
    def test_deterministic(self, tip7):
        a = generate_field_trace(tip7, duration_days=400, seed=1)
        b = generate_field_trace(tip7, duration_days=400, seed=1)
        assert a == b

    def test_sorted_and_valid(self, tip7):
        errors = generate_field_trace(tip7, duration_days=2000, seed=2)
        times = [e.time for e in errors]
        assert times == sorted(times)
        for e in errors:
            e.cells(tip7)  # validates geometry

    def test_count_matches_expectation(self, tip7):
        """Over a long window the sampled count approaches the model's
        expectation (one long window ~ many short ones)."""
        model = FieldModel()
        days = 500_000.0  # expected ~430 events -> Poisson sigma ~ 4.8%
        errors = generate_field_trace(
            tip7, duration_days=days, array_stripes=10**7, model=model, seed=3
        )
        expected = expected_error_count(model, tip7.num_disks, days)
        assert len(errors) == pytest.approx(expected, rel=0.15)

    def test_spatial_locality_present(self, tip7):
        model = FieldModel(spatial_locality=0.9)
        errors = generate_field_trace(
            tip7, duration_days=300_000, array_stripes=10**6, model=model, seed=4
        )
        by_disk: dict[int, list[int]] = {}
        for e in errors:
            by_disk.setdefault(e.disk, []).append(e.stripe)
        near = total = 0
        for stripes in by_disk.values():
            for a, b in zip(stripes, stripes[1:]):
                total += 1
                if abs(a - b) <= model.neighbor_distance:
                    near += 1
        assert total > 20
        assert near / total > 0.5

    def test_one_error_per_stripe(self, tip7):
        errors = generate_field_trace(tip7, duration_days=50_000, seed=5)
        stripes = [e.stripe for e in errors]
        assert len(stripes) == len(set(stripes))

    def test_feeds_simulator(self, tip7):
        from repro.sim import simulate_cache_trace

        errors = generate_field_trace(tip7, duration_days=30_000, seed=6)
        if errors:
            res = simulate_cache_trace(tip7, errors, policy="fbf",
                                       capacity_blocks=32)
            assert res.requests > 0
