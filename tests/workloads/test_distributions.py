"""Tests for error-size distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import SizeDistribution


class TestUniform:
    def test_within_bounds(self):
        dist = SizeDistribution("uniform")
        rng = np.random.default_rng(0)
        samples = [dist.sample(6, rng) for _ in range(500)]
        assert min(samples) >= 1 and max(samples) <= 6

    def test_covers_full_range(self):
        dist = SizeDistribution("uniform")
        rng = np.random.default_rng(0)
        samples = {dist.sample(4, rng) for _ in range(500)}
        assert samples == {1, 2, 3, 4}

    def test_mean_matches_paper(self):
        """Paper: average size is (p-1)/2 chunks for a (p-1)-row stripe."""
        assert SizeDistribution("uniform").mean(12) == pytest.approx(6.5)

    def test_empirical_mean_near_half_stripe(self):
        dist = SizeDistribution("uniform")
        rng = np.random.default_rng(1)
        samples = [dist.sample(12, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(6.5, abs=0.3)


class TestFixed:
    def test_constant(self):
        dist = SizeDistribution("fixed", parameter=3)
        rng = np.random.default_rng(0)
        assert all(dist.sample(6, rng) == 3 for _ in range(10))

    def test_out_of_range_rejected(self):
        dist = SizeDistribution("fixed", parameter=9)
        with pytest.raises(ValueError):
            dist.sample(6, np.random.default_rng(0))

    def test_mean(self):
        assert SizeDistribution("fixed", parameter=3).mean(6) == 3.0


class TestGeometric:
    def test_within_bounds(self):
        dist = SizeDistribution("geometric", parameter=2.0)
        rng = np.random.default_rng(0)
        samples = [dist.sample(6, rng) for _ in range(500)]
        assert min(samples) >= 1 and max(samples) <= 6

    def test_skews_small(self):
        dist = SizeDistribution("geometric", parameter=2.0)
        rng = np.random.default_rng(0)
        samples = [dist.sample(12, rng) for _ in range(2000)]
        assert np.mean(samples) < 6.5  # well below uniform's mean


def test_unknown_kind():
    with pytest.raises(ValueError):
        SizeDistribution("weird").sample(4, np.random.default_rng(0))
    with pytest.raises(ValueError):
        SizeDistribution("weird").mean(4)


def test_max_size_validation():
    with pytest.raises(ValueError):
        SizeDistribution().sample(0, np.random.default_rng(0))


@given(st.sampled_from(["uniform", "geometric"]), st.integers(1, 20), st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_samples_always_in_range(kind, max_size, seed):
    dist = SizeDistribution(kind, parameter=2.0)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        assert 1 <= dist.sample(max_size, rng) <= max_size
