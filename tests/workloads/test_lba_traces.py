"""Tests for the byte-extent to partial-stripe-error adapter."""

import pytest

from repro.workloads import ByteExtentError, extents_to_errors

CHUNK = 32 * 1024


class TestValidation:
    def test_extent_fields(self):
        with pytest.raises(ValueError):
            ByteExtentError(time=-1, disk=0, offset=0, length=1)
        with pytest.raises(ValueError):
            ByteExtentError(time=0, disk=0, offset=0, length=0)
        with pytest.raises(ValueError):
            ByteExtentError(time=0, disk=0, offset=-1, length=1)

    def test_disk_out_of_range(self, tip7):
        ext = ByteExtentError(time=0, disk=99, offset=0, length=1)
        with pytest.raises(ValueError, match="disks"):
            extents_to_errors(tip7, [ext])

    def test_chunk_size(self, tip7):
        with pytest.raises(ValueError):
            extents_to_errors(tip7, [], chunk_size=0)


class TestMapping:
    def test_single_byte_is_one_chunk(self, tip7):
        ext = ByteExtentError(time=1.0, disk=2, offset=5, length=1)
        [err] = extents_to_errors(tip7, [ext], chunk_size=CHUNK)
        assert (err.stripe, err.disk, err.start_row, err.length) == (0, 2, 0, 1)
        assert err.time == 1.0

    def test_extent_rounded_out_to_chunks(self, tip7):
        # bytes [CHUNK/2, 2.5*CHUNK) touch chunks 0, 1, 2
        ext = ByteExtentError(time=0, disk=0, offset=CHUNK // 2, length=2 * CHUNK)
        [err] = extents_to_errors(tip7, [ext], chunk_size=CHUNK)
        assert err.start_row == 0 and err.length == 3

    def test_stripe_boundary_split(self, tip7):
        rows = tip7.rows  # 6
        # chunks rows-1 and rows straddle stripes 0 and 1
        ext = ByteExtentError(
            time=0, disk=1, offset=(rows - 1) * CHUNK, length=2 * CHUNK
        )
        errors = extents_to_errors(tip7, [ext], chunk_size=CHUNK)
        assert len(errors) == 2
        assert errors[0].stripe == 0 and errors[0].start_row == rows - 1
        assert errors[1].stripe == 1 and errors[1].start_row == 0

    def test_overlapping_extents_merge(self, tip7):
        exts = [
            ByteExtentError(time=2.0, disk=0, offset=0, length=CHUNK),
            ByteExtentError(time=1.0, disk=0, offset=CHUNK, length=CHUNK),
        ]
        [err] = extents_to_errors(tip7, exts, chunk_size=CHUNK)
        assert err.length == 2
        assert err.time == 1.0  # earliest detection

    def test_gap_merges_into_contiguous_run(self, tip7):
        """Two extents with a clean chunk between them merge into one
        contiguous run covering the union (paper: co-stripe errors are
        treated as continuous)."""
        exts = [
            ByteExtentError(time=0, disk=0, offset=0, length=CHUNK),
            ByteExtentError(time=0, disk=0, offset=2 * CHUNK, length=CHUNK),
        ]
        [err] = extents_to_errors(tip7, exts, chunk_size=CHUNK)
        assert err.start_row == 0 and err.length == 3

    def test_different_disks_stay_separate(self, tip7):
        exts = [
            ByteExtentError(time=0, disk=0, offset=0, length=CHUNK),
            ByteExtentError(time=0, disk=1, offset=0, length=CHUNK),
        ]
        errors = extents_to_errors(tip7, exts, chunk_size=CHUNK)
        assert len(errors) == 2

    def test_output_feeds_simulator(self, tip7):
        from repro.sim import simulate_cache_trace

        exts = [
            ByteExtentError(time=float(i), disk=i % tip7.num_disks,
                            offset=i * 10 * CHUNK, length=3 * CHUNK)
            for i in range(10)
        ]
        errors = extents_to_errors(tip7, exts, chunk_size=CHUNK)
        res = simulate_cache_trace(tip7, errors, policy="fbf", capacity_blocks=16)
        assert res.requests > 0
