"""Tests for FBF-style LRC recovery planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FBFCache
from repro.lrc import LRCCode, execute_plan, plan_lrc_recovery


@pytest.fixture
def azure():
    return LRCCode(12, 2, 2)


def _encoded(code, seed=0, payload=16):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (code.k, payload), dtype=np.uint8)
    return code.encode(data)


class TestPlanning:
    def test_single_data_failure_repairs_locally(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 4)])
        assert [e.kind for e in plan.equations] == ["local"]
        assert plan.unique_reads == azure.group_size  # 5 data + 1 local parity

    def test_local_parity_failure_repairs_locally(self, azure):
        plan = plan_lrc_recovery(azure, [("lp", 1)])
        assert [e.chain_id for e in plan.equations] == ["L1"]

    def test_global_parity_failure_uses_global_chain(self, azure):
        plan = plan_lrc_recovery(azure, [("gp", 0)])
        assert [e.chain_id for e in plan.equations] == ["G0"]
        assert plan.unique_reads == azure.k

    def test_two_failures_one_group_pull_global(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1)])
        kinds = sorted(e.kind for e in plan.equations)
        assert kinds == ["global", "local"]

    def test_failures_in_both_groups_prefer_locals(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 6)])
        assert [e.kind for e in plan.equations] == ["local", "local"]

    def test_undecodable_pattern_rejected(self, azure):
        bad = [("d", i) for i in range(5)]
        with pytest.raises(ValueError, match="undecodable"):
            plan_lrc_recovery(azure, bad)

    def test_validation(self, azure):
        with pytest.raises(ValueError):
            plan_lrc_recovery(azure, [])
        with pytest.raises(KeyError):
            plan_lrc_recovery(azure, [("zz", 0)])

    def test_equation_count_equals_failures(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1), ("d", 6), ("d", 7)])
        assert len(plan.equations) == 4


class TestPriorities:
    def test_single_failure_all_priority_one(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0)])
        assert set(plan.priorities.values()) == {1}

    def test_shared_blocks_get_higher_priority(self, azure):
        """Two global equations + a local: group-0 survivors are read by
        all three equations -> priority 3; group-1 data by the two
        globals -> priority 2."""
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1), ("d", 2)])
        kinds = sorted(e.kind for e in plan.equations)
        assert kinds == ["global", "global", "local"]
        for i in range(3, 6):  # surviving group-0 data
            assert plan.priorities[("d", i)] == 3
        for i in range(6, 12):  # group-1 data: only the globals read them
            assert plan.priorities[("d", i)] == 2

    def test_share_counts_sum_to_requests(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1)])
        assert sum(plan.chain_share_count.values()) == plan.total_requests

    def test_request_sequence_never_reads_failed(self, azure):
        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1), ("d", 6)])
        assert not (set(plan.request_sequence) & set(plan.failed))


class TestExecution:
    @given(st.integers(0, 2**31), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_plans_rebuild_true_payloads(self, seed, n_failures):
        """Random decodable failure batches rebuild bit-exactly."""
        code = LRCCode(6, 2, 2)
        rng = np.random.default_rng(seed)
        blocks = _encoded(code, seed=seed)
        all_blocks = list(code.all_blocks)
        while True:
            picks = rng.choice(len(all_blocks), size=n_failures, replace=False)
            failed = [all_blocks[i] for i in picks]
            if code.decodable(failed):
                break
        plan = plan_lrc_recovery(code, failed)
        golden = {b: blocks[b].copy() for b in failed}
        survivors = {b: v for b, v in blocks.items() if b not in set(failed)}
        solution = execute_plan(plan, survivors)
        for b in failed:
            assert np.array_equal(solution[b], golden[b]), (seed, failed, b)


class TestFBFIntegration:
    def test_lrc_stream_feeds_fbf_cache(self, azure):
        """The plan's request stream + priorities drive FBFCache directly,
        and FBF beats LRU on the multi-equation stream at a tight cache."""
        from repro.cache import LRUCache

        plan = plan_lrc_recovery(azure, [("d", 0), ("d", 1), ("d", 2)])
        capacity = 6
        fbf, lru = FBFCache(capacity), LRUCache(capacity)
        for cache in (fbf, lru):
            for block in plan.request_sequence:
                cache.request(block, priority=plan.priorities.get(block, 1))
        assert fbf.stats.hits >= lru.stats.hits
        assert fbf.stats.hits > 0
