"""Tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrc.gf256 import (
    cauchy_matrix,
    gf_add,
    gf_div,
    gf_inv,
    gf_matmul,
    gf_mul,
    gf_pow,
    gf_rank,
    gf_solve,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestFieldAxioms:
    @given(elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_distributive(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert left == right

    @given(nonzero)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elements)
    @settings(max_examples=50, deadline=None)
    def test_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(elements, nonzero)
    @settings(max_examples=50, deadline=None)
    def test_div_roundtrip(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a


class TestScalarHelpers:
    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1
        # 2 is primitive: order 255
        assert gf_pow(2, 255) == 1
        assert all(gf_pow(2, n) != 1 for n in range(1, 255))

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(3, 0)

    def test_vectorized_mul(self):
        a = np.arange(256, dtype=np.uint8)
        out = gf_mul(a, 1)
        assert np.array_equal(out, a)
        assert not gf_mul(a, 0).any()


class TestLinearAlgebra:
    def test_matmul_identity(self):
        m = np.arange(1, 10, dtype=np.uint8).reshape(3, 3)
        eye = np.eye(3, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, m), m)

    def test_matmul_shape_check(self):
        with pytest.raises(ValueError):
            gf_matmul(np.ones((2, 3), np.uint8), np.ones((2, 2), np.uint8))

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_solve_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        while True:
            a = rng.integers(0, 256, (n, n), dtype=np.uint8)
            if gf_rank(a) == n:
                break
        x = rng.integers(0, 256, n, dtype=np.uint8)
        b = gf_matmul(a, x[:, None])[:, 0]
        assert np.array_equal(gf_solve(a, b), x)

    def test_solve_rank_deficient_raises(self):
        a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(ValueError, match="rank deficient"):
            gf_solve(a, np.zeros(2, dtype=np.uint8))

    def test_solve_matrix_rhs(self):
        a = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        x = np.array([[3, 7], [5, 11]], dtype=np.uint8)
        b = gf_matmul(a, x)
        assert np.array_equal(gf_solve(a, b), x)

    def test_rank(self):
        assert gf_rank(np.eye(4, dtype=np.uint8)) == 4
        assert gf_rank(np.zeros((3, 3), np.uint8)) == 0
        dep = np.array([[1, 2], [2, 4]], dtype=np.uint8)
        assert gf_rank(dep) == 1  # row2 = 2 * row1 over GF(256)


class TestCauchy:
    def test_every_square_submatrix_invertible(self):
        m = cauchy_matrix(3, 5)
        import itertools

        for size in (1, 2, 3):
            for rows in itertools.combinations(range(3), size):
                for cols in itertools.combinations(range(5), size):
                    sub = m[np.ix_(rows, cols)]
                    assert gf_rank(sub) == size, (rows, cols)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)
