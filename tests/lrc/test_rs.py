"""Tests for the Reed-Solomon baseline."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrc import LRCCode, RSCode, plan_lrc_recovery


@pytest.fixture
def rs():
    return RSCode(6, 3)


def _codeword(rs, seed=0, payload=16):
    rng = np.random.default_rng(seed)
    return rs.encode(rng.integers(0, 256, (rs.k, payload), dtype=np.uint8))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RSCode(0, 1)
        with pytest.raises(ValueError):
            RSCode(200, 100)

    def test_systematic(self, rs):
        cw = _codeword(rs)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, (6, 16), dtype=np.uint8)
        assert np.array_equal(rs.encode(data)[:6], data)

    def test_shapes(self, rs):
        assert rs.n_blocks == 9
        assert rs.generator.shape == (9, 6)


class TestDecoding:
    def test_all_triple_erasures_decode(self, rs):
        cw = _codeword(rs, seed=3)
        for combo in itertools.combinations(range(rs.n_blocks), 3):
            broken = cw.copy()
            for e in combo:
                broken[e] = 0
            assert np.array_equal(rs.decode(broken, list(combo)), cw), combo

    def test_four_erasures_rejected(self, rs):
        assert not rs.decodable([0, 1, 2, 3])
        with pytest.raises(ValueError):
            rs.decode(_codeword(rs), [0, 1, 2, 3])

    def test_empty_erasure_noop(self, rs):
        cw = _codeword(rs)
        assert np.array_equal(rs.decode(cw, []), cw)

    def test_out_of_range_index(self, rs):
        with pytest.raises(IndexError):
            rs.decodable([99])


@given(st.integers(0, 2**31), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_random_erasure_roundtrip(seed, n_erasures):
    rs = RSCode(5, 3)
    rng = np.random.default_rng(seed)
    cw = rs.encode(rng.integers(0, 256, (5, 8), dtype=np.uint8))
    erased = list(rng.choice(rs.n_blocks, size=n_erasures, replace=False))
    broken = cw.copy()
    for e in erased:
        broken[e] = rng.integers(0, 256, 8, dtype=np.uint8)
    assert np.array_equal(rs.decode(broken, [int(e) for e in erased]), cw)


class TestRepairCostVsLRC:
    def test_rs_single_failure_reads_k(self):
        assert RSCode(12, 4).repair_reads([3]) == 12

    def test_lrc_single_failure_reads_group(self):
        """The motivating comparison: same storage overhead ballpark, but
        LRC repairs a single block with group_size reads vs RS's k."""
        lrc = LRCCode(12, 2, 2)   # 16 blocks for 12 data
        rs = RSCode(12, 4)        # 16 blocks for 12 data
        lrc_reads = plan_lrc_recovery(lrc, [("d", 3)]).unique_reads
        rs_reads = rs.repair_reads([3])
        assert lrc_reads == 6
        assert rs_reads == 12
        assert lrc_reads < rs_reads

    def test_no_failure_reads_nothing(self):
        assert RSCode(6, 2).repair_reads([]) == 0
