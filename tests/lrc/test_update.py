"""Tests for LRC update complexity."""

from repro.codes import make_code, update_complexity
from repro.lrc import LRCCode, lrc_parities_touched, lrc_update_complexity


class TestLRCUpdateComplexity:
    def test_uniform_one_plus_g(self):
        code = LRCCode(12, 2, 2)
        u = lrc_update_complexity(code)
        assert u.is_uniform
        assert u.minimum == u.maximum == 1 + code.g
        assert u.average == 3.0

    def test_no_globals(self):
        u = lrc_update_complexity(LRCCode(6, 2, 0))
        assert u.minimum == u.maximum == 1

    def test_per_block_counts(self):
        code = LRCCode(6, 2, 2)
        touched = lrc_parities_touched(code)
        assert set(touched) == set(code.data_blocks)
        assert all(v == 3 for v in touched.values())

    def test_lrc_beats_3dft_substitutes_on_updates(self):
        """LRC(12,2,2) patches exactly 3 parities per write — below the
        averages of every XOR 3DFT substitute in this package."""
        lrc = lrc_update_complexity(LRCCode(12, 2, 2))
        for name in ("tip", "hdd1", "triple-star", "star"):
            xor = update_complexity(make_code(name, 11))
            assert lrc.average < xor.average, name
