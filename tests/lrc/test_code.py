"""Tests for the LRC code: structure, encode/verify/decode, MR property."""

import itertools

import numpy as np
import pytest

from repro.lrc import LRCCode


@pytest.fixture
def azure():
    """Azure's production parameters."""
    return LRCCode(12, 2, 2)


@pytest.fixture
def small():
    return LRCCode(6, 2, 2)


def _encoded(code, seed=0, payload=16):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (code.k, payload), dtype=np.uint8)
    return code.encode(data)


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            LRCCode(0, 1, 1)
        with pytest.raises(ValueError):
            LRCCode(7, 2, 2)  # k not divisible by l
        with pytest.raises(ValueError):
            LRCCode(12, 2, -1)

    def test_block_counts(self, azure):
        assert azure.n_blocks == 16
        assert len(azure.data_blocks) == 12
        assert len(azure.parity_blocks) == 4

    def test_groups(self, azure):
        assert azure.group_of(0) == 0
        assert azure.group_of(5) == 0
        assert azure.group_of(6) == 1
        with pytest.raises(IndexError):
            azure.group_of(12)

    def test_chains(self, azure):
        assert len(azure.chains) == 4
        locals_ = [c for c in azure.chains if c.kind == "local"]
        globals_ = [c for c in azure.chains if c.kind == "global"]
        assert len(locals_) == 2 and len(globals_) == 2
        assert len(locals_[0].members) == 6
        assert len(globals_[0].members) == 12

    def test_chains_for(self, azure):
        chains = azure.chains_for(("d", 0))
        kinds = sorted(c.kind for c in chains)
        assert kinds == ["global", "global", "local"]
        # a local parity belongs only to its own chain
        assert len(azure.chains_for(("lp", 0))) == 1

    def test_chain_others(self, azure):
        chain = azure.chains[0]
        assert ("d", 0) not in chain.others(("d", 0))
        with pytest.raises(KeyError):
            chain.others(("d", 11))

    def test_mr_group_size_cap(self):
        with pytest.raises(ValueError, match="group sizes"):
            LRCCode(32, 2, 2)  # group size 16 > 15


class TestEncodeVerify:
    def test_encoded_stripe_verifies(self, azure):
        assert azure.verify(_encoded(azure))

    def test_corruption_detected(self, azure):
        blocks = _encoded(azure)
        blocks[("d", 3)][0] ^= 1
        assert not azure.verify(blocks)

    def test_local_parity_is_group_xor(self, azure):
        blocks = _encoded(azure)
        acc = np.zeros(16, dtype=np.uint8)
        for i in range(6):
            acc ^= blocks[("d", i)]
        assert np.array_equal(acc, blocks[("lp", 0)])

    def test_wrong_data_shape_rejected(self, azure):
        with pytest.raises(ValueError):
            azure.encode(np.zeros((5, 8), dtype=np.uint8))

    def test_zero_data_zero_parity(self, azure):
        blocks = azure.encode(np.zeros((12, 8), dtype=np.uint8))
        assert not blocks[("gp", 0)].any()
        assert not blocks[("lp", 1)].any()


class TestDecode:
    @pytest.mark.parametrize("block", [("d", 0), ("d", 11), ("lp", 1), ("gp", 0)])
    def test_single_erasure(self, azure, block):
        blocks = _encoded(azure)
        golden = blocks[block].copy()
        blocks[block] = np.zeros_like(golden)
        azure.decode(blocks, [block])
        assert np.array_equal(blocks[block], golden)

    def test_four_erasures_mixed(self, azure):
        blocks = _encoded(azure)
        erased = [("d", 0), ("d", 7), ("lp", 0), ("gp", 1)]
        golden = {b: blocks[b].copy() for b in erased}
        for b in erased:
            blocks[b] = np.zeros_like(blocks[b])
        azure.decode(blocks, erased)
        for b in erased:
            assert np.array_equal(blocks[b], golden[b])

    def test_undecodable_raises(self, azure):
        blocks = _encoded(azure)
        erased = [("d", 0), ("d", 1), ("d", 2), ("d", 3), ("d", 4)]
        with pytest.raises(ValueError, match="undecodable"):
            azure.decode(blocks, erased)

    def test_unknown_block_raises(self, azure):
        with pytest.raises(KeyError):
            azure.decode(_encoded(azure), [("x", 0)])

    def test_empty_erasure_noop(self, azure):
        blocks = _encoded(azure)
        azure.decode(blocks, [])
        assert azure.verify(blocks)


class TestMaximalRecoverability:
    @staticmethod
    def _info_decodable(code, pattern):
        """The combinatorial MR condition for l=2, g=2."""
        per_group = [0] * code.l
        gp_erased = 0
        for kind, i in pattern:
            if kind == "d":
                per_group[code.group_of(i)] += 1
            elif kind == "lp":
                per_group[i] += 1
            else:
                gp_erased += 1
        g_avail = code.g - gp_erased
        for size in range(1, code.l + 1):
            for groups in itertools.combinations(range(code.l), size):
                if sum(per_group[t] for t in groups) > size + g_avail:
                    return False
        return True

    def test_all_triples_decodable(self, small):
        for pattern in itertools.combinations(small.all_blocks, 3):
            assert small.decodable(pattern), pattern

    def test_four_erasures_exactly_match_info_theory(self, small):
        for pattern in itertools.combinations(small.all_blocks, 4):
            assert small.decodable(pattern) == self._info_decodable(small, pattern), (
                pattern
            )

    def test_azure_hard_pattern(self, azure):
        """Two failures in each group — the pattern a Cauchy choice misses."""
        assert azure.decodable([("d", 0), ("d", 1), ("d", 6), ("d", 7)])

    def test_five_erasures_never_decodable_for_g2l2(self, small):
        for pattern in itertools.combinations(small.all_blocks, 5):
            assert not small.decodable(pattern)
