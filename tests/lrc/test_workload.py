"""Tests for LRC failure workload generation and trace simulation."""

import pytest

from repro.engine import LRCBackend, simulate_trace
from repro.lrc import (
    LRCCode,
    LRCFailureEvent,
    LRCWorkloadConfig,
    generate_lrc_failures,
)


def simulate_lrc_trace(code, events, **kwargs):
    """The old per-world entry point, now a one-liner over the engine."""
    return simulate_trace(LRCBackend(code), events, **kwargs)


@pytest.fixture
def azure():
    return LRCCode(12, 2, 2)


@pytest.fixture
def events(azure):
    return generate_lrc_failures(azure, LRCWorkloadConfig(n_events=60, seed=5))


class TestEventValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            LRCFailureEvent(time=-1, stripe=0, failed=(("d", 0),))
        with pytest.raises(ValueError):
            LRCFailureEvent(time=0, stripe=0, failed=())


class TestConfigValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LRCWorkloadConfig(n_events=0)
        with pytest.raises(ValueError):
            LRCWorkloadConfig(n_events=10, array_stripes=5)
        with pytest.raises(ValueError):
            LRCWorkloadConfig(batch_size_weights=())
        with pytest.raises(ValueError):
            LRCWorkloadConfig(batch_size_weights=(0.0, 0.0))
        with pytest.raises(ValueError):
            LRCWorkloadConfig(interarrival=0)


class TestGeneration:
    def test_count_sorted_unique_stripes(self, azure, events):
        assert len(events) == 60
        times = [e.time for e in events]
        assert times == sorted(times)
        stripes = [e.stripe for e in events]
        assert len(stripes) == len(set(stripes))

    def test_all_batches_decodable(self, azure, events):
        for e in events:
            assert azure.decodable(e.failed)

    def test_deterministic(self, azure):
        cfg = LRCWorkloadConfig(n_events=30, seed=1)
        assert generate_lrc_failures(azure, cfg) == generate_lrc_failures(azure, cfg)

    def test_single_failures_dominate(self, azure, events):
        singles = sum(1 for e in events if len(e.failed) == 1)
        assert singles > len(events) / 2

    def test_multi_failures_present(self, azure):
        events = generate_lrc_failures(
            azure, LRCWorkloadConfig(n_events=200, seed=2)
        )
        assert any(len(e.failed) >= 2 for e in events)


class TestSimulateLRCTrace:
    def test_accounting(self, azure, events):
        res = simulate_lrc_trace(azure, events, policy="lru", capacity_blocks=16)
        assert res.requests == res.hits + res.disk_reads
        assert res.n_events == len(events)

    def test_zero_capacity(self, azure, events):
        res = simulate_lrc_trace(azure, events, policy="lru", capacity_blocks=0)
        assert res.hits == 0

    def test_validation(self, azure, events):
        with pytest.raises(ValueError):
            simulate_lrc_trace(azure, events, capacity_blocks=-1)
        with pytest.raises(ValueError):
            simulate_lrc_trace(azure, events, workers=0)

    def test_fbf_dominates_at_tight_cache(self, azure):
        """Footnote 3: FBF extends to LRC recovery streams.  At a cache
        smaller than a plan's shared set, priority pinning is the only
        thing that saves any rereference and FBF wins by a factor."""
        cfg = LRCWorkloadConfig(
            n_events=120, seed=9,
            batch_size_weights=(0.3, 0.3, 0.25, 0.15),  # multi-failure heavy
        )
        events = generate_lrc_failures(azure, cfg)
        fbf = simulate_lrc_trace(azure, events, policy="fbf",
                                 capacity_blocks=16, workers=4)
        assert fbf.hits > 0
        for baseline in ("fifo", "lru", "lfu", "arc"):
            base = simulate_lrc_trace(azure, events, policy=baseline,
                                      capacity_blocks=16, workers=4)
            assert fbf.hit_ratio > 2 * base.hit_ratio, baseline

    def test_fbf_near_best_at_ample_cache(self, azure):
        """Once the cache comfortably holds a plan's working set, FBF
        matches the best baseline (everything converges at the plateau;
        in a narrow mid-range, adaptive ARC can edge FBF when the shared
        set itself overflows the cache — see EXPERIMENTS.md)."""
        cfg = LRCWorkloadConfig(
            n_events=120, seed=9, batch_size_weights=(0.3, 0.3, 0.25, 0.15)
        )
        events = generate_lrc_failures(azure, cfg)
        results = {
            pol: simulate_lrc_trace(azure, events, policy=pol,
                                    capacity_blocks=64, workers=4)
            for pol in ("fifo", "lru", "lfu", "arc", "fbf")
        }
        best = max(r.hit_ratio for r in results.values())
        assert results["fbf"].hit_ratio >= best - 1e-9
