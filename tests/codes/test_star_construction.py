"""Hand-computed checks of the STAR construction for p=3.

Small enough to verify every parity by hand: 2 rows x 6 disks (3 data
columns, H/D/A parity columns).  Cells are addressed (row, col); the
imaginary row 2 is all-zero.

Diagonal index d(i,j) = (i+j) mod 3, parity stored for d in {0,1},
adjuster = diagonal 2.  Anti-diagonal a(i,j) = (i-j) mod 3, adjuster =
anti-diagonal 2.
"""

import numpy as np
import pytest

from repro.codes import Encoder, make_code


@pytest.fixture(scope="module")
def star3():
    return make_code("star", 3)


@pytest.fixture()
def data():
    # d[i][j] for i in {0,1}, j in {0,1,2}: distinct single-byte values
    return {
        (0, 0): 1, (0, 1): 2, (0, 2): 4,
        (1, 0): 8, (1, 1): 16, (1, 2): 32,
    }


def _encode(star3, data):
    stripe = np.zeros((2, 6, 1), dtype=np.uint8)
    for (i, j), v in data.items():
        stripe[i, j, 0] = v
    Encoder(star3).encode(stripe)
    return stripe


class TestHandComputedParities:
    def test_horizontal(self, star3, data):
        stripe = _encode(star3, data)
        assert stripe[0, 3, 0] == 1 ^ 2 ^ 4
        assert stripe[1, 3, 0] == 8 ^ 16 ^ 32

    def test_diagonal_with_adjuster(self, star3, data):
        stripe = _encode(star3, data)
        # diagonals d(i,j) = (i+j) % 3 over data cells:
        #   d=0: (0,0), (1,2)      d=1: (0,1), (1,0)      d=2 (adjuster): (0,2), (1,1)
        s = 4 ^ 16
        assert stripe[0, 4, 0] == (1 ^ 32) ^ s
        assert stripe[1, 4, 0] == (2 ^ 8) ^ s

    def test_antidiagonal_with_adjuster(self, star3, data):
        stripe = _encode(star3, data)
        # anti-diagonals a(i,j) = (i-j) % 3:
        #   a=0: (0,0), (1,1)      a=1: (1,0), (0,2)      a=2 (adjuster): (0,1), (1,2)
        s = 2 ^ 32
        assert stripe[0, 5, 0] == (1 ^ 16) ^ s
        assert stripe[1, 5, 0] == (8 ^ 4) ^ s

    def test_every_chain_xors_to_zero(self, star3, data):
        stripe = _encode(star3, data)
        for chain in star3.chains:
            acc = 0
            for r, c in chain.cells:
                acc ^= int(stripe[r, c, 0])
            assert acc == 0, chain.chain_id


class TestChainMembership:
    def test_diagonal_chain_contents(self, star3):
        from repro.codes import Direction

        d0 = next(
            ch for ch in star3.chains_in(Direction.DIAGONAL) if ch.index == 0
        )
        # diagonal 0 cells + adjuster cells + parity cell
        assert d0.cells == frozenset(
            {(0, 0), (1, 2), (0, 2), (1, 1), (0, 4)}
        )

    def test_adjuster_cells_in_both_diagonal_chains(self, star3):
        from repro.codes import Direction

        for adjuster_cell in [(0, 2), (1, 1)]:
            chains = [
                ch for ch in star3.chains_for(adjuster_cell)
                if ch.direction is Direction.DIAGONAL
            ]
            assert len(chains) == 2  # every diagonal chain (p - 1 = 2)
