"""Tests for the code registry."""

import pytest

from repro.codes import available_codes, make_code
from repro.codes.layout import CodeLayout
from repro.codes.registry import _ALIASES, CODES


def test_available_codes():
    assert set(available_codes()) == {"star", "triple-star", "tip", "hdd1"}


def test_make_code_case_insensitive():
    assert make_code("TIP", 5).name == "TIP"
    assert make_code("Star", 5).name == "STAR"


def test_aliases():
    assert make_code("triple_star", 5).name == "Triple-STAR"
    assert make_code("triplestar", 5).name == "Triple-STAR"
    assert make_code("tip-code", 5).name == "TIP"


def test_unknown_code():
    with pytest.raises(ValueError, match="unknown code"):
        make_code("rs", 5)


def test_unknown_code_error_lists_choices():
    with pytest.raises(ValueError, match="hdd1.*star.*tip"):
        make_code("raid6", 5)


@pytest.mark.parametrize("name", sorted(CODES))
def test_every_registered_name_round_trips(name):
    """Registry name -> layout; rebuilding by the layout's key matches."""
    layout = make_code(name, 5)
    assert isinstance(layout, CodeLayout)
    again = make_code(name, 5)
    assert again.name == layout.name
    assert again.num_disks == layout.num_disks
    assert again.chains == layout.chains


def test_no_duplicate_registrations():
    """Each registered name maps to a distinct builder and layout name."""
    builders = list(CODES.values())
    assert len(builders) == len(set(builders))
    layout_names = [make_code(n, 5).name for n in CODES]
    assert len(layout_names) == len(set(layout_names))


def test_aliases_resolve_to_registered_names():
    for alias, target in _ALIASES.items():
        assert target in CODES
        assert alias not in CODES  # aliases must not shadow real entries


def test_non_prime_p():
    with pytest.raises(ValueError, match="prime"):
        make_code("tip", 9)


@pytest.mark.parametrize(
    "name,p,disks",
    [
        ("star", 7, 10),
        ("triple-star", 7, 9),
        ("tip", 7, 8),
        ("hdd1", 7, 8),
    ],
)
def test_disk_counts_match_paper(name, p, disks):
    """Paper: STAR = p+3, Triple-STAR = p+2, TIP and HDD1 = p+1 disks."""
    assert make_code(name, p).num_disks == disks
