"""Tests for the RTP/STAR family builders."""

import pytest

from repro.codes._builders import build_rtp_family, build_star_family
from repro.codes.layout import Direction


class TestArgumentValidation:
    def test_rejects_non_prime(self):
        with pytest.raises(ValueError, match="prime"):
            build_rtp_family("x", 4, 2)

    def test_rejects_num_data_too_large_rtp(self):
        with pytest.raises(ValueError, match="num_data"):
            build_rtp_family("x", 5, 5)  # RTP max is p - 1

    def test_rejects_num_data_too_large_star(self):
        with pytest.raises(ValueError, match="num_data"):
            build_star_family("x", 5, 6)  # STAR max is p

    def test_rejects_zero_data(self):
        with pytest.raises(ValueError, match="num_data"):
            build_star_family("x", 5, 0)


class TestRTPFamily:
    def test_dimensions(self):
        lay = build_rtp_family("rtp", 7, 6)
        assert lay.rows == 6
        assert lay.num_disks == 9
        assert len(lay.data_cells) == 36
        assert len(lay.parity_cells) == 18
        # p-1 chains in each of 3 directions
        assert len(lay.chains) == 18

    def test_row_parity_column_participates_in_diagonals(self):
        lay = build_rtp_family("rtp", 5, 4)
        row_parity_col = 4
        diag_cols = set()
        for chain in lay.chains_in(Direction.DIAGONAL):
            diag_cols |= chain.columns()
        assert row_parity_col in diag_cols

    def test_no_adjusters(self):
        """RTP chains never share data cells across same-direction chains."""
        lay = build_rtp_family("rtp", 5, 4)
        for direction in (Direction.DIAGONAL, Direction.ANTIDIAGONAL):
            chains = lay.chains_in(direction)
            for i, a in enumerate(chains):
                for b in chains[i + 1:]:
                    assert not (a.cells & b.cells)

    def test_shortening_preserves_tolerance(self):
        for k in (1, 2, 3, 4):
            lay = build_rtp_family("rtp", 5, k)
            import itertools

            for combo in itertools.combinations(range(lay.num_disks), 3):
                assert lay.tolerates_disks(combo), (k, combo)


class TestSTARFamily:
    def test_dimensions(self):
        lay = build_star_family("star", 7, 7)
        assert lay.rows == 6
        assert lay.num_disks == 10
        assert len(lay.data_cells) == 42
        assert len(lay.chains) == 18

    def test_adjuster_cells_shared_by_all_diagonal_chains(self):
        lay = build_star_family("star", 5, 5)
        diag = lay.chains_in(Direction.DIAGONAL)
        shared = set.intersection(*(set(c.cells) for c in diag))
        # the adjuster diagonal: data cells with (i+j) % p == p-1
        expected = {
            (i, j) for j in range(5) for i in [(4 - j) % 5] if i < 4
        }
        assert shared & set(lay.data_cells) == expected
        assert len(expected) > 0

    def test_adjuster_absent_when_shortened_past_it(self):
        # num_data=1: only column 0; adjuster diagonal has no real cell in
        # column 0 (it sits on the imaginary row), so chains are disjoint.
        lay = build_star_family("star", 5, 1)
        diag = lay.chains_in(Direction.DIAGONAL)
        shared = set.intersection(*(set(c.cells) for c in diag))
        assert not shared

    def test_shortening_preserves_tolerance(self):
        import itertools

        for k in (1, 3, 5):
            lay = build_star_family("star", 5, k)
            for combo in itertools.combinations(range(lay.num_disks), 3):
                assert lay.tolerates_disks(combo), (k, combo)


class TestChainGeometry:
    @pytest.mark.parametrize("builder,max_k", [(build_rtp_family, 4), (build_star_family, 5)])
    def test_diagonal_slope(self, builder, max_k):
        """Within a diagonal chain, data cells satisfy (i + j) % p == const."""
        lay = builder("x", 5, max_k)
        data = set(lay.data_cells)
        for chain in lay.chains_in(Direction.DIAGONAL):
            diags = {(i + j) % 5 for (i, j) in chain.cells if (i, j) in data}
            # one diagonal (plus, for STAR, the adjuster diagonal p-1)
            assert len(diags - {4}) <= 1

    @pytest.mark.parametrize("builder,max_k", [(build_rtp_family, 4), (build_star_family, 5)])
    def test_antidiagonal_slope(self, builder, max_k):
        lay = builder("x", 5, max_k)
        data = set(lay.data_cells)
        for chain in lay.chains_in(Direction.ANTIDIAGONAL):
            adiags = {(i - j) % 5 for (i, j) in chain.cells if (i, j) in data}
            assert len(adiags - {4}) <= 1
