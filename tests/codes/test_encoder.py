"""Tests for stripe encoding."""

import numpy as np
import pytest

from repro.codes import (
    Encoder,
    empty_stripe,
    encode_by_chains,
    make_code,
    verify_stripe,
    xor_cells,
)


class TestHelpers:
    def test_empty_stripe_shape(self, tip7):
        s = empty_stripe(tip7, 16)
        assert s.shape == (tip7.rows, tip7.num_disks, 16)
        assert not s.any()

    def test_empty_stripe_rejects_bad_chunk(self, tip7):
        with pytest.raises(ValueError):
            empty_stripe(tip7, 0)

    def test_xor_cells_empty_is_zero(self, tip7):
        s = empty_stripe(tip7, 8)
        assert not xor_cells(s, []).any()

    def test_xor_cells_self_inverse(self, tip7, rng):
        s = Encoder(tip7).random_stripe(8, rng)
        cells = [(0, 0), (1, 1), (0, 0)]
        # duplicated cell cancels out
        assert np.array_equal(xor_cells(s, cells), s[1, 1])

    def test_verify_rejects_wrong_shape(self, tip7):
        with pytest.raises(ValueError, match="shape"):
            verify_stripe(tip7, np.zeros((1, 2, 3), dtype=np.uint8))


class TestEncoder:
    def test_zero_data_encodes_to_zero_parity(self, layout):
        s = empty_stripe(layout, 8)
        Encoder(layout).encode(s)
        assert not s.any()
        assert verify_stripe(layout, s)

    def test_random_stripe_verifies(self, layout, rng):
        s = Encoder(layout).random_stripe(32, rng)
        assert verify_stripe(layout, s)

    def test_corruption_breaks_verification(self, layout, rng):
        s = Encoder(layout).random_stripe(32, rng)
        r, c = layout.data_cells[0]
        s[r, c, 0] ^= 0xFF
        assert not verify_stripe(layout, s)

    def test_matches_reference_encoder(self, layout, rng):
        enc = Encoder(layout)
        s = enc.random_stripe(16, rng)
        ref = s.copy()
        for r, c in layout.parity_cells:
            ref[r, c] = 0
        encode_by_chains(layout, ref)
        assert np.array_equal(s, ref)

    def test_linearity(self, layout, rng):
        """encode(a ^ b) == encode(a) ^ encode(b) — XOR codes are linear."""
        enc = Encoder(layout)
        a = enc.random_stripe(8, rng)
        b = enc.random_stripe(8, rng)
        combined = empty_stripe(layout, 8)
        for r, c in layout.data_cells:
            combined[r, c] = a[r, c] ^ b[r, c]
        enc.encode(combined)
        assert np.array_equal(combined, a ^ b)

    def test_combination_matrix_is_binary(self, layout):
        comb = Encoder(layout).combination
        assert set(np.unique(comb).tolist()) <= {0, 1}
        assert comb.shape == (len(layout.parity_cells), len(layout.data_cells))

    def test_update_complexity_positive(self, layout):
        """Every data cell feeds at least 3 parities (3DFT lower bound)."""
        comb = Encoder(layout).combination
        per_data = comb.sum(axis=0)
        assert (per_data >= 3).all()

    def test_encode_idempotent(self, layout, rng):
        enc = Encoder(layout)
        s = enc.random_stripe(8, rng)
        again = enc.encode(s.copy())
        assert np.array_equal(s, again)
