"""Unit and property tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.gf2 import (
    gf2_echelon,
    gf2_matmul,
    gf2_rank,
    gf2_solve,
    gf2_solve_map,
    is_gf2,
)


def test_is_gf2_accepts_binary():
    assert is_gf2(np.array([[0, 1], [1, 0]], dtype=np.uint8))


def test_is_gf2_rejects_other_values():
    assert not is_gf2(np.array([[0, 2]], dtype=np.uint8))


def test_rank_identity():
    assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5


def test_rank_zero_matrix():
    assert gf2_rank(np.zeros((3, 4), dtype=np.uint8)) == 0


def test_rank_empty():
    assert gf2_rank(np.zeros((0, 0), dtype=np.uint8)) == 0


def test_rank_dependent_rows():
    a = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
    # third row = row0 XOR row1
    assert gf2_rank(a) == 2


def test_rank_rejects_non_binary():
    with pytest.raises(ValueError):
        gf2_rank(np.array([[3]], dtype=np.uint8))


def test_echelon_pivots_are_increasing():
    a = np.array([[1, 1, 0], [1, 0, 1], [0, 1, 1]], dtype=np.uint8)
    red, pivots = gf2_echelon(a)
    assert pivots == sorted(pivots)
    # reduced form: pivot columns have exactly one 1
    for row_idx, col in enumerate(pivots):
        assert red[:, col].sum() == 1
        assert red[row_idx, col] == 1


def test_matmul_matches_mod2():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2, (4, 5)).astype(np.uint8)
    b = rng.integers(0, 2, (5, 3)).astype(np.uint8)
    expected = (a.astype(int) @ b.astype(int)) % 2
    assert np.array_equal(gf2_matmul(a, b), expected.astype(np.uint8))


def test_solve_unique_system():
    a = np.array([[1, 0], [1, 1]], dtype=np.uint8)
    x = np.array([1, 1], dtype=np.uint8)
    b = gf2_matmul(a, x[:, None])[:, 0]
    assert np.array_equal(gf2_solve(a, b), x)


def test_solve_inconsistent_returns_none():
    a = np.array([[1, 0], [1, 0]], dtype=np.uint8)
    b = np.array([0, 1], dtype=np.uint8)
    assert gf2_solve(a, b) is None


def test_solve_underdetermined_raises():
    a = np.array([[1, 1]], dtype=np.uint8)
    b = np.array([0], dtype=np.uint8)
    with pytest.raises(ValueError, match="underdetermined"):
        gf2_solve(a, b)


def test_solve_matrix_rhs():
    a = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
    x = np.array([[1, 0], [1, 1]], dtype=np.uint8)
    b = gf2_matmul(a, x)
    assert np.array_equal(gf2_solve(a, b), x)


def test_solve_shape_mismatch():
    a = np.eye(2, dtype=np.uint8)
    with pytest.raises(ValueError, match="rows"):
        gf2_solve(a, np.zeros(3, dtype=np.uint8))


def test_solve_map_identity():
    s = gf2_solve_map(np.eye(4, dtype=np.uint8))
    assert np.array_equal(s, np.eye(4, dtype=np.uint8))


def test_solve_map_rank_deficient_raises():
    a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
    with pytest.raises(ValueError, match="undecodable"):
        gf2_solve_map(a)


@st.composite
def _full_rank_system(draw):
    n = draw(st.integers(1, 6))
    extra = draw(st.integers(0, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    while True:
        a = rng.integers(0, 2, (n + extra, n)).astype(np.uint8)
        if gf2_rank(a) == n:
            return a, rng


@given(_full_rank_system())
@settings(max_examples=60, deadline=None)
def test_solve_roundtrip_property(system):
    """For full-column-rank A and any x: solve(A, A@x) == x."""
    a, rng = system
    x = rng.integers(0, 2, a.shape[1]).astype(np.uint8)
    b = gf2_matmul(a, x[:, None])[:, 0]
    assert np.array_equal(gf2_solve(a, b), x)


@given(_full_rank_system())
@settings(max_examples=60, deadline=None)
def test_solve_map_matches_solve(system):
    """The precomputed operator S satisfies S@b == solve(A, b)."""
    a, rng = system
    x = rng.integers(0, 2, a.shape[1]).astype(np.uint8)
    b = gf2_matmul(a, x[:, None])[:, 0]
    s = gf2_solve_map(a)
    assert np.array_equal(gf2_matmul(s, b[:, None])[:, 0], x)
