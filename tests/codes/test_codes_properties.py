"""Hypothesis property tests over all four codes.

These are the code-correctness invariants the rest of the system rests on:
encode/erase/decode round-trips for arbitrary data and erasure patterns
within the erasure-correcting power, and the MDS storage-efficiency
accounting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codes import Encoder, decode, make_code, verify_stripe
from repro.codes.registry import available_codes

LAYOUTS = {
    (name, p): make_code(name, p)
    for name in available_codes()
    for p in (3, 5, 7)
}
ENCODERS = {key: Encoder(lay) for key, lay in LAYOUTS.items()}


layout_keys = st.sampled_from(sorted(LAYOUTS))


@st.composite
def stripe_and_erasure(draw, max_columns=3):
    key = draw(layout_keys)
    layout = LAYOUTS[key]
    n_cols = draw(st.integers(0, max_columns))
    cols = draw(
        st.lists(
            st.integers(0, layout.num_disks - 1),
            min_size=n_cols,
            max_size=n_cols,
            unique=True,
        )
    )
    seed = draw(st.integers(0, 2**31))
    return key, cols, seed


@given(stripe_and_erasure())
@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_column_erasure_roundtrip(case):
    """Any <=3 whole-column loss decodes back to the original payloads."""
    key, cols, seed = case
    layout, enc = LAYOUTS[key], ENCODERS[key]
    rng = np.random.default_rng(seed)
    stripe = enc.random_stripe(8, rng)
    cells = [c for d in cols for c in layout.cells_on_disk(d)]
    broken = stripe.copy()
    for r, c in cells:
        broken[r, c] = rng.integers(0, 256, 8, dtype=np.uint8)
    decode(layout, broken, cells)
    assert np.array_equal(broken, stripe)


@st.composite
def partial_stripe_case(draw):
    key = draw(layout_keys)
    layout = LAYOUTS[key]
    disk = draw(st.integers(0, layout.num_disks - 1))
    length = draw(st.integers(1, layout.rows))
    start = draw(st.integers(0, layout.rows - length))
    seed = draw(st.integers(0, 2**31))
    return key, disk, start, length, seed


@given(partial_stripe_case())
@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_partial_stripe_roundtrip(case):
    """The paper's error unit — contiguous chunks on one disk — always decodes."""
    key, disk, start, length, seed = case
    layout, enc = LAYOUTS[key], ENCODERS[key]
    rng = np.random.default_rng(seed)
    stripe = enc.random_stripe(8, rng)
    cells = [(r, disk) for r in range(start, start + length)]
    broken = stripe.copy()
    for r, c in cells:
        broken[r, c] = 0
    decode(layout, broken, cells)
    assert np.array_equal(broken, stripe)


@given(layout_keys, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_encoded_stripe_always_verifies(key, seed):
    layout, enc = LAYOUTS[key], ENCODERS[key]
    stripe = enc.random_stripe(4, np.random.default_rng(seed))
    assert verify_stripe(layout, stripe)


@given(layout_keys)
@settings(max_examples=20, deadline=None)
def test_mds_storage_efficiency(key):
    """All four codes are MDS: data cells == (disks - 3) * rows."""
    layout = LAYOUTS[key]
    assert len(layout.data_cells) == (layout.num_disks - 3) * layout.rows
    assert len(layout.parity_cells) == 3 * layout.rows


@given(stripe_and_erasure(max_columns=2), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_decode_only_touches_erased_cells(case, payload_seed):
    """Decoding must never modify surviving chunks."""
    key, cols, seed = case
    layout, enc = LAYOUTS[key], ENCODERS[key]
    rng = np.random.default_rng(payload_seed)
    stripe = enc.random_stripe(8, rng)
    cells = [c for d in cols for c in layout.cells_on_disk(d)]
    broken = stripe.copy()
    erased_set = set(cells)
    decode(layout, broken, cells)
    for cell in layout.all_cells:
        if cell not in erased_set:
            r, c = cell
            assert np.array_equal(broken[r, c], stripe[r, c])
