"""Hand-computed checks of the RTP-style construction (Triple-STAR p=3).

2 rows x 5 disks: data columns 0-1, row parity column 2 (virtual column
p-1 = 2 for the diagonal geometry), diagonal parity column 3,
anti-diagonal parity column 4.  Small enough to verify by hand.

Diagonal index d(i, vj) = (i + vj) mod 3 over virtual columns {0, 1, 2};
diagonal 2 has no parity.  Anti-diagonal a(i, vj) = (i - vj) mod 3.
"""

import numpy as np
import pytest

from repro.codes import Direction, Encoder, make_code


@pytest.fixture(scope="module")
def ts3():
    return make_code("triple-star", 3)


@pytest.fixture()
def stripe(ts3):
    # data: d(0,0)=1 d(0,1)=2 d(1,0)=4 d(1,1)=8
    s = np.zeros((2, 5, 1), dtype=np.uint8)
    s[0, 0, 0], s[0, 1, 0] = 1, 2
    s[1, 0, 0], s[1, 1, 0] = 4, 8
    Encoder(ts3).encode(s)
    return s


class TestHandComputedParities:
    def test_row_parity(self, ts3, stripe):
        assert stripe[0, 2, 0] == 1 ^ 2
        assert stripe[1, 2, 0] == 4 ^ 8

    def test_diagonal_parity(self, ts3, stripe):
        r0, r1 = 1 ^ 2, 4 ^ 8  # row parities
        # diag 0: cells with (i+vj)%3==0, i<2: (0,0); (2,1)x; (1,2)=row parity r1
        assert stripe[0, 3, 0] == 1 ^ r1
        # diag 1: (1,0)=4; (0,1)=2; (2,2)x
        assert stripe[1, 3, 0] == 4 ^ 2

    def test_antidiagonal_parity(self, ts3, stripe):
        r0, r1 = 1 ^ 2, 4 ^ 8
        # anti 0: (i-vj)%3==0: (0,0)=1; (1,1)=8; (2,2)x
        assert stripe[0, 4, 0] == 1 ^ 8
        # anti 1: (1,0)=4; (2,1)x; (0,2)=r0
        assert stripe[1, 4, 0] == 4 ^ r0

    def test_all_chains_zero(self, ts3, stripe):
        for chain in ts3.chains:
            acc = 0
            for r, c in chain.cells:
                acc ^= int(stripe[r, c, 0])
            assert acc == 0, chain.chain_id


class TestChainStructure:
    def test_diagonal_chains_include_row_parity_column(self, ts3):
        d0 = next(ch for ch in ts3.chains_in(Direction.DIAGONAL) if ch.index == 0)
        assert d0.cells == frozenset({(0, 0), (1, 2), (0, 3)})

    def test_no_adjusters(self, ts3):
        """Same-direction chains never share cells in the RTP family."""
        for direction in (Direction.DIAGONAL, Direction.ANTIDIAGONAL):
            chains = ts3.chains_in(direction)
            for i, a in enumerate(chains):
                for b in chains[i + 1:]:
                    assert not (a.cells & b.cells)

    def test_row_parity_cells_sit_on_diagonal_chains(self, ts3):
        """Unlike STAR's dedicated H parities, RTP row-parity cells also
        sit on diagonal/anti-diagonal chains (each cell can miss at most
        one direction — the dropped diagonal through it)."""
        all_dirs = set()
        for row in range(ts3.rows):
            dirs = {ch.direction for ch in ts3.chains_for((row, 2))}
            assert Direction.HORIZONTAL in dirs
            assert len(dirs) >= 2
            all_dirs |= dirs
        assert all_dirs == set(Direction)

    def test_larger_p_row_parity_mostly_three_directions(self):
        ts7 = make_code("triple-star", 7)
        rp_col = 6
        full = sum(
            1
            for row in range(ts7.rows)
            if len({ch.direction for ch in ts7.chains_for((row, rp_col))}) == 3
        )
        assert full >= ts7.rows - 2  # at most one row misses D, one misses A
