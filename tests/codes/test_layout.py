"""Tests for the layout framework: cells, chains, invariants."""

import pytest

from repro.codes.layout import (
    CellKind,
    CodeLayout,
    Direction,
    LayoutError,
    ParityChain,
)


def _tiny_layout(**overrides):
    """A hand-built 2x3 layout: two data columns and a parity column."""
    chains = (
        ParityChain(Direction.HORIZONTAL, 0, frozenset({(0, 0), (0, 1), (0, 2)}), (0, 2)),
        ParityChain(Direction.HORIZONTAL, 1, frozenset({(1, 0), (1, 1), (1, 2)}), (1, 2)),
    )
    kwargs = dict(
        name="tiny",
        p=3,
        rows=2,
        num_disks=3,
        data_cells=((0, 0), (0, 1), (1, 0), (1, 1)),
        parity_cells=((0, 2), (1, 2)),
        chains=chains,
    )
    kwargs.update(overrides)
    return CodeLayout(**kwargs)


class TestParityChain:
    def test_parity_cell_must_be_member(self):
        with pytest.raises(LayoutError, match="not a member"):
            ParityChain(Direction.HORIZONTAL, 0, frozenset({(0, 0)}), (9, 9))

    def test_minimum_two_cells(self):
        with pytest.raises(LayoutError, match="fewer than 2"):
            ParityChain(Direction.HORIZONTAL, 0, frozenset({(0, 0)}), (0, 0))

    def test_others_excludes_cell(self):
        chain = ParityChain(
            Direction.DIAGONAL, 2, frozenset({(0, 0), (1, 1), (0, 2)}), (0, 2)
        )
        assert chain.others((1, 1)) == frozenset({(0, 0), (0, 2)})

    def test_others_unknown_cell_raises(self):
        chain = ParityChain(Direction.DIAGONAL, 0, frozenset({(0, 0), (0, 1)}), (0, 1))
        with pytest.raises(KeyError):
            chain.others((5, 5))

    def test_chain_id_and_len_and_contains(self):
        chain = ParityChain(
            Direction.ANTIDIAGONAL, 3, frozenset({(0, 0), (1, 1), (0, 2)}), (0, 2)
        )
        assert chain.chain_id == "A3"
        assert len(chain) == 3
        assert (1, 1) in chain and (9, 9) not in chain

    def test_columns(self):
        chain = ParityChain(
            Direction.HORIZONTAL, 0, frozenset({(0, 0), (0, 1), (0, 2)}), (0, 2)
        )
        assert chain.columns() == {0, 1, 2}


class TestCodeLayoutValidation:
    def test_valid_layout_builds(self):
        lay = _tiny_layout()
        assert lay.rows == 2 and lay.num_disks == 3

    def test_cell_outside_grid(self):
        with pytest.raises(LayoutError, match="outside"):
            _tiny_layout(data_cells=((0, 0), (0, 1), (1, 0), (5, 1)))

    def test_duplicate_cell(self):
        with pytest.raises(LayoutError, match="twice"):
            _tiny_layout(data_cells=((0, 0), (0, 0), (1, 0), (1, 1)))

    def test_chain_parity_in_non_parity_cell(self):
        bad = (
            ParityChain(Direction.HORIZONTAL, 0, frozenset({(0, 0), (0, 1)}), (0, 1)),
            ParityChain(Direction.HORIZONTAL, 1, frozenset({(1, 0), (1, 1), (1, 2)}), (1, 2)),
        )
        with pytest.raises(LayoutError, match="non-parity"):
            _tiny_layout(chains=bad)

    def test_unprotected_data_cell(self):
        chains = (
            ParityChain(Direction.HORIZONTAL, 0, frozenset({(0, 0), (0, 1), (0, 2)}), (0, 2)),
            ParityChain(Direction.HORIZONTAL, 1, frozenset({(1, 0), (1, 2)}), (1, 2)),
        )
        with pytest.raises(LayoutError, match="not protected"):
            _tiny_layout(chains=chains)

    def test_orphan_parity_cell(self):
        chains = (
            ParityChain(Direction.HORIZONTAL, 0,
                        frozenset({(0, 0), (0, 1), (1, 0), (1, 1), (0, 2)}), (0, 2)),
        )
        with pytest.raises(LayoutError, match="without a chain"):
            _tiny_layout(chains=chains)


class TestCodeLayoutQueries:
    def test_kind(self):
        lay = _tiny_layout()
        assert lay.kind((0, 0)) is CellKind.DATA
        assert lay.kind((0, 2)) is CellKind.PARITY

    def test_cells_on_disk(self):
        lay = _tiny_layout()
        assert lay.cells_on_disk(0) == ((0, 0), (1, 0))
        assert lay.cells_on_disk(2) == ((0, 2), (1, 2))

    def test_cells_on_disk_out_of_range(self):
        with pytest.raises(IndexError):
            _tiny_layout().cells_on_disk(3)

    def test_chains_for_cell(self):
        lay = _tiny_layout()
        chains = lay.chains_for((0, 0))
        assert len(chains) == 1 and chains[0].chain_id == "H0"
        assert lay.chains_for((9, 9)) == ()

    def test_chains_in_direction(self):
        lay = _tiny_layout()
        assert len(lay.chains_in(Direction.HORIZONTAL)) == 2
        assert lay.chains_in(Direction.DIAGONAL) == ()

    def test_cell_index_is_stable_bijection(self):
        lay = _tiny_layout()
        idx = lay.cell_index
        assert sorted(idx.values()) == list(range(len(lay.all_cells)))

    def test_tolerates_single_cell(self):
        lay = _tiny_layout()
        assert lay.tolerates([(0, 0)])
        assert lay.tolerates([])

    def test_does_not_tolerate_two_in_one_chain(self):
        lay = _tiny_layout()
        assert not lay.tolerates([(0, 0), (0, 1)])

    def test_tolerates_disks(self):
        lay = _tiny_layout()
        assert lay.tolerates_disks([0])
        assert not lay.tolerates_disks([0, 1])

    def test_erasure_matrix_unknown_cell(self):
        with pytest.raises(KeyError):
            _tiny_layout().erasure_matrix([(7, 7)])

    def test_ascii_grid_renders(self):
        grid = _tiny_layout().ascii_grid(annotate={(0, 0): "X"})
        assert "X" in grid and "P" in grid


class TestRealLayoutStructure:
    def test_disk_counts(self):
        from repro.codes import make_code

        assert make_code("star", 5).num_disks == 8        # p + 3
        assert make_code("triple-star", 5).num_disks == 7  # p + 2
        assert make_code("tip", 5).num_disks == 6          # p + 1
        assert make_code("hdd1", 5).num_disks == 4 + 2     # p + 1

    def test_three_directions_present(self, layout):
        for direction in Direction:
            assert layout.chains_in(direction), f"no {direction} chains"

    def test_every_data_cell_has_horizontal_chain(self, layout):
        for cell in layout.data_cells:
            dirs = {ch.direction for ch in layout.chains_for(cell)}
            assert Direction.HORIZONTAL in dirs

    def test_horizontal_chains_have_one_cell_per_column(self, layout):
        for chain in layout.chains_in(Direction.HORIZONTAL):
            cols = [c for _, c in chain.cells]
            assert len(cols) == len(set(cols))

    def test_chains_hold_at_most_two_cells_per_column(self, layout):
        # One diagonal cell plus at most one adjuster cell per column.
        for chain in layout.chains:
            per_col: dict[int, int] = {}
            for _, col in chain.cells:
                per_col[col] = per_col.get(col, 0) + 1
            assert max(per_col.values()) <= 2

    def test_constraint_matrix_shape(self, layout):
        m = layout.constraint_matrix()
        assert m.shape == (len(layout.chains), len(layout.all_cells))
        assert set(m.ravel().tolist()) <= {0, 1}
