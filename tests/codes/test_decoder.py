"""Tests for erasure decoding (peeling and linear solve)."""

import itertools

import numpy as np
import pytest

from repro.codes import (
    DecodeError,
    Encoder,
    decode,
    make_code,
    peel_decode,
    solve_decode,
)


def _corrupt(stripe, cells):
    broken = stripe.copy()
    for r, c in cells:
        broken[r, c] = 0xAB
    return broken


class TestPeelDecode:
    def test_single_cell(self, encoded_stripe):
        layout, stripe = encoded_stripe
        cell = layout.data_cells[0]
        broken = _corrupt(stripe, [cell])
        remaining = peel_decode(layout, broken, [cell])
        assert not remaining
        assert np.array_equal(broken, stripe)

    def test_partial_stripe_on_one_disk(self, encoded_stripe):
        """The paper's error model: contiguous chunks on one column."""
        layout, stripe = encoded_stripe
        cells = layout.cells_on_disk(0)[:2]
        broken = _corrupt(stripe, cells)
        assert not peel_decode(layout, broken, cells)
        assert np.array_equal(broken, stripe)

    def test_whole_column(self, encoded_stripe):
        layout, stripe = encoded_stripe
        cells = layout.cells_on_disk(1)
        broken = _corrupt(stripe, cells)
        assert not peel_decode(layout, broken, cells)
        assert np.array_equal(broken, stripe)

    def test_unknown_cell_raises(self, encoded_stripe):
        layout, stripe = encoded_stripe
        with pytest.raises(KeyError):
            peel_decode(layout, stripe, [(99, 99)])

    def test_no_erasures_is_noop(self, encoded_stripe):
        layout, stripe = encoded_stripe
        copy = stripe.copy()
        assert not peel_decode(layout, copy, [])
        assert np.array_equal(copy, stripe)


class TestSolveDecode:
    def test_three_columns(self, encoded_stripe):
        layout, stripe = encoded_stripe
        cells = [c for d in (0, 1, 2) for c in layout.cells_on_disk(d)]
        broken = _corrupt(stripe, cells)
        solve_decode(layout, broken, cells)
        assert np.array_equal(broken, stripe)

    def test_undecodable_raises(self, encoded_stripe):
        layout, stripe = encoded_stripe
        # four whole columns exceed any 3DFT code
        cells = [c for d in (0, 1, 2, 3) for c in layout.cells_on_disk(d)]
        with pytest.raises(DecodeError):
            solve_decode(layout, _corrupt(stripe, cells), cells)


class TestDecode:
    def test_all_triple_column_erasures(self, code_name, rng):
        """Exhaustive: every 3-column loss decodes for p=5."""
        layout = make_code(code_name, 5)
        stripe = Encoder(layout).random_stripe(16, rng)
        for combo in itertools.combinations(range(layout.num_disks), 3):
            cells = [c for d in combo for c in layout.cells_on_disk(d)]
            broken = _corrupt(stripe, cells)
            decode(layout, broken, cells)
            assert np.array_equal(broken, stripe), combo

    def test_scattered_cells(self, encoded_stripe, rng):
        layout, stripe = encoded_stripe
        cells = list(layout.all_cells)
        picks = [cells[i] for i in rng.choice(len(cells), size=3, replace=False)]
        # scattered triples may collide in one chain; decode must still work
        broken = _corrupt(stripe, picks)
        decode(layout, broken, picks)
        assert np.array_equal(broken, stripe)

    def test_parity_only_erasure(self, encoded_stripe):
        layout, stripe = encoded_stripe
        cells = layout.parity_cells[:3]
        broken = _corrupt(stripe, cells)
        decode(layout, broken, cells)
        assert np.array_equal(broken, stripe)
