"""Tests for update-complexity metrics."""

import pytest

from repro.codes import make_code
from repro.codes.update import parities_touched, update_complexity


class TestParitiesTouched:
    def test_covers_all_data_cells(self, layout):
        touched = parities_touched(layout)
        assert set(touched) == set(layout.data_cells)

    def test_lower_bound_is_three(self, layout):
        """A 3DFT code must propagate every data write to >= 3 parities."""
        assert min(parities_touched(layout).values()) >= 3

    def test_matches_chain_membership_for_star(self, star5):
        """For STAR (diagonals over data only), a non-adjuster data cell
        touches exactly its 3 chains' parities."""
        touched = parities_touched(star5)
        for cell, count in touched.items():
            chains = star5.chains_for(cell)
            assert count == len(chains)


class TestUpdateComplexity:
    def test_summary_consistency(self, layout):
        u = update_complexity(layout)
        assert u.minimum <= u.average <= u.maximum
        assert 0.0 <= u.optimal_fraction <= 1.0
        assert u.code == layout.name

    def test_rtp_family_bounded_by_five(self):
        """TIP/Triple-STAR substitutes: a data write patches at most its
        row parity, its own two diagonals, and the row-parity cell's two
        diagonals — 5 parities."""
        for name in ("tip", "triple-star"):
            for p in (5, 7, 11):
                u = update_complexity(make_code(name, p))
                assert u.maximum <= 5, (name, p)

    def test_adjuster_cells_dominate_star_family(self):
        """STAR/HDD1: adjuster cells feed every chain of a direction, so
        the worst-case update cost grows with p."""
        for name in ("star", "hdd1"):
            small = update_complexity(make_code(name, 5))
            large = update_complexity(make_code(name, 11))
            assert large.maximum > small.maximum, name
            assert large.maximum >= large.p - 1

    def test_substitutes_are_not_update_optimal(self):
        """Documented limitation (DESIGN.md §4): our chain-geometry
        substitutes do not reproduce TIP's optimal update complexity."""
        assert not update_complexity(make_code("tip", 7)).is_optimal

    def test_star_family_has_more_optimal_cells_than_rtp(self):
        """In STAR-family codes most non-adjuster cells sit at exactly 3;
        in RTP-family codes the row-parity coupling lifts almost all."""
        star = update_complexity(make_code("star", 11))
        tip = update_complexity(make_code("tip", 11))
        assert star.optimal_fraction > tip.optimal_fraction
