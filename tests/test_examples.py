"""Smoke tests: every example script must run to completion.

Examples are living documentation; these tests keep them from rotting.
Each runs in-process via runpy with its module namespace isolated.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    """The README-promised examples all exist."""
    for name in (
        "quickstart.py",
        "recovery_scheme_walkthrough.py",
        "cache_policy_comparison.py",
        "parallel_reconstruction.py",
        "trace_replay.py",
        "lrc_recovery.py",
        "reliability_analysis.py",
        "functional_array.py",
        "field_study.py",
    ):
        assert name in ALL_EXAMPLES, name


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    """Run the example as __main__; it must exit cleanly and print output."""
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
