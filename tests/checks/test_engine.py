"""Tests for the check engine: caching, suppressions, baseline, output.

The contract under test is the one CI relies on:

* a warm-cache re-run over an unchanged tree analyzes **zero** files;
* editing one file re-analyzes only that file;
* inline suppressions absorb program-rule findings and unused ones
  surface as SUP001;
* the committed baseline absorbs accepted findings and reports stale
  entries;
* every output format round-trips through its parser.
"""

from __future__ import annotations

import io
import json
import os
import textwrap
from pathlib import Path

from repro.checks.baseline import apply_baseline, load_baseline, render_baseline
from repro.checks.engine import CheckSettings, run_engine
from repro.checks.framework import LintResult, lint_paths
from repro.checks.program_rules import LayerRule
from repro.checks.report import (
    render_json,
    render_sarif,
    render_summary,
    write_report,
)
from repro.checks.rules import ALL_RULES, default_rules


def _write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")


CLEAN_TREE = {
    "src/pkg/core/low.py": "def base():\n    return 1\n",
    "src/pkg/app/high.py": "from ..core.low import base\n\ndef helper():\n    return base()\n",
}

UPWARD_TREE = {
    "src/pkg/core/low.py": "from ..app.high import helper\n",
    "src/pkg/app/high.py": "def helper():\n    return 1\n",
}


def _settings(tmp_path: Path, **kwargs) -> CheckSettings:
    defaults = dict(
        paths=[tmp_path / "src"],
        rules=ALL_RULES,
        program_rules=(LayerRule(layers={"core": 0, "app": 1}, root="pkg"),),
        cache_path=tmp_path / "cache.json",
        baseline_path=None,
    )
    defaults.update(kwargs)
    return CheckSettings(**defaults)


class TestCache:
    def test_warm_rerun_analyzes_nothing(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        settings = _settings(tmp_path)
        cold = run_engine(settings)
        assert cold.files_analyzed == cold.files_checked == 2
        warm = run_engine(settings)
        assert warm.files_analyzed == 0
        assert warm.files_checked == 2
        assert [v.key for v in warm.violations] == [v.key for v in cold.violations]

    def test_edit_reanalyzes_only_that_file(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        settings = _settings(tmp_path)
        run_engine(settings)
        target = tmp_path / "src" / "pkg" / "core" / "low.py"
        target.write_text("def base():\n    return 2  # changed\n", encoding="utf-8")
        outcome = run_engine(settings)
        assert outcome.files_analyzed == 1

    def test_touch_without_change_stays_cached(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        settings = _settings(tmp_path)
        run_engine(settings)
        target = tmp_path / "src" / "pkg" / "core" / "low.py"
        stat = target.stat()
        os.utime(target, (stat.st_atime + 60, stat.st_mtime + 60))
        outcome = run_engine(settings)
        assert outcome.files_analyzed == 0

    def test_no_cache_path_always_analyzes(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        settings = _settings(tmp_path, cache_path=None)
        assert run_engine(settings).files_analyzed == 2
        assert run_engine(settings).files_analyzed == 2

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        settings = _settings(tmp_path)
        run_engine(settings)
        (tmp_path / "cache.json").write_text("{not json", encoding="utf-8")
        assert run_engine(settings).files_analyzed == 2


class TestProgramRuleFiltering:
    def test_upward_import_reported(self, tmp_path):
        _write_tree(tmp_path, UPWARD_TREE)
        outcome = run_engine(_settings(tmp_path))
        assert [v.rule_id for v in outcome.errors] == ["ARCH001"]
        assert outcome.errors[0].key == "pkg.core.low->pkg.app.high"

    def test_inline_suppression_absorbs_program_finding(self, tmp_path):
        tree = dict(UPWARD_TREE)
        tree["src/pkg/core/low.py"] = (
            "from ..app.high import helper  # simlint: disable=ARCH001\n"
        )
        _write_tree(tmp_path, tree)
        outcome = run_engine(_settings(tmp_path))
        assert outcome.errors == []
        assert outcome.suppressed == 1
        # The comment absorbed a finding, so no SUP001 either.
        assert [v.rule_id for v in outcome.warnings] == []

    def test_unused_suppression_becomes_sup001(self, tmp_path):
        tree = dict(CLEAN_TREE)
        tree["src/pkg/core/low.py"] = (
            "def base():\n    return 1  # simlint: ignore[ARCH001]\n"
        )
        _write_tree(tmp_path, tree)
        outcome = run_engine(_settings(tmp_path))
        assert [v.rule_id for v in outcome.warnings] == ["SUP001"]
        assert outcome.errors == []

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        tree = dict(CLEAN_TREE)
        tree["src/pkg/core/low.py"] = (
            '"""Suppress with ``# simlint: ignore[ARCH001]``."""\n'
            "def base():\n    return 1\n"
        )
        _write_tree(tmp_path, tree)
        outcome = run_engine(_settings(tmp_path))
        assert outcome.violations == []


class TestBaseline:
    def test_round_trip_absorbs_findings(self, tmp_path):
        _write_tree(tmp_path, UPWARD_TREE)
        no_baseline = run_engine(_settings(tmp_path))
        assert len(no_baseline.errors) == 1

        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text(
            render_baseline(no_baseline.prebaseline, {}), encoding="utf-8"
        )
        outcome = run_engine(_settings(tmp_path, baseline_path=baseline_path))
        assert outcome.errors == []
        assert outcome.baselined == 1
        assert outcome.unused_baseline == []

    def test_baseline_preserves_tracking_comments(self, tmp_path):
        _write_tree(tmp_path, UPWARD_TREE)
        outcome = run_engine(_settings(tmp_path))
        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text(
            render_baseline(outcome.prebaseline, {}), encoding="utf-8"
        )
        entries = load_baseline(baseline_path)
        noted = {fp: "accepted: legacy edge" for fp in entries}
        regenerated = render_baseline(outcome.prebaseline, noted)
        assert "accepted: legacy edge" in regenerated

    def test_stale_entry_reported_as_unused(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text(
            "ARCH001|src/pkg/core/low.py|pkg.core.low->pkg.app.gone|stale\n",
            encoding="utf-8",
        )
        outcome = run_engine(_settings(tmp_path, baseline_path=baseline_path))
        assert outcome.violations == []
        assert outcome.unused_baseline == [
            ("ARCH001", "src/pkg/core/low.py", "pkg.core.low->pkg.app.gone")
        ]

    def test_apply_baseline_is_exact_fingerprint_match(self, tmp_path):
        _write_tree(tmp_path, UPWARD_TREE)
        outcome = run_engine(_settings(tmp_path))
        wrong = {
            ("ARCH001", "src/pkg/core/low.py", "pkg.core.low->pkg.other"): "x"
        }
        surviving, absorbed, unused = apply_baseline(outcome.prebaseline, wrong)
        assert len(surviving) == 1 and absorbed == [] and len(unused) == 1


class TestOutputFormats:
    def _outcome(self, tmp_path):
        _write_tree(tmp_path, UPWARD_TREE)
        return run_engine(_settings(tmp_path))

    def test_json_round_trips(self, tmp_path):
        payload = json.loads(render_json(self._outcome(tmp_path)))
        assert payload["errors"] == 1
        assert payload["violations"][0]["rule_id"] == "ARCH001"

    def test_sarif_is_valid_2_1_0(self, tmp_path):
        log = json.loads(render_sarif(self._outcome(tmp_path)))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        result = run["results"][0]
        assert result["ruleId"] == "ARCH001"
        assert result["level"] == "error"
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1
        assert "simlintKey" in result["partialFingerprints"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "ARCH001" in rule_ids

    def test_sarif_warning_level(self, tmp_path):
        tree = dict(CLEAN_TREE)
        tree["src/pkg/core/low.py"] = (
            "def base():\n    return 1  # simlint: ignore[ARCH001]\n"
        )
        _write_tree(tmp_path, tree)
        log = json.loads(render_sarif(run_engine(_settings(tmp_path))))
        assert log["runs"][0]["results"][0]["level"] == "warning"


class TestLegacyInterface:
    """The pre-engine entry points stay importable and correct."""

    def test_lint_paths_with_default_rules(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        result = lint_paths([tmp_path / "src"], default_rules())
        assert isinstance(result, LintResult)
        assert result.files_checked == 2 and result.ok

    def test_render_summary_and_write_report(self, tmp_path):
        _write_tree(tmp_path, CLEAN_TREE)
        result = lint_paths([tmp_path / "src"], default_rules())
        assert "2 files checked" in render_summary(result)
        stream = io.StringIO()
        write_report(result, stream)
        assert "0 violations" in stream.getvalue()
