"""Property test: random request traces never break the FBF invariants.

Hypothesis drives arbitrary fetch/hit/evict interleavings (small key
spaces force heavy reuse and eviction pressure) against ``FBFCache``
under the strict sanitizer — any single-residency, demotion-order, or
capacity-accounting violation raises and fails the test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import SimSanitizer
from repro.core.fbf_cache import FBFCache

# Tight key space (8 keys) so traces revisit blocks: hits exercise the
# demotion path, and capacity below the key count exercises eviction.
keys = st.integers(min_value=0, max_value=7)
priorities = st.one_of(st.none(), st.integers(min_value=1, max_value=5))
ops = st.lists(st.tuples(keys, priorities), min_size=1, max_size=200)


@settings(max_examples=200, deadline=None)
@given(
    trace=ops,
    capacity=st.integers(min_value=0, max_value=6),
    demote=st.booleans(),
    n_queues=st.integers(min_value=1, max_value=5),
)
def test_random_trace_preserves_invariants(trace, capacity, demote, n_queues):
    cache = SimSanitizer(
        FBFCache(capacity, demote_on_hit=demote, n_queues=n_queues)
    )
    for key, priority in trace:
        cache.request(key, priority=priority)  # strict: raises on violation
    stats = cache.stats
    assert stats.requests == len(trace)
    assert len(cache) <= capacity
    assert stats.evictions <= stats.misses


@settings(max_examples=100, deadline=None)
@given(trace=ops, capacity=st.integers(min_value=1, max_value=6))
def test_interleaved_reset_preserves_invariants(trace, capacity):
    """Reset mid-trace must return the policy to a consistent empty state."""
    cache = SimSanitizer(FBFCache(capacity))
    for i, (key, priority) in enumerate(trace):
        cache.request(key, priority=priority)
        if i % 31 == 30:
            cache.reset()
            assert len(cache) == 0 and cache.stats.requests == 0


@settings(max_examples=100, deadline=None)
@given(trace=ops, capacity=st.integers(min_value=1, max_value=6))
def test_sanitizer_is_transparent(trace, capacity):
    """A sanitized cache makes exactly the decisions of a bare one."""
    bare = FBFCache(capacity)
    checked = SimSanitizer(FBFCache(capacity))
    for key, priority in trace:
        assert bare.request(key, priority=priority) == checked.request(
            key, priority=priority
        )
    assert bare.stats.hits == checked.stats.hits
    assert bare.stats.evictions == checked.stats.evictions
    for queue in range(1, bare.n_queues + 1):
        assert bare.queue_contents(queue) == checked.policy.queue_contents(queue)
