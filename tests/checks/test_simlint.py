"""Tests for the simlint static-analysis pass.

The headline test lints the entire ``src/`` tree and fails on any new
violation — that is the regression guard every future PR runs against.
The seeded-violation tests write intentionally broken modules into paths
matching each rule's scope and assert file:line diagnostics come back.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.checks import (
    ALL_RULES,
    lint_paths,
    lint_source,
    rules_by_id,
    run_check,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def lint_snippet(source: str, path: str):
    """Lint one in-memory module against the full rule set."""
    violations, suppressed = lint_source(source, path, ALL_RULES)
    return violations


class TestWholeTree:
    def test_src_tree_is_clean(self):
        """The repo's own source must satisfy every simlint rule."""
        result = lint_paths([SRC], ALL_RULES)
        formatted = "\n".join(v.format() for v in result.violations)
        assert result.ok, f"simlint violations in src/:\n{formatted}"
        assert result.files_checked > 50  # the walker really walked the tree

    def test_rule_ids_unique(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert all(rule.summary for rule in ALL_RULES)


class TestWallClock:
    def test_time_time_in_sim_flagged(self):
        violations = lint_snippet(
            "import time\n\ndef proc(env):\n    start = time.time()\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM001"]
        assert violations[0].line == 4

    def test_time_sleep_in_cache_flagged(self):
        violations = lint_snippet(
            "from time import sleep\n\ndef slow():\n    sleep(1)\n",
            "src/repro/cache/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM001"]

    def test_perf_counter_allowed(self):
        """Table IV measures real planning overhead with perf_counter."""
        violations = lint_snippet(
            "import time\n\ndef measure():\n    return time.perf_counter()\n",
            "src/repro/sim/controller.py",
        )
        assert violations == []

    def test_out_of_scope_not_flagged(self):
        violations = lint_snippet(
            "import time\n\ndef stamp():\n    return time.time()\n",
            "src/repro/bench/reporting.py",
        )
        assert violations == []


class TestYieldNonEvent:
    def test_literal_yield_flagged(self):
        violations = lint_snippet(
            "def proc(env):\n    yield 5\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM002"]

    def test_bare_yield_flagged(self):
        violations = lint_snippet(
            "def proc(env):\n    yield\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM002"]

    def test_event_yield_allowed(self):
        violations = lint_snippet(
            "def proc(env):\n    yield env.timeout(1.0)\n    x = yield env.event()\n",
            "src/repro/sim/broken.py",
        )
        assert violations == []


class TestUnseededRandom:
    def test_global_random_flagged(self):
        violations = lint_snippet(
            "import random\n\ndef pick():\n    return random.random()\n",
            "src/repro/cache/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET001"]

    def test_seeded_instance_allowed(self):
        violations = lint_snippet(
            "import random\n\ndef make(seed):\n    return random.Random(seed)\n",
            "src/repro/cache/broken.py",
        )
        assert violations == []

    def test_legacy_numpy_random_flagged(self):
        violations = lint_snippet(
            "import numpy as np\n\ndef pick():\n    return np.random.randint(10)\n",
            "src/repro/workloads/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET001"]

    def test_default_rng_allowed(self):
        violations = lint_snippet(
            "import numpy as np\n\ndef make(seed):\n    return np.random.default_rng(seed)\n",
            "src/repro/workloads/broken.py",
        )
        assert violations == []


class TestUnorderedIteration:
    def test_for_over_set_flagged(self):
        violations = lint_snippet(
            "def f():\n    pending = set()\n    for item in pending:\n        print(item)\n",
            "src/repro/sim/broken.py",
        )
        assert any(v.rule_id == "DET002" for v in violations)

    def test_annotated_self_attr_iteration_flagged(self):
        source = (
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self._live: set[int] = set()\n"
            "    def drain(self):\n"
            "        return list(self._live)\n"
        )
        violations = lint_snippet(source, "src/repro/analysis/broken.py")
        assert any(v.rule_id == "DET002" for v in violations)

    def test_sorted_wrapper_allowed(self):
        violations = lint_snippet(
            "def f():\n    pending = set()\n    for item in sorted(pending):\n        print(item)\n",
            "src/repro/sim/broken.py",
        )
        assert [v for v in violations if v.rule_id == "DET002"] == []

    def test_order_insensitive_consumers_allowed(self):
        source = (
            "def f(items):\n"
            "    chosen = set(items)\n"
            "    return any(x > 3 for x in chosen), sum(x for x in chosen), min(chosen)\n"
        )
        violations = lint_snippet(source, "src/repro/sim/broken.py")
        assert [v for v in violations if v.rule_id == "DET002"] == []

    def test_same_name_in_other_function_not_tainted(self):
        """A name assigned as a set in one function is local to it."""
        source = (
            "def a(items):\n"
            "    chosen = set(items)\n"
            "    return len(chosen)\n"
            "def b(items):\n"
            "    chosen = sorted(set(items))\n"
            "    return [x for x in chosen]\n"
        )
        violations = lint_snippet(source, "src/repro/sim/broken.py")
        assert [v for v in violations if v.rule_id == "DET002"] == []

    def test_set_pop_flagged(self):
        violations = lint_snippet(
            "def f():\n    live = set()\n    return live.pop()\n",
            "src/repro/sim/broken.py",
        )
        assert any("set.pop()" in v.message for v in violations)


class TestUnorderedState:
    def test_set_state_in_kernel_scope_flagged(self):
        source = (
            "class Resource:\n"
            "    def __init__(self):\n"
            "        self._holders: set[int] = set()\n"
        )
        violations = lint_snippet(source, "src/repro/sim/kernel.py")
        assert any(v.rule_id == "DET003" for v in violations)

    def test_dict_state_allowed(self):
        source = (
            "class Resource:\n"
            "    def __init__(self):\n"
            "        self._holders: dict[int, None] = {}\n"
        )
        violations = lint_snippet(source, "src/repro/sim/kernel.py")
        assert [v for v in violations if v.rule_id == "DET003"] == []

    def test_out_of_scope_sim_module_not_flagged(self):
        source = (
            "class Oracle:\n"
            "    def __init__(self):\n"
            "        self._seen: set[int] = set()\n"
        )
        violations = lint_snippet(source, "src/repro/sim/datapath.py")
        assert [v for v in violations if v.rule_id == "DET003"] == []


class TestPolicyConformance:
    BROKEN_PATH = "src/repro/cache/broken.py"

    def test_mutable_class_state_flagged(self):
        source = (
            "from .base import CachePolicy\n"
            "class BadCache(CachePolicy):\n"
            "    name = 'bad'\n"
            "    shared = []\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        assert any(v.rule_id == "POL001" for v in violations)

    def test_dataclass_exempt_from_mutable_state(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Stats:\n"
            "    samples: list = field(default_factory=list)\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        assert [v for v in violations if v.rule_id == "POL001"] == []

    def test_missing_name_flagged(self):
        source = (
            "from .base import CachePolicy\n"
            "class NoName(CachePolicy):\n"
            "    def request(self, key, priority=None):\n"
            "        return False\n"
            "    def __contains__(self, key):\n"
            "        return False\n"
            "    def __len__(self):\n"
            "        return 0\n"
            "    def _clear(self):\n"
            "        pass\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        assert any(
            v.rule_id == "POL002" and "name" in v.message for v in violations
        )

    def test_missing_method_flagged(self):
        source = (
            "from .base import CachePolicy\n"
            "class Partial(CachePolicy):\n"
            "    name = 'partial'\n"
            "    def request(self, key, priority=None):\n"
            "        return False\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        missing = {v.message.split()[-1] for v in violations if v.rule_id == "POL002"}
        assert "__contains__()" in missing and "_clear()" in missing

    def test_wrong_request_signature_flagged(self):
        source = (
            "from .base import CachePolicy\n"
            "class Drift(CachePolicy):\n"
            "    name = 'drift'\n"
            "    def request(self, key, weight=1.0):\n"
            "        return False\n"
            "    def __contains__(self, key):\n"
            "        return False\n"
            "    def __len__(self):\n"
            "        return 0\n"
            "    def _clear(self):\n"
            "        pass\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        assert any(
            v.rule_id == "POL002" and "signature" in v.message for v in violations
        )

    def test_conforming_policy_clean(self):
        source = (
            "from .base import Key, SimpleCachePolicy\n"
            "class Fine(SimpleCachePolicy):\n"
            "    name = 'fine'\n"
            "    def __init__(self, capacity):\n"
            "        super().__init__(capacity)\n"
            "        self._d = {}\n"
            "    def __contains__(self, key):\n"
            "        return key in self._d\n"
            "    def __len__(self):\n"
            "        return len(self._d)\n"
            "    def _clear(self):\n"
            "        self._d.clear()\n"
            "    def _on_hit(self, key):\n"
            "        pass\n"
            "    def _admit(self, key, priority):\n"
            "        self._d[key] = None\n"
            "    def _evict(self):\n"
            "        return next(iter(self._d))\n"
        )
        violations = lint_snippet(source, self.BROKEN_PATH)
        assert violations == []


class TestGF2Purity:
    def test_true_division_flagged(self):
        violations = lint_snippet(
            "def norm(a, b):\n    return a / b\n",
            "src/repro/codes/broken.py",
        )
        assert [v.rule_id for v in violations] == ["GF2001"]

    def test_floor_division_allowed(self):
        violations = lint_snippet(
            "def rows(a, b):\n    return a // b\n",
            "src/repro/codes/broken.py",
        )
        assert violations == []

    def test_float_dtype_flagged(self):
        violations = lint_snippet(
            "import numpy as np\n\ndef mat(n):\n    return np.zeros(n, dtype=np.float64)\n",
            "src/repro/codes/broken.py",
        )
        assert [v.rule_id for v in violations] == ["GF2001"]

    def test_astype_float_flagged(self):
        violations = lint_snippet(
            "def f(a):\n    return a.astype(float)\n",
            "src/repro/codes/broken.py",
        )
        assert [v.rule_id for v in violations] == ["GF2001"]

    def test_uint_dtypes_allowed(self):
        violations = lint_snippet(
            "import numpy as np\n\ndef mat(n):\n    return np.zeros(n, dtype=np.uint8)\n",
            "src/repro/codes/broken.py",
        )
        assert violations == []


class TestCpuCountLeak:
    def test_cpu_count_in_sim_scope_flagged(self):
        violations = lint_snippet(
            "import os\n\ndef workers():\n    return os.cpu_count()\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET004"]
        assert violations[0].line == 4

    def test_cpu_count_in_workloads_flagged(self):
        violations = lint_snippet(
            "from os import cpu_count\n\ndef trace_len():\n    return cpu_count() * 8\n",
            "src/repro/workloads/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET004"]

    def test_cpu_count_into_sim_config_flagged(self):
        """Even outside sim scopes, cpu_count must not reach sim params."""
        violations = lint_snippet(
            "import os\n\nfrom repro.sim.reconstruction import SimConfig\n\n"
            "def cfg():\n    return SimConfig(workers=os.cpu_count())\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET004"]

    def test_tainted_name_into_entry_point_flagged(self):
        violations = lint_snippet(
            "import os\n\nn = os.cpu_count()\n\n"
            "def errs(layout, cfg):\n    return generate_errors(layout, cfg, n)\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET004"]

    def test_pool_sizing_allowed(self):
        """The legitimate use: sizing a ProcessPoolExecutor."""
        violations = lint_snippet(
            "import os\nfrom concurrent.futures import ProcessPoolExecutor\n\n"
            "def pool():\n    return ProcessPoolExecutor(max_workers=os.cpu_count())\n",
            "src/repro/bench/broken.py",
        )
        assert violations == []

    def test_unrelated_name_not_tainted(self):
        violations = lint_snippet(
            "def errs(layout, cfg, n):\n    return generate_errors(layout, cfg, n)\n",
            "src/repro/bench/broken.py",
        )
        assert violations == []


class TestEngineScopes:
    """The unified-engine modules joined the simulator rule scopes."""

    def test_wall_clock_in_engine_flagged(self):
        violations = lint_snippet(
            "import time\n\ndef replay():\n    return time.time()\n",
            "src/repro/engine/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM001"]

    def test_wall_clock_in_lrc_flagged(self):
        violations = lint_snippet(
            "import time\n\ndef plan():\n    return time.time()\n",
            "src/repro/lrc/broken.py",
        )
        assert [v.rule_id for v in violations] == ["SIM001"]

    def test_cpu_count_in_engine_flagged(self):
        violations = lint_snippet(
            "import os\n\ndef workers():\n    return os.cpu_count()\n",
            "src/repro/engine/broken.py",
        )
        assert [v.rule_id for v in violations] == ["DET004"]

    def test_cpu_count_into_engine_entry_points_flagged(self):
        for call in (
            "simulate_trace(b, e, workers=os.cpu_count())",
            "run_timed_replay(b, e, cfg, os.cpu_count())",
            "make_backend('tip', os.cpu_count())",
            "b.generate_events(os.cpu_count(), 42)",
        ):
            violations = lint_snippet(
                f"import os\n\ndef f(b, e, cfg):\n    return {call}\n",
                "src/repro/bench/broken.py",
            )
            assert [v.rule_id for v in violations] == ["DET004"], call

    def test_mutable_class_state_in_engine_flagged(self):
        violations = lint_snippet(
            "class Backend:\n    plans = {}\n",
            "src/repro/engine/broken.py",
        )
        assert [v.rule_id for v in violations] == ["POL001"]

    def test_set_state_in_engine_flagged(self):
        violations = lint_snippet(
            "class PlanCache:\n    def __init__(self):\n"
            "        self.keys: set[int] = set()\n",
            "src/repro/engine/broken.py",
        )
        assert "DET003" in [v.rule_id for v in violations]

    def test_policy_conformance_in_engine_scope(self):
        violations = lint_snippet(
            "from repro.cache.base import CachePolicy\n\n"
            "class Rogue(CachePolicy):\n    name = 'rogue'\n",
            "src/repro/engine/broken.py",
        )
        assert all(v.rule_id == "POL002" for v in violations)
        assert violations  # missing required methods


class TestLegacyReplayImport:
    """ENG001: the deleted repro.lrc.tracesim world must stay deleted."""

    def test_absolute_module_import_flagged(self):
        violations = lint_snippet(
            "import repro.lrc.tracesim\n", "src/repro/bench/broken.py"
        )
        assert [v.rule_id for v in violations] == ["ENG001"]

    def test_from_module_import_flagged(self):
        violations = lint_snippet(
            "from repro.lrc.tracesim import simulate_lrc_trace\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["ENG001"]

    def test_relative_module_import_flagged(self):
        violations = lint_snippet(
            "from ..lrc.tracesim import simulate_lrc_trace\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["ENG001"]

    def test_relative_import_inside_lrc_flagged(self):
        violations = lint_snippet(
            "from .tracesim import LRCTraceResult\n",
            "src/repro/lrc/__init__.py",
        )
        assert [v.rule_id for v in violations] == ["ENG001"]

    def test_deleted_name_via_package_flagged(self):
        violations = lint_snippet(
            "from repro.lrc import LRCCode, simulate_lrc_trace\n",
            "src/repro/cli.py",
        )
        assert [v.rule_id for v in violations] == ["ENG001"]

    def test_surviving_lrc_imports_allowed(self):
        violations = lint_snippet(
            "from repro.lrc import LRCCode, generate_lrc_failures\n",
            "src/repro/cli.py",
        )
        assert violations == []

    def test_sim_tracesim_adapter_allowed(self):
        """repro.sim.tracesim survives as a thin engine adapter."""
        violations = lint_snippet(
            "from repro.sim.tracesim import simulate_cache_trace\n",
            "src/repro/bench/broken.py",
        )
        assert violations == []

    def test_engine_imports_allowed(self):
        violations = lint_snippet(
            "from repro.engine import LRCBackend, simulate_trace\n",
            "src/repro/bench/broken.py",
        )
        assert violations == []


class TestDirectPlanBuild:
    """PERF001: plans are built through the PlanCache memo only."""

    def test_direct_call_flagged(self):
        violations = lint_snippet(
            "def plans(backend, events):\n"
            "    return [backend.build_plan(e) for e in events]\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["PERF001"]
        assert violations[0].line == 2

    def test_self_backend_call_flagged(self):
        violations = lint_snippet(
            "class Controller:\n"
            "    def plan_for(self, error):\n"
            "        return self.backend.build_plan(error)\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["PERF001"]

    def test_plan_cache_home_exempt(self):
        """The one legal call site: PlanCache.get in engine/tracesim.py."""
        violations = lint_snippet(
            "class PlanCache:\n"
            "    def get(self, event):\n"
            "        return self.backend.build_plan(event)\n",
            "src/repro/engine/tracesim.py",
        )
        assert violations == []

    def test_plan_cache_get_allowed(self):
        violations = lint_snippet(
            "def plans(cache, events):\n"
            "    return [cache.get(e) for e in events]\n",
            "src/repro/sim/controller.py",
        )
        assert violations == []


class TestZeroTimeout:
    """PERF002: constant env.timeout(0) should be env.schedule_now()."""

    def test_constant_zero_flagged(self):
        violations = lint_snippet(
            "def proc(env):\n"
            "    yield env.timeout(0)\n",
            "src/repro/sim/broken.py",
        )
        assert [v.rule_id for v in violations] == ["PERF002"]
        assert violations[0].line == 2
        assert "schedule_now" in violations[0].message

    def test_constant_zero_float_flagged(self):
        violations = lint_snippet(
            "def proc(env):\n"
            "    yield env.timeout(0.0, value)\n",
            "src/repro/engine/broken.py",
        )
        assert [v.rule_id for v in violations] == ["PERF002"]

    def test_variable_delay_allowed(self):
        """A runtime-zero delay through a variable is the normal timed path."""
        violations = lint_snippet(
            "def proc(env, delay):\n"
            "    yield env.timeout(delay)\n"
            "    yield env.timeout(max(0.0, delay))\n",
            "src/repro/sim/broken.py",
        )
        assert violations == []

    def test_nonzero_constant_allowed(self):
        violations = lint_snippet(
            "def proc(env):\n"
            "    yield env.timeout(1.0)\n",
            "src/repro/sim/broken.py",
        )
        assert violations == []

    def test_bool_false_not_flagged(self):
        """False == 0 numerically, but it is not a constant zero delay."""
        violations = lint_snippet(
            "def proc(env, flag):\n"
            "    yield env.timeout(False)\n",
            "src/repro/sim/broken.py",
        )
        assert violations == []

    def test_kernel_home_exempt(self):
        """The kernel defines both spellings; its own zero delays are legal."""
        violations = lint_snippet(
            "def equivalent(env):\n"
            "    return env.timeout(0)\n",
            "src/repro/sim/kernel.py",
        )
        assert violations == []

    def test_schedule_now_allowed(self):
        violations = lint_snippet(
            "def proc(env):\n"
            "    yield env.schedule_now()\n",
            "src/repro/sim/broken.py",
        )
        assert violations == []


class TestBarePrint:
    """OBS001: library code reports through repro.obs.emit, never print()."""

    def test_print_in_library_flagged(self):
        violations = lint_snippet(
            "def report(rows):\n"
            "    for row in rows:\n"
            "        print(row)\n",
            "src/repro/bench/broken.py",
        )
        assert [v.rule_id for v in violations] == ["OBS001"]
        assert violations[0].line == 3

    def test_emit_allowed(self):
        violations = lint_snippet(
            "from repro.obs import emit\n\ndef report(row):\n    emit(row)\n",
            "src/repro/bench/reporting.py",
        )
        assert violations == []

    def test_console_module_exempt(self):
        violations = lint_snippet(
            "def emit(text):\n    print(text)\n",
            "src/repro/obs/console.py",
        )
        assert violations == []

    def test_out_of_scope_not_flagged(self):
        violations = lint_snippet(
            "print('hello')\n",
            "scripts/tool.py",
        )
        assert violations == []

    def test_docstring_mention_not_flagged(self):
        violations = lint_snippet(
            '"""Example::\n\n    print(result)\n"""\n',
            "src/repro/bench/docs.py",
        )
        assert violations == []


class TestSuppression:
    def test_blanket_ignore(self):
        source = "import time\n\ndef f():\n    return time.time()  # simlint: ignore\n"
        violations, suppressed = lint_source(
            source, "src/repro/sim/broken.py", ALL_RULES
        )
        assert violations == [] and suppressed == 1

    def test_targeted_ignore(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  # simlint: ignore[SIM001]\n"
        )
        violations, suppressed = lint_source(
            source, "src/repro/sim/broken.py", ALL_RULES
        )
        assert violations == [] and suppressed == 1

    def test_wrong_id_does_not_suppress(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  # simlint: ignore[GF2001]\n"
        )
        violations, suppressed = lint_source(
            source, "src/repro/sim/broken.py", ALL_RULES
        )
        assert [v.rule_id for v in violations] == ["SIM001"] and suppressed == 0


class TestCheckCommand:
    def seed_violation(self, tmp_path: Path) -> Path:
        bad = tmp_path / "src" / "repro" / "cache" / "bad_policy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n\ndef tiebreak():\n    return random.random()\n",
            encoding="utf-8",
        )
        return bad

    def test_clean_tree_exit_zero(self):
        stream = io.StringIO()
        assert run_check([str(SRC)], stream=stream) == 0
        assert "0 violations" in stream.getvalue()

    def test_seeded_violation_exit_nonzero(self, tmp_path):
        bad = self.seed_violation(tmp_path)
        stream = io.StringIO()
        assert run_check([str(tmp_path)], stream=stream) == 1
        out = stream.getvalue()
        assert f"{bad}:4:" in out and "DET001" in out

    def test_select_filters_rules(self, tmp_path):
        self.seed_violation(tmp_path)
        stream = io.StringIO()
        assert run_check([str(tmp_path)], select=["GF2001"], stream=stream) == 0

    def test_unknown_rule_id_usage_error(self):
        stream = io.StringIO()
        assert run_check(["src"], select=["NOPE99"], stream=stream) == 2

    def test_missing_path_usage_error(self, tmp_path):
        stream = io.StringIO()
        missing = tmp_path / "nope"
        assert run_check([str(missing)], stream=stream) == 2
        assert "no such file or directory" in stream.getvalue()

    def test_list_rules(self):
        stream = io.StringIO()
        assert run_check([], list_rules=True, stream=stream) == 0
        out = stream.getvalue()
        assert all(rule_id in out for rule_id in rules_by_id())

    def test_cli_integration(self, capsys):
        from repro.cli import main

        assert main(["check", str(SRC)]) == 0
        assert "0 violations" in capsys.readouterr().out
        assert main(["check", "--list-rules"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("rule_id", sorted(rules_by_id()))
    def test_every_rule_reachable_by_select(self, rule_id):
        stream = io.StringIO()
        assert run_check([str(SRC)], select=[rule_id], stream=stream) == 0
