"""Tests for the whole-program rules over synthetic fixture trees.

Each test builds a tiny project as in-memory sources, summarizes it into
a :class:`ProjectGraph`, and runs one rule with an explicit layer map /
entry list / scope — so the assertions do not depend on the real tree's
layout (which has its own coverage via ``repro-fbf check src`` in
``test_engine.py``).
"""

from __future__ import annotations

import textwrap

from repro.checks.graph import ProjectGraph, summarize_source
from repro.checks.program_rules import (
    ApiManifestRule,
    DeadDefRule,
    LayerRule,
    ObsGuardRule,
    SeedProvenanceRule,
    render_manifest,
)


def _graph(modules: dict[str, str]) -> ProjectGraph:
    summaries = []
    for mod, src in modules.items():
        parts = mod.split(".")
        # tests.* fixtures live outside src/ so DeadDefRule treats them as
        # usage roots, exactly like the real tests/ directory.
        prefix = "" if parts[0] == "tests" else "src/"
        if src.startswith("#package"):
            path = prefix + "/".join(parts) + "/__init__.py"
        else:
            path = prefix + "/".join(parts) + ".py"
        summaries.append(summarize_source(textwrap.dedent(src), path, mod))
    return ProjectGraph(summaries)


LAYERS = {"core": 0, "app": 1}


class TestLayerRule:
    def _rule(self, **kwargs) -> LayerRule:
        return LayerRule(layers=LAYERS, cross_cutting=(), root="pkg", **kwargs)

    def test_upward_import_is_an_error(self):
        graph = _graph(
            {
                "pkg.core.low": "from ..app.high import helper\n",
                "pkg.app.high": "def helper():\n    return 1\n",
            }
        )
        found = list(self._rule().check(graph))
        assert [v.key for v in found] == ["pkg.core.low->pkg.app.high"]
        assert found[0].severity == "error"

    def test_downward_import_is_fine(self):
        graph = _graph(
            {
                "pkg.app.high": "from ..core.low import base\n",
                "pkg.core.low": "def base():\n    return 1\n",
            }
        )
        assert list(self._rule().check(graph)) == []

    def test_type_checking_import_is_exempt(self):
        graph = _graph(
            {
                "pkg.core.low": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from ..app.high import Helper\n"
                ),
                "pkg.app.high": "class Helper:\n    pass\n",
            }
        )
        assert list(self._rule().check(graph)) == []

    def test_lazy_import_still_counts_for_layering(self):
        graph = _graph(
            {
                "pkg.core.low": (
                    "def load():\n"
                    "    from ..app.high import helper\n"
                    "    return helper()\n"
                ),
                "pkg.app.high": "def helper():\n    return 1\n",
            }
        )
        assert [v.key for v in self._rule().check(graph)] == [
            "pkg.core.low->pkg.app.high"
        ]

    def test_cross_cutting_allowlist(self):
        graph = _graph(
            {
                "pkg.core.low": "from ..app.shared import helper\n",
                "pkg.app.shared": "def helper():\n    return 1\n",
            }
        )
        rule = LayerRule(
            layers=LAYERS, cross_cutting=("pkg.app.shared",), root="pkg"
        )
        assert list(rule.check(graph)) == []

    def test_import_cycle_is_an_error(self):
        graph = _graph(
            {
                "pkg.app.a": "from .b import beta\n",
                "pkg.app.b": "from .a import alpha\n",
            }
        )
        found = list(self._rule().check(graph))
        assert [v.key for v in found] == ["cycle:pkg.app.a+pkg.app.b"]

    def test_dotted_submodule_key_overrides_package_layer(self):
        # core.bridge is promoted to app's layer, so its upward import is
        # legal while its sibling's identical import stays an error.
        graph = _graph(
            {
                "pkg.core.low": "from ..app.high import helper\n",
                "pkg.core.bridge": "from ..app.high import helper\n",
                "pkg.app.high": "def helper():\n    return 1\n",
            }
        )
        rule = LayerRule(
            layers={"core": 0, "core.bridge": 1, "app": 1},
            cross_cutting=(), root="pkg",
        )
        found = list(rule.check(graph))
        assert [v.key for v in found] == ["pkg.core.low->pkg.app.high"]

    def test_modules_outside_root_are_not_layered(self):
        graph = _graph(
            {
                "tests.core.test_low": "from pkg.app.high import helper\n",
                "pkg.app.high": "def helper():\n    return 1\n",
            }
        )
        assert list(self._rule().check(graph)) == []


class TestDeadDefRule:
    def _rule(self) -> DeadDefRule:
        return DeadDefRule(entry_modules=("pkg.api",))

    def test_unreferenced_def_is_flagged(self):
        graph = _graph(
            {
                "pkg.api": (
                    "from .lib import used\n"
                    '__all__ = ["used"]\n'
                    "def main():\n"
                    "    return used()\n"
                ),
                "pkg.lib": (
                    "def used():\n"
                    "    return 1\n"
                    "def dead():\n"
                    "    return 2\n"
                ),
            }
        )
        found = list(self._rule().check(graph))
        assert [v.key for v in found] == ["pkg.lib:dead"]
        assert found[0].severity == "warning"

    def test_transitive_reachability(self):
        graph = _graph(
            {
                "pkg.api": "from .lib import top\n__all__ = [\"top\"]\n",
                "pkg.lib": (
                    "from .deep import leaf\n"
                    "def top():\n"
                    "    return leaf()\n"
                ),
                "pkg.deep": "def leaf():\n    return 1\n",
            }
        )
        assert list(self._rule().check(graph)) == []

    def test_test_reference_keeps_def_alive(self):
        graph = _graph(
            {
                "pkg.api": "#package\n",
                "pkg.lib": "def only_tested():\n    return 1\n",
                "tests.test_lib": (
                    "from pkg.lib import only_tested\n"
                    "def test_it():\n"
                    "    assert only_tested() == 1\n"
                ),
            }
        )
        assert list(self._rule().check(graph)) == []

    def test_decorated_and_dunder_defs_exempt(self):
        graph = _graph(
            {
                "pkg.api": "#package\n",
                "pkg.lib": (
                    "import functools\n"
                    "@functools.cache\n"
                    "def registered():\n"
                    "    return 1\n"
                    "def __getattr__(name):\n"
                    "    raise AttributeError(name)\n"
                ),
            }
        )
        assert list(self._rule().check(graph)) == []


class TestSeedProvenanceRule:
    SOURCE = """\
        import random

        def good(seed):
            return random.Random(seed)

        def derived(base_seed):
            mixed = base_seed * 2 + 1
            return random.Random(mixed)

        def bad_missing():
            return random.Random()

        def bad_const():
            return random.Random(42)
    """

    def _check(self, module: str) -> list:
        graph = _graph({module: self.SOURCE})
        return list(SeedProvenanceRule(scopes=("pkg.sim",)).check(graph))

    def test_flags_missing_and_const_only(self):
        found = self._check("pkg.sim.engine")
        assert sorted(v.key for v in found) == [
            "pkg.sim.engine:bad_const:random.Random",
            "pkg.sim.engine:bad_missing:random.Random",
        ]

    def test_out_of_scope_module_ignored(self):
        assert self._check("pkg.analysis.engine") == []


class TestObsGuardRule:
    SOURCE = """\
        from repro.obs import runtime as _obs

        def hot():
            _obs.counter("requests", 1)

        def warm():
            if _obs.ENABLED:
                _obs.counter("requests", 1)

        def helper():
            _obs.gauge("depth", 2)

        def outer():
            if _obs.ENABLED:
                helper()
    """

    def test_unguarded_site_flagged_guarded_chain_not(self):
        graph = _graph({"pkg.sim.kernel": self.SOURCE})
        found = list(ObsGuardRule(scopes=("pkg.sim",)).check(graph))
        # `hot` is unguarded; `warm` guards lexically; `helper` is only
        # ever called from inside a guard, so the fixpoint clears it.
        assert [v.key for v in found] == ["pkg.sim.kernel:hot:counter#1"]

    def test_unguarded_call_chain_propagates(self):
        graph = _graph(
            {
                "pkg.sim.kernel": (
                    "from repro.obs import runtime as _obs\n"
                    "def helper():\n"
                    '    _obs.gauge("depth", 2)\n'
                    "def outer():\n"
                    "    helper()\n"
                )
            }
        )
        found = list(ObsGuardRule(scopes=("pkg.sim",)).check(graph))
        assert [v.key for v in found] == ["pkg.sim.kernel:helper:gauge#1"]


class TestApiManifestRule:
    MODULES = {
        "pkg.api": 'from .lib import thing\n__all__ = ["thing"]\n',
        "pkg.lib": "def thing():\n    return 1\n",
    }

    def test_matching_manifest_passes(self, tmp_path):
        graph = _graph(self.MODULES)
        manifest = tmp_path / "api_manifest.txt"
        manifest.write_text(render_manifest(graph, "pkg.api"), encoding="utf-8")
        rule = ApiManifestRule(manifest_path=manifest, api_module="pkg.api")
        assert list(rule.check(graph)) == []

    def test_missing_manifest_is_an_error(self, tmp_path):
        graph = _graph(self.MODULES)
        rule = ApiManifestRule(
            manifest_path=tmp_path / "nope.txt", api_module="pkg.api"
        )
        assert [v.key for v in rule.check(graph)] == ["manifest:missing"]

    def test_new_export_and_move_detected(self, tmp_path):
        graph = _graph(self.MODULES)
        manifest = tmp_path / "api_manifest.txt"
        manifest.write_text(
            "# header\nthing = pkg.other:thing\nremoved = pkg.lib:removed\n",
            encoding="utf-8",
        )
        rule = ApiManifestRule(manifest_path=manifest, api_module="pkg.api")
        keys = sorted(v.key for v in rule.check(graph))
        # `removed` is in the manifest but gone; `thing` moved modules.
        assert keys == ["export:removed", "export:thing"]

    def test_render_manifest_lists_resolved_origin(self):
        graph = _graph(self.MODULES)
        assert "thing = pkg.lib:thing" in render_manifest(graph, "pkg.api")
