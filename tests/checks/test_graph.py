"""Tests for the whole-program model: module summaries and the project graph.

The summary layer (:func:`summarize_source`) is the cacheable per-file
unit — everything the program rules need, JSON round-trippable.  The
graph layer (:class:`ProjectGraph`) assembles summaries and answers the
cross-module questions: symbol resolution through re-exports, runtime
import edges, and import-time cycles.
"""

from __future__ import annotations

import textwrap

from repro.checks.graph import (
    ModuleSummary,
    ProjectGraph,
    module_name_for,
    summarize_source,
)


def _summarize(module: str, source: str) -> ModuleSummary:
    parts = module.split(".")
    tail = "__init__.py" if source.startswith("#package") else parts[-1] + ".py"
    if tail == "__init__.py":
        path = "src/" + "/".join(parts) + "/" + tail
    else:
        path = "src/" + "/".join(parts[:-1] + [tail])
    return summarize_source(textwrap.dedent(source), path, module)


def _graph(modules: dict[str, str]) -> ProjectGraph:
    return ProjectGraph([_summarize(mod, src) for mod, src in modules.items()])


class TestModuleName:
    def test_path_after_src_becomes_dotted_module(self):
        assert module_name_for("src/repro/cache/base.py") == "repro.cache.base"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/cache/__init__.py") == "repro.cache"

    def test_walks_up_past_init_markers(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        mod = pkg / "leaf.py"
        mod.write_text("", encoding="utf-8")
        assert module_name_for(mod) == "pkg.sub.leaf"

    def test_bare_file_falls_back_to_stem(self, tmp_path):
        script = tmp_path / "tool.py"
        script.write_text("", encoding="utf-8")
        assert module_name_for(script) == "tool"


class TestSummarize:
    SOURCE = """\
        import random
        from .helper import thing as t

        __all__ = ["api_fn"]

        def api_fn(seed):
            rng = random.Random(seed)
            return t(rng)

        def unused_fn():
            return 0
    """

    def test_imports_resolved_to_absolute_targets(self):
        summary = _summarize("pkg.mod", self.SOURCE)
        targets = {edge.target for edge in summary.imports}
        assert "random" in targets and "pkg.helper" in targets

    def test_defs_all_names_and_aliases(self):
        summary = _summarize("pkg.mod", self.SOURCE)
        assert {d.name for d in summary.defs} >= {"api_fn", "unused_fn"}
        assert summary.all_names == ("api_fn",)
        assert ("t", "pkg.helper:thing") in summary.aliases

    def test_rng_site_with_seed_param_is_ok(self):
        summary = _summarize("pkg.mod", self.SOURCE)
        assert len(summary.rng_sites) == 1
        site = summary.rng_sites[0]
        assert site.call == "random.Random"
        assert site.verdict == "ok:param seed"
        assert site.func == "api_fn"

    def test_rng_site_without_seed_is_missing(self):
        summary = _summarize(
            "pkg.bad",
            """\
            import random

            def roll():
                return random.Random()
            """,
        )
        assert summary.rng_sites[0].verdict == "missing"

    def test_type_checking_imports_are_marked(self):
        summary = _summarize(
            "pkg.typed",
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from .helper import Thing

            def use(x: "Thing") -> "Thing":
                return x
            """,
        )
        edge = next(e for e in summary.imports if e.target == "pkg.helper")
        assert edge.type_checking

    def test_function_level_imports_are_marked(self):
        summary = _summarize(
            "pkg.lazy",
            """\
            def load():
                from .helper import thing
                return thing()
            """,
        )
        edge = next(e for e in summary.imports if e.target == "pkg.helper")
        assert edge.function_level

    def test_round_trips_through_dict(self):
        summary = _summarize("pkg.mod", self.SOURCE)
        assert ModuleSummary.from_dict(summary.to_dict()) == summary


class TestProjectGraph:
    def test_resolve_symbol_chases_reexport(self):
        graph = _graph(
            {
                "pkg": '#package\nfrom .impl import thing\n__all__ = ["thing"]\n',
                "pkg.impl": "def thing():\n    return 1\n",
            }
        )
        assert graph.resolve_symbol("pkg", "thing") == ("pkg.impl", "thing")

    def test_resolve_symbol_finds_local_def(self):
        graph = _graph({"pkg.impl": "def thing():\n    return 1\n"})
        assert graph.resolve_symbol("pkg.impl", "thing") == ("pkg.impl", "thing")

    def test_module_level_cycle_detected(self):
        graph = _graph(
            {
                "pkg.a": "from .b import beta\n\ndef alpha():\n    return beta\n",
                "pkg.b": "from .a import alpha\n\ndef beta():\n    return alpha\n",
            }
        )
        assert graph.import_cycles() == [("pkg.a", "pkg.b")]

    def test_lazy_import_breaks_the_cycle(self):
        graph = _graph(
            {
                "pkg.a": "from .b import beta\n\ndef alpha():\n    return beta\n",
                "pkg.b": (
                    "def beta():\n"
                    "    from .a import alpha\n"
                    "    return alpha\n"
                ),
            }
        )
        assert graph.import_cycles() == []

    def test_runtime_import_edges_skip_type_checking(self):
        graph = _graph(
            {
                "pkg.typed": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from .helper import Thing\n"
                ),
                "pkg.helper": "class Thing:\n    pass\n",
            }
        )
        targets = [t for t, _ in graph.runtime_import_edges("pkg.typed")]
        assert "pkg.helper" not in targets


class TestNumpyRngSites:
    """FLOW001's numpy vocabulary: Generator/RandomState and seeded
    bit-generators (``Generator(PCG64(seed))`` unwraps to the seed)."""

    def test_generator_over_seeded_bit_generator_is_ok(self):
        summary = _summarize(
            "pkg.vec",
            """\
            import numpy as np

            def make(seed):
                return np.random.Generator(np.random.PCG64(seed))
            """,
        )
        (site,) = summary.rng_sites
        assert site.call == "numpy.random.Generator"
        assert site.verdict == "ok:param seed"

    def test_generator_over_unseeded_bit_generator_is_missing(self):
        summary = _summarize(
            "pkg.vec",
            """\
            from numpy.random import Generator, PCG64

            def make():
                return Generator(PCG64())
            """,
        )
        assert summary.rng_sites[0].verdict == "missing"

    def test_randomstate_with_literal_seed_is_const(self):
        summary = _summarize(
            "pkg.vec",
            """\
            import numpy as np

            def make():
                return np.random.RandomState(1234)
            """,
        )
        (site,) = summary.rng_sites
        assert site.call == "numpy.random.RandomState"
        assert site.verdict == "const"

    def test_default_rng_over_bit_generator_keyword_seed(self):
        summary = _summarize(
            "pkg.vec",
            """\
            import numpy as np

            def make(trace_seed):
                return np.random.default_rng(np.random.Philox(seed=trace_seed))
            """,
        )
        (site,) = summary.rng_sites
        assert site.verdict == "ok:param trace_seed"
