"""Unit tests for the dataflow primitives behind FLOW001/FLOW002.

:class:`TaintTracker` is the seed-provenance half: forward may-taint
over one function body.  :class:`GuardAnalysis` is the obs-guard half:
lexical containment in ``if <flag>:`` bodies, including the hot-loop
alias idiom.  Both are tested directly on small ASTs here; their
integration (real verdicts on real modules) is covered by
``test_graph.py`` and ``test_program_rules.py``.
"""

from __future__ import annotations

import ast

from repro.checks.flow import GuardAnalysis, TaintTracker, iter_assign_targets


def _analyzed(source: str, *sources: str) -> tuple[TaintTracker, ast.FunctionDef]:
    """Tracker over the first function in ``source``; ``sources`` name params."""
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)

    def is_source(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name) and expr.id in sources:
            return f"param {expr.id}"
        return None

    tracker = TaintTracker(is_source)
    tracker.analyze(fn.body)
    return tracker, fn


def _first_call_arg(fn: ast.FunctionDef, callee: str) -> ast.expr:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == callee
        ):
            return node.args[0]
    raise AssertionError(f"no call to {callee} in fixture")


class TestIterAssignTargets:
    def test_flattens_nested_tuples_and_starred(self):
        stmt = ast.parse("a, (b, *c) = value").body[0]
        assert isinstance(stmt, ast.Assign)
        names = [t.id for t in iter_assign_targets(stmt.targets[0])]
        assert names == ["a", "b", "c"]


class TestTaintTracker:
    def test_direct_source_argument(self):
        tracker, fn = _analyzed(
            "def f(seed):\n    sink(seed)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"

    def test_propagates_through_assignment_chain(self):
        tracker, fn = _analyzed(
            "def f(seed):\n"
            "    a = seed + 1\n"
            "    b = a * 2\n"
            "    sink(b)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"

    def test_untainted_expression_is_clean(self):
        tracker, fn = _analyzed(
            "def f(seed):\n"
            "    n = 41 + 1\n"
            "    sink(n)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) is None

    def test_loop_carried_flow_converges(self):
        # `mixed` is read before the line that taints `state`; the second
        # forward pass catches the loop-carried assignment.
        tracker, fn = _analyzed(
            "def f(seed, items):\n"
            "    state = 0\n"
            "    for item in items:\n"
            "        mixed = state + item\n"
            "        state = seed\n"
            "    sink(mixed)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"

    def test_augmented_assignment_taints_target(self):
        tracker, fn = _analyzed(
            "def f(seed):\n"
            "    acc = 0\n"
            "    acc += seed\n"
            "    sink(acc)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"

    def test_tainted_subterm_taints_whole_expression(self):
        tracker, fn = _analyzed(
            "def f(seed):\n    sink(1000 + seed * 3)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"

    def test_walrus_target_inside_expression(self):
        tracker, fn = _analyzed(
            "def f(seed):\n    sink((s := seed) and s)\n",
            "seed",
        )
        assert tracker.label_of(_first_call_arg(fn, "sink")) == "param seed"


def _guard_for(source: str) -> tuple[GuardAnalysis, ast.Module]:
    tree = ast.parse(source)

    def is_guard_expr(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Attribute) and expr.attr == "ENABLED"

    return GuardAnalysis(tree, is_guard_expr), tree


def _call_named(tree: ast.Module, callee: str) -> ast.Call:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == callee
        ):
            return node
    raise AssertionError(f"no call to {callee} in fixture")


class TestGuardAnalysis:
    SOURCE = (
        "import runtime as _obs\n"
        "def hot():\n"
        "    if _obs.ENABLED:\n"
        "        guarded_call()\n"
        "    bare_call()\n"
        "def aliased():\n"
        "    on = _obs.ENABLED\n"
        "    if on:\n"
        "        alias_call()\n"
    )

    def test_call_inside_guard_body(self):
        guard, tree = _guard_for(self.SOURCE)
        assert guard.is_guarded(_call_named(tree, "guarded_call"))

    def test_call_outside_guard(self):
        guard, tree = _guard_for(self.SOURCE)
        assert not guard.is_guarded(_call_named(tree, "bare_call"))

    def test_local_alias_of_guard_counts(self):
        guard, tree = _guard_for(self.SOURCE)
        assert guard.is_guarded(_call_named(tree, "alias_call"))

    def test_unrelated_condition_is_not_a_guard(self):
        guard, tree = _guard_for(
            "def f(flag):\n"
            "    if flag:\n"
            "        bare_call()\n"
        )
        assert not guard.is_guarded(_call_named(tree, "bare_call"))
