"""Tests for the runtime sanitizer (SimSanitizer + SanitizedEnvironment).

Positive direction: full sanitized simulations across every code finish
with zero invariant violations (the acceptance bar for the reproduction).
Negative direction: deliberately broken policy subclasses must trip the
matching invariant immediately.
"""

from __future__ import annotations

import heapq

import pytest

from repro.cache.registry import available_policies, make_policy
from repro.checks import InvariantViolation, SanitizedEnvironment, SimSanitizer
from repro.codes.registry import available_codes, make_code
from repro.core.fbf_cache import FBFCache
from repro.sim import SimConfig, run_reconstruction
from repro.sim.tracesim import simulate_cache_trace
from repro.workloads import ErrorTraceConfig, generate_errors


class TestSanitizedSimulations:
    """Acceptance: sanitizer-enabled runs are violation-free on all codes."""

    @pytest.mark.parametrize("code", available_codes())
    def test_event_simulation_clean(self, code):
        layout = make_code(code, 7)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=30, seed=11))
        plain = run_reconstruction(layout, errors, SimConfig(workers=4))
        checked = run_reconstruction(
            layout, errors, SimConfig(workers=4, sanitize=True)
        )
        # The sanitizer must observe, never perturb.
        assert checked.hit_ratio == plain.hit_ratio
        assert checked.disk_reads == plain.disk_reads
        assert checked.reconstruction_time == plain.reconstruction_time

    @pytest.mark.parametrize("code", available_codes())
    def test_trace_simulation_clean(self, code):
        layout = make_code(code, 7)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=50, seed=5))
        plain = simulate_cache_trace(
            layout, errors, policy="fbf", capacity_blocks=48, workers=3
        )
        checked = simulate_cache_trace(
            layout, errors, policy="fbf", capacity_blocks=48, workers=3,
            sanitize=True,
        )
        assert checked.hits == plain.hits
        assert checked.disk_reads == plain.disk_reads

    @pytest.mark.parametrize("policy", sorted(available_policies()))
    def test_generic_checks_pass_for_every_policy(self, policy):
        layout = make_code("tip", 5)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=25, seed=2))
        result = simulate_cache_trace(
            layout, errors, policy=policy, capacity_blocks=16, workers=2,
            sanitize=True,
        )
        assert result.requests > 0


class TestSanitizerProxy:
    def test_drop_in_surface(self):
        inner = FBFCache(8)
        wrapped = SimSanitizer(inner)
        assert wrapped.name == "fbf"
        assert wrapped.capacity == 8
        assert wrapped.stats is inner.stats
        wrapped.request(("a", 1), priority=3)
        assert ("a", 1) in wrapped and len(wrapped) == 1
        wrapped.reset()
        assert len(wrapped) == 0 and wrapped.stats.requests == 0

    def test_nonstrict_collects_instead_of_raising(self):
        wrapped = SimSanitizer(_NoDemoteFBF(4), strict=False)
        wrapped.request("x", priority=3)
        wrapped.request("x", priority=3)  # hit: should demote but won't
        assert wrapped.violations
        assert "Queue2" in wrapped.violations[0]


class _NoDemoteFBF(FBFCache):
    """Hits refresh recency but never demote — breaks Algorithm 1."""

    def request(self, key, priority=None):
        if key in self._queue_of:
            self.stats.hits += 1
            self._queues[self._queue_of[key]].move_to_end(key)
            return True
        return super().request(key, priority)


class _DoubleResidentFBF(FBFCache):
    """Admission leaks a stray copy into the next queue up."""

    def _attach(self, key, queue):
        super()._attach(key, queue)
        if queue < self.n_queues:
            self._queues[queue + 1][key] = None


class _NoEvictFBF(FBFCache):
    """Admits past capacity without evicting."""

    def request(self, key, priority=None):
        if key in self._queue_of:
            return super().request(key, priority)
        self.stats.misses += 1
        self._attach(key, self._normalize_priority(priority))
        return False


class _SilentEvictFBF(FBFCache):
    """Evicts without counting it — accounting drift."""

    def _evict(self):
        victim = super()._evict()
        self.stats.evictions -= 1
        return victim


class _DoubleCountFBF(FBFCache):
    """Counts every hit twice."""

    def request(self, key, priority=None):
        hit = super().request(key, priority)
        if hit:
            self.stats.hits += 1
        return hit


class TestBrokenPoliciesAreCaught:
    def test_missing_demotion(self):
        wrapped = SimSanitizer(_NoDemoteFBF(4))
        wrapped.request("x", priority=3)
        with pytest.raises(InvariantViolation, match="Queue2"):
            wrapped.request("x", priority=3)

    def test_double_residency(self):
        wrapped = SimSanitizer(_DoubleResidentFBF(4))
        with pytest.raises(InvariantViolation, match="simultaneously|occupancy"):
            wrapped.request("x", priority=1)

    def test_capacity_overflow(self):
        wrapped = SimSanitizer(_NoEvictFBF(2))
        wrapped.request("a")
        wrapped.request("b")
        with pytest.raises(InvariantViolation, match="capacity|evicted"):
            wrapped.request("c")

    def test_eviction_accounting_drift(self):
        wrapped = SimSanitizer(_SilentEvictFBF(2))
        wrapped.request("a")
        wrapped.request("b")
        with pytest.raises(InvariantViolation, match="evicted"):
            wrapped.request("c")

    def test_stats_drift(self):
        wrapped = SimSanitizer(_DoubleCountFBF(4))
        wrapped.request("x")
        with pytest.raises(InvariantViolation, match="stats accounting"):
            wrapped.request("x")

    def test_demotion_stops_at_queue1(self):
        """Queue1 hits must refresh recency, not demote further."""
        wrapped = SimSanitizer(FBFCache(4))
        wrapped.request("x", priority=2)
        wrapped.request("x", priority=2)  # demote 2 -> 1
        assert wrapped.policy.queue_of("x") == 1
        wrapped.request("x", priority=2)  # stays in Queue1, MRU refresh
        assert wrapped.policy.queue_of("x") == 1

    def test_sticky_mode_checked_too(self):
        wrapped = SimSanitizer(FBFCache(4, demote_on_hit=False))
        wrapped.request("x", priority=3)
        wrapped.request("x", priority=3)
        assert wrapped.policy.queue_of("x") == 3


class TestSanitizedEnvironment:
    def test_normal_run_is_clean(self):
        env = SanitizedEnvironment()

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(0.0)  # same-timestamp events
            yield env.timeout(0.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert env.events_checked > 0
        assert env.violations == []

    def test_same_timestamp_order_violation_detected(self):
        env = SanitizedEnvironment()
        first = env.event()
        second = env.event()
        # Bypass _schedule to plant a counter inversion at one timestamp.
        heapq.heappush(env._heap, (0.0, 7, first))
        first.triggered = True
        env.step()
        heapq.heappush(env._heap, (0.0, 3, second))
        second.triggered = True
        with pytest.raises(InvariantViolation, match="ordering"):
            env.step()

    def test_time_reversal_detected(self):
        env = SanitizedEnvironment(initial_time=10.0)
        ev = env.event()
        heapq.heappush(env._heap, (5.0, 1, ev))
        ev.triggered = True
        with pytest.raises(InvariantViolation, match="backwards"):
            env.step()

    def test_full_reconstruction_under_sanitized_env(self):
        layout = make_code("star", 5)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=15, seed=9))
        report = run_reconstruction(
            layout, errors, SimConfig(workers=3, sanitize=True)
        )
        assert report.chunks_recovered > 0


class TestSanitizedKernelResource:
    def test_resource_contention_under_sanitizer(self):
        """FIFO resource grants stay deterministic under the checked kernel."""
        from repro.sim.kernel import Resource

        env = SanitizedEnvironment()
        resource = Resource(env, capacity=2)
        order: list[int] = []

        def worker(env, i):
            req = resource.request()
            yield req
            order.append(i)
            yield env.timeout(1.0)
            resource.release(req)

        for i in range(6):
            env.process(worker(env, i))
        env.run()
        assert order == list(range(6))
        assert env.violations == []
