"""The advisor's core contract: advice IS the offline winner, bit for bit."""

from __future__ import annotations

import pytest

from repro.engine import make_backend, simulate_grid_pass
from repro.engine.stream import ReplayConfig
from repro.serve import ArraySpec, CacheAdvisor, ServeConfig, SyntheticSource, pick_winner
from repro.utils import parse_size


def _config(**overrides) -> ServeConfig:
    base = dict(
        code="tip",
        p=5,
        workers=4,
        cache_mbs=(2.0, 8.0),
        policies=("fbf", "lru", "arc"),
        window_events=48,
        batch_events=12,
        compact_factor=2,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _offline_rows(advisor: CacheAdvisor):
    """Recompute the window grid the offline way, from first principles."""
    config = advisor.config
    backend = make_backend(config.code, config.p, scheme_mode=config.scheme_mode)
    block = parse_size(config.chunk_size)
    grid = [
        ReplayConfig(
            policy=policy,
            capacity_blocks=int(mb * 1024 * 1024) // block,
            workers=config.workers,
            hint=config.hint,
        )
        for policy in config.policies
        for mb in config.cache_mbs
    ]
    return simulate_grid_pass(backend, advisor.window_events(), grid)


class TestAdviseMatchesOffline:
    def test_evaluate_rows_equal_offline_grid_pass(self):
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12)
        for batch in source.batches(5):
            advisor.ingest(batch)
        assert advisor.evaluate() == _offline_rows(advisor)

    def test_advice_is_the_offline_winner_bit_for_bit(self):
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12, seed=7)
        for batch in source.batches(6):
            advisor.ingest(batch)
        advice = advisor.advise()
        winner = pick_winner(_offline_rows(advisor))
        assert advice.policy == winner.policy
        assert advice.capacity_blocks == winner.capacity_blocks
        assert advice.hit_ratio == winner.hit_ratio  # exact, not approx
        assert advice.evaluated == len(advisor.config.policies) * len(
            advisor.config.cache_mbs
        )

    def test_equality_survives_compaction(self):
        # compact_factor=2, window=48: feeding 120 events compacts twice.
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12, seed=3)
        for batch in source.batches(10):
            advisor.ingest(batch)
        assert advisor.interner.first_event > 0  # compaction really ran
        assert advisor.evaluate() == _offline_rows(advisor)

    def test_evaluation_memoized_until_window_moves(self):
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12)
        advisor.ingest(source.next_batch())
        first = advisor.evaluate()
        assert advisor.evaluate() is first
        assert advisor.evaluations == 1
        advisor.ingest(source.next_batch())
        assert advisor.evaluate() is not first
        assert advisor.evaluations == 2


class TestPickWinner:
    def test_ranking_prefers_hit_ratio_then_capacity_then_name(self):
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12)
        for batch in source.batches(4):
            advisor.ingest(batch)
        rows = advisor.evaluate()
        winner = pick_winner(rows)
        best = max(row.hit_ratio for row in rows)
        assert winner.hit_ratio == best
        contenders = [row for row in rows if row.hit_ratio == best]
        assert winner.capacity_blocks == min(
            row.capacity_blocks for row in contenders
        )

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            pick_winner([])


class TestGuards:
    def test_wrong_array_spec_rejected(self):
        advisor = CacheAdvisor(_config())
        advisor.ingest(SyntheticSource("tip", 5, chunk=12).next_batch())
        with pytest.raises(ValueError, match="advisor serves"):
            advisor.advise(ArraySpec(code="star", p=5))

    def test_undersized_capacity_rejected_eagerly(self):
        # 2 MB / 32KB = 64 blocks < 128 workers: every worker needs a slice.
        with pytest.raises(ValueError, match="fewer than"):
            CacheAdvisor(_config(workers=128, cache_mbs=(2.0,)))

    def test_out_of_order_batch_counted_but_accepted(self):
        advisor = CacheAdvisor(_config())
        source = SyntheticSource("tip", 5, chunk=12)
        first = source.next_batch()
        second = source.next_batch()
        advisor.ingest(second)
        advisor.ingest(first)  # older than the retained tail
        assert advisor.out_of_order == 1
        assert advisor.interner.events_seen == 24
