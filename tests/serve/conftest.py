"""Serve tests enable obs (the server turns it on); never leak it."""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def obs_disabled_after():
    yield
    runtime.disable()
