"""AdvisorServer failure modes: overflow sheds, SIGTERM drains, wire ops."""

from __future__ import annotations

import asyncio
import json
import os
import signal

from repro.obs import runtime
from repro.serve import AdvisorServer, ServeConfig, SyntheticSource


def _config(**overrides) -> ServeConfig:
    base = dict(
        code="tip",
        p=5,
        workers=4,
        cache_mbs=(2.0, 8.0),
        policies=("fbf", "lru"),
        window_events=36,
        batch_events=12,
        compact_factor=2,
    )
    base.update(overrides)
    return ServeConfig(**base)


async def _query(port: int, request: dict) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    writer.close()
    await writer.wait_closed()
    return json.loads(line)


async def _drain_until(server: AdvisorServer, total: int, timeout: float = 20.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while server.advisor.interner.events_seen < total:
        assert asyncio.get_running_loop().time() < deadline, "ingest stalled"
        await asyncio.sleep(0.02)


class TestBackpressure:
    def test_overflow_sheds_and_counts(self):
        async def scenario():
            server = AdvisorServer(_config(queue_limit=24), metrics_port=None)
            await server.start()
            events = SyntheticSource("tip", 5, chunk=60).next_batch()
            accepted = server.feed(events)
            assert accepted == 24  # queue_limit, not the burst size
            assert server.queue.shed == 36
            registry = runtime.registry()
            assert (
                registry.snapshot()["counters"]["serve.ingest.shed"] == 36
            )
            server.request_shutdown()
            await server.serve_forever()
            # everything *accepted* still landed — only overflow shed
            assert server.advisor.interner.events_seen == 24

        runtime.enable(fresh=True)
        asyncio.run(scenario())


class TestGracefulDrain:
    def test_sigterm_drains_in_flight_batches(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"

        async def scenario():
            server = AdvisorServer(
                _config(checkpoint_path=str(ckpt), checkpoint_every=0),
                metrics_port=None,
            )
            await server.start()
            source = SyntheticSource("tip", 5, chunk=12)
            fed = sum(server.feed(batch) for batch in source.batches(4))
            assert fed == 48
            # SIGTERM lands while all 48 events are still queued; the
            # drain must flush every accepted batch before returning.
            os.kill(os.getpid(), signal.SIGTERM)
            await server.serve_forever()
            assert server.advisor.interner.events_seen == 48
            assert len(server.queue) == 0

        asyncio.run(scenario())
        # ...and the final checkpoint reflects the drained state.
        assert ckpt.is_file()
        state = json.loads(ckpt.read_text())["state"]
        assert state["dropped"] + len(state["events"]) == 48

    def test_checkpointed_server_resumes(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        config = _config(checkpoint_path=str(ckpt), checkpoint_every=0)

        async def first_life():
            server = AdvisorServer(config, metrics_port=None)
            await server.start()
            server.feed(SyntheticSource("tip", 5, chunk=12).next_batch())
            await _drain_until(server, 12)
            rows = server.advisor.evaluate()
            server.request_shutdown()
            await server.serve_forever()
            return rows

        async def second_life():
            server = AdvisorServer(config, metrics_port=None)
            assert server.resumed
            rows = server.advisor.evaluate()
            return rows

        assert asyncio.run(first_life()) == asyncio.run(second_life())


class TestWire:
    def test_ops_and_record_ingest_share_one_port(self):
        async def scenario():
            server = AdvisorServer(_config(), metrics_port=None)
            await server.start()
            port = server.port
            assert (await _query(port, {"op": "ping"}))["ok"]

            events = SyntheticSource("tip", 5, chunk=12).next_batch()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for event in events:
                writer.write(
                    (json.dumps({
                        "time": event.time,
                        "stripe": event.stripe,
                        "disk": event.disk,
                        "start_row": event.start_row,
                        "length": event.length,
                    }) + "\n").encode()
                )
            writer.write(b"this is not json\n")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await _drain_until(server, 12)

            stats = (await _query(port, {"op": "stats"}))["stats"]
            assert stats["accepted"] == 12
            assert stats["invalid"] == 1
            assert stats["shed"] == 0

            answer = await _query(port, {"op": "advise"})
            assert answer["ok"]
            advice = answer["advice"]
            offline = server.advisor.advise()
            assert advice["policy"] == offline.policy
            assert advice["hit_ratio"] == offline.hit_ratio

            unknown = await _query(port, {"op": "frobnicate"})
            assert not unknown["ok"]

            assert (await _query(port, {"op": "shutdown"}))["ok"]
            await server.serve_forever()

        asyncio.run(scenario())

    def test_wrong_geometry_advise_is_refused_not_fatal(self):
        async def scenario():
            server = AdvisorServer(_config(), metrics_port=None)
            await server.start()
            server.feed(SyntheticSource("tip", 5, chunk=12).next_batch())
            await _drain_until(server, 12)
            answer = await _query(
                server.port, {"op": "advise", "code": "star", "p": 5}
            )
            assert not answer["ok"]
            assert "advisor serves" in answer["error"]
            server.request_shutdown()
            await server.serve_forever()

        asyncio.run(scenario())
