"""The ingest edge: wire parsing, bounded queue, shed-and-count."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import runtime
from repro.serve import BoundedIngestQueue, parse_record
from repro.workloads import PartialStripeError


def _record(i: int) -> str:
    return json.dumps(
        {"time": float(i), "stripe": i, "disk": 0, "start_row": 0, "length": 1}
    )


def _event(i: int) -> PartialStripeError:
    return PartialStripeError(time=float(i), stripe=i, disk=0, start_row=0, length=1)


class TestParseRecord:
    def test_round_trip(self):
        event = parse_record(_record(7))
        assert event == _event(7)

    def test_bytes_accepted(self):
        assert parse_record(_record(3).encode()) == _event(3)

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2, 3]",
            '"a string"',
            json.dumps({"time": 1.0, "stripe": 0}),  # missing fields
            json.dumps({"time": 1.0, "stripe": 0, "disk": 0,
                        "start_row": 0, "length": 0}),  # length must be >= 1
            json.dumps({"time": 1.0, "stripe": "x", "disk": 0,
                        "start_row": 0, "length": 1}),
        ],
    )
    def test_malformed_raises_value_error(self, line):
        with pytest.raises(ValueError):
            parse_record(line)


class TestBoundedQueue:
    def test_overflow_sheds_and_counts(self):
        registry = runtime.enable(fresh=True)

        async def scenario():
            queue = BoundedIngestQueue(limit=3)
            outcomes = [queue.push(_event(i)) for i in range(5)]
            assert outcomes == [True, True, True, False, False]
            assert queue.accepted == 3
            assert queue.shed == 2
            assert len(queue) == 3

        asyncio.run(scenario())
        snap = registry.snapshot()
        assert snap["counters"]["serve.ingest.shed"] == 2
        assert snap["counters"]["serve.ingest.records"] == 3

    def test_invalid_lines_counted_not_queued(self):
        async def scenario():
            queue = BoundedIngestQueue(limit=8)
            assert not queue.push_line("garbage")
            assert queue.push_line(_record(1))
            assert queue.invalid == 1
            assert queue.accepted == 1

        asyncio.run(scenario())

    def test_drain_is_fifo_and_bounded(self):
        async def scenario():
            queue = BoundedIngestQueue(limit=16)
            for i in range(6):
                queue.push(_event(i))
            first = queue.drain(4)
            assert [e.stripe for e in first] == [0, 1, 2, 3]
            assert [e.stripe for e in queue.drain(10)] == [4, 5]
            assert queue.drain(10) == []

        asyncio.run(scenario())

    def test_shed_then_drain_frees_capacity(self):
        async def scenario():
            queue = BoundedIngestQueue(limit=2)
            queue.push(_event(0))
            queue.push(_event(1))
            assert not queue.push(_event(2))
            queue.drain(1)
            assert queue.push(_event(3))
            assert [e.stripe for e in queue.drain(10)] == [1, 3]

        asyncio.run(scenario())

    def test_wait_for_data_times_out_empty(self):
        async def scenario():
            queue = BoundedIngestQueue(limit=2)
            assert not await queue.wait_for_data(timeout=0.01)
            queue.push(_event(0))
            assert await queue.wait_for_data(timeout=0.01)

        asyncio.run(scenario())

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            BoundedIngestQueue(limit=0)
