"""Checkpoint durability: resume is bit-identical, corruption is loud."""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    CacheAdvisor,
    ServeConfig,
    SyntheticSource,
    load_checkpoint,
    restore_advisor,
    write_checkpoint,
)


def _config(**overrides) -> ServeConfig:
    base = dict(
        code="tip",
        p=5,
        workers=4,
        cache_mbs=(2.0, 8.0),
        policies=("fbf", "lru"),
        window_events=36,
        batch_events=12,
        compact_factor=2,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _fed_advisor(n_batches: int = 7) -> CacheAdvisor:
    advisor = CacheAdvisor(_config())
    source = SyntheticSource("tip", 5, chunk=12, seed=11)
    for batch in source.batches(n_batches):
        advisor.ingest(batch)
    return advisor


class TestRoundTrip:
    def test_resume_is_bit_identical(self, tmp_path):
        advisor = _fed_advisor()
        assert advisor.interner.first_event > 0  # checkpoint a compacted log
        path = write_checkpoint(tmp_path / "ckpt.json", advisor)
        restored = restore_advisor(_config(), path)
        assert restored is not None
        # Identical replay state: same log positions, same interner
        # arrays, and therefore the same evaluation rows.
        assert restored.interner.events_seen == advisor.interner.events_seen
        assert restored.interner.first_event == advisor.interner.first_event
        original = advisor.interner.snapshot()
        resumed = restored.interner.snapshot()
        assert resumed.keys == original.keys
        assert resumed.bids == original.bids
        assert resumed.hints == original.hints
        assert resumed.offsets == original.offsets
        assert restored.evaluate() == advisor.evaluate()
        assert restored.batches == advisor.batches

    def test_checkpoint_file_is_stable_json(self, tmp_path):
        advisor = _fed_advisor(3)
        first = write_checkpoint(tmp_path / "a.json", advisor)
        second = write_checkpoint(tmp_path / "b.json", advisor)
        assert first.read_bytes() == second.read_bytes()
        state = load_checkpoint(first)
        assert state["fingerprint"] == advisor.config.fingerprint()

    def test_missing_checkpoint_means_fresh_start(self, tmp_path):
        assert restore_advisor(_config(), tmp_path / "absent.json") is None


class TestRejection:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = write_checkpoint(tmp_path / "ckpt.json", _fed_advisor(3))
        with pytest.raises(ValueError, match="fingerprint"):
            restore_advisor(_config(window_events=48), path)

    def test_corrupt_json_is_loud(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            restore_advisor(_config(), path)

    def test_wrong_schema_is_loud(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps({"schema": 99, "state": {}}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="schema"):
            restore_advisor(_config(), path)
