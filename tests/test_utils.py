"""Tests for shared helpers."""

import numpy as np
import pytest

from repro.utils import format_size, is_prime, make_rng, parse_size, require_prime


class TestPrimes:
    def test_small_primes(self):
        assert [n for n in range(20) if is_prime(n)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_larger(self):
        assert is_prime(97)
        assert not is_prime(91)  # 7 * 13

    def test_require_prime_passthrough(self):
        assert require_prime(13) == 13

    def test_require_prime_rejects(self):
        with pytest.raises(ValueError, match="prime"):
            require_prime(9)
        with pytest.raises(ValueError):
            require_prime("7")


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("32KB", 32 * 1024),
            ("2MB", 2 * 1024**2),
            ("1GB", 1024**3),
            ("0.5MB", 512 * 1024),
            ("123", 123),
            ("8 kb", 8 * 1024),
            (64, 64),
        ],
    )
    def test_cases(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots")
        with pytest.raises(ValueError):
            parse_size("xMB")
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormatSize:
    def test_exact_multiples(self):
        assert format_size(32 * 1024) == "32KB"
        assert format_size(2 * 1024**2) == "2MB"

    def test_exact_smaller_unit_preferred(self):
        assert format_size(1536 * 1024) == "1536KB"

    def test_fractional_when_no_exact_unit(self):
        assert format_size(int(1.5 * 1024**2) + 1).endswith("MB")

    def test_small(self):
        assert format_size(100) == "100B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    def test_roundtrip(self):
        for n in (1024, 32 * 1024, 3 * 1024**2):
            assert parse_size(format_size(n)) == n


class TestMakeRng:
    def test_from_seed(self):
        a, b = make_rng(7), make_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)
