"""Tests for the in-memory block device."""

import numpy as np
import pytest

from repro.array import BlockDevice, ChunkError, DiskFailure


@pytest.fixture
def disk():
    return BlockDevice(disk_id=0, chunk_size=16, num_chunks=8)


class TestBasicIO:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDevice(0, chunk_size=0, num_chunks=4)
        with pytest.raises(ValueError):
            BlockDevice(0, chunk_size=4, num_chunks=0)

    def test_unwritten_reads_zero(self, disk):
        assert not disk.read(0).any()

    def test_write_read_roundtrip(self, disk):
        payload = np.arange(16, dtype=np.uint8)
        disk.write(3, payload)
        assert np.array_equal(disk.read(3), payload)

    def test_read_returns_copy(self, disk):
        disk.write(0, np.ones(16, dtype=np.uint8))
        a = disk.read(0)
        a[:] = 0
        assert disk.read(0).all()

    def test_bounds(self, disk):
        with pytest.raises(IndexError):
            disk.read(8)
        with pytest.raises(IndexError):
            disk.write(-1, np.zeros(16, dtype=np.uint8))

    def test_wrong_payload_shape(self, disk):
        with pytest.raises(ValueError):
            disk.write(0, np.zeros(7, dtype=np.uint8))

    def test_stats(self, disk):
        disk.write(0, np.zeros(16, dtype=np.uint8))
        disk.read(0)
        disk.read(0)
        assert disk.writes == 1 and disk.reads == 2


class TestFaults:
    def test_media_error(self, disk):
        disk.fail_chunks(2, count=3)
        with pytest.raises(ChunkError):
            disk.read(3)
        with pytest.raises(ChunkError):
            disk.write(2, np.zeros(16, dtype=np.uint8))
        disk.read(0)  # other chunks unaffected

    def test_device_failure(self, disk):
        disk.fail_device()
        with pytest.raises(DiskFailure):
            disk.read(0)
        with pytest.raises(DiskFailure):
            disk.write(0, np.zeros(16, dtype=np.uint8))

    def test_repair_clears_media_error(self, disk):
        disk.fail_chunks(1)
        fresh = np.full(16, 7, dtype=np.uint8)
        disk.repair_chunk(1, fresh)
        assert np.array_equal(disk.read(1), fresh)
        assert 1 not in disk.bad_chunks

    def test_silent_corruption_reads_fine(self, disk):
        disk.write(4, np.zeros(16, dtype=np.uint8))
        disk.corrupt_chunk(4)
        corrupted = disk.read(4)  # no exception: silent
        assert corrupted.all()  # 0x00 ^ 0xFF

    def test_fail_chunks_bounds(self, disk):
        with pytest.raises(IndexError):
            disk.fail_chunks(7, count=2)
