"""Tests for the functional RAID array."""

import numpy as np
import pytest

from repro.array import RAIDArray
from repro.codes import make_code


@pytest.fixture
def array(tip7):
    return RAIDArray(tip7, chunk_size=32, stripes=4)


def _payload(seed, size=32):
    return np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8)


class TestLogicalIO:
    def test_capacity(self, array, tip7):
        assert array.chunks_per_stripe == len(tip7.data_cells)
        assert array.capacity_chunks == 4 * len(tip7.data_cells)

    def test_write_read_roundtrip(self, array):
        p = _payload(1)
        array.write(5, p)
        assert np.array_equal(array.read(5), p)

    def test_bounds(self, array):
        with pytest.raises(IndexError):
            array.read(array.capacity_chunks)

    def test_payload_validation(self, array):
        with pytest.raises(ValueError):
            array.write(0, np.zeros(5, dtype=np.uint8))

    def test_empty_array_scrubs_clean(self, array):
        assert array.scrub().clean


class TestParityMaintenance:
    def test_writes_keep_every_stripe_consistent(self, array):
        for logical in range(array.capacity_chunks):
            array.write(logical, _payload(logical))
        assert array.scrub().clean

    def test_overwrites_keep_parity(self, array):
        array.write(3, _payload(1))
        array.write(3, _payload(2))
        array.write(3, _payload(3))
        assert array.scrub().clean

    def test_identical_rewrite_touches_no_parity(self, array):
        p = _payload(4)
        array.write(7, p)
        writes_before = sum(d.writes for d in array.disks)
        array.write(7, p)  # delta == 0
        assert sum(d.writes for d in array.disks) == writes_before + 1

    def test_write_cost_matches_update_complexity(self, array, tip7):
        from repro.codes import parities_touched

        touched = parities_touched(tip7)
        array.write(0, _payload(9))  # first write: old is zeros
        stripe, cell = array._cell_of(0)
        writes = sum(d.writes for d in array.disks)
        # 1 data write + one write per fed parity
        assert writes == 1 + touched[cell]


class TestDegradedReads:
    def test_read_through_media_error(self, array):
        p = _payload(5)
        array.write(2, p)
        stripe, cell = array._cell_of(2)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        assert np.array_equal(array.read(2), p)

    def test_read_through_device_failure(self, array):
        payloads = {}
        for i in range(array.chunks_per_stripe):
            payloads[i] = _payload(50 + i)
            array.write(i, payloads[i])
        array.disks[0].fail_device()
        for i in range(array.chunks_per_stripe):
            assert np.array_equal(array.read(i), payloads[i]), i

    def test_degraded_read_avoids_other_failed_chunks(self, array):
        """The chosen chain must route around additional media errors."""
        p = _payload(7)
        array.write(0, p)
        stripe, cell = array._cell_of(0)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        # poison the horizontal chain by failing another member of row 0
        h_parity = next(
            ch for ch in array.layout.chains_for(cell)
            if ch.direction.value == "H"
        ).parity_cell
        array.disks[h_parity[1]].fail_chunks(array._offset(stripe, h_parity))
        assert np.array_equal(array.read(0), p)

    def test_write_skips_failed_parity(self, array):
        """A write to a stripe with a lost parity chunk still succeeds and
        repair later restores full consistency."""
        parity_cell = array.layout.parity_cells[0]
        array.disks[parity_cell[1]].fail_chunks(array._offset(0, parity_cell))
        array.write(0, _payload(3))
        array.repair_partial_stripe(0)
        assert array.scrub().clean


class TestScrub:
    def test_detects_silent_corruption(self, array):
        array.write(1, _payload(6))
        stripe, cell = array._cell_of(1)
        array.disks[cell[1]].corrupt_chunk(array._offset(stripe, cell))
        report = array.scrub()
        assert not report.clean
        assert any(s == stripe for s, _ in report.parity_mismatches)

    def test_reports_media_errors(self, array):
        stripe, cell = array._cell_of(0)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        report = array.scrub()
        assert (stripe, cell) in report.media_errors

    def test_scrub_range(self, array):
        report = array.scrub(stripes=range(1, 3))
        assert report.stripes_checked == 2


class TestRepair:
    @pytest.mark.parametrize("mode", ["typical", "fbf", "greedy"])
    def test_partial_stripe_repair_restores_data(self, array, mode):
        # fill one stripe with known data
        for i in range(array.chunks_per_stripe):
            array.write(i, _payload(100 + i))
        golden = [array.read(i).copy() for i in range(array.chunks_per_stripe)]
        # contiguous media errors on disk 0, rows 0..3
        for row in range(4):
            array.disks[0].fail_chunks(array._offset(0, (row, 0)))
        report = array.repair_partial_stripe(0, mode=mode)
        assert len(report.repaired_cells) == 4
        assert report.chunks_read > 0
        for i in range(array.chunks_per_stripe):
            assert np.array_equal(array.read(i), golden[i]), i
        assert array.scrub().clean

    def test_repair_parity_chunks(self, array):
        for i in range(array.chunks_per_stripe):
            array.write(i, _payload(i))
        parity_cell = array.layout.parity_cells[0]
        array.disks[parity_cell[1]].fail_chunks(array._offset(0, parity_cell))
        array.repair_partial_stripe(0)
        assert array.scrub().clean

    def test_repair_clean_stripe_is_noop(self, array):
        report = array.repair_partial_stripe(0)
        assert report.repaired_cells == ()

    def test_fbf_repair_reads_fewer_chunks_than_typical(self, tip7):
        def reads_for(mode):
            arr = RAIDArray(tip7, chunk_size=16, stripes=1)
            for row in range(5):
                arr.disks[0].fail_chunks(arr._offset(0, (row, 0)))
            return arr.repair_partial_stripe(0, mode=mode).chunks_read

        # total chain reads are equal-ish, but unique disk reads differ;
        # chunks_read counts every read (shared chunks reread without a
        # cache), so typical == total requests of its plan
        from repro.core import generate_plan

        typical_plan = generate_plan(tip7, [(r, 0) for r in range(5)], "typical")
        assert reads_for("typical") == typical_plan.total_requests


class TestDegradedWrites:
    def test_write_to_failed_chunk_spares_and_stays_consistent(self, array):
        for i in range(array.chunks_per_stripe):
            array.write(i, _payload(200 + i))
        stripe, cell = array._cell_of(3)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        fresh = _payload(999)
        array.write(3, fresh)  # degraded write: spare + parity patch
        assert np.array_equal(array.read(3), fresh)
        assert array._offset(stripe, cell) not in array.disks[cell[1]].bad_chunks
        assert array.scrub().clean

    def test_degraded_write_preserves_other_chunks(self, array):
        golden = {}
        for i in range(array.chunks_per_stripe):
            golden[i] = _payload(300 + i)
            array.write(i, golden[i])
        stripe, cell = array._cell_of(0)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        array.write(0, _payload(1))
        for i in range(1, array.chunks_per_stripe):
            assert np.array_equal(array.read(i), golden[i]), i


class TestScrubAndRepair:
    def test_cycle_heals_media_errors(self, array):
        for i in range(array.capacity_chunks):
            array.write(i, _payload(i))
        array.disks[0].fail_chunks(0, count=3)
        array.disks[2].fail_chunks(5, count=2)
        final = array.scrub_and_repair()
        assert final.clean

    def test_silent_corruption_reported_not_masked(self, array):
        array.write(0, _payload(1))
        stripe, cell = array._cell_of(0)
        array.disks[cell[1]].corrupt_chunk(array._offset(stripe, cell))
        final = array.scrub_and_repair()
        assert not final.clean
        assert final.parity_mismatches  # surfaced for operator attention

    def test_noop_on_clean_array(self, array):
        assert array.scrub_and_repair().clean


class TestAllCodes:
    def test_full_lifecycle_on_every_code(self, code_name, prime):
        layout = make_code(code_name, prime)
        array = RAIDArray(layout, chunk_size=8, stripes=2)
        for i in range(array.chunks_per_stripe * 2):
            array.write(i, _payload(i, 8))
        assert array.scrub().clean
        # fail a whole column segment in stripe 1 and repair
        rows = min(3, layout.rows)
        for row in range(rows):
            array.disks[1].fail_chunks(array._offset(1, (row, 1)))
        array.repair_partial_stripe(1)
        assert array.scrub().clean
