"""Tests for the cached functional array."""

import numpy as np
import pytest

from repro.array import CachedRAIDArray, RAIDArray
from repro.cache import LRUCache
from repro.core import FBFCache


@pytest.fixture
def stack(tip7):
    array = RAIDArray(tip7, chunk_size=16, stripes=2)
    rng = np.random.default_rng(0)
    for i in range(array.capacity_chunks):
        array.write(i, rng.integers(0, 256, 16, dtype=np.uint8))
    return array, CachedRAIDArray(array, FBFCache(16))


class TestReadThrough:
    def test_second_read_hits(self, stack):
        array, cached = stack
        a = cached.read(0)
        reads_after_first = cached.disk_reads
        b = cached.read(0)
        assert np.array_equal(a, b)
        assert cached.disk_reads == reads_after_first
        assert cached.policy.stats.hits == 1

    def test_cached_payload_matches_disk(self, stack):
        array, cached = stack
        for i in range(8):
            assert np.array_equal(cached.read(i), array.read(i))

    def test_write_refreshes_cache(self, stack):
        array, cached = stack
        cached.read(0)
        fresh = np.full(16, 9, dtype=np.uint8)
        cached.write(0, fresh)
        assert np.array_equal(cached.read(0), fresh)
        assert array.scrub().clean


class TestCachedRepair:
    def test_repair_correct_and_counts_hits(self, tip7):
        array = RAIDArray(tip7, chunk_size=16, stripes=1)
        rng = np.random.default_rng(1)
        golden = {}
        for i in range(array.chunks_per_stripe):
            payload = rng.integers(0, 256, 16, dtype=np.uint8)
            array.write(i, payload)
            golden[i] = payload
        for row in range(5):
            array.disks[0].fail_chunks(array._offset(0, (row, 0)))
        cached = CachedRAIDArray(array, FBFCache(8))
        report = cached.repair_partial_stripe(0, mode="fbf")
        assert len(report.repaired_cells) == 5
        assert array.scrub().clean
        for i in range(array.chunks_per_stripe):
            assert np.array_equal(array.read(i), golden[i])
        # shared chain chunks hit instead of rereading
        assert cached.policy.stats.hits > 0
        assert cached.disk_reads == report.chunks_read - cached.policy.stats.hits

    def test_repair_disk_reads_match_trace_sim(self, tip7):
        """The functional cached repair and the untimed trace simulator
        count exactly the same disk reads for the same plan and policy."""
        from repro.sim import simulate_cache_trace
        from repro.workloads import PartialStripeError

        error = PartialStripeError(time=0, stripe=0, disk=0, start_row=0, length=5)

        array = RAIDArray(tip7, chunk_size=8, stripes=1)
        for row in range(5):
            array.disks[0].fail_chunks(array._offset(0, (row, 0)))
        cached = CachedRAIDArray(array, FBFCache(8))
        cached.repair_partial_stripe(0, mode="fbf")

        sim = simulate_cache_trace(
            tip7, [error], policy="fbf", capacity_blocks=8, workers=1
        )
        assert cached.disk_reads == sim.disk_reads
        assert cached.policy.stats.hits == sim.hits

    def test_fbf_cache_beats_lru_on_repair(self, tip7):
        def repair_reads(policy):
            array = RAIDArray(tip7, chunk_size=8, stripes=1)
            for row in range(5):
                array.disks[0].fail_chunks(array._offset(0, (row, 0)))
            cached = CachedRAIDArray(array, policy)
            cached.repair_partial_stripe(0, mode="fbf")
            return cached.disk_reads

        assert repair_reads(FBFCache(8)) <= repair_reads(LRUCache(8))

    def test_repair_clean_stripe_noop(self, stack):
        array, cached = stack
        report = cached.repair_partial_stripe(0)
        assert report.repaired_cells == ()


class TestCoherence:
    def test_evicted_blocks_drop_their_payloads(self, tip7):
        from repro.cache import LRUCache

        array = RAIDArray(tip7, chunk_size=8, stripes=2)
        cached = CachedRAIDArray(array, LRUCache(2))
        for i in range(6):
            cached.read(i)
        # payload store never outgrows the policy's residency
        assert len(cached._contents) <= 2
        for key in cached._contents:
            assert key in cached.policy

    def test_degraded_read_falls_back_uncached(self, tip7):
        array = RAIDArray(tip7, chunk_size=8, stripes=1)
        p = np.random.default_rng(0).integers(0, 256, 8, dtype=np.uint8)
        array.write(0, p)
        cached = CachedRAIDArray(array, FBFCache(4))
        stripe, cell = array._cell_of(0)
        array.disks[cell[1]].fail_chunks(array._offset(stripe, cell))
        assert np.array_equal(cached.read(0), p)
