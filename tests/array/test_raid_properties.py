"""Property tests: the functional array stays consistent under random ops."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import RAIDArray
from repro.codes import make_code

LAYOUT = make_code("tip", 5)


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(1, 30))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["write", "overwrite", "fail", "repair"]))
        ops.append(
            (
                kind,
                draw(st.integers(0, 2**31)),  # seed / position selector
            )
        )
    return ops


@given(op_sequences())
@settings(max_examples=40, deadline=None)
def test_random_lifecycle_keeps_scrub_clean(ops):
    """Writes, overwrites, media errors, and repairs in any order leave
    every stripe's parity chains consistent and all data readable."""
    array = RAIDArray(LAYOUT, chunk_size=8, stripes=2)
    shadow: dict[int, np.ndarray] = {}
    pending_failures: set[int] = set()

    for kind, selector in ops:
        rng = np.random.default_rng(selector)
        if kind in ("write", "overwrite"):
            logical = selector % array.capacity_chunks
            payload = rng.integers(0, 256, 8, dtype=np.uint8)
            stripe, cell = array._cell_of(logical)
            if array._offset(stripe, cell) in array.disks[cell[1]].bad_chunks:
                continue  # cannot write through a media error
            array.write(logical, payload)
            shadow[logical] = payload
        elif kind == "fail":
            stripe = selector % array.stripes
            disk = selector % array.layout.num_disks
            row = selector % array.layout.rows
            array.disks[disk].fail_chunks(array._offset(stripe, (row, disk)))
            pending_failures.add(stripe)
        else:  # repair
            stripe = selector % array.stripes
            array.repair_partial_stripe(stripe)
            pending_failures.discard(stripe)

    # repair everything outstanding, then verify global consistency
    for stripe in list(pending_failures):
        array.repair_partial_stripe(stripe)
    report = array.scrub()
    assert report.clean, report
    for logical, expected in shadow.items():
        assert np.array_equal(array.read(logical), expected), logical
