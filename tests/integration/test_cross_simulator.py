"""Cross-simulator consistency: three independent engines, one truth.

The untimed trace replay, the SOR event simulation, and the DOR event
simulation all execute the same recovery plans, so structural quantities
(total requests, spare writes, chunks recovered) must agree exactly, and
behavioural ones (hit counts) must agree wherever the request *order* is
identical.  Hypothesis drives random traces through all three.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import make_code
from repro.sim import (
    SimConfig,
    run_reconstruction,
    run_reconstruction_dor,
    simulate_cache_trace,
)
from repro.workloads import ErrorTraceConfig, generate_errors

LAYOUTS = {p: make_code("tip", p) for p in (5, 7)}


@st.composite
def traces(draw):
    p = draw(st.sampled_from(sorted(LAYOUTS)))
    n = draw(st.integers(2, 12))
    seed = draw(st.integers(0, 2**31))
    layout = LAYOUTS[p]
    return layout, generate_errors(layout, ErrorTraceConfig(n_errors=n, seed=seed))


@given(traces(), st.integers(0, 64))
@settings(max_examples=25, deadline=None)
def test_structural_quantities_agree(trace, capacity):
    layout, errors = trace
    fast = simulate_cache_trace(layout, errors, policy="fbf",
                                capacity_blocks=capacity, workers=1)
    sor = run_reconstruction(
        layout, errors,
        SimConfig(policy="fbf", cache_size=capacity * 32 * 1024, workers=1,
                  parallel_chain_reads=False),
    )
    dor = run_reconstruction_dor(
        layout, errors,
        SimConfig(policy="fbf", cache_size=capacity * 32 * 1024),
    )
    assert fast.requests == sor.total_requests == dor.total_requests
    assert sor.disk_writes == dor.disk_writes == sum(e.length for e in errors)
    # serial SOR executes the exact request order of the trace replay
    assert sor.cache_hits == fast.hits


@given(traces())
@settings(max_examples=15, deadline=None)
def test_infinite_cache_equalizes_all_engines(trace):
    """With an unbounded cache, hit counts are order-independent, so all
    three engines agree exactly."""
    layout, errors = trace
    cap = 10**6
    fast = simulate_cache_trace(layout, errors, policy="lru",
                                capacity_blocks=cap, workers=1)
    sor = run_reconstruction(
        layout, errors,
        SimConfig(policy="lru", cache_size=cap * 32 * 1024, workers=1),
    )
    dor = run_reconstruction_dor(
        layout, errors, SimConfig(policy="lru", cache_size=cap * 32 * 1024)
    )
    assert fast.hits == sor.cache_hits == dor.cache_hits


@given(traces())
@settings(max_examples=10, deadline=None)
def test_dor_never_slower_than_serial(trace):
    layout, errors = trace
    cfg = dict(policy="fbf", cache_size="2MB")
    dor = run_reconstruction_dor(layout, errors, SimConfig(**cfg))
    serial = run_reconstruction(
        layout, errors,
        SimConfig(workers=1, parallel_chain_reads=False, **cfg),
    )
    assert dor.reconstruction_time <= serial.reconstruction_time + 1e-9
