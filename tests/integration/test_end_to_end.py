"""Integration tests spanning codes, core, workloads, cache, and sim.

The key end-to-end check executes a recovery plan the way the RAID
controller would — fetching each selected chain's surviving chunks and
XORing them — on *real payloads*, proving that the scheme generator's
chains actually reconstruct the lost data, not just count I/Os.
"""

import numpy as np
import pytest

from repro.cache import make_policy
from repro.codes import Encoder, make_code, xor_cells
from repro.core import FBFCache, PriorityDictionary, generate_plan
from repro.sim import SimConfig, run_reconstruction, simulate_cache_trace
from repro.workloads import (
    ErrorTraceConfig,
    generate_errors,
    read_trace,
    write_trace,
)


class TestPayloadLevelRecovery:
    @pytest.mark.parametrize("mode", ["typical", "fbf", "greedy"])
    def test_plans_reconstruct_true_data(self, layout, rng, mode):
        """For every disk and a spread of error sizes, executing the plan's
        chain XORs reproduces the failed chunks exactly."""
        stripe = Encoder(layout).random_stripe(64, rng)
        for disk in range(layout.num_disks):
            max_len = layout.rows
            for length in {1, max_len // 2 or 1, max_len}:
                failed = [(r, disk) for r in range(length)]
                plan = generate_plan(layout, failed, mode)
                recovered = {}
                for a in plan.assignments:
                    value = xor_cells(stripe, a.chain.others(a.failed_cell))
                    recovered[a.failed_cell] = value
                for cell in failed:
                    r, c = cell
                    assert np.array_equal(recovered[cell], stripe[r, c]), (
                        mode,
                        disk,
                        length,
                        cell,
                    )


class TestTraceToSimulationPipeline:
    def test_trace_file_replay_matches_in_memory(self, tip7, tmp_path):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=30, seed=21))
        path = tmp_path / "trace.txt"
        write_trace(path, errors)
        replayed = read_trace(path)
        a = simulate_cache_trace(tip7, errors, policy="fbf", capacity_blocks=32)
        b = simulate_cache_trace(tip7, replayed, policy="fbf", capacity_blocks=32)
        assert (a.hits, a.disk_reads) == (b.hits, b.disk_reads)


class TestCrossPolicyAccounting:
    def test_total_requests_policy_independent(self, tip7):
        """The recovery scheme fixes the request stream; policies only
        change the hit/miss split."""
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=25, seed=8))
        results = [
            simulate_cache_trace(tip7, errors, policy=p, capacity_blocks=40)
            for p in ("fifo", "lru", "lfu", "arc", "fbf")
        ]
        assert len({r.requests for r in results}) == 1

    def test_des_reconstruction_time_reflects_misses(self, tip7):
        """More cache misses must not make reconstruction materially
        faster.  (Not strictly monotone: with parallel chain reads, a hit
        can re-phase disk queueing and shift the critical path by a
        request or two, so a small tolerance is allowed.)"""
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=15, seed=5))
        tight = run_reconstruction(tip7, errors, SimConfig(cache_size="128KB", workers=2))
        roomy = run_reconstruction(tip7, errors, SimConfig(cache_size="16MB", workers=2))
        assert tight.disk_reads >= roomy.disk_reads
        assert tight.reconstruction_time >= roomy.reconstruction_time * 0.97


class TestMixedWorkload:
    def test_app_requests_default_to_priority_one(self, tip7):
        """Foreground chunks (absent from the dictionary) enter Queue1 and
        never displace priority-3 recovery chunks."""
        from repro.workloads import AppWorkloadConfig, generate_app_requests

        plan = generate_plan(tip7, [(r, 0) for r in range(5)], "fbf")
        pd = PriorityDictionary(plan)
        cache = FBFCache(capacity=6)
        # warm the cache with the recovery stream
        for cell in plan.request_sequence:
            cache.request(("recovery", cell), priority=pd.lookup(cell))
        hot = [k for k in cache.queue_contents(2) + cache.queue_contents(3)]
        app = generate_app_requests(tip7, AppWorkloadConfig(n_requests=50, seed=2))
        for req in app:
            cache.request(("app", req.stripe, req.cell), priority=pd.lookup(req.cell))
        for key in hot:
            assert key in cache


class TestStarAdjusterPinning:
    def test_star_hit_ratio_exceeds_tip_at_same_cache(self):
        """Paper §IV-B-1: STAR shows higher hit ratios because its adjusters
        are referenced repeatedly and pinned at top priority."""
        star = make_code("star", 7)
        tip = make_code("tip", 7)
        cfg = ErrorTraceConfig(n_errors=40, seed=6)
        star_res = simulate_cache_trace(
            star, generate_errors(star, cfg), policy="fbf", capacity_blocks=64, workers=4
        )
        tip_res = simulate_cache_trace(
            tip, generate_errors(tip, cfg), policy="fbf", capacity_blocks=64, workers=4
        )
        assert star_res.hit_ratio > tip_res.hit_ratio
