"""FIFO policy tests."""

from repro.cache import FIFOCache


def test_evicts_in_arrival_order():
    c = FIFOCache(3)
    for k in "abc":
        c.request(k)
    c.request("d")
    assert "a" not in c and all(k in c for k in "bcd")


def test_hit_does_not_refresh_position():
    c = FIFOCache(2)
    c.request("a")
    c.request("b")
    assert c.request("a") is True  # hit
    c.request("c")  # evicts "a" despite the recent hit
    assert "a" not in c and "b" in c


def test_capacity_respected():
    c = FIFOCache(2)
    for k in "abcdef":
        c.request(k)
    assert len(c) == 2


def test_stats_accumulate():
    c = FIFOCache(2)
    c.request("a")
    c.request("a")
    c.request("b")
    assert c.stats.hits == 1 and c.stats.misses == 2
