"""LRU-K policy tests."""

import pytest

from repro.cache import LRUKCache


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        LRUKCache(4, k=0)


def test_single_reference_blocks_evicted_first():
    c = LRUKCache(3, k=2)
    c.request("a")
    c.request("a")      # a has 2 refs -> finite K-distance
    c.request("b")      # 1 ref -> infinite distance
    c.request("c")      # 1 ref -> infinite distance
    c.request("d")      # must evict b or c, not a
    assert "a" in c


def test_lru_tiebreak_among_infinite_distance():
    c = LRUKCache(2, k=2)
    c.request("a")
    c.request("b")
    c.request("c")      # both a and b have inf distance; a is older
    assert "a" not in c and "b" in c


def test_k1_degenerates_to_lru():
    c = LRUKCache(2, k=1)
    c.request("a")
    c.request("b")
    c.request("a")
    c.request("c")
    assert "b" not in c and "a" in c


def test_retained_history_restores_on_readmission():
    c = LRUKCache(1, k=2, retained=4)
    c.request("a")
    c.request("a")      # history [t1, t2]
    c.request("b")      # evicts a; history retained
    c.request("a")      # readmitted with old history + new ref
    # a now has >= 2 references recorded
    assert c._kth_distance("a") != float("inf")


def test_retained_table_bounded():
    c = LRUKCache(1, k=2, retained=2)
    for k in "abcdef":
        c.request(k)
    assert len(c._ghost_hist) <= 2


def test_capacity_respected():
    c = LRUKCache(3, k=2)
    for k in "abcdefabc":
        c.request(k)
    assert len(c) <= 3
