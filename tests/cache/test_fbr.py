"""FBR policy tests."""

import pytest

from repro.cache import FBRCache


def test_fraction_validation():
    with pytest.raises(ValueError):
        FBRCache(8, new_fraction=0.0)
    with pytest.raises(ValueError):
        FBRCache(8, new_fraction=0.7, old_fraction=0.5)
    with pytest.raises(ValueError):
        FBRCache(8, a_max=1)


def test_new_section_hit_does_not_increment_count():
    c = FBRCache(8, new_fraction=0.5, old_fraction=0.25)
    c.request("a")          # a at MRU, inside the new section
    c.request("a")
    assert c._count["a"] == 1


def test_old_section_hit_increments_count():
    c = FBRCache(4, new_fraction=0.25, old_fraction=0.5)  # new section = 1 slot
    c.request("a")
    c.request("b")
    c.request("c")
    c.request("d")          # a now deepest (old section)
    c.request("a")          # hit outside the new section
    assert c._count["a"] == 2


def test_evicts_least_count_in_old_section():
    c = FBRCache(4, new_fraction=0.25, old_fraction=0.5)
    for k in "abcd":
        c.request(k)
    c.request("a")   # bump a's count (it sits in the old section)
    c.request("e")   # old section now ends with b; b has count 1 -> victim
    assert "b" not in c
    assert "a" in c


def test_capacity_respected():
    c = FBRCache(3)
    for k in "abcdefgh":
        c.request(k)
    assert len(c) <= 3


def test_aging_halves_counts():
    c = FBRCache(2, new_fraction=0.4, old_fraction=0.5, a_max=2)
    c.request("a")
    c.request("b")
    for _ in range(12):
        c.request("a")
        c.request("b")
    # with a_max=2 and 2 blocks, counts must have been halved at least once
    assert max(c._count.values()) < 12
