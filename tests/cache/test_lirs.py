"""LIRS policy tests."""

import pytest

from repro.cache import LIRSCache


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            LIRSCache(8, hir_fraction=0.0)
        with pytest.raises(ValueError):
            LIRSCache(8, hir_fraction=1.0)
        with pytest.raises(ValueError):
            LIRSCache(8, history_factor=-1)


class TestStartup:
    def test_early_blocks_become_lir(self):
        c = LIRSCache(10, hir_fraction=0.2)  # 8 LIR slots
        for k in "abcdefgh":
            c.request(k)
        for k in "abcdefgh":
            assert c.status_of(k) == "LIR", k

    def test_after_lir_full_new_blocks_are_hir(self):
        c = LIRSCache(10, hir_fraction=0.2)
        for k in "abcdefgh":
            c.request(k)
        c.request("x")
        assert c.status_of("x") == "HIR"


class TestPromotion:
    def test_rereferenced_hir_with_recency_promotes(self):
        c = LIRSCache(4, hir_fraction=0.25)  # 3 LIR + 1 HIR
        for k in "abc":
            c.request(k)  # LIR set
        c.request("x")  # HIR, in S and Q
        assert c.status_of("x") == "HIR"
        c.request("x")  # second access while in S: low IRR -> LIR
        assert c.status_of("x") == "LIR"
        # one LIR block was demoted to keep the LIR count bounded
        lir = [k for k in "abcx" if k in c and c.status_of(k) == "LIR"]
        assert len(lir) == 3

    def test_non_resident_history_promotes_on_readmission(self):
        c = LIRSCache(4, hir_fraction=0.25)
        for k in "abc":
            c.request(k)
        c.request("x")   # HIR resident
        c.request("y")   # evicts x from Q; x's history stays in S
        assert "x" not in c
        c.request("x")   # readmitted with recency -> LIR directly
        assert c.status_of("x") == "LIR"


class TestEviction:
    def test_hir_queue_evicted_before_lir(self):
        c = LIRSCache(4, hir_fraction=0.25)
        for k in "abc":
            c.request(k)      # LIR
        c.request("h1")       # HIR
        c.request("h2")       # evicts h1 (the only resident HIR)
        assert "h1" not in c
        assert all(k in c for k in "abc")

    def test_capacity_never_exceeded(self):
        c = LIRSCache(5)
        for i in range(200):
            c.request(i % 13)
            assert len(c) <= 5

    def test_zero_capacity(self):
        c = LIRSCache(0)
        assert c.request("a") is False
        assert len(c) == 0


class TestScanResistance:
    def test_one_shot_scan_cannot_displace_lir_set(self):
        c = LIRSCache(6, hir_fraction=0.17)  # 5 LIR + 1 HIR
        hot = list("abcde")
        for k in hot:
            c.request(k)
        for k in hot:
            c.request(k)  # establish low IRR
        for i in range(100, 140):  # long one-shot scan
            c.request(i)
        hits = sum(c.request(k) for k in hot)
        assert hits == len(hot)  # the scan displaced nothing hot

    def test_beats_lru_on_loop_with_reuse(self):
        from repro.cache import LRUCache

        def run(cache):
            hot = ["h1", "h2"]
            stream = []
            for round_ in range(25):
                stream += hot
                stream += [f"scan-{round_}-{i}" for i in range(5)]
            for k in stream:
                cache.request(k)
            return cache.stats.hits

        assert run(LIRSCache(4)) > run(LRUCache(4))


class TestHistoryBound:
    def test_stack_does_not_grow_unboundedly(self):
        c = LIRSCache(4, history_factor=2)
        for i in range(10_000):
            c.request(i)
        assert len(c._s) <= 4 + c.history_limit + 1

    def test_status_of_unknown_raises(self):
        with pytest.raises(KeyError):
            LIRSCache(4).status_of("ghost")
