"""ARC policy tests: list mechanics, ghost hits, adaptation."""

from repro.cache import ARCCache


def test_hit_promotes_to_t2():
    c = ARCCache(4)
    c.request("a")          # a in T1
    assert c.request("a")   # promoted to T2
    assert "a" in c


def test_capacity_never_exceeded():
    c = ARCCache(3)
    for k in "abcdefgabcx":
        c.request(k)
    assert len(c) <= 3


def test_t1_full_miss_discards_lru_without_ghost():
    """Case IV-A with |T1| == c deletes the T1 LRU outright (no B1 entry)."""
    c = ARCCache(2)
    c.request("a")
    c.request("b")
    c.request("c")
    assert "a" not in c
    assert "a" not in c._b1 and "a" not in c._b2


def test_ghost_hit_b1_increases_p():
    c = ARCCache(2)
    c.request("a")
    c.request("a")      # a -> T2
    c.request("b")      # T1=[b]
    c.request("c")      # REPLACE demotes b -> B1
    assert "b" in c._b1
    p_before = c.target_p
    c.request("b")      # B1 ghost hit
    assert c.target_p > p_before
    assert "b" in c._t2  # readmitted into T2


def test_ghost_hit_b2_decreases_p():
    c = ARCCache(2)
    # Build a T2 block, push it out to B2, then re-touch it.
    c.request("a")
    c.request("a")      # a in T2
    c.request("b")
    c.request("b")      # b in T2
    c.request("c")
    c.request("c")      # c in T2; a evicted to B2 along the way
    # Force p upward first so a decrease is observable.
    c.request("d")
    c.request("a")      # may be B2 hit depending on history
    assert 0.0 <= c.target_p <= c.capacity


def test_p_stays_within_bounds():
    c = ARCCache(4)
    import random

    rnd = random.Random(7)
    keys = [str(i) for i in range(12)]
    for _ in range(500):
        c.request(rnd.choice(keys))
        assert 0.0 <= c.target_p <= c.capacity
        assert len(c) <= c.capacity


def test_zero_capacity():
    c = ARCCache(0)
    assert c.request("a") is False
    assert len(c) == 0


def test_scan_resistance():
    """A one-shot scan must not flush a re-referenced working set."""
    c = ARCCache(4)
    for k in "ab" * 6:      # hot set, lives in T2
        c.request(k)
    for k in "wxyz":        # one-shot scan
        c.request(k)
    hits = sum(c.request(k) for k in "ab")
    lru_equiv_hits = 0      # LRU of size 4 would have evicted both
    assert hits >= 1 > lru_equiv_hits


def test_directory_size_bounded():
    """Resident + ghost entries never exceed 2c (ARC's DBL bound)."""
    c = ARCCache(3)
    import random

    rnd = random.Random(3)
    for _ in range(1000):
        c.request(rnd.randrange(20))
        directory = len(c._t1) + len(c._t2) + len(c._b1) + len(c._b2)
        assert directory <= 2 * c.capacity
