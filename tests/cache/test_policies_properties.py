"""Hypothesis property tests over every registered policy.

Invariants that must hold for *any* replacement policy:

* residency never exceeds capacity;
* a request for a resident block is a hit, for an absent block a miss;
* stats add up (hits + misses == requests, evictions <= misses);
* behaviour is a deterministic function of the request sequence;
* an infinite cache never evicts, and every re-reference hits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import available_policies, make_policy

POLICY_NAMES = sorted(available_policies())

requests = st.lists(
    st.tuples(st.integers(0, 15), st.integers(1, 3)), min_size=1, max_size=200
)
capacities = st.integers(0, 12)


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(reqs=requests, capacity=capacities)
@settings(max_examples=40, deadline=None)
def test_capacity_and_stats_invariants(name, reqs, capacity):
    policy = make_policy(name, capacity)
    for key, prio in reqs:
        resident_before = key in policy
        hit = policy.request(key, priority=prio)
        assert hit == resident_before
        if hit:
            assert key in policy  # hits never evict the hit block itself
        assert len(policy) <= capacity
        if capacity > 0:
            assert key in policy  # just-fetched blocks are resident
    s = policy.stats
    assert s.hits + s.misses == len(reqs)
    assert s.evictions <= s.misses
    assert 0.0 <= s.hit_ratio <= 1.0


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(reqs=requests, capacity=capacities)
@settings(max_examples=25, deadline=None)
def test_determinism(name, reqs, capacity):
    a = make_policy(name, capacity)
    b = make_policy(name, capacity)
    for key, prio in reqs:
        assert a.request(key, priority=prio) == b.request(key, priority=prio)
    assert a.stats.hits == b.stats.hits


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(reqs=requests)
@settings(max_examples=25, deadline=None)
def test_infinite_cache_is_optimal(name, reqs):
    """With capacity >= distinct keys, every re-reference hits."""
    distinct = len({k for k, _ in reqs})
    policy = make_policy(name, distinct)
    for key, prio in reqs:
        policy.request(key, priority=prio)
    assert policy.stats.misses == distinct
    assert policy.stats.evictions == 0


@pytest.mark.parametrize("name", POLICY_NAMES)
@given(reqs=requests, capacity=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_reset_restores_cold_state(name, reqs, capacity):
    policy = make_policy(name, capacity)
    for key, prio in reqs:
        policy.request(key, priority=prio)
    policy.reset()
    fresh = make_policy(name, capacity)
    for key, prio in reqs:
        assert policy.request(key, priority=prio) == fresh.request(key, priority=prio)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_priority_hint_accepted_by_all(name):
    """Non-FBF policies must tolerate (and ignore) the priority hint."""
    policy = make_policy(name, 4)
    policy.request("x", priority=3)
    policy.request("y", priority=None)
    assert policy.stats.misses == 2
