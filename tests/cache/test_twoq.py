"""2Q policy tests."""

import pytest

from repro.cache import TwoQCache


def test_fraction_validation():
    with pytest.raises(ValueError):
        TwoQCache(8, kin_fraction=0.0)
    with pytest.raises(ValueError):
        TwoQCache(8, kout_fraction=0.0)


def test_first_touch_goes_to_a1in():
    c = TwoQCache(8)
    c.request("a")
    assert "a" in c._a1in and "a" not in c._am


def test_a1in_spills_only_when_full():
    """With free slots, blocks accumulate in A1in beyond Kin (paper's 2Q)."""
    c = TwoQCache(4)  # kin = 1
    c.request("a")
    c.request("b")
    assert "a" in c._a1in and not c._a1out


def test_promotion_requires_a1out_hit():
    c = TwoQCache(4)  # kin = 1
    for k in "abcd":
        c.request(k)        # cache full, all in A1in
    c.request("e")          # reclaim pushes a -> A1out
    assert "a" in c._a1out
    c.request("a")          # ghost hit -> Am
    assert "a" in c._am


def test_a1in_hit_does_not_promote():
    c = TwoQCache(8)  # kin = 2
    c.request("a")
    assert c.request("a") is True
    assert "a" in c._a1in and "a" not in c._am


def test_scan_does_not_pollute_am():
    c = TwoQCache(8)
    # establish a hot block in Am
    c.request("h")
    for k in "xyzw":
        c.request(k)
    c.request("h")  # via A1out if pushed, or A1in hit
    for k in "12345678":
        c.request(k)  # a long scan
    assert len(c._am) <= max(1, len(c._am))  # Am never flooded by the scan
    assert all(k not in c._am for k in "12345678")


def test_capacity_respected():
    c = TwoQCache(4)
    for k in "abcdefghij":
        c.request(k)
    assert len(c) <= 4


def test_ghost_list_bounded():
    c = TwoQCache(4)  # kout = 2
    for k in "abcdefghij":
        c.request(k)
    assert len(c._a1out) <= c.kout


def test_zero_capacity():
    c = TwoQCache(0)
    assert c.request("a") is False
    assert len(c) == 0
