"""LFU policy tests."""

from repro.cache import LFUCache


def test_evicts_least_frequent():
    c = LFUCache(2)
    c.request("a")
    c.request("a")  # freq(a)=2
    c.request("b")  # freq(b)=1
    c.request("c")  # evicts b
    assert "b" not in c and "a" in c and "c" in c


def test_tie_broken_by_lru():
    c = LFUCache(2)
    c.request("a")
    c.request("b")
    c.request("c")  # a and b tie at freq 1; a is older
    assert "a" not in c and "b" in c


def test_frequency_resets_on_eviction():
    """Plain LFU keeps no ghost state: history dies with the block."""
    c = LFUCache(1)
    for _ in range(5):
        c.request("a")  # freq(a) = 5
    c.request("b")  # a is the only resident, so it is evicted anyway
    assert "a" not in c and "b" in c
    c.request("a")  # readmitted at freq 1, evicting b
    assert "a" in c and "b" not in c


def test_min_freq_tracking_across_promotions():
    c = LFUCache(3)
    c.request("a")
    c.request("a")
    c.request("b")
    c.request("b")
    c.request("c")
    c.request("d")  # evicts c (only freq-1 block)
    assert "c" not in c
    assert all(k in c for k in "abd")


def test_stats():
    c = LFUCache(2)
    for k in "aabbb":
        c.request(k)
    assert c.stats.hits == 3 and c.stats.misses == 2
