"""Model-based testing: each policy against a brute-force oracle.

The production policies use incremental data structures (frequency
buckets, ghost lists, priority queues); the oracles below recompute the
victim from the full access history on every request.  Hypothesis drives
random request streams through both and demands identical hit/miss
behaviour — the strongest correctness statement short of a proof.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import FIFOCache, LFUCache, LRUCache
from repro.core import FBFCache

streams = st.lists(
    st.tuples(st.integers(0, 9), st.integers(1, 3)), min_size=1, max_size=150
)
capacities = st.integers(1, 8)


class OracleLRU:
    def __init__(self, capacity):
        self.capacity = capacity
        self.history: list = []

    def request(self, key):
        resident = self._contents()
        hit = key in resident
        self.history.append(key)
        return hit

    def _contents(self):
        seen: list = []
        for key in reversed(self.history):
            if key not in seen:
                seen.append(key)
            if len(seen) == self.capacity:
                break
        return seen


@given(streams, capacities)
@settings(max_examples=60, deadline=None)
def test_lru_matches_oracle(reqs, capacity):
    real, oracle = LRUCache(capacity), OracleLRU(capacity)
    for key, _ in reqs:
        assert real.request(key) == oracle.request(key)


class OracleFIFO:
    """FIFO residency derived from arrival order alone."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.arrivals: OrderedDict = OrderedDict()

    def request(self, key):
        hit = key in self.arrivals
        if not hit:
            self.arrivals[key] = None
            while len(self.arrivals) > self.capacity:
                self.arrivals.popitem(last=False)
        return hit


@given(streams, capacities)
@settings(max_examples=60, deadline=None)
def test_fifo_matches_oracle(reqs, capacity):
    real, oracle = FIFOCache(capacity), OracleFIFO(capacity)
    for key, _ in reqs:
        assert real.request(key) == oracle.request(key)


class OracleLFU:
    """LFU with LRU tie-break, recomputed from scratch each eviction."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.resident: dict = {}  # key -> [freq, last_access]
        self.clock = 0

    def request(self, key):
        self.clock += 1
        if key in self.resident:
            self.resident[key][0] += 1
            self.resident[key][1] = self.clock
            return True
        if len(self.resident) >= self.capacity:
            victim = min(
                self.resident, key=lambda k: (self.resident[k][0], self.resident[k][1])
            )
            del self.resident[victim]
        self.resident[key] = [1, self.clock]
        return False


@given(streams, capacities)
@settings(max_examples=60, deadline=None)
def test_lfu_matches_oracle(reqs, capacity):
    real, oracle = LFUCache(capacity), OracleLFU(capacity)
    for key, _ in reqs:
        assert real.request(key) == oracle.request(key)


class OracleFBF:
    """Paper Algorithm 1 restated with plain lists."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.queues = {1: [], 2: [], 3: []}  # LRU first

    def _find(self, key):
        for q, items in self.queues.items():
            if key in items:
                return q
        return None

    def request(self, key, priority):
        q = self._find(key)
        if q is not None:
            self.queues[q].remove(key)
            target = q - 1 if q > 1 else 1
            self.queues[target].append(key)
            return True
        if sum(len(v) for v in self.queues.values()) >= self.capacity:
            for level in (1, 2, 3):
                if self.queues[level]:
                    self.queues[level].pop(0)
                    break
        self.queues[min(priority, 3)].append(key)
        return False


@given(streams, capacities)
@settings(max_examples=60, deadline=None)
def test_fbf_matches_oracle(reqs, capacity):
    real, oracle = FBFCache(capacity), OracleFBF(capacity)
    for key, prio in reqs:
        assert real.request(key, priority=prio) == oracle.request(key, prio)
    # final queue contents agree too
    for level in (1, 2, 3):
        assert list(real.queue_contents(level)) == oracle.queues[level]
