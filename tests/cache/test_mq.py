"""MQ policy tests."""

import pytest

from repro.cache import MQCache


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            MQCache(4, n_queues=0)
        with pytest.raises(ValueError):
            MQCache(4, life_time=0)
        with pytest.raises(ValueError):
            MQCache(4, qout_factor=-1)


class TestQueuePlacement:
    def test_first_access_level_zero(self):
        c = MQCache(8)
        c.request("a")
        assert c.level_of("a") == 0

    def test_levels_follow_log2_frequency(self):
        c = MQCache(8)
        for i in range(1, 9):
            c.request("a")
            import math

            expected = min(int(math.log2(i)), c.n_queues - 1)
            assert c.level_of("a") == expected, i

    def test_level_capped_at_top_queue(self):
        c = MQCache(8, n_queues=2)
        for _ in range(100):
            c.request("a")
        assert c.level_of("a") == 1


class TestEviction:
    def test_evicts_lowest_queue_first(self):
        c = MQCache(2)
        c.request("hot")
        c.request("hot")  # level 1
        c.request("cold")  # level 0
        c.request("new")  # evicts cold, not hot
        assert "cold" not in c and "hot" in c

    def test_capacity_respected(self):
        c = MQCache(3)
        for i in range(30):
            c.request(i % 7)
            assert len(c) <= 3


class TestGhostBuffer:
    def test_readmission_resumes_frequency(self):
        c = MQCache(1, qout_factor=4)
        c.request("a")
        c.request("a")
        c.request("a")  # freq 3, level 1
        c.request("b")  # evict a -> qout with freq 3
        c.request("a")  # readmit: freq 4 -> level 2
        assert c.level_of("a") == 2

    def test_qout_bounded(self):
        c = MQCache(1, qout_factor=2)
        for i in range(10):
            c.request(i)
        assert len(c._qout) <= 2

    def test_qout_disabled(self):
        c = MQCache(1, qout_factor=0)
        c.request("a")
        c.request("a")
        c.request("b")
        c.request("a")  # freq restarts at 1
        assert c.level_of("a") == 0


class TestExpiry:
    def test_idle_hot_block_demotes(self):
        c = MQCache(4, life_time=3)
        for _ in range(4):
            c.request("hot")  # level 2
        assert c.level_of("hot") == 2
        for i in range(10):
            c.request(f"filler{i % 3}")
        assert c.level_of("hot") < 2  # expired and demoted

    def test_demotion_is_gradual(self):
        c = MQCache(4, life_time=2)
        for _ in range(8):
            c.request("hot")  # level 3
        start = c.level_of("hot")
        c.request("x")
        c.request("x")
        c.request("x")
        assert start - c.level_of("hot") <= start  # never below 0, stepwise
        assert c.level_of("hot") >= 0
