"""Tests for the cache-policy registry."""

import pytest

from repro.cache.base import CachePolicy
from repro.cache.registry import (
    PAPER_BASELINES,
    POLICIES,
    available_policies,
    make_policy,
)


class TestLookup:
    def test_unknown_policy_raises_with_listing(self):
        with pytest.raises(ValueError, match="unknown cache policy 'clock'"):
            make_policy("clock", 8)
        # The error names every valid choice, so typos are self-diagnosing.
        with pytest.raises(ValueError, match="arc.*fbf.*fifo"):
            make_policy("nope", 8)

    def test_case_and_whitespace_insensitive(self):
        assert make_policy(" LRU ", 4).name == "lru"
        assert make_policy("FBF", 4).name == "fbf"

    def test_kwargs_forwarded(self):
        fbf = make_policy("fbf", 4, demote_on_hit=False, n_queues=5)
        assert fbf.demote_on_hit is False and fbf.n_queues == 5


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_registered_name_constructs_and_matches(self, name):
        """Registry name -> instance -> .name round-trips exactly."""
        policy = make_policy(name, 8)
        assert isinstance(policy, CachePolicy)
        assert policy.name == name
        assert policy.capacity == 8
        # A fresh instance is empty with zeroed stats.
        assert len(policy) == 0 and policy.stats.requests == 0
        # And actually usable: one miss then one hit.
        assert policy.request("blk") is False
        assert policy.request("blk") is True

    def test_no_duplicate_registrations(self):
        """Every factory yields a distinct policy class/name."""
        names = [make_policy(n, 4).name for n in POLICIES]
        assert len(names) == len(set(names))
        classes = [type(make_policy(n, 4)) for n in POLICIES]
        assert len(classes) == len(set(classes))

    def test_available_policies_matches_registry(self):
        assert set(available_policies()) == set(POLICIES)

    def test_instances_are_independent(self):
        """No shared state between two instances of the same policy."""
        a = make_policy("lru", 4)
        b = make_policy("lru", 4)
        a.request("x")
        assert "x" in a and "x" not in b
        assert b.stats.requests == 0


class TestPaperBaselines:
    def test_baselines_are_registered(self):
        assert set(PAPER_BASELINES) <= set(POLICIES)

    def test_paper_reporting_order(self):
        assert PAPER_BASELINES == ("fifo", "lru", "lfu", "arc")
