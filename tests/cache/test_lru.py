"""LRU policy tests."""

from repro.cache import LRUCache


def test_evicts_least_recently_used():
    c = LRUCache(3)
    for k in "abc":
        c.request(k)
    c.request("a")  # refresh a
    c.request("d")  # evicts b
    assert "b" not in c and all(k in c for k in "acd")


def test_hit_refreshes_recency():
    c = LRUCache(2)
    c.request("a")
    c.request("b")
    c.request("a")
    c.request("c")  # b is LRU now
    assert "b" not in c and "a" in c


def test_repeated_misses_cycle():
    c = LRUCache(1)
    for k in "ababab":
        assert c.request(k) is False
    assert c.stats.misses == 6


def test_sequential_scan_thrashing():
    """Classic LRU weakness: a loop one block bigger than the cache."""
    c = LRUCache(3)
    for _ in range(3):
        for k in "abcd":
            c.request(k)
    assert c.stats.hits == 0
