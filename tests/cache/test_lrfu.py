"""LRFU policy tests."""

import pytest

from repro.cache import LRFUCache


def test_lambda_validation():
    with pytest.raises(ValueError):
        LRFUCache(4, lam=1.5)
    with pytest.raises(ValueError):
        LRFUCache(4, lam=-0.1)


def test_lambda_zero_behaves_like_lfu():
    """lam=0: F(x)=1, CRF = pure reference count."""
    c = LRFUCache(2, lam=0.0)
    c.request("a")
    c.request("a")
    c.request("b")
    c.request("c")  # b has CRF 1, a has CRF 2 -> evict b
    assert "a" in c and "b" not in c


def test_lambda_one_behaves_like_lru():
    """lam=1: the most recent reference dominates the CRF."""
    c = LRFUCache(2, lam=1.0)
    for _ in range(5):
        c.request("a")
    c.request("b")
    c.request("a")
    c.request("c")  # LRU-like: b evicted despite being fresher than old a-refs
    assert "b" not in c and "a" in c


def test_crf_decays_over_time():
    c = LRFUCache(4, lam=0.5)
    c.request("a")
    before = c.crf("a")
    c.request("b")
    c.request("c")
    after = c.crf("a")
    assert after < before


def test_hit_increases_crf():
    c = LRFUCache(4, lam=0.5)
    c.request("a")
    low = c.crf("a")
    c.request("a")
    assert c.crf("a") > low


def test_capacity_respected():
    c = LRFUCache(3, lam=0.2)
    for k in "abcdefg":
        c.request(k)
    assert len(c) <= 3
