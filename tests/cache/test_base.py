"""Tests for the policy base classes and statistics."""

import pytest

from repro.cache import LRUCache, make_policy
from repro.cache.base import CacheStats


class TestCacheStats:
    def test_initial(self):
        s = CacheStats()
        assert s.requests == 0
        assert s.hit_ratio == 0.0

    def test_hit_ratio(self):
        s = CacheStats(hits=3, misses=1)
        assert s.requests == 4
        assert s.hit_ratio == 0.75

    def test_reset(self):
        s = CacheStats(hits=3, misses=1, evictions=2)
        s.reset()
        assert (s.hits, s.misses, s.evictions) == (0, 0, 0)


class TestTemplateBehaviour:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_zero_capacity_never_installs(self):
        c = LRUCache(0)
        assert c.request("a") is False
        assert c.request("a") is False
        assert len(c) == 0
        assert c.stats.misses == 2

    def test_miss_installs(self):
        c = LRUCache(2)
        assert c.request("a") is False
        assert "a" in c and len(c) == 1

    def test_hit_after_install(self):
        c = LRUCache(2)
        c.request("a")
        assert c.request("a") is True
        assert c.stats.hits == 1

    def test_eviction_counted(self):
        c = LRUCache(1)
        c.request("a")
        c.request("b")
        assert c.stats.evictions == 1
        assert "a" not in c

    def test_reset_clears_contents_and_stats(self):
        c = LRUCache(2)
        c.request("a")
        c.request("a")
        c.reset()
        assert len(c) == 0
        assert c.stats.requests == 0
        assert "a" not in c


def test_make_policy_unknown():
    with pytest.raises(ValueError, match="unknown cache policy"):
        make_policy("nope", 4)


def test_make_policy_kwargs():
    c = make_policy("lru2", 4, k=3)
    assert c.k == 3
