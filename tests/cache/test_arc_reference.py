"""ARC against a literal transcription of Megiddo & Modha's Figure 4.

The production :class:`~repro.cache.ARCCache` is structured for clarity;
this oracle transcribes the published pseudocode line by line with plain
lists.  Hypothesis then demands bit-identical behaviour — hits, p, and
all four list contents — over random request streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ARCCache


class ArcOracle:
    """Verbatim ARC(c) from the FAST 2003 paper, Figure 4."""

    def __init__(self, c: int):
        self.c = c
        self.p = 0.0
        self.t1: list = []  # LRU at index 0
        self.t2: list = []
        self.b1: list = []
        self.b2: list = []

    def replace(self, x) -> None:
        if self.t1 and (
            len(self.t1) > self.p
            or (x in self.b2 and len(self.t1) == self.p)
        ):
            lru = self.t1.pop(0)
            self.b1.append(lru)
        else:
            lru = self.t2.pop(0)
            self.b2.append(lru)

    def request(self, x) -> bool:
        # Case I
        if x in self.t1:
            self.t1.remove(x)
            self.t2.append(x)
            return True
        if x in self.t2:
            self.t2.remove(x)
            self.t2.append(x)
            return True
        # Case II
        if x in self.b1:
            self.p = min(self.c, self.p + max(len(self.b2) / len(self.b1), 1))
            self.replace(x)
            self.b1.remove(x)
            self.t2.append(x)
            return False
        # Case III
        if x in self.b2:
            self.p = max(0, self.p - max(len(self.b1) / len(self.b2), 1))
            self.replace(x)
            self.b2.remove(x)
            self.t2.append(x)
            return False
        # Case IV
        l1 = len(self.t1) + len(self.b1)
        l2 = len(self.t2) + len(self.b2)
        if l1 == self.c:
            if len(self.t1) < self.c:
                self.b1.pop(0)
                self.replace(x)
            else:
                self.t1.pop(0)
        elif l1 < self.c and l1 + l2 >= self.c:
            if l1 + l2 == 2 * self.c:
                self.b2.pop(0)
            self.replace(x)
        self.t1.append(x)
        return False


streams = st.lists(st.integers(0, 12), min_size=1, max_size=300)


@given(streams, st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_arc_matches_published_pseudocode(stream, capacity):
    real = ARCCache(capacity)
    oracle = ArcOracle(capacity)
    for key in stream:
        assert real.request(key) == oracle.request(key), key
        assert real.target_p == oracle.p
        assert list(real._t1) == oracle.t1
        assert list(real._t2) == oracle.t2
        assert list(real._b1) == oracle.b1
        assert list(real._b2) == oracle.b2


@given(streams, st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_arc_dbl_invariants(stream, capacity):
    """The paper's invariants: |T1|+|T2| <= c, |T1|+|B1| <= c,
    |T2|+|B2| <= 2c, total directory <= 2c."""
    cache = ARCCache(capacity)
    for key in stream:
        cache.request(key)
        t1, t2 = len(cache._t1), len(cache._t2)
        b1, b2 = len(cache._b1), len(cache._b2)
        assert t1 + t2 <= capacity
        assert t1 + b1 <= capacity
        assert t1 + t2 + b1 + b2 <= 2 * capacity
