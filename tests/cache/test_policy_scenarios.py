"""Cross-policy scenario tests: canonical access patterns.

Each scenario encodes a known qualitative strength/weakness from the
caching literature and checks the policies behave accordingly — both a
regression net and executable documentation of why each baseline exists.
"""

import numpy as np
import pytest

from repro.cache import make_policy


def _run(policy_name, stream, capacity):
    cache = make_policy(policy_name, capacity)
    for key in stream:
        cache.request(key)
    return cache.stats


def _loop_stream(n_blocks, repetitions):
    return [k for _ in range(repetitions) for k in range(n_blocks)]


def _zipf_stream(n, universe=64, s=1.3, seed=0):
    rng = np.random.default_rng(seed)
    return [int(x) % universe for x in rng.zipf(s, size=n)]


class TestLoopPattern:
    """A cyclic scan one block larger than the cache: LRU/FIFO get zero
    hits; frequency-aware policies eventually lock in a subset."""

    def test_lru_and_fifo_thrash(self):
        stream = _loop_stream(9, 12)
        for name in ("lru", "fifo"):
            assert _run(name, stream, 8).hits == 0, name

    def test_uniform_loop_defeats_every_implemented_policy(self):
        """With all frequencies tied, LFU's LRU tie-break evicts exactly
        the next-needed block too — the loop pattern needs MRU-style
        eviction, which none of the paper's policies provide."""
        stream = _loop_stream(9, 12)
        assert _run("lfu", stream, 8).hits == 0

    def test_lfu_locks_a_warmed_subset(self):
        """Once some blocks carry higher counts, LFU pins them through
        the loop and hits on every revisit."""
        warm = [k for _ in range(3) for k in range(4)]
        stream = warm + _loop_stream(9, 10)
        stats = _run("lfu", stream, 8)
        assert stats.hits >= 4 * 10  # blocks 0..3 hit on every loop pass


class TestScanResistance:
    """A hot pair interleaved with long one-shot scans: scan-resistant
    policies (ARC, 2Q) keep the hot pair; LRU flushes it."""

    @staticmethod
    def _stream():
        out = []
        scan_id = 1000
        for round_ in range(30):
            out += ["hot-a", "hot-b"]
            for _ in range(6):
                out.append(scan_id)
                scan_id += 1
        return out

    @pytest.mark.parametrize("resistant", ["arc", "2q", "lfu"])
    def test_resistant_policies_beat_lru(self, resistant):
        stream = self._stream()
        lru_hits = _run("lru", stream, 4).hits
        assert _run(resistant, stream, 4).hits >= lru_hits, resistant

    def test_lru_flushes_hot_pair(self):
        assert _run("lru", self._stream(), 4).hits == 0


class TestZipfWorkload:
    """Skewed popularity: every sane policy lands in the same ballpark
    and nobody collapses to zero."""

    def test_all_policies_capture_skew(self):
        stream = _zipf_stream(4000)
        for name in ("fifo", "lru", "lfu", "arc", "2q", "lrfu", "fbr", "mq",
                     "lru2", "fbf"):
            stats = _run(name, stream, 16)
            assert stats.hit_ratio > 0.3, name

    def test_frequency_policies_lead_on_pure_skew(self):
        stream = _zipf_stream(4000)
        lfu = _run("lfu", stream, 8).hit_ratio
        fifo = _run("fifo", stream, 8).hit_ratio
        assert lfu >= fifo


class TestRecencyShift:
    """The working set moves: pure frequency (LFU) clings to stale
    blocks, recency-aware policies adapt."""

    @staticmethod
    def _stream():
        phase1 = [k for _ in range(40) for k in range(4)]        # hot: 0-3
        phase2 = [k for _ in range(40) for k in range(100, 104)]  # hot: 100-103
        return phase1 + phase2

    def test_lru_adapts_quickly(self):
        stream = self._stream()
        lru = _run("lru", stream, 4)
        assert lru.hit_ratio > 0.9

    def test_lfu_pays_for_stale_frequency(self):
        stream = self._stream()
        lfu = _run("lfu", stream, 4)
        lru = _run("lru", stream, 4)
        assert lfu.hits <= lru.hits

    def test_arc_tracks_the_shift(self):
        stream = self._stream()
        arc = _run("arc", stream, 4)
        assert arc.hit_ratio > 0.8
