"""Tests for reuse-distance analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import INFINITE, lru_hit_curve, recovery_reuse_profile, reuse_distances
from repro.cache import LRUCache


class TestReuseDistances:
    def test_cold_misses_are_infinite(self):
        assert reuse_distances("abc") == [INFINITE] * 3

    def test_immediate_rereference_is_zero(self):
        assert reuse_distances("aa") == [INFINITE, 0]

    def test_classic_example(self):
        # a b c a : distance of the second 'a' is 2 (b, c in between)
        assert reuse_distances("abca")[-1] == 2

    def test_duplicates_between_count_once(self):
        # a b b a : only one distinct block between the two a's
        assert reuse_distances("abba")[-1] == 1

    def test_empty_stream(self):
        assert reuse_distances([]) == []


class TestLruHitCurve:
    def test_matches_real_lru_cache(self):
        """Mattson: curve(C) equals simulating LRUCache(C), for all C."""
        stream = list("abcabcddabeecbaabcxyzzyab")
        curve = lru_hit_curve(stream, range(0, 8))
        for cap in range(0, 8):
            cache = LRUCache(cap)
            for key in stream:
                cache.request(key)
            assert curve[cap] == pytest.approx(cache.stats.hit_ratio), cap

    def test_monotone_in_capacity(self):
        stream = list("abcdabcdaabbccdd")
        curve = lru_hit_curve(stream, range(0, 10))
        vals = [curve[c] for c in range(0, 10)]
        assert vals == sorted(vals)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            lru_hit_curve("ab", [-1])

    def test_empty_stream(self):
        assert lru_hit_curve([], [4]) == {4: 0.0}


@given(st.lists(st.integers(0, 8), max_size=60), st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_mattson_property(stream, cap):
    """The inclusion property, on random streams: curve == simulated LRU."""
    curve = lru_hit_curve(stream, [cap])
    cache = LRUCache(cap)
    for key in stream:
        cache.request(key)
    assert curve[cap] == pytest.approx(cache.stats.hit_ratio)


class TestRecoveryReuseProfile:
    def test_typical_has_no_rereferences(self, tip7):
        prof = recovery_reuse_profile(tip7, [(r, 0) for r in range(5)], "typical")
        assert prof.rereferences == 0
        assert prof.min_lru_capacity_for_all_hits() == 0

    def test_fbf_rereferences_match_plan(self, tip7):
        from repro.core import generate_plan

        failed = [(r, 0) for r in range(5)]
        prof = recovery_reuse_profile(tip7, failed, "fbf")
        plan = generate_plan(tip7, failed, "fbf")
        assert prof.total_requests == plan.total_requests
        assert prof.rereferences == plan.total_requests - plan.unique_reads

    def test_explains_fbf_vs_lru(self, tip7):
        """The LRU capacity needed to catch all rereferences exceeds the
        number of shared chunks FBF must pin — the paper's core argument."""
        failed = [(r, 0) for r in range(5)]
        prof = recovery_reuse_profile(tip7, failed, "fbf")
        shared_chunks = sum(
            len(v) for k, v in prof.distances_by_priority.items() if k >= 2
        )
        assert prof.min_lru_capacity_for_all_hits() > shared_chunks

    def test_distances_keyed_by_priority(self, tip7):
        prof = recovery_reuse_profile(tip7, [(r, 0) for r in range(5)], "fbf")
        assert set(prof.distances_by_priority) <= {1, 2, 3}
        # priority-1 chunks are never rereferenced
        assert 1 not in prof.distances_by_priority
