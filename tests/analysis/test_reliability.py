"""Tests for MTTDL / WOV models."""

import pytest

from repro.analysis import mttdl_3dft, mttdl_birth_death, wov_improvement


MTBF = 1_000_000.0  # hours, a typical spec-sheet number
REPAIR = 10.0


class TestMttdlBirthDeath:
    def test_validation(self):
        with pytest.raises(ValueError):
            mttdl_birth_death(3, MTBF, REPAIR, fault_tolerance=3)
        with pytest.raises(ValueError):
            mttdl_birth_death(8, 0, REPAIR)
        with pytest.raises(ValueError):
            mttdl_birth_death(8, MTBF, 0)
        with pytest.raises(ValueError):
            mttdl_birth_death(8, MTBF, REPAIR, fault_tolerance=-1)

    def test_raid0_closed_form(self):
        """m=0: MTTDL = MTBF / n exactly."""
        assert mttdl_birth_death(10, MTBF, REPAIR, fault_tolerance=0) == pytest.approx(
            MTBF / 10
        )

    def test_raid5_closed_form(self):
        """m=1: MTTDL = (lam(n) + lam(n-1) + mu) / (lam(n) * lam(n-1)),
        the textbook RAID-5 result."""
        n = 8
        lam = 1 / MTBF
        mu = 1 / REPAIR
        expected = ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam**2)
        assert mttdl_birth_death(n, MTBF, REPAIR, fault_tolerance=1) == pytest.approx(
            expected, rel=1e-9
        )

    def test_more_tolerance_much_more_mttdl(self):
        vals = [
            mttdl_birth_death(8, MTBF, REPAIR, fault_tolerance=m) for m in range(4)
        ]
        for lo, hi in zip(vals, vals[1:]):
            assert hi > lo * 100  # each parity multiplies MTTDL enormously

    def test_faster_repair_improves_mttdl(self):
        slow = mttdl_3dft(8, MTBF, 20.0)
        fast = mttdl_3dft(8, MTBF, 10.0)
        assert fast > slow

    def test_more_disks_lower_mttdl(self):
        assert mttdl_3dft(16, MTBF, REPAIR) < mttdl_3dft(8, MTBF, REPAIR)

    def test_3dft_scaling_is_cubic_in_repair(self):
        """For mu >> lam, 3DFT MTTDL ~ mu^3, so halving the repair time
        multiplies MTTDL by ~8 — the reliability payoff of faster recovery."""
        slow = mttdl_3dft(8, MTBF, 20.0)
        fast = mttdl_3dft(8, MTBF, 10.0)
        assert fast / slow == pytest.approx(8.0, rel=0.05)


class TestWovImprovement:
    def test_swapped_arguments_rejected(self):
        with pytest.raises(ValueError):
            wov_improvement(8, MTBF, 1.0, 2.0)

    def test_paper_figure11_scenario(self):
        """A 14.9% reconstruction-time cut (FBF vs LRU) shrinks the WOV by
        14.9% and grows 3DFT MTTDL by ~(1/0.851)^3 ~ 1.62x."""
        cmp = wov_improvement(8, MTBF, 10.0, 10.0 * (1 - 0.149))
        assert cmp.wov_reduction_percent == pytest.approx(14.9)
        assert cmp.mttdl_gain_factor == pytest.approx((1 / 0.851) ** 3, rel=0.05)

    def test_no_improvement_is_identity(self):
        cmp = wov_improvement(8, MTBF, 10.0, 10.0)
        assert cmp.wov_reduction_percent == 0.0
        assert cmp.mttdl_gain_factor == pytest.approx(1.0)
