"""Tests for trace locality statistics."""

import pytest

from repro.analysis import trace_locality
from repro.workloads import ErrorTraceConfig, PartialStripeError, generate_errors


def _err(time, stripe):
    return PartialStripeError(time=time, stripe=stripe, disk=0, start_row=0, length=1)


class TestValidation:
    def test_too_few_errors(self):
        with pytest.raises(ValueError):
            trace_locality([_err(0, 1)])

    def test_bad_distance(self):
        with pytest.raises(ValueError):
            trace_locality([_err(0, 1), _err(1, 2)], neighbor_distance=0)


class TestSpatial:
    def test_all_clustered(self):
        errors = [_err(float(i), 100 + i) for i in range(10)]
        stats = trace_locality(errors)
        assert stats.spatial_neighbor_fraction == 1.0

    def test_all_scattered(self):
        errors = [_err(float(i), i * 10_000) for i in range(10)]
        stats = trace_locality(errors)
        assert stats.spatial_neighbor_fraction == 0.0

    def test_half_clustered(self):
        clustered = [_err(float(i), 100 + i) for i in range(5)]
        scattered = [_err(float(5 + i), (i + 1) * 10**6) for i in range(5)]
        stats = trace_locality(clustered + scattered)
        assert stats.spatial_neighbor_fraction == pytest.approx(0.5)

    def test_median_stripe_gap(self):
        errors = [_err(float(i), i * 7) for i in range(9)]
        assert trace_locality(errors).median_stripe_gap == 7


class TestTemporal:
    def test_burst_fraction(self):
        # 4 tight bursts of 3 errors, big gaps between bursts
        errors = []
        t = 0.0
        stripe = 0
        for _ in range(4):
            for _ in range(3):
                errors.append(_err(t, stripe := stripe + 1000))
                t += 0.001
            t += 1000.0
        stats = trace_locality(errors)
        assert stats.temporal_burst_fraction > 0.6


class TestGeneratorCalibration:
    def test_default_generator_hits_the_field_band(self, tip7):
        """The default workload's spatial locality lands inside the cited
        20-60% band (the generator's 0.4 knob, verified empirically)."""
        errors = generate_errors(
            tip7, ErrorTraceConfig(n_errors=400, seed=0)
        )
        stats = trace_locality(errors)
        assert stats.in_field_band(), stats.spatial_neighbor_fraction

    def test_zero_locality_config_measures_low(self, tip7):
        errors = generate_errors(
            tip7,
            ErrorTraceConfig(n_errors=300, seed=0, spatial_locality=0.0,
                             array_stripes=10**7),
        )
        stats = trace_locality(errors)
        assert stats.spatial_neighbor_fraction < 0.05
        assert not stats.in_field_band()
