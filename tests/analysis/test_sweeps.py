"""Tests for sweep-curve analytics."""

import pytest

from repro.analysis import peak_gain, stable_point, summarize_panel
from repro.bench import SweepPoint


def _pt(policy, mb, hr, code="TIP", p=7):
    return SweepPoint(
        experiment="fig8", code=code, p=p, policy=policy, cache_mb=mb, hit_ratio=hr
    )


PANEL = [
    # fbf plateaus at 8MB; lru keeps climbing through 32MB
    _pt("fbf", 2, 0.05), _pt("fbf", 4, 0.12), _pt("fbf", 8, 0.16),
    _pt("fbf", 16, 0.16), _pt("fbf", 32, 0.16),
    _pt("lru", 2, 0.00), _pt("lru", 4, 0.02), _pt("lru", 8, 0.06),
    _pt("lru", 16, 0.12), _pt("lru", 32, 0.16),
]


class TestStablePoint:
    def test_finds_plateau_start(self):
        assert stable_point(PANEL, "fbf") == 8
        assert stable_point(PANEL, "lru") == 32

    def test_flat_series_is_stable_from_start(self):
        pts = [_pt("fbf", mb, 0.2) for mb in (1, 2, 4)]
        assert stable_point(pts, "fbf") == 1

    def test_tolerance_widens_the_plateau(self):
        assert stable_point(PANEL, "lru", tolerance=0.5) < 32

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            stable_point(PANEL, "nope")

    def test_non_numeric_metric_rejected(self):
        """A label column must fail loudly, not TypeError deep in the math."""
        with pytest.raises(ValueError, match="not a numeric SweepPoint metric"):
            stable_point(PANEL, "fbf", metric="policy")

    def test_error_names_valid_metrics(self):
        with pytest.raises(ValueError, match="hit_ratio"):
            stable_point(PANEL, "fbf", metric="scheme_mode")

    def test_typo_metric_rejected(self):
        with pytest.raises(ValueError, match="hit_ration"):
            stable_point(PANEL, "fbf", metric="hit_ration")


class TestPeakGain:
    def test_locates_mid_sweep_peak(self):
        size, gain = peak_gain(PANEL)
        assert size == 8  # 0.16 - 0.06 = 0.10, the largest gap
        assert gain == pytest.approx(0.10)

    def test_lower_better_metric(self):
        pts = [
            SweepPoint(experiment="fig9", code="TIP", p=7, policy=pol,
                       cache_mb=mb, disk_reads=reads)
            for pol, mb, reads in [
                ("fbf", 2, 90), ("lru", 2, 100),
                ("fbf", 4, 50), ("lru", 4, 80),
            ]
        ]
        size, gain = peak_gain(pts, metric="disk_reads", higher_better=False)
        assert size == 4 and gain == 30

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError, match="not a numeric SweepPoint metric"):
            peak_gain(PANEL, metric="code")


class TestSummarizePanel:
    def test_headline_numbers(self):
        summary = summarize_panel(PANEL)
        assert summary.code == "TIP" and summary.p == 7
        assert summary.fbf_stable_point_mb == 8
        assert summary.best_baseline_stable_point_mb == 32
        assert summary.fbf_plateaus_earlier
        assert summary.peak_gain_mb == 8

    def test_requires_single_panel(self):
        mixed = PANEL + [_pt("fbf", 2, 0.1, code="STAR")]
        with pytest.raises(ValueError, match="one panel"):
            summarize_panel(mixed)

    def test_requires_baselines(self):
        only_fbf = [p for p in PANEL if p.policy == "fbf"]
        with pytest.raises(ValueError, match="baseline"):
            summarize_panel(only_fbf)

    def test_on_real_sweep(self):
        """The paper's claim holds on an actual mini-sweep: FBF's stable
        point is never later than the best baseline's."""
        from repro.bench import Scale, fig8_hit_ratio

        points = fig8_hit_ratio(
            Scale(n_errors=40, workers=16, cache_mbs=(0.5, 1, 2, 4, 8, 16),
                  codes=("tip",), ps_main=(7,))
        )
        summary = summarize_panel(points, tolerance=0.02)
        assert summary.fbf_plateaus_earlier
        assert summary.peak_gain_value > 0
