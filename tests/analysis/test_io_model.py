"""Tests for the exact expected-I/O model."""

import pytest

from repro.analysis import expected_reads, shape_table
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import ErrorTraceConfig, generate_errors


class TestShapeTable:
    def test_covers_every_shape(self, tip7):
        table = shape_table(tip7, "fbf")
        rows = tip7.rows
        expected_count = tip7.num_disks * sum(
            rows - length + 1 for length in range(1, rows + 1)
        )
        assert len(table) == expected_count

    def test_counts_consistent(self, tip7):
        for (disk, start, length), (unique, total) in shape_table(tip7, "fbf").items():
            assert 0 < unique <= total

    def test_typical_unique_equals_total(self, tip7):
        for unique, total in shape_table(tip7, "typical").values():
            assert unique == total


class TestExpectedReads:
    def test_fbf_expects_fewer_unique_reads(self, layout):
        fbf = expected_reads(layout, "fbf")
        typical = expected_reads(layout, "typical")
        assert fbf.expected_unique_reads <= typical.expected_unique_reads + 1e-9

    def test_greedy_is_best(self, tip7):
        greedy = expected_reads(tip7, "greedy")
        fbf = expected_reads(tip7, "fbf")
        assert greedy.expected_unique_reads <= fbf.expected_unique_reads + 1e-9

    def test_sharing_ratio_bounds(self, layout):
        exp = expected_reads(layout, "fbf")
        assert 0.0 <= exp.sharing_ratio < 1.0
        assert exp.expected_rereferences >= 0.0

    def test_typical_sharing_is_zero(self, tip7):
        assert expected_reads(tip7, "typical").sharing_ratio == 0.0

    def test_simulation_converges_to_expectation(self, tip7):
        """Sample-mean unique reads over a large trace approaches the
        exact expectation (validates generator + planner agreement)."""
        exp = expected_reads(tip7, "fbf")
        errors = generate_errors(
            tip7, ErrorTraceConfig(n_errors=2000, array_stripes=10**6, seed=0)
        )
        plans = PlanCache(tip7, "fbf")
        mean_unique = sum(plans.get(e)[0].unique_reads for e in errors) / len(errors)
        assert mean_unique == pytest.approx(exp.expected_unique_reads, rel=0.05)

    def test_infinite_cache_hit_ratio_matches_sharing_ratio(self, tip7):
        """With an unbounded cache, the measured hit ratio equals the
        model's sharing ratio (per-stripe rereference fraction)."""
        exp = expected_reads(tip7, "fbf")
        errors = generate_errors(
            tip7, ErrorTraceConfig(n_errors=1500, array_stripes=10**6, seed=1)
        )
        res = simulate_cache_trace(
            tip7, errors, policy="lru", capacity_blocks=10**6, workers=1
        )
        assert res.hit_ratio == pytest.approx(exp.sharing_ratio, abs=0.02)
