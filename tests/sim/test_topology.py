"""Tests for the rack-aware topology layer (`repro.sim.topology`).

Routing is a pure function of (src, dst); transfers charge every hop's
bandwidth; the degenerate one-node topology yields no events (the
bit-identity guarantee the sim refactor rests on); heartbeats detect
dead nodes and the nic-counter detector isolates limplocked ones.
"""

import pytest

from repro.sim.kernel import Environment
from repro.sim.topology import (
    FaultInjector,
    HeartbeatMonitor,
    NodeFailure,
    TopologySpec,
    build_topology,
    single_node_topology,
)


def _drive(env, gen):
    proc = env.process(gen)
    env.run(env.all_of([proc]))
    return env.now


class TestRouting:
    def test_same_node_route_is_empty(self):
        env = Environment()
        topo = single_node_topology(env)
        assert topo.route(0, 0) == ()

    def test_intra_and_cross_rack_hop_counts(self):
        env = Environment()
        topo = build_topology(env, TopologySpec(racks=2, nodes_per_rack=2))
        assert len(topo.route(0, 1)) == 2  # nic -> nic, same rack
        assert len(topo.route(0, 2)) == 4  # nic -> uplink -> uplink -> nic
        # pure function of the endpoints
        assert topo.route(0, 2) == topo.route(0, 2)

    def test_degenerate_transfer_yields_no_events(self):
        env = Environment()
        topo = single_node_topology(env)
        assert _drive(env, topo.transfer(0, 0, 1 << 20)) == 0.0
        assert topo.transfers == 0
        assert topo.cross_rack_bytes == 0


class TestTransferTiming:
    def _spec(self):
        return TopologySpec(
            racks=2, nodes_per_rack=1,
            nic_bandwidth=1e6, uplink_bandwidth=1e5,
            link_latency=0.0, streams_per_link=1,
        )

    def test_cross_rack_transfer_charges_every_hop(self):
        env = Environment()
        topo = build_topology(env, self._spec())
        elapsed = _drive(env, topo.transfer(0, 1, 100_000))
        # nic hops: 0.1 s each at 1 MB/s; uplink hops: 1.0 s each at 100 KB/s
        assert elapsed == pytest.approx(2.2)
        assert topo.cross_rack_bytes == 100_000
        assert topo.intra_rack_bytes == 0
        assert topo.transfers == 1

    def test_limplock_slows_the_nic(self):
        env = Environment()
        topo = build_topology(env, self._spec())
        healthy = _drive(env, topo.transfer(0, 1, 100_000))
        topo.limplock(0, 4.0)
        env2 = Environment()
        topo2 = build_topology(env2, self._spec())
        topo2.limplock(0, 4.0)
        slowed = _drive(env2, topo2.transfer(0, 1, 100_000))
        assert slowed > healthy  # node 0's nic hop runs 4x slower
        assert slowed == pytest.approx(healthy + 3 * 0.1)

    def test_utilization_is_bounded(self):
        env = Environment()
        topo = build_topology(env, self._spec())
        duration = _drive(env, topo.transfer(0, 1, 100_000))
        for _, util in topo.link_utilization(duration):
            assert 0.0 <= util <= 1.0


class TestFaults:
    def test_failed_node_raises_on_transfer(self):
        env = Environment()
        topo = build_topology(env, TopologySpec(racks=1, nodes_per_rack=2))
        topo.fail_node(1)
        with pytest.raises(NodeFailure):
            _drive(env, topo.transfer(1, 0, 1024))

    def test_heartbeats_detect_a_dead_node(self):
        env = Environment()
        topo = build_topology(env, TopologySpec(racks=1, nodes_per_rack=3))
        monitor = HeartbeatMonitor(topo, master=0, period=0.5, miss_threshold=3)
        monitor.start()
        injector = FaultInjector(topo)
        injector.fail_at(1, at=1.0)
        env.run(until=5.0)
        assert 1 in monitor.detected_at
        assert monitor.detected_at[1] > 1.0
        assert 2 not in monitor.detected_at
        assert ("fail", 1) in [(kind, node) for _, kind, node in injector.injected]

    def test_burst_staggers_failures(self):
        env = Environment()
        topo = build_topology(env, TopologySpec(racks=1, nodes_per_rack=4))
        FaultInjector(topo).burst([1, 2, 3], start=1.0, spacing=0.5)
        env.run(until=1.75)
        assert not topo.nodes[0].failed
        assert topo.nodes[1].failed and topo.nodes[2].failed
        assert not topo.nodes[3].failed  # its turn is at t=2.0
        env.run(until=3.0)
        assert topo.nodes[3].failed


class TestLimplockDetection:
    def test_nic_counters_isolate_the_limplocked_node(self):
        env = Environment()
        spec = TopologySpec(
            racks=2, nodes_per_rack=2,
            nic_bandwidth=1e6, uplink_bandwidth=1e6,
            link_latency=1e-6, streams_per_link=1,
            limplock_node=1, limplock_factor=8.0,
        )
        topo = build_topology(env, spec)

        def traffic():
            for src in (1, 2, 3):
                yield from topo.transfer(src, 0, 50_000)

        _drive(env, traffic())
        assert topo.limplock_suspects() == (1,)
