"""The kernel's same-time fast lane and Event/Timeout free-list pools.

Covers the PR-9 hot-path contract (DESIGN.md §16) from both directions:

* unit tests pin the mechanics — FIFO fast-lane ordering interleaved
  with the heap, ``schedule_now`` / ``timeout(0)`` equivalence, pool
  recycling gated on the refcount guard, exact-class-only pooling, and
  the subclass auto-guard that forces pooling off when ``_schedule`` is
  overridden;
* a hypothesis differential test drives random process/resource/store/
  container workloads through the pooled fast-lane kernel and the
  frozen pre-PR stepwise reference (plus the sanitized, unpooled and
  obs-enabled variants) and requires bit-identical traces, clocks and
  delivered values.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.kernel_bench import ReferenceEnvironment
from repro.checks.sanitizer import SanitizedEnvironment
from repro.obs import runtime
from repro.sim.kernel import (
    Container,
    Environment,
    Event,
    Resource,
    Store,
    Timeout,
)


class TestFastLane:
    def test_schedule_now_fires_this_instant_in_fifo_order(self):
        env = Environment()
        seen: list[str] = []

        def proc(tag):
            value = yield env.schedule_now(tag)
            seen.append(value)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert seen == ["a", "b", "c"]
        assert env.now == 0.0

    def test_timeout0_and_schedule_now_interleave_in_schedule_order(self):
        """The two zero-delay spellings share one FIFO lane."""
        env = Environment()
        order: list[str] = []
        env.timeout(0.0).callbacks.append(lambda ev: order.append("t1"))
        env.schedule_now().callbacks.append(lambda ev: order.append("n1"))
        env.timeout(0.0).callbacks.append(lambda ev: order.append("t2"))
        env.schedule_now().callbacks.append(lambda ev: order.append("n2"))
        env.run()
        assert order == ["t1", "n1", "t2", "n2"]

    def test_fast_lane_respects_counter_order_against_heap(self):
        """An earlier-scheduled heap event at the same instant wins.

        At t=1 the timeout scheduled first must fire before the
        zero-delay event its sibling schedules — (when, counter) total
        order, not blanket fast-lane priority.
        """
        env = Environment()
        order: list[str] = []

        def early(ev):
            order.append("heap-early")

        def sibling(ev):
            order.append("sibling")
            env.schedule_now().callbacks.append(lambda e: order.append("fast"))

        env.timeout(1.0).callbacks.append(sibling)
        env.timeout(1.0).callbacks.append(early)
        env.run()
        # sibling fired first (scheduled first), then the heap event
        # already queued at t=1 with a smaller counter, then the fast one.
        assert order == ["sibling", "heap-early", "fast"]

    def test_peek_sees_fast_lane(self):
        env = Environment()
        env.timeout(5.0)
        assert env.peek() == 5.0
        env.schedule_now()
        assert env.peek() == env.now

    def test_run_until_deadline_drains_fast_lane(self):
        env = Environment()
        fired: list[float] = []
        env.schedule_now().callbacks.append(lambda ev: fired.append(env.now))
        env.timeout(3.0).callbacks.append(lambda ev: fired.append(env.now))
        env.run(until=2.0)
        assert fired == [0.0]
        assert env.now == 2.0

    def test_schedule_now_delivers_value(self):
        env = Environment()
        got: list[object] = []

        def proc():
            got.append((yield env.schedule_now("payload")))

        env.process(proc())
        env.run()
        assert got == ["payload"]


class TestPools:
    def test_unreferenced_timeout_is_recycled(self):
        env = Environment()
        first = id(env.timeout(1.0))  # only the heap holds it
        env.run()
        assert len(env._timeout_pool) == 1
        again = env.timeout(1.0)
        assert id(again) == first
        assert env._timeout_pool == []

    def test_referenced_timeout_is_not_recycled(self):
        env = Environment()
        held = env.timeout(1.0)
        env.run()
        assert env._timeout_pool == []
        assert held.processed

    def test_recycled_timeout_is_pristine(self):
        env = Environment()
        env.timeout(1.0, value="old")
        env.run()
        t = env.timeout(2.0, value="new")
        assert t.delay == 2.0
        assert t.triggered and not t.processed
        assert t.callbacks == []
        got: list[object] = []
        t.callbacks.append(lambda ev: got.append(ev.value))
        env.run()
        assert got == ["new"]

    def test_event_pool_recycles_schedule_now(self):
        env = Environment()
        first = id(env.schedule_now())
        env.run()
        assert len(env._event_pool) == 1
        assert id(env.schedule_now()) == first

    def test_subclass_events_are_never_pooled(self):
        """Only exact Event/Timeout recycle; Requests etc. carry state."""
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)

        env.process(proc())
        env.run()
        assert all(type(e) is Timeout for e in env._timeout_pool)
        assert all(type(e) is Event for e in env._event_pool)

    def test_pooling_off_keeps_pools_empty(self):
        env = Environment(pooling=False)
        env.timeout(1.0)
        env.schedule_now()
        env.run()
        assert env._timeout_pool == []
        assert env._event_pool == []

    def test_pool_counters_when_obs_enabled(self):
        runtime.enable(fresh=True)
        try:
            env = Environment()

            def proc():
                for _ in range(5):
                    yield env.timeout(1.0)

            env.process(proc())
            env.run()
            metrics = {m.name: m.value for m in runtime.registry().metrics()}
        finally:
            runtime.disable()
        assert metrics["kernel.pool.timeout_hits"] >= 3
        assert metrics["kernel.pool.timeout_misses"] >= 1

    def test_auto_guard_forces_pooling_off_for_custom_schedule(self):
        class Custom(Environment):
            def _schedule(self, event, delay=0.0):
                super()._schedule(event, delay)

        assert Custom()._pooling is False
        assert Environment()._pooling is True
        # Overriding step() alone keeps pooling: the stepwise loop still
        # routes scheduling through the stock _schedule.
        assert ReferenceEnvironment()._pooling is False  # explicit opt-out
        assert SanitizedEnvironment()._pooling is True


# ---------------------------------------------------------------------------
# Differential property test: pooled fast-lane kernel vs the frozen
# pre-PR stepwise reference, across every A/B axis.
# ---------------------------------------------------------------------------

# Exact binary fractions only: clocks must compare bit-identically.
_DELAYS = (0.0, 0.25, 0.5, 1.0, 2.5)


@st.composite
def workload_specs(draw):
    n_procs = draw(st.integers(1, 6))
    specs = []
    for _ in range(n_procs):
        actions = draw(
            st.lists(
                st.one_of(
                    st.tuples(st.just("timeout"), st.sampled_from(_DELAYS)),
                    st.tuples(st.just("now"), st.integers(0, 99)),
                    st.tuples(st.just("resource"), st.sampled_from(_DELAYS)),
                    st.tuples(st.just("store_put"), st.integers(0, 99)),
                    st.just(("store_get", None)),
                    st.tuples(st.just("cont_put"), st.sampled_from((1.0, 2.0))),
                    st.just(("cont_get", None)),
                ),
                min_size=1,
                max_size=8,
            )
        )
        specs.append(actions)
    return specs


def _execute(env: Environment, specs) -> tuple:
    resource = Resource(env, capacity=2)
    store = Store(env)
    tank = Container(env, capacity=6.0, init=2.0)
    trace: list[tuple] = []

    def worker(pid, actions):
        for idx, (kind, arg) in enumerate(actions):
            if kind == "timeout":
                value = yield env.timeout(arg, value=(pid, idx))
            elif kind == "now":
                value = yield env.schedule_now(arg)
            elif kind == "resource":
                req = resource.request()
                yield req
                yield env.timeout(arg)
                resource.release(req)
                value = None
            elif kind == "store_put":
                store.put(arg)
                value = arg
            elif kind == "store_get":
                value = yield store.get()
            elif kind == "cont_put":
                yield tank.put(arg)
                value = arg
            else:  # cont_get
                yield tank.get(1.0)
                value = 1.0
            trace.append((pid, idx, kind, env.now, value))

    for pid, actions in enumerate(specs):
        env.process(worker(pid, actions))
    # A deadline (not quiescence) bounds blocked get()s: a consumer with
    # no matching producer parks forever, which is a legal workload here.
    env.run(until=64.0)
    return tuple(trace), env.now, env._counter


@given(workload_specs())
@settings(max_examples=60, deadline=None)
def test_pooled_fast_lane_matches_stepwise_reference(specs):
    expected = _execute(ReferenceEnvironment(), specs)
    assert _execute(Environment(), specs) == expected
    assert _execute(Environment(pooling=False), specs) == expected
    assert _execute(SanitizedEnvironment(), specs) == expected


@given(workload_specs())
@settings(max_examples=15, deadline=None)
def test_obs_enabled_dispatch_is_bit_identical(specs):
    expected = _execute(ReferenceEnvironment(), specs)
    runtime.enable(fresh=True)
    try:
        observed = _execute(Environment(), specs)
    finally:
        runtime.disable()
    assert observed == expected
