"""Tests for disk models and the simulated disk."""

import pytest

from repro.sim.disk import Disk, FixedLatencyModel, SeekRotateTransferModel
from repro.sim.kernel import Environment


class TestFixedLatencyModel:
    def test_constant(self):
        m = FixedLatencyModel(0.01)
        assert m.service_time(0, 1, "read") == 0.01
        assert m.service_time(10**12, 10**6, "write") == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLatencyModel(0)


class TestSeekRotateTransferModel:
    def test_zero_distance_has_no_seek(self):
        m = SeekRotateTransferModel(seed=1)
        t1 = m.service_time(0, 32768, "read")  # head starts at cylinder 0
        max_rotation = 60.0 / m.rpm
        transfer = 32768 / m.transfer_rate
        assert t1 <= max_rotation + transfer + 1e-12

    def test_longer_seeks_cost_more_on_average(self):
        near = SeekRotateTransferModel(seed=2)
        far = SeekRotateTransferModel(seed=2)
        n = 200
        near_total = sum(
            near.service_time((i % 2) * near.bytes_per_cylinder, 4096, "read")
            for i in range(n)
        )
        far_total = sum(
            far.service_time((i % 2) * 40_000 * far.bytes_per_cylinder, 4096, "read")
            for i in range(n)
        )
        assert far_total > near_total

    def test_deterministic_given_seed(self):
        a = SeekRotateTransferModel(seed=5)
        b = SeekRotateTransferModel(seed=5)
        seq_a = [a.service_time(i * 10**7, 4096, "read") for i in range(20)]
        seq_b = [b.service_time(i * 10**7, 4096, "read") for i in range(20)]
        assert seq_a == seq_b

    def test_validation(self):
        with pytest.raises(ValueError):
            SeekRotateTransferModel(rpm=0)
        with pytest.raises(ValueError):
            SeekRotateTransferModel(cylinders=0)


class TestDisk:
    def test_read_takes_service_time(self):
        env = Environment()
        disk = Disk(env, 0, FixedLatencyModel(0.01))
        p = env.process(disk.access("read", 0, 4096))
        env.run(p)
        assert env.now == pytest.approx(0.01)
        assert disk.stats.reads == 1
        assert disk.stats.bytes_read == 4096

    def test_write_accounting(self):
        env = Environment()
        disk = Disk(env, 0, FixedLatencyModel(0.01))
        env.run(env.process(disk.access("write", 0, 8192)))
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 8192
        assert disk.stats.accesses == 1

    def test_queueing_serializes_and_counts_wait(self):
        env = Environment()
        disk = Disk(env, 0, FixedLatencyModel(0.01))

        def issue():
            yield from disk.access("read", 0, 4096)

        procs = [env.process(issue()) for _ in range(3)]
        env.run(env.all_of(procs))
        assert env.now == pytest.approx(0.03)
        assert disk.stats.queue_wait == pytest.approx(0.01 + 0.02)
        assert disk.stats.busy_time == pytest.approx(0.03)

    def test_rejects_empty_access(self):
        env = Environment()
        disk = Disk(env, 0)
        with pytest.raises(ValueError):
            env.run(env.process(disk.access("read", 0, 0)))

    def test_default_model_is_papers_10ms(self):
        env = Environment()
        disk = Disk(env, 0)
        env.run(env.process(disk.access("read", 0, 1)))
        assert env.now == pytest.approx(0.010)
