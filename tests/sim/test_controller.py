"""Tests for the RAID controller's recovery logic."""

import pytest

from repro.cache import LRUCache
from repro.sim.array import ArrayGeometry, DiskArray
from repro.sim.cache_sim import TimedBufferCache
from repro.sim.controller import RAIDController
from repro.sim.kernel import Environment
from repro.workloads import PartialStripeError


@pytest.fixture
def stack(tip7):
    env = Environment()
    array = DiskArray(env, ArrayGeometry(layout=tip7, stripes=1000))
    controller = RAIDController(env, array, scheme_mode="fbf")
    cache = TimedBufferCache(env, LRUCache(64), array)
    return env, array, controller, cache


def _error(**kw):
    defaults = dict(time=0.0, stripe=5, disk=0, start_row=0, length=3)
    defaults.update(kw)
    return PartialStripeError(**defaults)


class TestRecovery:
    def test_recovers_all_chunks(self, stack):
        env, array, controller, cache = stack
        env.run(env.process(controller.recover_error(_error(length=4), cache)))
        assert controller.chunks_recovered == 4
        assert controller.errors_recovered == 1

    def test_writes_one_spare_chunk_per_failed_chunk(self, stack):
        env, array, controller, cache = stack
        env.run(env.process(controller.recover_error(_error(length=3), cache)))
        assert array.total_writes == 3
        assert array.disks[0].stats.writes == 3  # spares live on the failed disk

    def test_never_reads_the_failed_chunks(self, stack, tip7):
        env, array, controller, cache = stack
        error = _error(length=tip7.rows)  # whole column segment
        env.run(env.process(controller.recover_error(error, cache)))
        # disk 0 should see only spare writes, never reads of lost chunks
        assert array.disks[0].stats.reads == 0

    def test_disk_reads_match_cache_misses(self, stack):
        env, array, controller, cache = stack
        env.run(env.process(controller.recover_error(_error(length=5), cache)))
        assert array.total_reads == cache.policy.stats.misses == cache.log.disk_reads

    def test_validation(self, stack):
        env, array, _, _ = stack
        with pytest.raises(ValueError):
            RAIDController(env, array, xor_time_per_chunk=-1)


class TestPlanMemoization:
    def test_same_shape_reuses_plan(self, stack):
        env, array, controller, cache = stack
        a = _error(stripe=1)
        b = _error(stripe=2)  # same shape, different stripe
        env.run(env.process(controller.recover_error(a, cache)))
        env.run(env.process(controller.recover_error(b, cache)))
        assert len(controller.overhead.samples) == 1
        assert controller.overhead.plan_cache_hits == 1

    def test_different_shapes_recompute(self, stack):
        env, array, controller, cache = stack
        env.run(env.process(controller.recover_error(_error(length=1), cache)))
        env.run(env.process(controller.recover_error(_error(length=2), cache)))
        assert len(controller.overhead.samples) == 2

    def test_overhead_is_positive(self, stack):
        env, array, controller, cache = stack
        env.run(env.process(controller.recover_error(_error(), cache)))
        assert controller.overhead.mean > 0
        assert controller.overhead.total >= controller.overhead.mean


class TestSerialVsParallelReads:
    def test_parallel_chain_reads_are_faster(self, tip7):
        def run(parallel):
            env = Environment()
            array = DiskArray(env, ArrayGeometry(layout=tip7, stripes=100))
            controller = RAIDController(env, array, parallel_chain_reads=parallel)
            cache = TimedBufferCache(env, LRUCache(64), array)
            env.run(env.process(controller.recover_error(_error(length=3), cache)))
            return env.now

        assert run(parallel=True) < run(parallel=False)

    def test_same_read_counts_either_way(self, tip7):
        def reads(parallel):
            env = Environment()
            array = DiskArray(env, ArrayGeometry(layout=tip7, stripes=100))
            controller = RAIDController(env, array, parallel_chain_reads=parallel)
            cache = TimedBufferCache(env, LRUCache(64), array)
            env.run(env.process(controller.recover_error(_error(length=3), cache)))
            return array.total_reads

        assert reads(True) == reads(False)
