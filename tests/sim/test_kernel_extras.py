"""Additional kernel tests: AnyOf, queue-depth disks, edge behaviours."""

import pytest

from repro.sim.disk import Disk, FixedLatencyModel
from repro.sim.kernel import AnyOf, Environment


class TestAnyOf:
    def test_first_wins(self):
        env = Environment()

        def delayed(d, v):
            yield env.timeout(d)
            return v

        procs = [env.process(delayed(d, f"v{d}")) for d in (5, 2, 9)]
        index, value = env.run(env.any_of(procs))
        assert (index, value) == (1, "v2")
        assert env.now == 2

    def test_already_processed_child(self):
        env = Environment()
        done = env.timeout(0, value="early")
        env.run()
        race = env.any_of([done, env.timeout(100)])
        env.run(race)
        assert race.value == (0, "early")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf(Environment(), [])

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            AnyOf(Environment(), ["nope"])

    def test_child_failure_fails_race(self):
        env = Environment()
        bad = env.event()
        race = env.any_of([bad, env.timeout(10)])
        bad.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run(race)

    def test_losers_keep_running(self):
        env = Environment()
        finished = []

        def worker(d):
            yield env.timeout(d)
            finished.append(d)

        procs = [env.process(worker(d)) for d in (1, 3)]
        env.run(env.any_of(procs))
        assert finished == [1]
        env.run()
        assert finished == [1, 3]

    def test_timeout_race_pattern(self):
        """The request-with-deadline idiom."""
        env = Environment()

        def slow_io():
            yield env.timeout(50)
            return "data"

        def with_deadline():
            io = env.process(slow_io())
            deadline = env.timeout(10, value="timed-out")
            index, value = yield env.any_of([io, deadline])
            return value

        assert env.run(env.process(with_deadline())) == "timed-out"


class TestQueueDepth:
    def test_validation(self):
        with pytest.raises(ValueError):
            Disk(Environment(), 0, queue_depth=0)

    def test_depth_two_overlaps_service(self):
        env = Environment()
        disk = Disk(env, 0, FixedLatencyModel(0.01), queue_depth=2)

        def issue():
            yield from disk.access("read", 0, 4096)

        procs = [env.process(issue()) for _ in range(4)]
        env.run(env.all_of(procs))
        assert env.now == pytest.approx(0.02)  # two waves of two

    def test_depth_one_serializes(self):
        env = Environment()
        disk = Disk(env, 0, FixedLatencyModel(0.01), queue_depth=1)

        def issue():
            yield from disk.access("read", 0, 4096)

        procs = [env.process(issue()) for _ in range(4)]
        env.run(env.all_of(procs))
        assert env.now == pytest.approx(0.04)
