"""Tests for the fast trace-driven cache simulator."""

import pytest

from repro.codes import make_code
from repro.core import PriorityDictionary, generate_plan
from repro.sim import PlanCache, simulate_cache_trace
from repro.sim.reconstruction import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors


@pytest.fixture
def errors(tip7):
    return generate_errors(tip7, ErrorTraceConfig(n_errors=25, seed=4))


class TestPlanCache:
    def test_memoizes_by_shape(self, tip7, errors):
        pc = PlanCache(tip7, "fbf")
        a = pc.get(errors[0])
        b = pc.get(errors[0])
        assert a is b

    def test_plans_match_direct_generation(self, tip7, errors):
        pc = PlanCache(tip7, "fbf")
        for e in errors[:5]:
            plan, pd = pc.get(e)
            direct = generate_plan(tip7, e.cells(tip7), "fbf")
            assert plan.request_sequence == direct.request_sequence
            assert dict(pd) == dict(PriorityDictionary(direct))

    def test_stats_counts_hits_misses_entries(self, tip7, errors):
        pc = PlanCache(tip7, "fbf")
        assert pc.stats() == {"hits": 0, "misses": 0, "entries": 0}
        pc.get(errors[0])
        pc.get(errors[0])
        stats = pc.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == len(pc) == 1

    def test_shared_across_runs_accumulates(self, tip7, errors):
        """One PlanCache serving a whole sweep group: the second replay
        hits every shape the first one planned."""
        pc = PlanCache(tip7, "fbf")
        simulate_cache_trace(tip7, errors, policy="lru", capacity_blocks=32, plan_cache=pc)
        planned = pc.stats()["misses"]
        simulate_cache_trace(tip7, errors, policy="fbf", capacity_blocks=64, plan_cache=pc)
        stats = pc.stats()
        assert stats["misses"] == planned  # no new shapes on the re-run
        assert stats["hits"] >= planned

    def test_max_entries_bounds_and_evicts_fifo(self, tip7, errors):
        distinct = []
        seen = set()
        for e in errors:
            if e.shape not in seen:
                seen.add(e.shape)
                distinct.append(e)
        assert len(distinct) >= 3
        pc = PlanCache(tip7, "fbf", max_entries=2)
        pc.get(distinct[0])
        pc.get(distinct[1])
        pc.get(distinct[2])  # evicts distinct[0] (oldest)
        assert len(pc) == 2
        pc.get(distinct[0])  # re-planned, not served from memo
        assert pc.stats()["hits"] == 0
        assert pc.stats()["misses"] == 4

    def test_max_entries_validation(self, tip7):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(tip7, "fbf", max_entries=0)


class TestSimulateCacheTrace:
    def test_request_count_matches_plans(self, tip7, errors):
        pc = PlanCache(tip7, "fbf")
        expected = sum(pc.get(e)[0].total_requests for e in errors)
        res = simulate_cache_trace(
            tip7, errors, policy="lru", capacity_blocks=32, plan_cache=pc
        )
        assert res.requests == expected
        assert res.hits + res.disk_reads == res.requests

    def test_zero_capacity_all_misses(self, tip7, errors):
        res = simulate_cache_trace(tip7, errors, policy="lru", capacity_blocks=0)
        assert res.hits == 0
        assert res.hit_ratio == 0.0

    def test_infinite_cache_hits_all_shared_reads(self, tip7, errors):
        pc = PlanCache(tip7, "fbf")
        shared = sum(
            pc.get(e)[0].total_requests - pc.get(e)[0].unique_reads for e in errors
        )
        res = simulate_cache_trace(
            tip7, errors, policy="lru", capacity_blocks=10**6, plan_cache=pc
        )
        assert res.hits == shared

    def test_validation(self, tip7, errors):
        with pytest.raises(ValueError):
            simulate_cache_trace(tip7, errors, capacity_blocks=-1)
        with pytest.raises(ValueError):
            simulate_cache_trace(tip7, errors, workers=0)

    def test_plan_cache_layout_mismatch_rejected(self, tip7, errors):
        other = make_code("star", 5)
        pc = PlanCache(other, "fbf")
        with pytest.raises(ValueError, match="different layout"):
            simulate_cache_trace(tip7, errors, plan_cache=pc)

    def test_worker_partitioning_changes_results(self, tip7, errors):
        one = simulate_cache_trace(tip7, errors, capacity_blocks=64, workers=1)
        many = simulate_cache_trace(tip7, errors, capacity_blocks=64, workers=8)
        assert one.requests == many.requests  # same streams, split differently

    def test_hint_validation(self, tip7, errors):
        with pytest.raises(ValueError, match="hint"):
            simulate_cache_trace(tip7, errors, hint="frequency")

    def test_share_hint_feeds_raw_counts(self, tip7, errors):
        """With hint='share' and n_queues>3, requests land above Queue3
        on adjuster-free TIP only if counts exceed 3 (they don't), so the
        two hint modes agree there — but both run cleanly."""
        from repro.core.fbf_cache import FBFCache

        a = simulate_cache_trace(
            tip7, errors, capacity_blocks=32, hint="priority",
            policy_factory=lambda cap: FBFCache(cap, n_queues=5),
        )
        b = simulate_cache_trace(
            tip7, errors, capacity_blocks=32, hint="share",
            policy_factory=lambda cap: FBFCache(cap, n_queues=5),
        )
        assert a.requests == b.requests

    def test_typical_scheme_has_zero_hits(self, tip7, errors):
        """All-horizontal recovery shares nothing, so nothing can hit."""
        res = simulate_cache_trace(
            tip7, errors, policy="lru", capacity_blocks=64, scheme_mode="typical"
        )
        assert res.hits == 0


class TestAgreementWithEventSim:
    def test_hit_counts_match_des(self, tip7, errors):
        """The untimed replay and the DES must agree on cache behaviour
        when chain reads are issued serially (same request order)."""
        capacity = 64
        workers = 4
        fast = simulate_cache_trace(
            tip7, errors, policy="fbf", capacity_blocks=capacity, workers=workers
        )
        rep = run_reconstruction(
            tip7,
            errors,
            SimConfig(
                policy="fbf",
                cache_size=capacity * 32 * 1024,
                workers=workers,
                parallel_chain_reads=False,
            ),
        )
        assert rep.cache_hits == fast.hits
        assert rep.disk_reads == fast.disk_reads
