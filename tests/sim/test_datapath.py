"""Tests for the payload-verifying data path and failure injection."""

import numpy as np
import pytest

from repro.core import generate_plan
from repro.sim import SimConfig, run_reconstruction
from repro.sim.datapath import PayloadOracle, VerifyingDataPath
from repro.workloads import ErrorTraceConfig, generate_errors


@pytest.fixture
def oracle(tip7):
    return PayloadOracle(tip7, payload_size=32, seed=5)


class TestPayloadOracle:
    def test_validation(self, tip7):
        with pytest.raises(ValueError):
            PayloadOracle(tip7, payload_size=0)
        with pytest.raises(ValueError):
            PayloadOracle(tip7, max_cached_stripes=0)

    def test_deterministic(self, tip7):
        a = PayloadOracle(tip7, payload_size=32, seed=5)
        b = PayloadOracle(tip7, payload_size=32, seed=5)
        assert np.array_equal(a.chunk(42, (0, 0)), b.chunk(42, (0, 0)))

    def test_distinct_stripes_distinct_payloads(self, oracle):
        assert not np.array_equal(oracle.chunk(1, (0, 0)), oracle.chunk(2, (0, 0)))

    def test_stripes_are_valid_codewords(self, oracle, tip7):
        """Every chain of an oracle stripe XORs to zero."""
        for chain in tip7.chains:
            acc = np.zeros(32, dtype=np.uint8)
            for cell in chain.cells:
                acc ^= oracle.chunk(7, cell)
            assert not acc.any(), chain.chain_id

    def test_cache_bounded(self, tip7):
        oracle = PayloadOracle(tip7, payload_size=8, max_cached_stripes=4)
        for s in range(20):
            oracle.chunk(s, (0, 0))
        assert len(oracle._stripes) <= 4

    def test_evicted_stripe_regenerates_identically(self, tip7):
        oracle = PayloadOracle(tip7, payload_size=8, max_cached_stripes=2)
        first = oracle.chunk(0, (1, 1)).copy()
        for s in range(1, 10):
            oracle.chunk(s, (0, 0))  # evict stripe 0
        assert np.array_equal(oracle.chunk(0, (1, 1)), first)

    def test_chunk_returns_copy(self, oracle):
        a = oracle.chunk(3, (0, 0))
        a[:] = 0
        assert oracle.chunk(3, (0, 0)).any()


class TestVerifyingDataPath:
    def test_clean_rebuild_verifies(self, tip7, oracle):
        dp = VerifyingDataPath(oracle)
        plan = generate_plan(tip7, [(r, 0) for r in range(3)], "fbf")
        for a in plan.assignments:
            rebuilt = dp.rebuild(9, a)
            assert np.array_equal(rebuilt, oracle.chunk(9, a.failed_cell))
        assert dp.chunks_verified == 3
        assert dp.mismatches == 0

    def test_corruption_detected(self, tip7, oracle):
        dp = VerifyingDataPath(oracle)
        plan = generate_plan(tip7, [(0, 0)], "fbf")
        victim = plan.assignments[0].reads[0]
        dp.inject_corruption(9, victim)
        dp.rebuild(9, plan.assignments[0])
        assert dp.mismatches == 1
        assert dp.mismatch_log == [(9, (0, 0))]

    def test_clear_corruption(self, tip7, oracle):
        dp = VerifyingDataPath(oracle)
        plan = generate_plan(tip7, [(0, 0)], "fbf")
        dp.inject_corruption(9, plan.assignments[0].reads[0])
        dp.clear_corruption()
        dp.rebuild(9, plan.assignments[0])
        assert dp.mismatches == 0

    def test_unrelated_corruption_harmless(self, tip7, oracle):
        dp = VerifyingDataPath(oracle)
        plan = generate_plan(tip7, [(0, 0)], "fbf")
        dp.inject_corruption(9, (5, 5))  # not in the selected chain
        used = plan.assignments[0].chain.cells
        if (5, 5) not in used:
            dp.rebuild(9, plan.assignments[0])
            assert dp.mismatches == 0


class TestEndToEndVerification:
    def test_full_reconstruction_verifies_every_chunk(self, tip7):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=15, seed=3))
        rep = run_reconstruction(
            tip7, errors, SimConfig(workers=4, verify_payloads=True)
        )
        assert rep.payload_chunks_verified == rep.chunks_recovered
        assert rep.payload_mismatches == 0

    def test_all_codes_all_schemes_verify(self, layout):
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=6, seed=1))
        for scheme in ("typical", "fbf", "greedy"):
            rep = run_reconstruction(
                layout,
                errors,
                SimConfig(workers=2, verify_payloads=True, scheme_mode=scheme),
            )
            assert rep.payload_mismatches == 0, scheme

    def test_verification_off_by_default(self, tip7):
        errors = generate_errors(tip7, ErrorTraceConfig(n_errors=5, seed=2))
        rep = run_reconstruction(tip7, errors, SimConfig(workers=2))
        assert rep.payload_chunks_verified == 0
