"""Tests for the cross-rack recovery scenario (`repro.sim.cluster`).

The acceptance criteria under test: the degenerate one-node topology
reproduces the golden single-controller rows bit-identically, EC
recovery moves more cross-rack bytes than replication, and the whole
scenario is deterministic.
"""

from dataclasses import replace

import pytest

from repro.bench import QUICK, cluster_recovery
from repro.codes import make_code
from repro.sim import SimConfig, TopologySpec, run_reconstruction
from repro.sim.cluster import ClusterSpec, run_cluster_recovery
from repro.workloads import ErrorTraceConfig, generate_errors


def _errors(layout, n=8, seed=3):
    return generate_errors(layout, ErrorTraceConfig(n_errors=n, seed=seed))


class TestDegenerateEquivalence:
    def test_one_node_topology_reproduces_golden_rows(self):
        layout = make_code("tip", 5)
        errors = _errors(layout)
        base = run_reconstruction(layout, errors, SimConfig(workers=4))
        topo = run_reconstruction(
            layout, errors, SimConfig(workers=4, topology=TopologySpec())
        )
        # Bit-identical simulated values; only the cluster snapshot and
        # the wall-clock measured fields may differ (DESIGN §9, §15).
        assert (base.simulated_dict(exclude=("cluster",))
                == topo.simulated_dict(exclude=("cluster",)))
        assert topo.cluster is not None
        assert topo.cluster.transfers == 0  # empty routes yield no events

    def test_quantile_toggle_does_not_perturb_timing(self):
        layout = make_code("tip", 5)
        errors = _errors(layout)
        base = run_reconstruction(layout, errors, SimConfig(workers=4))
        quant = run_reconstruction(
            layout, errors, SimConfig(workers=4, response_quantiles=True)
        )
        assert (base.simulated_dict(exclude=("p99_response_time",))
                == quant.simulated_dict(exclude=("p99_response_time",)))
        assert quant.p99_response_time is not None
        assert quant.p99_response_time >= 0.0


class TestScenario:
    def test_ec_moves_more_cross_rack_bytes_than_replication(self):
        ec = run_cluster_recovery(ClusterSpec(redundancy="ec", n_errors=6))
        rep = run_cluster_recovery(ClusterSpec(redundancy="rep", n_errors=6))
        assert ec.cross_rack_bytes > rep.cross_rack_bytes
        assert rep.hit_ratio == 0.0  # replication never decodes or caches
        assert ec.chunks_recovered == rep.chunks_recovered
        # the measured bottleneck is a network link, not a disk
        assert "uplink" in ec.bottleneck or "nic" in ec.bottleneck
        assert 0.0 < ec.bottleneck_utilization <= 1.0

    def test_limplock_degrades_tail_and_is_detected(self):
        healthy = run_cluster_recovery(ClusterSpec(n_errors=6))
        limp = run_cluster_recovery(ClusterSpec(n_errors=6, limplock=True))
        assert healthy.limplock_suspects == ()
        assert limp.limplock_suspects == (1,)
        assert limp.recovery_time > healthy.recovery_time
        assert limp.p99_response_time >= healthy.p99_response_time

    def test_deterministic(self):
        spec = ClusterSpec(n_errors=4, limplock=True)
        assert run_cluster_recovery(spec) == run_cluster_recovery(spec)
        rep_spec = ClusterSpec(redundancy="rep", n_errors=4)
        assert run_cluster_recovery(rep_spec) == run_cluster_recovery(rep_spec)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ClusterSpec(redundancy="raid")
        with pytest.raises(ValueError):
            ClusterSpec(racks=1, nodes_per_rack=1, limplock=True)


class TestBenchRunner:
    def test_cluster_recovery_rows(self):
        scale = replace(QUICK, n_errors=4)
        points = cluster_recovery(scale)
        assert len(points) == 8  # (fbf, lru, arc, rep) x (healthy, limplock)
        by_key = {(p.policy, p.redundancy, p.limplock) for p in points}
        assert ("rep", "rep", True) in by_key
        assert ("fbf", "ec", False) in by_key
        ec = [p for p in points if p.redundancy == "ec" and not p.limplock]
        rep = [p for p in points if p.redundancy == "rep" and not p.limplock]
        assert min(p.cross_rack_mb for p in ec) > max(p.cross_rack_mb for p in rep)
        for p in points:
            assert p.p99_response_time > 0.0
