"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
)


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        ev = env.event()
        results = []

        def proc():
            results.append((yield ev))

        env.process(proc())
        ev.succeed("payload")
        env.run()
        assert results == ["payload"]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_raises_in_waiter(self):
        env = Environment()
        ev = env.event()

        def proc():
            with pytest.raises(RuntimeError, match="boom"):
                yield ev
            return "handled"

        p = env.process(proc())
        ev.fail(RuntimeError("boom"))
        assert env.run(p) == "handled"

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_waiting_on_processed_event_resumes_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(99)
        env.run()
        out = []

        def proc():
            out.append((yield ev))

        env.process(proc())
        env.run()
        assert out == [99]


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)
            yield env.timeout(2.5)

        p = env.process(proc())
        env.run(p)
        assert env.now == pytest.approx(7.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Environment().timeout(-1)

    def test_same_time_fifo_order(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_deadline(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(10)
            fired.append(True)

        env.process(proc())
        env.run(until=5)
        assert env.now == 5 and not fired
        env.run(until=15)
        assert fired

    def test_run_until_past_deadline_rejected(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)


class TestProcesses:
    def test_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return 42

        assert env.run(env.process(proc())) == 42

    def test_process_waits_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(3)
            return "child-result"

        def parent():
            value = yield env.process(child())
            return value + "!"

        assert env.run(env.process(parent())) == "child-result!"
        assert env.now == 3

    def test_yielding_non_event_raises(self):
        env = Environment()

        def proc():
            yield "not an event"

        env.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_requires_generator(self):
        with pytest.raises(TypeError):
            Environment().process(lambda: None)

    def test_deadlock_detected_when_waiting_forever(self):
        env = Environment()
        never = env.event()

        def proc():
            yield never

        p = env.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(p)

    def test_interrupt(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                log.append(i.cause)
            yield env.timeout(1)

        def interrupter(target):
            yield env.timeout(2)
            target.interrupt("wake up")

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run(p)
        assert log == ["wake up"]
        assert env.now == 3

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0)

        p = env.process(quick())
        env.run(p)
        with pytest.raises(SimulationError):
            p.interrupt()


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_serializes_access(self):
        env = Environment()
        res = Resource(env, capacity=1)
        spans = []

        def worker(tag):
            with (yield res.request()):
                start = env.now
                yield env.timeout(10)
                spans.append((tag, start, env.now))

        for tag in "ab":
            env.process(worker(tag))
        env.run()
        assert spans == [("a", 0, 10), ("b", 10, 20)]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def worker(tag):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)
            done.append((tag, env.now))

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        assert done == [("a", 10), ("b", 10), ("c", 20)]

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        res.release(second)  # cancel while queued
        assert res.queue_length == 0
        res.release(first)
        assert res.count == 0

    def test_release_unknown_request_rejected(self):
        env = Environment()
        res = Resource(env, capacity=1)
        foreign = Resource(env, capacity=1).request()
        with pytest.raises(SimulationError):
            res.release(foreign)


class TestAllOf:
    def test_barrier_waits_for_all(self):
        env = Environment()

        def delayed(d, v):
            yield env.timeout(d)
            return v

        procs = [env.process(delayed(d, d)) for d in (5, 1, 3)]
        result = env.run(env.all_of(procs))
        assert result == [5, 1, 3]
        assert env.now == 5

    def test_empty_barrier_fires_immediately(self):
        env = Environment()
        ev = env.all_of([])
        env.run()
        assert ev.processed and ev.value == []

    def test_barrier_fails_on_child_failure(self):
        env = Environment()
        bad = env.event()
        good = env.timeout(1)
        barrier = env.all_of([good, bad])
        bad.fail(ValueError("child failed"))
        with pytest.raises(ValueError, match="child failed"):
            env.run(barrier)

    def test_non_event_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            AllOf(env, ["nope"])


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build():
            env = Environment()
            trace = []

            def worker(tag, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    trace.append((tag, env.now))

            env.process(worker("x", 1.5))
            env.process(worker("y", 2.0))
            env.run()
            return trace

        assert build() == build()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == 4.0
