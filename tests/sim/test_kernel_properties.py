"""Hypothesis stress tests for the event kernel.

Random process/timeout/resource graphs must preserve the kernel's core
guarantees: virtual time never runs backwards, a capacity-``c`` resource
never has more than ``c`` concurrent holders, every process completes,
and identical inputs produce identical traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment, Resource


@st.composite
def process_specs(draw):
    n_procs = draw(st.integers(1, 8))
    capacity = draw(st.integers(1, 3))
    specs = []
    for _ in range(n_procs):
        steps = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["sleep", "acquire"]),
                    st.floats(0.0, 5.0, allow_nan=False),
                ),
                min_size=1,
                max_size=5,
            )
        )
        specs.append(steps)
    return capacity, specs


def _run(capacity, specs):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    trace: list[tuple] = []
    max_holders = 0
    last_time = [0.0]

    def worker(wid, steps):
        nonlocal max_holders
        for kind, duration in steps:
            assert env.now >= last_time[0], "time ran backwards"
            last_time[0] = env.now
            if kind == "sleep":
                yield env.timeout(duration)
            else:
                req = resource.request()
                yield req
                max_holders = max(max_holders, resource.count)
                yield env.timeout(duration)
                resource.release(req)
            trace.append((wid, kind, env.now))

    procs = [env.process(worker(i, steps)) for i, steps in enumerate(specs)]
    env.run(env.all_of(procs))
    return trace, max_holders, env.now


@given(process_specs())
@settings(max_examples=60, deadline=None)
def test_kernel_invariants(spec):
    capacity, specs = spec
    trace, max_holders, end = _run(capacity, specs)
    assert max_holders <= capacity
    assert len(trace) == sum(len(s) for s in specs)  # every step completed
    times = [t for _, _, t in trace]
    assert all(t >= 0 for t in times)
    assert end == max(times)


@given(process_specs())
@settings(max_examples=30, deadline=None)
def test_kernel_determinism(spec):
    capacity, specs = spec
    assert _run(capacity, specs) == _run(capacity, specs)
