"""Tests for disk scheduling disciplines."""

import pytest

from repro.sim.disk import FixedLatencyModel, SeekRotateTransferModel
from repro.sim.kernel import Environment
from repro.sim.scheduling import (
    FCFSScheduler,
    PendingRequest,
    SSTFScheduler,
    ScanScheduler,
    ScheduledDisk,
    make_scheduler,
)


def _req(lba, arrived=0.0):
    class _Dummy:  # the scheduler never touches `done`
        pass

    return PendingRequest(kind="read", lba=lba, nbytes=4096, arrived=arrived,
                          done=_Dummy())


class TestFCFS:
    def test_arrival_order(self):
        s = FCFSScheduler()
        for lba in (50, 10, 90):
            s.push(_req(lba))
        assert [s.pop(0).lba for _ in range(3)] == [50, 10, 90]

    def test_empty_pop(self):
        assert FCFSScheduler().pop(0) is None


class TestSSTF:
    def test_nearest_first(self):
        s = SSTFScheduler()
        for lba in (100, 10, 55):
            s.push(_req(lba))
        assert s.pop(50).lba == 55
        assert s.pop(55).lba == 100  # 45 away vs 10 at distance 45 -> tie, but
        # 100-55=45 == 55-10=45: stable tie keeps arrival order (100 first)
        assert s.pop(100).lba == 10

    def test_exact_position_wins(self):
        s = SSTFScheduler()
        s.push(_req(30))
        s.push(_req(70))
        assert s.pop(70).lba == 70


class TestScan:
    def test_sweeps_up_then_down(self):
        s = ScanScheduler()
        for lba in (80, 20, 60, 40):
            s.push(_req(lba))
        # start at 50 sweeping up: 60, 80; reverse: 40, 20
        got = []
        head = 50
        for _ in range(4):
            r = s.pop(head)
            got.append(r.lba)
            head = r.lba
        assert got == [60, 80, 40, 20]

    def test_reverses_at_end(self):
        s = ScanScheduler()
        s.push(_req(10))
        assert s.pop(90).lba == 10  # nothing ahead -> reverse


def test_make_scheduler():
    assert isinstance(make_scheduler("sstf"), SSTFScheduler)
    assert isinstance(make_scheduler("SCAN"), ScanScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic")


class TestScheduledDisk:
    def test_matches_plain_disk_semantics(self):
        env = Environment()
        disk = ScheduledDisk(env, 0, FixedLatencyModel(0.01))

        def issue():
            yield from disk.access("read", 0, 4096)

        procs = [env.process(issue()) for _ in range(3)]
        env.run(env.all_of(procs))
        assert env.now == pytest.approx(0.03)
        assert disk.stats.reads == 3
        assert disk.stats.queue_wait == pytest.approx(0.03)  # 0 + 10 + 20 ms

    def test_server_restarts_after_idle(self):
        env = Environment()
        disk = ScheduledDisk(env, 0, FixedLatencyModel(0.01))

        def burst(at):
            yield env.timeout(at)
            yield from disk.access("write", 0, 512)

        procs = [env.process(burst(0.0)), env.process(burst(1.0))]
        env.run(env.all_of(procs))
        assert disk.stats.writes == 2
        assert env.now == pytest.approx(1.01)

    def test_rejects_empty_access(self):
        env = Environment()
        disk = ScheduledDisk(env, 0)
        with pytest.raises(ValueError):
            env.run(env.process(disk.access("read", 0, 0)))

    def test_sstf_beats_fcfs_on_seek_heavy_load(self):
        """With a mechanical model and scattered LBAs, SSTF finishes the
        same batch no later than FCFS."""

        def run(sched_name):
            env = Environment()
            disk = ScheduledDisk(
                env, 0,
                SeekRotateTransferModel(seed=3, rpm=1e9),  # rotation ~ 0
                make_scheduler(sched_name),
            )
            lbas = [0, 900, 50, 800, 100, 700][::1]
            bpc = disk.model.bytes_per_cylinder

            def issue(lba):
                yield from disk.access("read", lba * bpc, 4096)

            procs = [env.process(issue(lba)) for lba in lbas]
            env.run(env.all_of(procs))
            return env.now

        assert run("sstf") <= run("fcfs") + 1e-12

    def test_queue_length_visible(self):
        env = Environment()
        disk = ScheduledDisk(env, 0, FixedLatencyModel(0.01))

        def issue():
            yield from disk.access("read", 0, 512)

        for _ in range(3):
            env.process(issue())
        # before running, nothing queued yet (processes not started)
        env.run()
        assert disk.queue_length == 0
