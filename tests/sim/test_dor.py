"""Tests for disk-oriented reconstruction (DOR)."""

import pytest

from repro.sim import SimConfig, run_reconstruction
from repro.sim.dor import run_reconstruction_dor
from repro.workloads import ErrorTraceConfig, generate_errors


@pytest.fixture
def errors(tip7):
    return generate_errors(tip7, ErrorTraceConfig(n_errors=20, seed=9))


class TestDOR:
    def test_rejects_empty(self, tip7):
        with pytest.raises(ValueError):
            run_reconstruction_dor(tip7, [])

    def test_recovers_everything(self, tip7, errors):
        rep = run_reconstruction_dor(tip7, errors, SimConfig(cache_size="2MB"))
        assert rep.n_errors == len(errors)
        assert rep.chunks_recovered == sum(e.length for e in errors)
        assert rep.disk_writes == rep.chunks_recovered
        assert rep.cache_hits + rep.cache_misses == rep.total_requests
        assert rep.disk_reads == rep.cache_misses

    def test_deterministic(self, tip7, errors):
        a = run_reconstruction_dor(tip7, errors, SimConfig(cache_size="2MB"))
        b = run_reconstruction_dor(tip7, errors, SimConfig(cache_size="2MB"))
        assert a.reconstruction_time == b.reconstruction_time
        assert a.cache_hits == b.cache_hits

    def test_faster_than_serial_sor(self, tip7, errors):
        """DOR's per-disk pipelining beats a single SOR worker."""
        cfg_shared = dict(cache_size="2MB", policy="fbf")
        dor = run_reconstruction_dor(tip7, errors, SimConfig(**cfg_shared))
        serial = run_reconstruction(
            tip7, errors, SimConfig(workers=1, parallel_chain_reads=False,
                                    **cfg_shared)
        )
        assert dor.reconstruction_time < serial.reconstruction_time

    def test_same_request_count_as_sor(self, tip7, errors):
        """The recovery scheme fixes the request stream; organizations
        only reorder it."""
        dor = run_reconstruction_dor(tip7, errors, SimConfig(cache_size="2MB"))
        sor = run_reconstruction(tip7, errors, SimConfig(cache_size="2MB", workers=4))
        assert dor.total_requests == sor.total_requests
        assert dor.disk_writes == sor.disk_writes

    def test_shared_cache_can_beat_partitioned(self, tip7, errors):
        """With the same total cache, DOR's shared cache sees at least the
        hits of a 16-way partitioned SOR at tight sizes."""
        dor = run_reconstruction_dor(
            tip7, errors, SimConfig(cache_size="1MB", policy="fbf")
        )
        sor = run_reconstruction(
            tip7, errors, SimConfig(cache_size="1MB", policy="fbf", workers=16)
        )
        assert dor.cache_hits >= sor.cache_hits

    def test_fbf_beats_lru_under_dor(self, tip7, errors):
        fbf = run_reconstruction_dor(
            tip7, errors, SimConfig(cache_size="512KB", policy="fbf")
        )
        lru = run_reconstruction_dor(
            tip7, errors, SimConfig(cache_size="512KB", policy="lru")
        )
        assert fbf.hit_ratio >= lru.hit_ratio

    def test_payload_verification(self, tip7, errors):
        rep = run_reconstruction_dor(
            tip7, errors, SimConfig(cache_size="2MB", verify_payloads=True)
        )
        assert rep.payload_mismatches == 0
        assert rep.payload_chunks_verified == rep.chunks_recovered

    def test_disk_stats_reported(self, tip7, errors):
        rep = run_reconstruction_dor(tip7, errors, SimConfig(cache_size="2MB"))
        assert len(rep.disk_stats) == tip7.num_disks
        assert sum(n for _, _, n in rep.disk_stats) == rep.disk_reads + rep.disk_writes

    def test_hdd_model_with_scan_scheduler(self, tip7, errors):
        rep = run_reconstruction_dor(
            tip7, errors,
            SimConfig(cache_size="2MB", disk_model="hdd", disk_scheduler="scan"),
        )
        assert rep.chunks_recovered == sum(e.length for e in errors)


class TestSimConfigDiskKnobs:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(disk_model="ssd")
        with pytest.raises(ValueError):
            SimConfig(disk_scheduler="magic")

    def test_sor_with_hdd_and_sstf(self, tip7, errors):
        rep = run_reconstruction(
            tip7, errors,
            SimConfig(workers=4, disk_model="hdd", disk_scheduler="sstf"),
        )
        assert rep.chunks_recovered == sum(e.length for e in errors)

    def test_hdd_differs_from_fixed(self, tip7, errors):
        fixed = run_reconstruction(tip7, errors, SimConfig(workers=4))
        hdd = run_reconstruction(
            tip7, errors, SimConfig(workers=4, disk_model="hdd")
        )
        assert fixed.reconstruction_time != hdd.reconstruction_time
