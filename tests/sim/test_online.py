"""Tests for online recovery with degraded foreground reads."""

import pytest

from repro.sim import SimConfig
from repro.sim.kernel import Environment, Store
from repro.sim.online import run_online_recovery
from repro.workloads import (
    AppWorkloadConfig,
    ErrorTraceConfig,
    generate_app_requests,
    generate_errors,
)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def consumer():
            got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            got.append((yield store.get()))

        def producer():
            yield env.timeout(5)
            store.put(42)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [42] and env.now == 5

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer())
        for x in "abc":
            store.put(x)
        env.run()
        assert got == ["a", "b", "c"]

    def test_len(self):
        store = Store(Environment())
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1


@pytest.fixture
def scenario(tip7):
    errors = generate_errors(
        tip7,
        ErrorTraceConfig(n_errors=12, seed=4, array_stripes=2000,
                         burst_gap=0.5, intra_burst_gap=0.05),
    )
    # aim the app stream at the same stripe range so degraded reads occur
    apps = generate_app_requests(
        tip7,
        AppWorkloadConfig(n_requests=400, seed=9, array_stripes=2000,
                          working_set=600, interarrival=0.005),
    )
    return errors, apps


class TestOnlineRecovery:
    def test_rejects_empty_errors(self, tip7):
        with pytest.raises(ValueError):
            run_online_recovery(tip7, [], [], SimConfig())

    def test_accounting(self, tip7, scenario):
        errors, apps = scenario
        rep = run_online_recovery(tip7, errors, apps, SimConfig(workers=4))
        assert rep.n_errors == len(errors)
        assert rep.app_requests == len(apps)
        assert 0 <= rep.degraded_reads <= rep.app_requests
        assert rep.recovery_makespan > 0
        assert rep.cache_hits + rep.cache_misses >= rep.app_requests

    def test_deterministic(self, tip7, scenario):
        errors, apps = scenario
        a = run_online_recovery(tip7, errors, apps, SimConfig(workers=4))
        b = run_online_recovery(tip7, errors, apps, SimConfig(workers=4))
        assert a.recovery_makespan == b.recovery_makespan
        assert a.degraded_reads == b.degraded_reads

    def test_degraded_reads_happen_and_cost_more(self, tip7):
        """Force overlap: every app read targets an error stripe right
        after the error arrives."""
        from repro.workloads import AppRequest, PartialStripeError

        errors = [
            PartialStripeError(time=1.0, stripe=5, disk=0, start_row=0, length=6)
        ]
        apps = [
            AppRequest(time=1.0 + 1e-6 * i, stripe=5, cell=(i % 6, 0))
            for i in range(6)
        ]
        rep = run_online_recovery(tip7, errors, apps, SimConfig(workers=1))
        assert rep.degraded_reads > 0
        if rep.normal_reads:
            assert rep.degraded_mean_response >= rep.normal_mean_response

    def test_no_overlap_no_degraded_reads(self, tip7):
        from repro.workloads import AppRequest, PartialStripeError

        errors = [
            PartialStripeError(time=0.0, stripe=5, disk=0, start_row=0, length=2)
        ]
        apps = [AppRequest(time=100.0, stripe=999, cell=(0, 1))]
        rep = run_online_recovery(tip7, errors, apps, SimConfig(workers=2))
        assert rep.degraded_reads == 0

    def test_detection_validation(self, tip7, scenario):
        errors, apps = scenario
        with pytest.raises(ValueError):
            run_online_recovery(tip7, errors, apps, detection="psychic")
        with pytest.raises(ValueError):
            run_online_recovery(tip7, errors, apps, detection="scrub",
                                scrub_scan_time=0)

    def test_immediate_detection_has_zero_latency(self, tip7, scenario):
        errors, apps = scenario
        rep = run_online_recovery(tip7, errors, apps, SimConfig(workers=4))
        assert rep.mean_detection_latency == 0.0
        assert len(rep.detection_latencies) == len(errors)

    def test_scrub_detection_adds_latency(self, tip7, scenario):
        errors, apps = scenario
        rep = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=4),
            detection="scrub", scrub_scan_time=0.05, scrub_cycle=512,
        )
        assert len(rep.detection_latencies) == len(errors)
        assert rep.mean_detection_latency > 0.0
        # every error is still repaired
        assert rep.recovery_makespan > 0

    def test_faster_scrub_detects_sooner(self, tip7, scenario):
        errors, apps = scenario
        slow = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=4),
            detection="scrub", scrub_scan_time=0.2, scrub_cycle=512,
        )
        fast = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=4),
            detection="scrub", scrub_scan_time=0.01, scrub_cycle=512,
        )
        assert fast.mean_detection_latency < slow.mean_detection_latency

    def test_access_triggered_detection(self, tip7):
        """A foreground read of a failed chunk discovers the error before
        the (slow) scrubber would."""
        from repro.workloads import AppRequest, PartialStripeError

        errors = [
            PartialStripeError(time=1.0, stripe=100, disk=0, start_row=0, length=3)
        ]
        apps = [AppRequest(time=1.5, stripe=100, cell=(0, 0))]
        rep = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=1),
            detection="scrub", scrub_scan_time=10.0, scrub_cycle=1024,
        )
        assert rep.access_detections == 1
        assert rep.degraded_reads == 1
        assert rep.detection_latencies[0] == pytest.approx(0.5)

    def test_fbf_recovers_no_slower_than_lru(self, tip7, scenario):
        errors, apps = scenario
        fbf = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=4, policy="fbf", cache_size="1MB")
        )
        lru = run_online_recovery(
            tip7, errors, apps, SimConfig(workers=4, policy="lru", cache_size="1MB")
        )
        assert fbf.hit_ratio >= lru.hit_ratio - 0.02
