"""Unit + property tests for the kernel :class:`Container` token pool.

The contract under test (DESIGN.md §15): the level never leaves
``[0, capacity]``, waiters are served in strictly FIFO order with no
overtaking, cancel never leaks tokens, and identical workloads produce
identical traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Container, Environment, Interrupt


class TestValidation:
    def test_rejects_bad_capacity_and_init(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=4, init=5)
        with pytest.raises(ValueError):
            Container(env, capacity=4, init=-1)

    def test_rejects_unsatisfiable_claims(self):
        env = Environment()
        pool = Container(env, capacity=4, init=4)
        with pytest.raises(ValueError):
            pool.get(5)
        with pytest.raises(ValueError):
            pool.get(0)
        with pytest.raises(ValueError):
            pool.put(5)


class TestGrantOrder:
    def test_immediate_grant_reduces_level(self):
        env = Environment()
        pool = Container(env, capacity=4, init=4)
        ev = pool.get(3)
        assert ev.triggered
        assert pool.level == 1.0

    def test_small_claim_never_overtakes_head(self):
        env = Environment()
        pool = Container(env, capacity=10, init=0)
        big = pool.get(8)
        small = pool.get(1)
        pool.put(5)  # enough for small, not for the head
        assert not big.triggered and not small.triggered
        pool.put(4)  # level 9: head fits now, then small
        assert big.triggered and small.triggered
        assert pool.level == 0.0

    def test_put_blocks_until_room(self):
        env = Environment()
        pool = Container(env, capacity=4, init=4)
        deposit = pool.put(2)
        assert not deposit.triggered
        pool.get(3)
        assert deposit.triggered
        assert pool.level == 3.0


class TestCancel:
    def test_cancel_queued_claim_dequeues(self):
        env = Environment()
        pool = Container(env, capacity=4, init=0)
        head = pool.get(3)
        tail = pool.get(1)
        head.cancel()
        pool.put(1)
        assert not head.triggered
        assert tail.triggered  # promoted to head by the cancel
        assert pool.level == 0.0

    def test_cancel_granted_claim_refunds(self):
        env = Environment()
        pool = Container(env, capacity=4, init=4)
        held = pool.get(3)
        assert held.triggered and pool.level == 1.0
        waiting = pool.get(2)
        held.cancel()  # refund drains the waiter
        assert waiting.triggered
        assert pool.level == 2.0

    def test_interrupted_waiter_cancels_without_leaking(self):
        env = Environment()
        pool = Container(env, capacity=2, init=0)
        order = []

        def waiter():
            claim = pool.get(2)
            try:
                yield claim
            except Interrupt:
                claim.cancel()
                order.append("cancelled")

        def small():
            yield pool.get(1)
            order.append("small")

        victim = env.process(waiter())
        env.process(small())

        def driver():
            yield env.timeout(1.0)
            victim.interrupt()
            yield env.timeout(1.0)
            pool.put(1)

        env.process(driver())
        env.run()
        assert order == ["cancelled", "small"]
        assert pool.level == 0.0


@st.composite
def workloads(draw):
    capacity = draw(st.integers(2, 10))
    jobs = []
    for _ in range(draw(st.integers(1, 8))):
        amount = draw(st.integers(1, capacity))
        delay = draw(st.floats(0.0, 3.0, allow_nan=False))
        hold = draw(st.floats(0.0, 3.0, allow_nan=False))
        jobs.append((amount, delay, hold))
    return capacity, jobs


def _run(capacity, jobs):
    env = Environment()
    pool = Container(env, capacity=capacity, init=capacity)
    trace = []

    def worker(wid, amount, delay, hold):
        yield env.timeout(delay)
        yield pool.get(amount)
        assert 0.0 <= pool.level <= pool.capacity
        trace.append(("got", wid, env.now))
        yield env.timeout(hold)
        pool.put(amount)
        assert 0.0 <= pool.level <= pool.capacity
        trace.append(("put", wid, env.now))

    procs = [env.process(worker(i, *job)) for i, job in enumerate(jobs)]
    env.run(env.all_of(procs))
    return trace, pool.level


class TestProperties:
    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_level_bounded_and_tokens_conserved(self, spec):
        capacity, jobs = spec
        trace, level = _run(capacity, jobs)
        assert len(trace) == 2 * len(jobs)  # every worker completed
        assert level == capacity  # every token came back

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_identical_workloads_identical_traces(self, spec):
        assert _run(*spec) == _run(*spec)

    @given(st.lists(st.integers(1, 8), min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_fifo_grant_order_matches_request_order(self, amounts):
        env = Environment()
        pool = Container(env, capacity=8, init=0)
        granted = []

        def getter(i, amount):
            yield pool.get(amount)
            granted.append(i)

        def feeder():
            for _ in range(sum(amounts)):
                yield env.timeout(1.0)
                pool.put(1)

        for i, amount in enumerate(amounts):
            env.process(getter(i, amount))
        env.process(feeder())
        env.run()
        assert granted == list(range(len(amounts)))
