"""Tests for the timed buffer cache."""

import pytest

from repro.cache import LRUCache
from repro.sim.array import ArrayGeometry, DiskArray
from repro.sim.cache_sim import TimedBufferCache
from repro.sim.kernel import Environment


@pytest.fixture
def stack(tip7):
    env = Environment()
    array = DiskArray(env, ArrayGeometry(layout=tip7, stripes=100))
    cache = TimedBufferCache(env, LRUCache(4), array, hit_time=0.0005)
    return env, array, cache


class TestTiming:
    def test_miss_costs_disk_time(self, stack):
        env, array, cache = stack
        env.run(env.process(cache.get_chunk(0, (0, 0))))
        assert env.now == pytest.approx(0.010)
        assert cache.log.disk_reads == 1

    def test_hit_costs_half_millisecond(self, stack):
        env, array, cache = stack
        env.run(env.process(cache.get_chunk(0, (0, 0))))
        t0 = env.now
        env.run(env.process(cache.get_chunk(0, (0, 0))))
        assert env.now - t0 == pytest.approx(0.0005)
        assert cache.log.disk_reads == 1  # unchanged

    def test_validation(self, stack):
        env, array, _ = stack
        with pytest.raises(ValueError):
            TimedBufferCache(env, LRUCache(4), array, hit_time=-1)


class TestLogging:
    def test_mean_and_max(self, stack):
        env, array, cache = stack

        def run():
            yield from cache.get_chunk(0, (0, 0))  # miss, 10 ms
            yield from cache.get_chunk(0, (0, 0))  # hit, 0.5 ms

        env.run(env.process(run()))
        assert cache.log.count == 2
        assert cache.log.mean == pytest.approx((0.010 + 0.0005) / 2)
        assert cache.log.max == pytest.approx(0.010)

    def test_empty_log(self):
        from repro.sim.cache_sim import ResponseLog

        log = ResponseLog()
        assert log.mean == 0.0

    def test_priority_reaches_policy(self, tip7):
        from repro.core import FBFCache

        env = Environment()
        array = DiskArray(env, ArrayGeometry(layout=tip7, stripes=100))
        fbf = FBFCache(4)
        cache = TimedBufferCache(env, fbf, array)
        env.run(env.process(cache.get_chunk(0, (0, 0), priority=3)))
        assert fbf.queue_of((0, (0, 0))) == 3

    def test_distinct_stripes_are_distinct_keys(self, stack):
        env, array, cache = stack

        def run():
            yield from cache.get_chunk(0, (0, 0))
            yield from cache.get_chunk(1, (0, 0))

        env.run(env.process(run()))
        assert cache.log.disk_reads == 2
