"""Edge-case tests for kernel semantics not covered elsewhere."""

import pytest

from repro.sim.kernel import Environment, SimulationError


class TestTimeoutValues:
    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc():
            got.append((yield env.timeout(3, value="payload")))

        env.process(proc())
        env.run()
        assert got == ["payload"]

    def test_zero_delay_fires_this_instant(self):
        env = Environment()
        t = env.timeout(0)
        env.run()
        assert t.processed and env.now == 0.0


class TestProcessSemantics:
    def test_process_name_defaults(self):
        env = Environment()

        def my_proc():
            yield env.timeout(1)

        p = env.process(my_proc())
        assert p.name  # some non-empty label

    def test_explicit_name(self):
        env = Environment()

        def g():
            yield env.timeout(1)

        p = env.process(g(), name="worker-7")
        assert p.name == "worker-7"

    def test_exception_escapes_through_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise KeyError("inside process")

        p = env.process(bad())
        with pytest.raises(KeyError, match="inside process"):
            env.run(p)

    def test_exception_in_unawaited_process_propagates_at_step(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(bad())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_immediate_return(self):
        env = Environment()

        def instant():
            return 5
            yield  # pragma: no cover

        assert env.run(env.process(instant())) == 5

    def test_chained_immediate_events(self):
        """A process consuming several already-processed events resumes
        synchronously without re-entering the scheduler."""
        env = Environment()
        pre = [env.timeout(0, value=i) for i in range(3)]
        env.run()
        got = []

        def proc():
            for ev in pre:
                got.append((yield ev))

        env.run(env.process(proc()))
        assert got == [0, 1, 2]


class TestRunSemantics:
    def test_run_until_event_value(self):
        env = Environment()

        def producer():
            yield env.timeout(4)
            return {"answer": 42}

        assert env.run(env.process(producer())) == {"answer": 42}

    def test_run_to_quiescence_returns_none(self):
        env = Environment()
        env.timeout(1)
        assert env.run() is None
        assert env.now == 1.0

    def test_run_until_boundary_inclusive(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(5)
            fired.append(True)

        env.process(proc())
        env.run(until=5)
        assert fired  # events at exactly the deadline are processed

    def test_interleaved_run_calls(self):
        env = Environment()
        log = []

        def ticker():
            for i in range(4):
                yield env.timeout(2)
                log.append(i)

        env.process(ticker())
        env.run(until=3)
        assert log == [0]
        env.run(until=10)
        assert log == [0, 1, 2, 3]
