"""Tests for array geometry and chunk addressing."""

import pytest

from repro.codes import make_code
from repro.sim.array import ArrayGeometry, DiskArray
from repro.sim.kernel import Environment


@pytest.fixture
def geometry(tip7):
    return ArrayGeometry(layout=tip7, chunk_size=32 * 1024, stripes=1000)


class TestGeometry:
    def test_validation(self, tip7):
        with pytest.raises(ValueError):
            ArrayGeometry(layout=tip7, chunk_size=0)
        with pytest.raises(ValueError):
            ArrayGeometry(layout=tip7, stripes=0)

    def test_lba_is_unique_per_disk(self, geometry):
        seen = set()
        for stripe in range(3):
            for row in range(geometry.layout.rows):
                lba = geometry.lba(stripe, (row, 0))
                assert lba not in seen
                seen.add(lba)

    def test_lba_layout_is_contiguous_per_stripe(self, geometry):
        rows = geometry.layout.rows
        cs = geometry.chunk_size
        assert geometry.lba(0, (0, 0)) == 0
        assert geometry.lba(0, (1, 0)) == cs
        assert geometry.lba(1, (0, 0)) == rows * cs

    def test_spare_region_beyond_data(self, geometry):
        data_end = geometry.chunks_per_disk * geometry.chunk_size
        assert geometry.spare_lba(0, (0, 0)) == data_end
        assert geometry.spare_lba(5, (2, 3)) == data_end + geometry.lba(5, (2, 3))

    def test_bounds_checks(self, geometry):
        with pytest.raises(ValueError):
            geometry.lba(10**9, (0, 0))
        with pytest.raises(ValueError):
            geometry.lba(0, (99, 0))
        with pytest.raises(ValueError):
            geometry.lba(0, (0, 99))


class TestDiskArray:
    def test_one_disk_per_column(self, geometry):
        array = DiskArray(Environment(), geometry)
        assert len(array.disks) == geometry.num_disks

    def test_read_goes_to_the_right_disk(self, geometry):
        env = Environment()
        array = DiskArray(env, geometry)
        env.run(env.process(array.read_chunk(0, (0, 3))))
        assert array.disks[3].stats.reads == 1
        assert array.total_reads == 1

    def test_spare_write_hits_failed_disk(self, geometry):
        env = Environment()
        array = DiskArray(env, geometry)
        env.run(env.process(array.write_spare_chunk(7, (1, 2))))
        assert array.disks[2].stats.writes == 1
        assert array.total_writes == 1

    def test_custom_disk_model_factory(self, geometry):
        from repro.sim.disk import FixedLatencyModel

        env = Environment()
        array = DiskArray(
            env, geometry, disk_model_factory=lambda i: FixedLatencyModel(0.001 * (i + 1))
        )
        env.run(env.process(array.read_chunk(0, (0, 1))))
        assert env.now == pytest.approx(0.002)
