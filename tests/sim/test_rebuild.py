"""Tests for whole-disk rebuild."""

import pytest

from repro.codes import make_code
from repro.sim import (
    SimConfig,
    rebuild_errors,
    rebuild_read_savings,
    run_disk_rebuild,
)


class TestRebuildErrors:
    def test_one_full_column_error_per_stripe(self, tip7):
        errors = rebuild_errors(tip7, failed_disk=2, stripes=5)
        assert len(errors) == 5
        for e in errors:
            assert e.disk == 2
            assert e.start_row == 0 and e.length == tip7.rows

    def test_validation(self, tip7):
        with pytest.raises(IndexError):
            rebuild_errors(tip7, failed_disk=99, stripes=1)
        with pytest.raises(ValueError):
            rebuild_errors(tip7, failed_disk=0, stripes=0)


class TestRunDiskRebuild:
    def test_rebuilds_every_chunk(self, tip7):
        rep = run_disk_rebuild(tip7, 0, stripes=6, config=SimConfig(workers=4))
        assert rep.chunks_recovered == 6 * tip7.rows
        assert rep.disk_writes == rep.chunks_recovered

    def test_payload_verified_rebuild(self, tip7):
        rep = run_disk_rebuild(
            tip7, 1, stripes=4,
            config=SimConfig(workers=2, verify_payloads=True),
        )
        assert rep.payload_mismatches == 0
        assert rep.payload_chunks_verified == 4 * tip7.rows

    def test_smart_scheme_rebuilds_faster(self, tip7):
        typical = run_disk_rebuild(
            tip7, 0, stripes=8,
            config=SimConfig(workers=4, scheme_mode="typical", cache_size="8MB"),
        )
        greedy = run_disk_rebuild(
            tip7, 0, stripes=8,
            config=SimConfig(workers=4, scheme_mode="greedy", cache_size="8MB"),
        )
        assert greedy.disk_reads < typical.disk_reads
        assert greedy.reconstruction_time <= typical.reconstruction_time


class TestRebuildReadSavings:
    def test_greedy_saves_on_every_code_and_disk(self, code_name, prime):
        layout = make_code(code_name, prime)
        for disk in range(layout.num_disks):
            s = rebuild_read_savings(layout, disk, "greedy")
            assert 0.0 <= s.read_reduction < 1.0
            assert s.scheme_unique_reads <= s.typical_unique_reads

    def test_savings_in_literature_range_for_data_disks(self):
        """Xiang et al. report ~25% for RDP single-disk recovery; our
        greedy scheme lands in the same band (20-35%) on the RTP-family
        codes' data disks."""
        for name in ("tip", "triple-star"):
            layout = make_code(name, 11)
            s = rebuild_read_savings(layout, 0, "greedy")
            assert 0.20 <= s.read_reduction <= 0.35, (name, s.read_reduction)

    def test_typical_vs_itself_is_zero(self, tip7):
        s = rebuild_read_savings(tip7, 0, "typical")
        assert s.read_reduction == 0.0
