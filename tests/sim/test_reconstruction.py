"""Tests for serial/SOR reconstruction runs."""

import pytest

from repro.codes import make_code
from repro.sim import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, PartialStripeError, generate_errors


@pytest.fixture
def errors(tip7):
    return generate_errors(tip7, ErrorTraceConfig(n_errors=20, seed=9))


class TestSimConfig:
    def test_defaults_match_paper(self):
        cfg = SimConfig()
        assert cfg.chunk_bytes == 32 * 1024
        assert cfg.hit_time == 0.0005
        assert cfg.disk_latency == 0.010

    def test_cache_partitioning(self):
        cfg = SimConfig(cache_size="2MB", chunk_size="32KB", workers=8)
        assert cfg.cache_blocks_total == 64
        assert cfg.cache_blocks_per_worker == 8

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SimConfig(workers=0)


class TestRunReconstruction:
    def test_rejects_empty_batch(self, tip7):
        with pytest.raises(ValueError):
            run_reconstruction(tip7, [], SimConfig())

    def test_report_totals(self, tip7, errors):
        rep = run_reconstruction(tip7, errors, SimConfig(workers=4))
        assert rep.n_errors == len(errors)
        assert rep.chunks_recovered == sum(e.length for e in errors)
        assert rep.disk_writes == rep.chunks_recovered
        assert rep.cache_hits + rep.cache_misses == rep.total_requests
        assert rep.disk_reads == rep.cache_misses
        assert rep.reconstruction_time > 0
        assert 0 < rep.avg_response_time <= rep.max_response_time

    def test_deterministic(self, tip7, errors):
        a = run_reconstruction(tip7, errors, SimConfig(workers=4))
        b = run_reconstruction(tip7, errors, SimConfig(workers=4))
        assert a.reconstruction_time == b.reconstruction_time
        assert a.cache_hits == b.cache_hits

    def test_more_workers_finish_sooner(self, tip7, errors):
        slow = run_reconstruction(tip7, errors, SimConfig(workers=1, cache_size="8MB"))
        fast = run_reconstruction(tip7, errors, SimConfig(workers=8, cache_size="8MB"))
        assert fast.reconstruction_time < slow.reconstruction_time

    def test_larger_cache_fewer_reads(self, tip7, errors):
        small = run_reconstruction(tip7, errors, SimConfig(cache_size="256KB", workers=4))
        large = run_reconstruction(tip7, errors, SimConfig(cache_size="32MB", workers=4))
        assert large.disk_reads <= small.disk_reads
        assert large.hit_ratio >= small.hit_ratio

    def test_fbf_beats_lru_when_cache_tight(self, tip7, errors):
        cfg = dict(cache_size="1MB", workers=8)
        fbf = run_reconstruction(tip7, errors, SimConfig(policy="fbf", **cfg))
        lru = run_reconstruction(tip7, errors, SimConfig(policy="lru", **cfg))
        assert fbf.hit_ratio >= lru.hit_ratio
        assert fbf.reconstruction_time <= lru.reconstruction_time

    def test_policy_factory_override(self, tip7, errors):
        from repro.cache import LRUCache

        rep = run_reconstruction(
            tip7, errors, SimConfig(workers=2), policy_factory=lambda cap: LRUCache(cap)
        )
        assert rep.policy == "lru"

    def test_online_mode_respects_arrival_times(self, tip7):
        errs = [
            PartialStripeError(time=100.0, stripe=1, disk=0, start_row=0, length=1),
            PartialStripeError(time=200.0, stripe=2, disk=0, start_row=0, length=1),
        ]
        rep = run_reconstruction(
            tip7, errs, SimConfig(workers=1, respect_arrival_times=True)
        )
        # recovery can't finish before the last arrival minus the first
        assert rep.reconstruction_time >= 100.0

    def test_overhead_percent_bounded(self, tip7, errors):
        rep = run_reconstruction(tip7, errors, SimConfig(workers=4))
        assert 0 <= rep.overhead_percent < 100


class TestDiskStats:
    def test_report_carries_per_disk_stats(self, tip7, errors):
        rep = run_reconstruction(tip7, errors, SimConfig(workers=4))
        assert len(rep.disk_stats) == tip7.num_disks
        total_accesses = sum(n for _, _, n in rep.disk_stats)
        assert total_accesses == rep.disk_reads + rep.disk_writes

    def test_utilization_bounded(self, tip7, errors):
        rep = run_reconstruction(tip7, errors, SimConfig(workers=4))
        utils = rep.disk_utilization()
        assert len(utils) == tip7.num_disks
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utils)

    def test_failed_disk_sees_only_spare_writes(self, tip7):
        from repro.workloads import PartialStripeError

        errors = [
            PartialStripeError(time=0, stripe=s, disk=3, start_row=0, length=4)
            for s in range(5)
        ]
        rep = run_reconstruction(tip7, errors, SimConfig(workers=2))
        busy, wait, accesses = rep.disk_stats[3]
        assert accesses == rep.disk_writes  # 20 spare writes, zero reads

    def test_more_workers_higher_utilization(self, tip7, errors):
        slow = run_reconstruction(tip7, errors, SimConfig(workers=1))
        fast = run_reconstruction(tip7, errors, SimConfig(workers=8))
        assert max(fast.disk_utilization()) > max(slow.disk_utilization())


class TestCrossCodeConsistency:
    def test_all_codes_run(self, code_name, prime):
        layout = make_code(code_name, prime)
        errors = generate_errors(layout, ErrorTraceConfig(n_errors=6, seed=2))
        rep = run_reconstruction(layout, errors, SimConfig(workers=2))
        assert rep.code == layout.name
        assert rep.chunks_recovered == sum(e.length for e in errors)
