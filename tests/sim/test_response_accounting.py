"""Exact-value response-time accounting on hand-built scenarios.

The figure benchmarks check relative shapes; these tests pin the DES's
arithmetic on scenarios small enough to compute by hand with the paper's
constants (0.5 ms hit, 10 ms disk).
"""

import pytest

from repro.sim import SimConfig, run_reconstruction
from repro.workloads import PartialStripeError

HIT = 0.0005
DISK = 0.010


def _one_chunk_error(stripe=0, disk=0, row=0):
    return PartialStripeError(time=0.0, stripe=stripe, disk=disk,
                              start_row=row, length=1)


class TestSingleChunkRecovery:
    def test_serial_reads_total_time(self, tip7):
        """One failed data chunk, serial chain reads, huge cache: the H
        chain has 5 surviving reads (TIP p=7 row chain minus the failed
        cell) + XOR + 1 spare write, all cold misses."""
        cfg = SimConfig(
            policy="lru", cache_size="64MB", workers=1,
            parallel_chain_reads=False, scheme_mode="typical",
            xor_time_per_chunk=0.0,
        )
        rep = run_reconstruction(tip7, [_one_chunk_error()], cfg)
        n_reads = rep.total_requests
        assert n_reads == 5  # 4 surviving data cells + row parity
        assert rep.reconstruction_time == pytest.approx(n_reads * DISK + DISK)
        assert rep.avg_response_time == pytest.approx(DISK)

    def test_parallel_reads_total_time(self, tip7):
        """Parallel chain reads hit 5 distinct disks: one disk-time for
        all reads, then the spare write."""
        cfg = SimConfig(
            policy="lru", cache_size="64MB", workers=1,
            parallel_chain_reads=True, scheme_mode="typical",
            xor_time_per_chunk=0.0,
        )
        rep = run_reconstruction(tip7, [_one_chunk_error()], cfg)
        assert rep.reconstruction_time == pytest.approx(DISK + DISK)

    def test_second_identical_error_hits_nothing_across_stripes(self, tip7):
        """Same shape on a different stripe: zero reuse, exactly double."""
        cfg = SimConfig(policy="lru", cache_size="64MB", workers=1,
                        parallel_chain_reads=False, scheme_mode="typical",
                        xor_time_per_chunk=0.0)
        errors = [_one_chunk_error(stripe=0), _one_chunk_error(stripe=1)]
        rep = run_reconstruction(tip7, errors, cfg)
        assert rep.cache_hits == 0
        assert rep.reconstruction_time == pytest.approx(2 * (5 * DISK + DISK))


class TestHitTiming:
    def test_rereferenced_chunk_costs_hit_time(self, tip7):
        """Under the FBF scheme a shared chunk's second reference is a
        cache hit costing exactly 0.5 ms."""
        cfg = SimConfig(policy="fbf", cache_size="64MB", workers=1,
                        parallel_chain_reads=False, scheme_mode="fbf",
                        xor_time_per_chunk=0.0)
        error = PartialStripeError(time=0.0, stripe=0, disk=0,
                                   start_row=0, length=5)
        rep = run_reconstruction(tip7, [error], cfg)
        assert rep.cache_hits > 0
        expected = (
            rep.cache_misses * DISK        # cold reads
            + rep.cache_hits * HIT         # rereferences
            + 5 * DISK                     # five spare writes
        )
        assert rep.reconstruction_time == pytest.approx(expected)
        assert rep.avg_response_time == pytest.approx(
            (rep.cache_misses * DISK + rep.cache_hits * HIT) / rep.total_requests
        )

    def test_custom_constants_respected(self, tip7):
        cfg = SimConfig(policy="lru", cache_size="64MB", workers=1,
                        parallel_chain_reads=False, scheme_mode="typical",
                        hit_time=0.001, disk_latency=0.02,
                        xor_time_per_chunk=0.0)
        rep = run_reconstruction(tip7, [_one_chunk_error()], cfg)
        assert rep.avg_response_time == pytest.approx(0.02)
        assert rep.reconstruction_time == pytest.approx(5 * 0.02 + 0.02)

    def test_xor_time_charged_per_chain_member(self, tip7):
        base = SimConfig(policy="lru", cache_size="64MB", workers=1,
                         parallel_chain_reads=False, scheme_mode="typical",
                         xor_time_per_chunk=0.0)
        with_xor = SimConfig(policy="lru", cache_size="64MB", workers=1,
                             parallel_chain_reads=False, scheme_mode="typical",
                             xor_time_per_chunk=0.001)
        t0 = run_reconstruction(tip7, [_one_chunk_error()], base)
        t1 = run_reconstruction(tip7, [_one_chunk_error()], with_xor)
        assert t1.reconstruction_time - t0.reconstruction_time == pytest.approx(
            0.001 * 5
        )
