"""Figure 11: partial stripe reconstruction time (TIP, P in {5,7,11,13}).

Paper shape: reconstruction time falls with cache size; FBF takes the
least time in most cases, but the margin is smaller than the response-time
margin because XOR computation and spare writes cost every policy the same
(paper: up to 14.90% over LRU, 12.04% over ARC).
"""

import pytest

from repro.bench import fig11_reconstruction_time, figure_report


@pytest.mark.benchmark(group="fig11")
def test_fig11_reconstruction_time(benchmark, scale, save_report):
    points = benchmark.pedantic(
        fig11_reconstruction_time, args=(scale,), rounds=1, iterations=1
    )
    save_report(
        "fig11_reconstruction_time",
        figure_report(
            points, "reconstruction_time", "Figure 11: reconstruction time (s, TIP)", ".3f"
        ),
    )

    by_cfg: dict = {}
    for p in points:
        by_cfg.setdefault((p.p, p.cache_mb), {})[p.policy] = p.reconstruction_time
    for cfg, vals in by_cfg.items():
        assert vals["fbf"] <= min(vals.values()) * 1.02, cfg

    # The relative margin on reconstruction time is smaller than the
    # relative margin on disk reads (paper's dampening argument).
    from repro.bench import fig9_read_ops

    reads = fig9_read_ops(scale)
    reads_by_cfg: dict = {}
    for p in reads:
        reads_by_cfg.setdefault((p.p, p.cache_mb), {})[p.policy] = p.disk_reads
    margins_time, margins_reads = [], []
    for cfg in by_cfg:
        if cfg not in reads_by_cfg:
            continue
        t, r = by_cfg[cfg], reads_by_cfg[cfg]
        worst_t = max(v for k, v in t.items() if k != "fbf")
        worst_r = max(v for k, v in r.items() if k != "fbf")
        if worst_t > 0 and worst_r > 0:
            margins_time.append((worst_t - t["fbf"]) / worst_t)
            margins_reads.append((worst_r - r["fbf"]) / worst_r)
    assert max(margins_time) <= max(margins_reads) + 0.02
