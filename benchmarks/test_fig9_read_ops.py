"""Figure 9: number of disk reads during recovery (TIP, P in {5,7,11,13}).

Paper shape: reads fall as cache grows and stabilize; the stable point
moves right as P grows; FBF issues the fewest reads, most visibly when
the cache is restricted (paper: up to 22.52% fewer than LFU).
"""

import pytest

from repro.bench import fig9_read_ops, figure_report


@pytest.mark.benchmark(group="fig9")
def test_fig9_read_ops(benchmark, scale, save_report):
    points = benchmark.pedantic(fig9_read_ops, args=(scale,), rounds=1, iterations=1)
    save_report(
        "fig9_read_ops",
        figure_report(points, "disk_reads", "Figure 9: disk reads (TIP)", "d"),
    )

    series: dict = {}
    for p in points:
        series.setdefault((p.p, p.policy), []).append((p.cache_mb, p.disk_reads))

    for (p_val, policy), pts in series.items():
        pts.sort()
        # monotone non-increasing within jitter-free trace replay
        assert pts[-1][1] <= pts[0][1], (p_val, policy)

    # FBF <= every baseline at every point
    by_cfg: dict = {}
    for p in points:
        by_cfg.setdefault((p.p, p.cache_mb), {})[p.policy] = p.disk_reads
    for cfg, vals in by_cfg.items():
        assert vals["fbf"] <= min(vals.values()), cfg

    # FBF's saving over the worst baseline is material somewhere (>5%)
    best_saving = max(
        (max(vals.values()) - vals["fbf"]) / max(vals.values())
        for vals in by_cfg.values()
    )
    assert best_saving > 0.05
