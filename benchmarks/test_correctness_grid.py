"""Correctness bench: payload verification across the whole grid.

Not a performance experiment — a *confidence* one: runs the event
simulator with the payload-carrying data path over every (code, P,
scheme) combination and asserts zero scrub mismatches, i.e. every chunk
every configuration recovers is bit-exact.  This is the end-to-end
guarantee behind all the performance numbers.
"""

import pytest

from repro.codes import make_code
from repro.sim import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors

CODES = ("tip", "hdd1", "triple-star", "star")
PS = (5, 7)
SCHEMES = ("typical", "fbf", "greedy")


@pytest.mark.benchmark(group="correctness")
def test_payload_correctness_grid(benchmark, save_report):
    def run():
        rows = []
        for code in CODES:
            for p in PS:
                layout = make_code(code, p)
                errors = generate_errors(
                    layout, ErrorTraceConfig(n_errors=15, seed=7)
                )
                for scheme in SCHEMES:
                    rep = run_reconstruction(
                        layout,
                        errors,
                        SimConfig(workers=4, verify_payloads=True,
                                  scheme_mode=scheme),
                    )
                    rows.append((code, p, scheme, rep))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Correctness grid: scrub-checked recoveries =="]
    lines.append(f"{'code':>12} {'p':>3} {'scheme':>8} {'chunks':>7} {'mismatches':>11}")
    for code, p, scheme, rep in rows:
        lines.append(
            f"{code:>12} {p:>3} {scheme:>8} "
            f"{rep.payload_chunks_verified:>7d} {rep.payload_mismatches:>11d}"
        )
    save_report("correctness_grid", "\n".join(lines))

    for code, p, scheme, rep in rows:
        assert rep.payload_mismatches == 0, (code, p, scheme)
        assert rep.payload_chunks_verified == rep.chunks_recovered > 0
