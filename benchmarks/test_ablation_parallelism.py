"""Ablation: reconstruction organization (serial vs SOR vs DOR).

The paper's §III-B extends FBF to SOR-parallel recovery with a
partitioned cache.  This bench quantifies the organizations against each
other on identical error batches: a single serial worker, SOR at several
worker counts (cache split per worker), and DOR (one reader per disk,
shared cache).
"""

import pytest

from repro.bench.experiments import Scale
from repro.codes import make_code
from repro.sim import SimConfig, run_reconstruction, run_reconstruction_dor
from repro.workloads import ErrorTraceConfig, generate_errors


@pytest.mark.benchmark(group="ablation")
def test_parallelism_ablation(benchmark, save_report):
    layout = make_code("tip", 11)
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=60, seed=42))
    cache = "4MB"

    def run():
        rows = []
        serial = run_reconstruction(
            layout, errors,
            SimConfig(cache_size=cache, workers=1, parallel_chain_reads=False),
        )
        rows.append(("serial", serial))
        for workers in (4, 16, 64):
            rep = run_reconstruction(
                layout, errors, SimConfig(cache_size=cache, workers=workers)
            )
            rows.append((f"sor-{workers}", rep))
        rows.append(("dor", run_reconstruction_dor(
            layout, errors, SimConfig(cache_size=cache)
        )))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Ablation: reconstruction organization (TIP p=11, 4MB cache, FBF) =="]
    lines.append(f"{'mode':>10} {'recon(s)':>10} {'resp(ms)':>10} {'hit':>8} {'reads':>7}")
    for name, rep in rows:
        lines.append(
            f"{name:>10} {rep.reconstruction_time:>10.3f} "
            f"{rep.avg_response_time * 1000:>10.2f} {rep.hit_ratio:>8.3f} "
            f"{rep.disk_reads:>7d}"
        )
    save_report("ablation_parallelism", "\n".join(lines))

    by_name = dict(rows)
    serial_time = by_name["serial"].reconstruction_time
    # every parallel organization beats serial
    for name, rep in rows:
        if name != "serial":
            assert rep.reconstruction_time < serial_time, name
    # DOR (shared cache + per-disk pipelining) is the fastest organization
    assert by_name["dor"].reconstruction_time <= min(
        rep.reconstruction_time for name, rep in rows if name != "dor"
    )
    # over-parallelized SOR dilutes the per-worker cache: hit ratio falls
    # monotonically with worker count (the cost of the paper's partitioning)
    assert (
        by_name["sor-4"].hit_ratio
        >= by_name["sor-16"].hit_ratio
        >= by_name["sor-64"].hit_ratio
    )
    # identical request streams everywhere
    assert len({rep.total_requests for _, rep in rows}) == 1
