"""Table V: maximum improvement of FBF over FIFO/LRU/LFU/ARC.

Paper's numbers for reference (our substrate differs; the *ordering* is
what must hold): hit ratio gains are large (63-248%), read savings
moderate (12-23%), response-time savings similar (18-31%), reconstruction
time smallest (12-15%); LFU is the weakest baseline on hit ratio.
"""

import pytest

from repro.bench import (
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    table5_max_improvement,
    table5_report,
)


@pytest.mark.benchmark(group="table5")
def test_table5_max_improvement(benchmark, scale, save_report):
    fig8 = fig8_hit_ratio(scale)
    fig9 = fig9_read_ops(scale)
    fig10 = fig10_response_time(scale)
    fig11 = fig11_reconstruction_time(scale)
    result = benchmark.pedantic(
        table5_max_improvement,
        args=(scale,),
        kwargs=dict(fig8=fig8, fig9=fig9, fig10=fig10, fig11=fig11),
        rounds=1,
        iterations=1,
    )
    save_report("table5_max_improvement", table5_report(result))

    # FBF improves on every baseline on every metric, somewhere in the sweep.
    for metric, per_baseline in result.items():
        for baseline, gain in per_baseline.items():
            assert gain > 0, (metric, baseline)

    # Hit-ratio gains dwarf the cost-metric gains (paper's ordering).
    min_hit_gain = min(result["hit_ratio"].values())
    for metric in ("disk_reads", "reconstruction_time"):
        assert min_hit_gain > max(result[metric].values())

    # Reconstruction-time gains are the most dampened metric.
    assert max(result["reconstruction_time"].values()) <= max(
        result["response_time"].values()
    ) + 2.0
