"""Ablation: number of FBF priority queues (future-work direction).

The paper fixes three queues because a chunk shares at most three chain
*directions* — but STAR's adjuster chunks are referenced far more than
three times, all saturating at Queue3.  Does ranking them with extra
queues (hinted by raw share counts) help?

Measured answer: a little, exactly where theory predicts.  Saturation at
3 already pins the adjusters above everything else, so extra queues only
reorder evictions *within* the pinned set — worth up to ~12% relative hit
ratio in the mid-range where that set itself overflows the cache, and
nothing at the plateau.  Dropping below 3 queues costs far more (1 queue
degenerates toward LRU).  The paper's 3-queue design sits at the knee.
"""

import pytest

from repro.codes import make_code
from repro.core.fbf_cache import FBFCache
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import ErrorTraceConfig, generate_errors

QUEUE_COUNTS = (1, 2, 3, 5, 8)
BLOCKS = (64, 128, 256, 512)


@pytest.mark.benchmark(group="ablation")
def test_queue_count_ablation(benchmark, save_report):
    layout = make_code("star", 11)  # adjuster-heavy: shares exceed 3
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=60, seed=42))
    plans = PlanCache(layout, "fbf")

    def run():
        table = {}
        for n_queues in QUEUE_COUNTS:
            for blocks in BLOCKS:
                res = simulate_cache_trace(
                    layout,
                    errors,
                    capacity_blocks=blocks,
                    workers=16,
                    plan_cache=plans,
                    hint="share",
                    policy_factory=lambda cap, n=n_queues: FBFCache(cap, n_queues=n),
                )
                table[(n_queues, blocks)] = res
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Ablation: FBF queue count (STAR p=11, hit ratio) =="]
    lines.append(f"{'queues':>7} " + " ".join(f"{b:>8}" for b in BLOCKS))
    for n_queues in QUEUE_COUNTS:
        row = [f"{n_queues:>7}"]
        for blocks in BLOCKS:
            row.append(f"{table[(n_queues, blocks)].hit_ratio:>8.4f}")
        lines.append(" ".join(row))
    save_report("ablation_queues", "\n".join(lines))

    # one queue degenerates toward plain LRU: never better than 3 queues
    for blocks in BLOCKS:
        assert (
            table[(1, blocks)].hit_ratio <= table[(3, blocks)].hit_ratio + 1e-9
        ), blocks
    # extra queues beyond 3 change things only marginally (<10% relative)
    for blocks in BLOCKS:
        three = table[(3, blocks)].hit_ratio
        eight = table[(8, blocks)].hit_ratio
        if three > 0.02:
            assert abs(eight - three) / three < 0.25, (blocks, three, eight)