"""Sensitivity: error-size distribution (paper footnote 2).

"FBF can be proved under other distributions as well" — verify it: the
uniform distribution the paper evaluates, a geometric distribution skewed
to small errors (the empirically common case for latent sector errors),
and worst/best-case fixed sizes.  FBF must dominate the baselines under
all of them, though the absolute gains shrink for small errors (fewer
chains, less overlap to exploit).
"""

import dataclasses

import pytest

from repro.codes import make_code
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import ErrorTraceConfig, SizeDistribution, generate_errors

DISTRIBUTIONS = {
    "uniform": SizeDistribution("uniform"),
    "geometric": SizeDistribution("geometric", parameter=2.0),
    "fixed-1": SizeDistribution("fixed", parameter=1),
    "fixed-max": SizeDistribution("fixed", parameter=6),
}
POLICIES = ("fifo", "lru", "lfu", "arc", "fbf")


@pytest.mark.benchmark(group="sensitivity")
def test_distribution_sensitivity(benchmark, save_report):
    layout = make_code("tip", 7)
    blocks, workers = 256, 32

    def run():
        table = {}
        for dist_name, dist in DISTRIBUTIONS.items():
            errors = generate_errors(
                layout,
                ErrorTraceConfig(n_errors=80, seed=42, size=dist),
            )
            plans = PlanCache(layout, "fbf")
            for policy in POLICIES:
                table[(dist_name, policy)] = simulate_cache_trace(
                    layout, errors, policy=policy, capacity_blocks=blocks,
                    workers=workers, plan_cache=plans,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Sensitivity: error-size distribution (TIP p=7, hit ratio) =="]
    header = f"{'distribution':>14} " + " ".join(f"{p:>8}" for p in POLICIES)
    lines.append(header)
    for dist_name in DISTRIBUTIONS:
        row = [f"{dist_name:>14}"]
        for policy in POLICIES:
            row.append(f"{table[(dist_name, policy)].hit_ratio:>8.4f}")
        lines.append(" ".join(row))
    save_report("sensitivity_distribution", "\n".join(lines))

    for dist_name in DISTRIBUTIONS:
        fbf = table[(dist_name, "fbf")].hit_ratio
        for policy in POLICIES[:-1]:
            assert fbf >= table[(dist_name, policy)].hit_ratio - 1e-9, (
                dist_name,
                policy,
            )

    # single-chunk errors produce no sharing under the direction loop:
    # one failed chunk, one chain, zero rereferences
    assert table[("fixed-1", "fbf")].hit_ratio == 0.0
    # whole-column errors produce the most sharing
    assert (
        table[("fixed-max", "fbf")].hit_ratio
        > table[("geometric", "fbf")].hit_ratio
    )
