"""Figure 10: average response time of the array during recovery.

Paper shape: response time falls as cache grows; FBF is fastest across
codes, with the edge fading once the cache stops being the bottleneck
(paper: up to 31.39% better than LFU at P=13, TIP).
"""

import pytest

from repro.bench import fig10_response_time, figure_report


@pytest.mark.benchmark(group="fig10")
def test_fig10_response_time(benchmark, scale, save_report):
    points = benchmark.pedantic(
        fig10_response_time, args=(scale,), rounds=1, iterations=1
    )
    save_report(
        "fig10_response_time",
        figure_report(
            points, "avg_response_time", "Figure 10: average response time (s)", ".5f"
        ),
    )

    # Per-point response times can wobble: when FBF compresses the same
    # disk misses into less wall-clock the per-miss queueing grows, so the
    # per-request mean may tick up at one point even as reconstruction
    # time falls.  The robust paper shape is on the sweep: FBF's mean
    # response time per panel beats every baseline's mean.
    sums: dict = {}
    for p in points:
        key = (p.code, p.p, p.policy)
        total, count = sums.get(key, (0.0, 0))
        sums[key] = (total + p.avg_response_time, count + 1)
    panels = {(c, pp) for c, pp, _ in sums}
    strict_wins = 0
    for code, pp in panels:
        means = {
            pol: total / count
            for (c, p2, pol), (total, count) in sums.items()
            if (c, p2) == (code, pp)
        }
        best_other = min(v for k, v in means.items() if k != "fbf")
        worst_other = max(v for k, v in means.items() if k != "fbf")
        assert means["fbf"] <= best_other * 1.02, (code, pp)
        if means["fbf"] < worst_other * 0.98:
            strict_wins += 1
    assert strict_wins > 0

    # larger cache never hurts FBF's response time (per code/p series)
    fbf_series: dict = {}
    for p in points:
        if p.policy == "fbf":
            fbf_series.setdefault((p.code, p.p), []).append(
                (p.cache_mb, p.avg_response_time)
            )
    for key, series in fbf_series.items():
        series.sort()
        assert series[-1][1] <= series[0][1] * 1.02, key
