"""Shared configuration for the benchmark suite.

Each benchmark regenerates one figure/table of the paper at a scale set by
``FBF_BENCH_SCALE`` (``quick`` default, ``full`` for the paper's grid) and
writes the rendered report to ``benchmarks/results/`` so EXPERIMENTS.md can
quote it.  Runs are deterministic, so pytest-benchmark is used in pedantic
mode (one round) — the interesting output is the report, not statistical
timing of the harness itself.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import FULL, QUICK, Scale

RESULTS_DIR = Path(__file__).parent / "results"

# Smallest size must give each of the 32 SOR workers a non-zero cache
# slice (0.5 MB = 16 blocks of 32 KB would not; simulate_trace rejects
# workers > capacity_blocks instead of truncating silently).
BENCH_SCALE = Scale(
    n_errors=60,
    workers=32,
    cache_mbs=(1, 2, 4, 8, 16, 32),
    seed=42,
)


@pytest.fixture(scope="session")
def scale() -> Scale:
    name = os.environ.get("FBF_BENCH_SCALE", "bench").lower()
    if name == "quick":
        return QUICK
    if name == "full":
        return FULL
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")

    return _save
