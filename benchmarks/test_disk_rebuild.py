"""Extension experiment: whole-disk rebuild read savings (paper's ref [22]).

Xiang et al. cut RDP single-disk rebuild reads ~25% by mixing chain
directions; the FBF paper builds on that idea for partial stripes.  This
bench closes the loop: per-stripe unique reads for rebuilding each disk
of each code under the greedy scheme, plus a timed rebuild comparison.
"""

import pytest

from repro.codes import make_code
from repro.sim import SimConfig, rebuild_read_savings, run_disk_rebuild

CODES = ("tip", "hdd1", "triple-star", "star")


@pytest.mark.benchmark(group="rebuild")
def test_rebuild_savings_table(benchmark, save_report):
    def run():
        rows = []
        for code in CODES:
            layout = make_code(code, 11)
            for disk in range(layout.num_disks):
                rows.append(rebuild_read_savings(layout, disk, "greedy"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Disk rebuild: unique reads per stripe, greedy vs typical (p=11) =="]
    lines.append(f"{'code':>12} {'disk':>5} {'typical':>8} {'greedy':>8} {'saved':>7}")
    for s in rows:
        lines.append(
            f"{s.code:>12} {s.failed_disk:>5} {s.typical_unique_reads:>8} "
            f"{s.scheme_unique_reads:>8} {s.read_reduction:>7.1%}"
        )
    save_report("disk_rebuild_savings", "\n".join(lines))

    # savings exist for every code's disk 0 and stay within [0, 40%]
    by_code = {}
    for s in rows:
        by_code.setdefault(s.code, []).append(s.read_reduction)
    for code, reductions in by_code.items():
        assert max(reductions) > 0.05, code
        assert all(0.0 <= r <= 0.40 for r in reductions), code


@pytest.mark.benchmark(group="rebuild")
def test_rebuild_time_comparison(benchmark, save_report):
    layout = make_code("tip", 11)

    def run():
        return {
            scheme: run_disk_rebuild(
                layout, 0, stripes=20,
                config=SimConfig(workers=8, scheme_mode=scheme, cache_size="8MB"),
            )
            for scheme in ("typical", "fbf", "greedy")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Disk rebuild: 20 stripes of TIP p=11, 8 workers, FBF cache =="]
    lines.append(f"{'scheme':>8} {'reads':>7} {'time(s)':>9} {'hit':>7}")
    for scheme, rep in reports.items():
        lines.append(
            f"{scheme:>8} {rep.disk_reads:>7d} {rep.reconstruction_time:>9.3f} "
            f"{rep.hit_ratio:>7.3f}"
        )
    save_report("disk_rebuild_time", "\n".join(lines))

    assert reports["greedy"].disk_reads < reports["typical"].disk_reads
    assert reports["fbf"].disk_reads < reports["typical"].disk_reads
    assert (
        reports["greedy"].reconstruction_time
        <= reports["typical"].reconstruction_time
    )
