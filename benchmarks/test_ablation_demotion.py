"""Ablation (DESIGN.md §6): demote-on-hit vs sticky priorities.

The paper's Algorithm 1 demotes a chunk one queue per hit because each hit
consumes one expected rereference.  The sticky variant keeps chunks in
their original queue, hogging Queue2/Queue3 space after their rereferences
are spent.
"""

import pytest

from repro.bench import ablation_demotion, figure_report


@pytest.mark.benchmark(group="ablation")
def test_demotion_ablation(benchmark, scale, save_report):
    points = benchmark.pedantic(
        ablation_demotion, args=(scale,), rounds=1, iterations=1
    )
    save_report(
        "ablation_demotion",
        figure_report(points, "hit_ratio", "Ablation: demotion on hit (hit ratio)"),
    )
    by_policy: dict = {}
    for p in points:
        by_policy.setdefault(p.policy, {})[p.cache_mb] = p.hit_ratio
    assert set(by_policy) == {"fbf", "fbf-sticky"}
    # demotion never loses by more than noise, anywhere in the sweep
    for mb, hr in by_policy["fbf"].items():
        assert hr >= by_policy["fbf-sticky"][mb] - 0.02, mb
