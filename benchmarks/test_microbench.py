"""Microbenchmarks of the hot paths (real repeated-timing benchmarks).

Unlike the experiment benches (one deterministic run, pedantic mode),
these measure raw component throughput with pytest-benchmark's normal
statistics: the event kernel, each replacement policy's request path, the
recovery planner (the source of Table IV's overhead), the GF(2) solver,
and the stripe encoder.
"""

import numpy as np
import pytest

from repro.cache import available_policies, make_policy
from repro.codes import Encoder, make_code
from repro.codes.gf2 import gf2_solve_map
from repro.core import PriorityDictionary, generate_plan
from repro.sim.kernel import Environment


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_event_throughput(benchmark):
    """Time 10k chained timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.run(env.process(ticker()))
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_stepwise_throughput(benchmark):
    """The same 10k-timeout workload driven one peek()/step() at a time.

    This is the dispatch the inlined ``Environment.run`` loop replaced;
    comparing the two rows of the micro-kernel group shows the event-loop
    throughput delta of keeping the heap and ``heappop`` in locals.
    """

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker())
        while env.peek() != float("inf"):
            env.step()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_resource_contention(benchmark):
    """1k processes contending for a capacity-2 resource."""

    def run():
        env = Environment()
        from repro.sim.kernel import Resource

        res = Resource(env, capacity=2)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)

        procs = [env.process(worker()) for _ in range(1000)]
        env.run(env.all_of(procs))
        return env.now

    assert benchmark(run) == 500.0


@pytest.mark.benchmark(group="micro-cache")
@pytest.mark.parametrize("policy", sorted(available_policies()))
def test_policy_request_throughput(benchmark, policy):
    """5k requests over a 9-block working set against a 64-block cache."""
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 400, 5000).tolist()

    def run():
        cache = make_policy(policy, 64)
        for k in keys:
            cache.request(k, priority=(k % 3) + 1)
        return cache.stats.requests

    assert benchmark(run) == 5000


@pytest.mark.benchmark(group="micro-planner")
@pytest.mark.parametrize("p", [5, 7, 11, 13])
def test_planner_latency(benchmark, p):
    """Plan + priorities for a half-stripe error (Table IV's unit cost)."""
    layout = make_code("tip", p)
    failed = [(r, 0) for r in range(layout.rows // 2)]

    def run():
        plan = generate_plan(layout, failed, "fbf")
        return len(PriorityDictionary(plan))

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro-codes")
def test_gf2_solver(benchmark):
    """Solve-map for a full-column erasure of STAR p=13."""
    layout = make_code("star", 13)
    a, _ = layout.erasure_matrix(layout.cells_on_disk(0))

    def run():
        return gf2_solve_map(a).shape

    assert benchmark(run) == (12, 36)


@pytest.mark.benchmark(group="micro-codes")
def test_encoder_throughput(benchmark):
    """Encode a 32 KB-chunk STAR p=7 stripe."""
    layout = make_code("star", 7)
    encoder = Encoder(layout)
    rng = np.random.default_rng(0)
    stripe = encoder.random_stripe(32 * 1024, rng)
    for r, c in layout.parity_cells:
        stripe[r, c] = 0

    def run():
        encoder.encode(stripe)
        return stripe.shape[2]

    assert benchmark(run) == 32 * 1024
