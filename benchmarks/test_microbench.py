"""Microbenchmarks of the hot paths (real repeated-timing benchmarks).

Unlike the experiment benches (one deterministic run, pedantic mode),
these measure raw component throughput with pytest-benchmark's normal
statistics: the event kernel, each replacement policy's request path, the
recovery planner (the source of Table IV's overhead), the GF(2) solver,
and the stripe encoder.
"""

import time

import numpy as np
import pytest

from repro.cache import available_policies, make_policy
from repro.codes import Encoder, make_code
from repro.codes.gf2 import gf2_solve_map
from repro.core import PriorityDictionary, generate_plan
from repro.engine import PlanCache, XORBackend, simulate_trace
from repro.sim.kernel import Environment


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_event_throughput(benchmark):
    """Time 10k chained timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.run(env.process(ticker()))
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_stepwise_throughput(benchmark):
    """The same 10k-timeout workload driven one peek()/step() at a time.

    This is the dispatch the inlined ``Environment.run`` loop replaced;
    comparing the two rows of the micro-kernel group shows the event-loop
    throughput delta of keeping the heap and ``heappop`` in locals.
    """

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker())
        while env.peek() != float("inf"):
            env.step()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_resource_contention(benchmark):
    """1k processes contending for a capacity-2 resource."""

    def run():
        env = Environment()
        from repro.sim.kernel import Resource

        res = Resource(env, capacity=2)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)

        procs = [env.process(worker()) for _ in range(1000)]
        env.run(env.all_of(procs))
        return env.now

    assert benchmark(run) == 500.0


@pytest.mark.benchmark(group="micro-cache")
@pytest.mark.parametrize("policy", sorted(available_policies()))
def test_policy_request_throughput(benchmark, policy):
    """5k requests over a 9-block working set against a 64-block cache."""
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 400, 5000).tolist()

    def run():
        cache = make_policy(policy, 64)
        for k in keys:
            cache.request(k, priority=(k % 3) + 1)
        return cache.stats.requests

    assert benchmark(run) == 5000


def _tracesim_workload():
    """The pre-refactor baseline configuration (tip p=7, 40 errors,
    fbf policy, 64 blocks over 8 SOR workers, warm plan memo)."""
    layout = make_code("tip", 7)
    backend = XORBackend(layout, "fbf")
    errors = backend.generate_events(40, seed=42)
    plans = PlanCache(backend)
    for e in errors:  # warm: replay cost, not planning cost
        plans.get(e)
    return layout, backend, errors, plans


def _legacy_replay(layout, errors, memo):
    """The pre-unification ``simulate_cache_trace`` inner loop, inlined.

    Kept as the perf reference for the unified engine: same plan memo
    semantics (plan + PriorityDictionary per error shape), same SOR
    round-robin, same per-request priority lookup.
    """
    workers = 8
    policies = [make_policy("fbf", 64 // workers) for _ in range(workers)]
    for i, error in enumerate(sorted(errors)):
        cache = policies[i % workers]
        hit = memo.get(error.shape)
        if hit is None:
            plan = generate_plan(layout, error.cells(layout), "fbf")
            hit = memo[error.shape] = (plan, PriorityDictionary(plan))
        plan, priorities = hit
        stripe = error.stripe
        lookup = priorities.lookup
        for cell in plan.request_sequence:
            cache.request((stripe, cell), priority=lookup(cell))
    return sum(p.stats.hits for p in policies), sum(p.stats.misses for p in policies)


@pytest.mark.benchmark(group="micro-tracesim")
def test_unified_replay_throughput(benchmark):
    """The unified engine replay on the pre-refactor baseline workload."""
    _, backend, errors, plans = _tracesim_workload()

    def run():
        return simulate_trace(
            backend, errors, policy="fbf", capacity_blocks=64, workers=8,
            plan_cache=plans,
        )

    res = benchmark(run)
    assert res.requests == res.hits + res.disk_reads and res.requests > 0


@pytest.mark.benchmark(group="micro-tracesim")
def test_unified_replay_vs_legacy(benchmark):
    """Refactor perf gate: unified replay within 5% of the old loop.

    Both paths run min-of-N wall timings in one process (min is the
    stable estimator for a sub-millisecond loop); the benchmark row
    records the legacy reference so the two group rows stay comparable.
    """
    layout, backend, errors, plans = _tracesim_workload()
    legacy_memo = {}
    _legacy_replay(layout, errors, legacy_memo)  # warm the legacy memo

    legacy_counts = benchmark(_legacy_replay, layout, errors, legacy_memo)
    res = simulate_trace(
        backend, errors, policy="fbf", capacity_blocks=64, workers=8,
        plan_cache=plans,
    )
    assert (res.hits, res.disk_reads) == legacy_counts  # same decisions

    def best_of(fn, rounds=50):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    unified_s = best_of(
        lambda: simulate_trace(
            backend, errors, policy="fbf", capacity_blocks=64, workers=8,
            plan_cache=plans,
        )
    )
    legacy_s = best_of(lambda: _legacy_replay(layout, errors, legacy_memo))
    assert unified_s <= legacy_s * 1.05, (
        f"unified replay {unified_s * 1e3:.3f} ms vs legacy "
        f"{legacy_s * 1e3:.3f} ms (> 5% regression)"
    )


@pytest.mark.benchmark(group="micro-tracesim")
def test_grid_replay_speedup_and_identity(benchmark):
    """Perf gate for the single-pass grid replay (PR's headline number).

    Re-runs the committed ``BENCH_replay.json`` workload — the FULL-scale
    Figure 8 axis for all five codes — and asserts (a) batched rows are
    identical to per-point rows everywhere, including the all-policy /
    stack-distance identity sweep, (b) the single-core speedup is >= 3x,
    and (c) it has not regressed more than 10% against the committed
    baseline (speedups are same-machine timing ratios, so the comparison
    is machine-independent).
    """
    import json
    from pathlib import Path

    from repro.bench.replay_bench import compare_to_baseline, run_replay_bench

    payload = benchmark.pedantic(
        run_replay_bench, kwargs={"rounds": 1}, rounds=1, iterations=1
    )
    assert all(g["rows_identical"] for g in payload["groups"])
    assert payload["identity"]["rows_identical"]
    assert payload["identity"]["lru_fast_path_identical"]
    speedup = payload["aggregate"]["speedup"]
    assert speedup >= 3.0, f"grid replay speedup {speedup:.2f}x < 3x"

    baseline_path = Path(__file__).parent / "BENCH_replay.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    ok, message = compare_to_baseline(payload, baseline)
    assert ok, message


@pytest.mark.benchmark(group="micro-planner")
@pytest.mark.parametrize("p", [5, 7, 11, 13])
def test_planner_latency(benchmark, p):
    """Plan + priorities for a half-stripe error (Table IV's unit cost)."""
    layout = make_code("tip", p)
    failed = [(r, 0) for r in range(layout.rows // 2)]

    def run():
        plan = generate_plan(layout, failed, "fbf")
        return len(PriorityDictionary(plan))

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro-codes")
def test_gf2_solver(benchmark):
    """Solve-map for a full-column erasure of STAR p=13."""
    layout = make_code("star", 13)
    a, _ = layout.erasure_matrix(layout.cells_on_disk(0))

    def run():
        return gf2_solve_map(a).shape

    assert benchmark(run) == (12, 36)


@pytest.mark.benchmark(group="micro-codes")
def test_encoder_throughput(benchmark):
    """Encode a 32 KB-chunk STAR p=7 stripe."""
    layout = make_code("star", 7)
    encoder = Encoder(layout)
    rng = np.random.default_rng(0)
    stripe = encoder.random_stripe(32 * 1024, rng)
    for r, c in layout.parity_cells:
        stripe[r, c] = 0

    def run():
        encoder.encode(stripe)
        return stripe.shape[2]

    assert benchmark(run) == 32 * 1024
