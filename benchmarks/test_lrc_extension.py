"""Extension experiment: FBF on Local Reconstruction Codes (footnote 3).

The paper: "Several Reed Solomon based Codes like Local Reconstruction
Codes can be applied with FBF as well, by investigating relationships
among global/local parity chains during the recovery."  This bench runs
that experiment on Azure's LRC(12,2,2): a multi-failure-heavy batch trace,
all policies, a cache sweep.

Measured shape: FBF dominates by a factor at tight caches (where only
priority pinning saves rereferences), converges with the field at the
plateau, and in a narrow mid-range adaptive ARC can edge it when a plan's
shared set itself overflows the cache.
"""

import pytest

from repro.engine import LRCBackend, PlanCache, simulate_trace
from repro.lrc import LRCCode, LRCWorkloadConfig, generate_lrc_failures

POLICIES = ("fifo", "lru", "lfu", "arc", "fbf")
CAPACITIES = (8, 16, 32, 48, 64, 128)


@pytest.mark.benchmark(group="lrc")
def test_lrc_fbf_extension(benchmark, save_report):
    code = LRCCode(12, 2, 2)
    cfg = LRCWorkloadConfig(
        n_events=150, seed=17, batch_size_weights=(0.3, 0.3, 0.25, 0.15)
    )
    events = generate_lrc_failures(code, cfg)
    backend = LRCBackend(code)

    def run():
        table = {}
        plans = PlanCache(backend)
        for cap in CAPACITIES:
            for pol in POLICIES:
                table[(cap, pol)] = simulate_trace(
                    backend, events, policy=pol, capacity_blocks=cap,
                    workers=4, plan_cache=plans,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"== FBF on {code.name}: hit ratio vs cache blocks =="]
    header = f"{'blocks':>7} " + " ".join(f"{p:>8}" for p in POLICIES)
    lines.append(header)
    for cap in CAPACITIES:
        row = [f"{cap:>7}"]
        for pol in POLICIES:
            row.append(f"{table[(cap, pol)].hit_ratio:>8.4f}")
        lines.append(" ".join(row))
    save_report("lrc_extension", "\n".join(lines))

    # tight cache: FBF wins by a factor over every baseline
    tight = CAPACITIES[1]
    for pol in POLICIES[:-1]:
        assert table[(tight, "fbf")].hit_ratio > 1.5 * table[(tight, pol)].hit_ratio, pol
    # plateau: FBF matches the best
    wide = CAPACITIES[-1]
    best = max(table[(wide, pol)].hit_ratio for pol in POLICIES)
    assert table[(wide, "fbf")].hit_ratio >= best - 1e-9
    # request counts are policy independent
    for cap in CAPACITIES:
        counts = {table[(cap, pol)].requests for pol in POLICIES}
        assert len(counts) == 1
