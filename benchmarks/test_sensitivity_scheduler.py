"""Sensitivity: mechanical disk model and request scheduling.

The paper's evaluation uses a fixed 10 ms access time; real disks seek.
This bench reruns the recovery batch on the mechanical model under the
three queue disciplines — the sanity check that FBF's advantage is not an
artifact of the constant-latency model.
"""

import pytest

from repro.codes import make_code
from repro.sim import SimConfig, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors

SCHEDULERS = ("fcfs", "sstf", "scan")


@pytest.mark.benchmark(group="sensitivity")
def test_scheduler_sensitivity(benchmark, save_report):
    layout = make_code("tip", 7)
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=40, seed=42))

    def run():
        table = {}
        for scheduler in SCHEDULERS:
            for policy in ("lru", "fbf"):
                table[(scheduler, policy)] = run_reconstruction(
                    layout, errors,
                    SimConfig(policy=policy, cache_size="2MB", workers=8,
                              disk_model="hdd", disk_scheduler=scheduler),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Sensitivity: mechanical disks + scheduling (TIP p=7) =="]
    lines.append(f"{'sched':>6} {'policy':>7} {'recon(s)':>9} {'resp(ms)':>9} {'hit':>7}")
    for (scheduler, policy), rep in table.items():
        lines.append(
            f"{scheduler:>6} {policy:>7} {rep.reconstruction_time:>9.3f} "
            f"{rep.avg_response_time * 1000:>9.2f} {rep.hit_ratio:>7.3f}"
        )
    save_report("sensitivity_scheduler", "\n".join(lines))

    for scheduler in SCHEDULERS:
        # FBF's hit-ratio edge survives the mechanical model
        assert (
            table[(scheduler, "fbf")].hit_ratio
            >= table[(scheduler, "lru")].hit_ratio - 1e-9
        ), scheduler
        # and its reconstruction is no slower
        assert (
            table[(scheduler, "fbf")].reconstruction_time
            <= table[(scheduler, "lru")].reconstruction_time * 1.02
        ), scheduler
    # hit ratios are scheduling-independent (same request streams)
    for policy in ("lru", "fbf"):
        ratios = {round(table[(s, policy)].hit_ratio, 9) for s in SCHEDULERS}
        assert len(ratios) == 1, policy
