"""Ablation (DESIGN.md §6): chain-selection strategy.

Separates FBF's two ingredients: the overlap-seeking recovery scheme and
the priority cache.  ``typical`` (all-horizontal) recovery has zero chunk
sharing, so caching cannot help at all; the paper's round-robin loop and
the greedy optimizer both create sharing, with greedy fetching the fewest
unique chunks.
"""

import pytest

from repro.bench import ablation_scheme, figure_report
from repro.codes import make_code
from repro.core import generate_plan


@pytest.mark.benchmark(group="ablation")
def test_scheme_ablation(benchmark, scale, save_report):
    points = benchmark.pedantic(ablation_scheme, args=(scale,), rounds=1, iterations=1)
    save_report(
        "ablation_scheme",
        figure_report(points, "hit_ratio", "Ablation: recovery scheme (hit ratio)"),
    )
    best = {}
    for p in points:
        best[p.scheme_mode] = max(best.get(p.scheme_mode, 0.0), p.hit_ratio)
    assert best["typical"] == 0.0
    assert best["fbf"] > 0.0
    assert best["greedy"] > 0.0


@pytest.mark.benchmark(group="ablation")
def test_unique_read_ordering_across_modes(benchmark):
    """greedy <= fbf <= typical on unique chunks fetched, per error shape."""

    def run():
        layout = make_code("tip", 11)
        rows = []
        for length in range(2, layout.rows + 1):
            failed = [(r, 0) for r in range(length)]
            uniq = {
                mode: generate_plan(layout, failed, mode).unique_reads
                for mode in ("typical", "fbf", "greedy")
            }
            rows.append((length, uniq))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for length, uniq in rows:
        assert uniq["greedy"] <= uniq["fbf"] <= uniq["typical"], length
