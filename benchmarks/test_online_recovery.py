"""Extension experiment: online recovery under foreground load.

The paper's conclusion claims FBF works for online recovery; this bench
runs background repair concurrently with a foreground read stream and
compares policies on recovery makespan, foreground latency, and degraded
reads — the window-of-vulnerability cost experienced by real traffic.
"""

import pytest

from repro.codes import make_code
from repro.sim import SimConfig, run_online_recovery
from repro.workloads import (
    AppWorkloadConfig,
    ErrorTraceConfig,
    generate_app_requests,
    generate_errors,
)

POLICIES = ("fifo", "lru", "lfu", "arc", "fbf")


@pytest.mark.benchmark(group="online")
def test_online_recovery(benchmark, save_report):
    layout = make_code("tip", 7)
    errors = generate_errors(
        layout,
        ErrorTraceConfig(n_errors=25, seed=4, array_stripes=2000,
                         burst_gap=0.5, intra_burst_gap=0.05),
    )
    background = generate_app_requests(
        layout,
        AppWorkloadConfig(n_requests=600, seed=9, array_stripes=2000,
                          working_set=500, interarrival=0.004),
    )
    # Spatial locality of real traffic: some foreground reads land on the
    # erroring stripes right around detection time (the WOV overlap that
    # produces degraded reads).
    from repro.workloads import AppRequest

    hot = [
        AppRequest(time=e.time + 0.001 * (i + 1), stripe=e.stripe,
                   cell=(min(i, layout.rows - 1), e.disk))
        for e in errors
        for i in range(4)
    ]
    apps = sorted(background + hot)

    def run():
        return {
            policy: run_online_recovery(
                layout, errors, apps,
                SimConfig(policy=policy, cache_size="1MB", workers=4),
            )
            for policy in POLICIES
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Online recovery: background repair + foreground reads =="]
    lines.append(
        f"{'policy':>7} {'makespan(s)':>12} {'degraded':>9} "
        f"{'norm resp(ms)':>14} {'degr resp(ms)':>14} {'hit':>7}"
    )
    for policy, rep in reports.items():
        lines.append(
            f"{policy:>7} {rep.recovery_makespan:>12.3f} {rep.degraded_reads:>9d} "
            f"{rep.normal_mean_response * 1000:>14.2f} "
            f"{rep.degraded_mean_response * 1000:>14.2f} {rep.hit_ratio:>7.3f}"
        )
    save_report("online_recovery", "\n".join(lines))

    fbf = reports["fbf"]
    # FBF's shared-chunk pinning keeps its hit ratio at or above the field
    for policy in POLICIES[:-1]:
        assert fbf.hit_ratio >= reports[policy].hit_ratio - 0.02, policy
    # the WOV overlap produced degraded reads; counts legitimately differ
    # per policy because faster repair shrinks the exposure window
    assert all(rep.degraded_reads >= 0 for rep in reports.values())
    assert max(rep.degraded_reads for rep in reports.values()) > 0
    # FBF never suffers more degraded reads than the worst baseline
    assert fbf.degraded_reads <= max(
        rep.degraded_reads for p, rep in reports.items() if p != "fbf"
    )
    # every policy finished all repairs and served the whole app stream
    for rep in reports.values():
        assert rep.recovery_makespan > 0
        assert rep.app_requests == len(apps)
