"""Sensitivity: chunk (stripe unit) size.

The paper fixes 32 KB chunks ("the stripe size is more than 256KB in an
array, hence chunk size is set to 32KB").  At a fixed cache *byte*
budget, smaller chunks mean more cache slots; the recovery request
pattern per stripe is unchanged.  FBF must dominate at every chunk size,
with everyone improving as slots multiply.
"""

import pytest

from repro.codes import make_code
from repro.sim import PlanCache, simulate_cache_trace
from repro.utils import parse_size
from repro.workloads import ErrorTraceConfig, generate_errors

CHUNK_SIZES = ("8KB", "16KB", "32KB", "64KB", "128KB")
POLICIES = ("fifo", "lru", "lfu", "arc", "fbf")
CACHE_BYTES = parse_size("16MB")
WORKERS = 32


@pytest.mark.benchmark(group="sensitivity")
def test_chunk_size_sensitivity(benchmark, save_report):
    layout = make_code("tip", 11)
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=60, seed=42))
    plans = PlanCache(layout, "fbf")

    def run():
        table = {}
        for chunk in CHUNK_SIZES:
            blocks = CACHE_BYTES // parse_size(chunk)
            for policy in POLICIES:
                table[(chunk, policy)] = simulate_cache_trace(
                    layout, errors, policy=policy, capacity_blocks=blocks,
                    workers=WORKERS, plan_cache=plans,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Sensitivity: chunk size (TIP p=11, 16MB cache, hit ratio) =="]
    lines.append(f"{'chunk':>7} {'blocks/worker':>14} " +
                 " ".join(f"{p:>8}" for p in POLICIES))
    for chunk in CHUNK_SIZES:
        per_worker = CACHE_BYTES // parse_size(chunk) // WORKERS
        row = [f"{chunk:>7}", f"{per_worker:>14}"]
        for policy in POLICIES:
            row.append(f"{table[(chunk, policy)].hit_ratio:>8.4f}")
        lines.append(" ".join(row))
    save_report("sensitivity_chunk_size", "\n".join(lines))

    for chunk in CHUNK_SIZES:
        fbf = table[(chunk, "fbf")].hit_ratio
        for policy in POLICIES[:-1]:
            assert fbf >= table[(chunk, policy)].hit_ratio - 1e-9, (chunk, policy)
    # smaller chunks (more slots) never hurt FBF
    ratios = [table[(c, "fbf")].hit_ratio for c in CHUNK_SIZES]
    assert ratios[0] >= ratios[-1] - 1e-9
