"""Extension experiment: the headline comparison on field-calibrated errors.

The paper's trace is synthetic with stated parameters; this bench reruns
the policy comparison on errors sampled from the *calibrated* model
(rates and locality from the cited LSE studies, sizes uniform) — the
closest thing to "what a real array-decade of errors looks like".
"""

import pytest

from repro.codes import make_code
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import FieldModel, generate_field_trace

POLICIES = ("fifo", "lru", "lfu", "arc", "fbf")
BLOCKS = (32, 64, 128, 256)


@pytest.mark.benchmark(group="field")
def test_field_calibrated_comparison(benchmark, save_report):
    layout = make_code("tip", 11)
    # enough array-decades to accumulate a few hundred errors
    errors = generate_field_trace(
        layout, duration_days=600_000, array_stripes=10**6,
        model=FieldModel(), seed=42,
    )
    assert len(errors) > 100
    plans = PlanCache(layout, "fbf")

    def run():
        return {
            (blocks, policy): simulate_cache_trace(
                layout, errors, policy=policy, capacity_blocks=blocks,
                workers=16, plan_cache=plans,
            )
            for blocks in BLOCKS
            for policy in POLICIES
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"== Field-calibrated workload ({len(errors)} errors, TIP p=11, hit ratio) =="
    ]
    lines.append(f"{'blocks':>7} " + " ".join(f"{p:>8}" for p in POLICIES))
    for blocks in BLOCKS:
        row = [f"{blocks:>7}"]
        for policy in POLICIES:
            row.append(f"{table[(blocks, policy)].hit_ratio:>8.4f}")
        lines.append(" ".join(row))
    save_report("field_workload", "\n".join(lines))

    for blocks in BLOCKS:
        fbf = table[(blocks, "fbf")].hit_ratio
        for policy in POLICIES[:-1]:
            assert fbf >= table[(blocks, policy)].hit_ratio - 1e-9, (blocks, policy)
    # material win somewhere in the sweep
    assert any(
        table[(b, "fbf")].hit_ratio
        > 1.5 * max(table[(b, p)].hit_ratio for p in POLICIES[:-1]) > 0
        for b in BLOCKS
    )
