"""Figure 8: cache hit ratio during partial stripe reconstruction.

Paper shape to reproduce: hit ratio rises with cache size and plateaus;
FBF dominates every baseline, with the largest margin at small caches and
the earliest plateau; STAR shows comparatively higher hit ratios than the
other codes (adjuster pinning).
"""

import pytest

from repro.bench import fig8_hit_ratio, figure_report


@pytest.mark.benchmark(group="fig8")
def test_fig8_hit_ratio(benchmark, scale, save_report):
    points = benchmark.pedantic(fig8_hit_ratio, args=(scale,), rounds=1, iterations=1)
    save_report(
        "fig8_hit_ratio",
        figure_report(points, "hit_ratio", "Figure 8: cache hit ratio"),
    )

    # --- shape assertions -------------------------------------------------
    by_cfg: dict = {}
    for p in points:
        by_cfg.setdefault((p.code, p.p, p.cache_mb), {})[p.policy] = p.hit_ratio
    wins = ties = 0
    for vals in by_cfg.values():
        best_other = max(v for k, v in vals.items() if k != "fbf")
        assert vals["fbf"] >= best_other - 1e-9
        if vals["fbf"] > best_other + 1e-9:
            wins += 1
        else:
            ties += 1
    assert wins > 0, "FBF should strictly beat baselines somewhere"

    # FBF's advantage peaks in the limited-cache regime and fades toward
    # the plateau: in at least one panel, the gain at the largest cache is
    # strictly below the panel's peak gain.
    fades = 0
    for code, p in {(pt.code, pt.p) for pt in points}:
        gains = {mb: _gain(by_cfg[(code, p, mb)]) for mb in scale.cache_mbs}
        assert all(g >= -1e-9 for g in gains.values()), (code, p)
        if gains[max(scale.cache_mbs)] < max(gains.values()) - 1e-9:
            fades += 1
    assert fades > 0, "FBF's edge should fade as the cache stops binding"

    # Hit ratio is non-decreasing in cache size for FBF, per panel.
    fbf_series: dict = {}
    for pt in points:
        if pt.policy == "fbf":
            fbf_series.setdefault((pt.code, pt.p), []).append(
                (pt.cache_mb, pt.hit_ratio)
            )
    for key, series in fbf_series.items():
        series.sort()
        for (_, lo), (_, hi) in zip(series, series[1:]):
            assert hi >= lo - 1e-9, key


def _gain(vals):
    others = [v for k, v in vals.items() if k != "fbf"]
    return vals["fbf"] - max(others)
