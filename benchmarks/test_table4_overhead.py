"""Table IV: temporal overhead of FBF during partial stripe recovery.

Paper shape: overhead grows with P (plan generation walks longer chains)
but stays a small percentage of reconstruction time (<2.8% in the paper);
cache size does not affect it.
"""

import pytest

from repro.bench import Scale, table4_overhead, table4_report


@pytest.mark.benchmark(group="table4")
def test_table4_overhead(benchmark, scale, save_report):
    points = benchmark.pedantic(table4_overhead, args=(scale,), rounds=1, iterations=1)
    save_report("table4_overhead", table4_report(points))

    assert {(p.code, p.p) for p in points} == {
        (c, p)
        for c in ("TIP", "HDD1", "Triple-STAR", "STAR")
        for p in scale.ps_tip
    }
    for p in points:
        assert p.overhead_ms >= 0
        assert 0 <= p.overhead_percent < 50  # small share of recon time

    # overhead grows with P within each code
    by_code: dict = {}
    for p in points:
        by_code.setdefault(p.code, []).append((p.p, p.overhead_ms))
    for code, series in by_code.items():
        series.sort()
        assert series[-1][1] >= series[0][1], code


@pytest.mark.benchmark(group="table4")
def test_overhead_independent_of_cache_size(benchmark, save_report):
    """The paper observes no overhead change as cache size varies."""
    import dataclasses

    base = Scale(n_errors=30, workers=8, codes=("tip",), ps_tip=(7,))
    small = table4_overhead(dataclasses.replace(base, cache_mbs=(1,)))
    large = benchmark.pedantic(
        table4_overhead,
        args=(dataclasses.replace(base, cache_mbs=(64,)),),
        rounds=1,
        iterations=1,
    )
    ratio = large[0].overhead_ms / max(small[0].overhead_ms, 1e-9)
    assert 0.2 < ratio < 5.0  # same order of magnitude (wall-clock jitter)
