#!/usr/bin/env python
"""The functional RAID array: writes, scrubbing, degraded reads, repair.

Everything the paper assumes about the array, working on real bytes: a
STAR-coded 8-disk array takes writes (patching every parity chain), a
scrub detects silent corruption, contiguous media errors trigger partial
stripe repair via the FBF planner, and a whole-device failure still
serves every logical read through degraded paths.

Run:  python examples/functional_array.py
"""

import numpy as np

from repro.array import RAIDArray
from repro.codes import make_code, update_complexity


def main() -> None:
    layout = make_code("star", 5)
    array = RAIDArray(layout, chunk_size=512, stripes=8)
    rng = np.random.default_rng(0)
    print(f"{layout.name} p={layout.p}: {layout.num_disks} disks, "
          f"{array.capacity_chunks} logical chunks of {array.chunk_size}B\n")

    # 1. Fill with data; every write patches the parities it feeds.
    data = {}
    for logical in range(array.capacity_chunks):
        payload = rng.integers(0, 256, array.chunk_size, dtype=np.uint8)
        array.write(logical, payload)
        data[logical] = payload
    u = update_complexity(layout)
    print(f"write path: avg {u.average:.2f} parity chunks patched per data "
          f"write (min {u.minimum}, max {u.maximum} — adjuster cells)")
    print(f"scrub after load: clean={array.scrub().clean}\n")

    # 2. Silent corruption: only the scrub sees it.
    array.disks[2].corrupt_chunk(5)
    report = array.scrub()
    print(f"injected silent corruption -> scrub flags "
          f"{len(report.parity_mismatches)} chain mismatches "
          f"(e.g. {report.parity_mismatches[:3]})")
    # repair by marking the chunk bad and rebuilding it
    array.disks[2].fail_chunks(5)
    array.repair_partial_stripe(5 // layout.rows)
    print(f"after targeted repair: clean={array.scrub().clean}\n")

    # 3. A partial stripe error: contiguous chunks on one disk.
    stripe = 3
    for row in range(layout.rows):
        array.disks[0].fail_chunks(array._offset(stripe, (row, 0)))
    rep = array.repair_partial_stripe(stripe, mode="fbf")
    print(f"partial stripe repair (whole column of stripe {stripe}): "
          f"{len(rep.repaired_cells)} chunks rebuilt, "
          f"{rep.chunks_read} chain reads, scrub clean={array.scrub().clean}\n")

    # 4. Whole-device failure: degraded reads keep serving everything.
    array.disks[1].fail_device()
    ok = all(
        np.array_equal(array.read(logical), data[logical])
        for logical in range(array.capacity_chunks)
    )
    print(f"disk 1 failed entirely -> all {array.capacity_chunks} logical "
          f"chunks still readable via degraded paths: {ok}")


if __name__ == "__main__":
    main()
