#!/usr/bin/env python
"""Trace files and mixed recovery/application workloads.

Part 1 writes a partial-stripe-error trace to disk, reads it back, and
replays it — the workflow for evaluating FBF on externally supplied error
traces.

Part 2 interleaves foreground application reads (Zipf-popular stripes)
with the recovery stream and shows that FBF keeps its high-priority
recovery chunks resident: application chunks default to priority 1 and
are evicted first.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import FBFCache, PriorityDictionary, generate_plan, make_code
from repro.sim import simulate_cache_trace
from repro.workloads import (
    AppWorkloadConfig,
    ErrorTraceConfig,
    generate_app_requests,
    generate_errors,
    read_trace,
    write_trace,
)


def part1_trace_files(layout) -> None:
    print("--- part 1: trace files ---")
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=50, seed=99))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "errors.trace"
        write_trace(path, errors, metadata={"code": layout.name, "p": str(layout.p)})
        print(f"wrote {len(errors)} errors to {path.name} "
              f"({path.stat().st_size} bytes)")
        replayed = read_trace(path)
    res = simulate_cache_trace(layout, replayed, policy="fbf",
                               capacity_blocks=64, workers=8)
    print(f"replay: {res.requests} requests, hit ratio {res.hit_ratio:.2%}, "
          f"{res.disk_reads} disk reads\n")


def part2_mixed_workload(layout) -> None:
    print("--- part 2: recovery + application I/O ---")
    plan = generate_plan(layout, [(r, 0) for r in range(5)], "fbf")
    pd = PriorityDictionary(plan)
    app = generate_app_requests(
        layout, AppWorkloadConfig(n_requests=60, seed=4, working_set=16)
    )

    cache = FBFCache(capacity=10)
    # Warm the cache with the first half of the recovery stream, so some
    # shared (priority 2/3) chunks are resident with rereferences pending.
    stream = plan.request_sequence
    half = len(stream) // 2
    for cell in stream[:half]:
        cache.request(("rec", cell), priority=pd.lookup(cell))
    hot = cache.queue_contents(2) + cache.queue_contents(3)
    print(f"after half the recovery stream, high-priority residents: {list(hot)}")

    # A burst of foreground reads arrives mid-recovery ...
    app_hits = 0
    for req in app:
        app_hits += cache.request(("app", req.stripe, req.cell))
    print(f"app burst: {app_hits}/{len(app)} hits "
          f"(cold Zipf reads, priority 1 by default)")

    # ... yet every pending high-priority recovery chunk survived it.
    survivors = [key for key in hot if key in cache]
    print(f"high-priority recovery chunks still resident: "
          f"{len(survivors)}/{len(hot)}")
    assert survivors == list(hot), \
        "FBF must not evict priority-2/3 chunks for priority-1 app traffic"

    # Finish recovery: the held chunks convert directly into hits.
    finish_hits = sum(
        cache.request(("rec", cell), priority=pd.lookup(cell))
        for cell in stream[half:]
    )
    print(f"second half of recovery: {finish_hits}/{len(stream) - half} hits ✓")


def main() -> None:
    layout = make_code("tip", 7)
    print(f"{layout.name} p=7 ({layout.num_disks} disks)\n")
    part1_trace_files(layout)
    part2_mixed_workload(layout)


if __name__ == "__main__":
    main()
