#!/usr/bin/env python
"""Walkthrough of the paper's Figures 2-3 and Table III.

Shows how chain selection differs between 'typical' (all horizontal) and
FBF (direction-looped, overlap-seeking) recovery for a TIP-coded array,
and reproduces the Table III priority dictionary for the paper's
configuration (TIP, P=7, n=8, five contiguous failed chunks on one disk).

Run:  python examples/recovery_scheme_walkthrough.py
"""

from repro import PriorityDictionary, generate_plan, make_code


def annotate(layout, plan, failed):
    """ASCII stripe with failed cells (X) and fetched cells by priority."""
    pd = PriorityDictionary(plan)
    tags = {cell: "X" for cell in failed}
    for cell in plan.chain_share_count:
        tags[cell] = str(pd[cell])
    return layout.ascii_grid(annotate=tags)


def show(layout, failed, mode):
    plan = generate_plan(layout, failed, mode)
    print(f"--- {mode} recovery ---")
    print(f"chains: {[a.chain.chain_id for a in plan.assignments]}")
    print(f"unique chunks fetched: {plan.unique_reads}  "
          f"(total requests {plan.total_requests})")
    print(annotate(layout, plan, failed))
    print()
    return plan


def main() -> None:
    # Figure 2: TIP with P=5 (6 disks), whole-column-worth of chunk errors.
    print("=" * 60)
    print("Figure 2 analogue: TIP (P=5), 4 failed chunks on disk 0")
    print("=" * 60)
    tip5 = make_code("tip", 5)
    failed5 = [(r, 0) for r in range(4)]
    typical = show(tip5, failed5, "typical")
    fbf = show(tip5, failed5, "fbf")
    saved = typical.unique_reads - fbf.unique_reads
    print(f"FBF scheme fetches {saved} fewer unique chunks "
          f"({saved / typical.unique_reads:.0%} I/O saved)\n")

    # Figure 3 + Table III: TIP with P=7 (8 disks), 5 failed chunks.
    print("=" * 60)
    print("Figure 3 / Table III analogue: TIP (P=7, n=8), 5 failed chunks")
    print("=" * 60)
    tip7 = make_code("tip", 7)
    failed7 = [(r, 0) for r in range(5)]
    plan = show(tip7, failed7, "fbf")
    pd = PriorityDictionary(plan)
    print(pd.table())
    print("\n(the paper's Table III for its TIP layout: 1 chunk at priority 3,")
    print(" 2 at priority 2, 18 at priority 1 — same structure, different cells")
    print(" because our TIP construction is a documented substitute)")

    # The STAR adjuster effect the paper calls out in §IV-B-1.
    print()
    print("=" * 60)
    print("STAR (P=7): adjuster chunks are shared by every diagonal chain")
    print("=" * 60)
    star = make_code("star", 7)
    plan = generate_plan(star, [(r, 0) for r in range(star.rows)], "fbf")
    pd = PriorityDictionary(plan)
    over = [(c, pd.share_count(c)) for c in sorted(pd) if pd.share_count(c) > 3]
    print(f"chunks referenced by more than 3 chains: {over}")
    if over:
        print("all pinned at priority 3 ->", sorted({pd[c] for c, _ in over}) == [3])


if __name__ == "__main__":
    main()
