#!/usr/bin/env python
"""Quickstart: recover a partial stripe error with FBF, end to end.

Walks the whole pipeline on one stripe of a TIP-coded 8-disk array:
encode real payloads, inject a partial stripe error, generate the FBF
recovery scheme, derive priorities, replay the recovery request stream
through FBF and LRU caches, and verify the recovered bytes are correct.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FBFCache, LRUCache, PriorityDictionary, generate_plan, make_code
from repro.codes import Encoder, xor_cells

CHUNK = 64  # bytes per chunk for the demo (32 KB in the paper)


def main() -> None:
    # 1. An 8-disk TIP array (p = 7): 5 data disks + 3 parity disks.
    layout = make_code("tip", 7)
    print(f"{layout.name}: {layout.num_disks} disks x {layout.rows} rows")
    print(layout.ascii_grid(), "\n")

    # 2. Encode a stripe of random payloads.
    rng = np.random.default_rng(7)
    stripe = Encoder(layout).random_stripe(CHUNK, rng)

    # 3. A partial stripe error: 5 contiguous chunks lost on disk 0
    #    (the paper's Figure 3 scenario).
    failed = [(row, 0) for row in range(5)]
    golden = {cell: stripe[cell[0], cell[1]].copy() for cell in failed}
    for row, col in failed:
        stripe[row, col] = 0  # the data is gone

    # 4. Generate the FBF recovery scheme and its priorities.
    plan = generate_plan(layout, failed, mode="fbf")
    priorities = PriorityDictionary(plan)
    print(f"recovery plan: {len(plan.assignments)} chains, "
          f"{plan.unique_reads} unique chunks, {plan.total_requests} requests")
    print(priorities.table(), "\n")

    # 5. Replay the request stream through FBF and LRU at a tight cache.
    for cache in (FBFCache(8), LRUCache(8)):
        for cell in plan.request_sequence:
            cache.request(cell, priority=priorities.lookup(cell))
        print(f"{type(cache).__name__:9s} capacity=8: "
              f"hit ratio {cache.stats.hit_ratio:.2%}, "
              f"{cache.stats.misses} disk reads")

    # 6. Execute the plan: XOR each chain's survivors; verify correctness.
    for assignment in plan.assignments:
        cell = assignment.failed_cell
        recovered = xor_cells(stripe, assignment.chain.others(cell))
        assert np.array_equal(recovered, golden[cell]), cell
        stripe[cell[0], cell[1]] = recovered
    print("\nall failed chunks recovered bit-exactly ✓")


if __name__ == "__main__":
    main()
