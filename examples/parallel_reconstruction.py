#!/usr/bin/env python
"""SOR-parallel reconstruction on the event-driven storage simulator.

Demonstrates the timing half of the reproduction: the same error batch is
repaired serially and with increasing SOR worker counts (cache partitioned
per worker, paper §III-B), offline and online (respecting error arrival
times), comparing FBF against LRU on reconstruction time and response
time, and dumping per-disk utilization.

Run:  python examples/parallel_reconstruction.py
"""

from repro import SimConfig, make_code, run_reconstruction
from repro.workloads import ErrorTraceConfig, generate_errors


def report_line(tag, rep):
    print(f"  {tag:24s} recon={rep.reconstruction_time:7.2f}s "
          f"resp={rep.avg_response_time * 1000:7.2f}ms "
          f"hit={rep.hit_ratio:6.2%} reads={rep.disk_reads:5d} "
          f"overhead={rep.overhead_mean_s * 1000:.3f}ms/plan")


def main() -> None:
    layout = make_code("tip", 11)
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=80, seed=13))
    print(f"{layout.name} p=11 ({layout.num_disks} disks), "
          f"{len(errors)} partial stripe errors, 8MB cache, 32KB chunks\n")

    print("scaling SOR workers (offline batch recovery, FBF):")
    for workers in (1, 4, 16, 64):
        rep = run_reconstruction(
            layout, errors,
            SimConfig(policy="fbf", cache_size="8MB", workers=workers),
        )
        report_line(f"{workers:3d} worker(s)", rep)

    print("\nFBF vs LRU at 16 workers:")
    for policy in ("fbf", "lru"):
        rep = run_reconstruction(
            layout, errors,
            SimConfig(policy=policy, cache_size="8MB", workers=16),
        )
        report_line(policy, rep)

    print("\nonline recovery (errors repaired as they arrive):")
    rep = run_reconstruction(
        layout, errors,
        SimConfig(policy="fbf", cache_size="8MB", workers=16,
                  respect_arrival_times=True),
    )
    report_line("fbf online", rep)

    print("\nserial chain reads (no intra-chain parallelism):")
    rep = run_reconstruction(
        layout, errors,
        SimConfig(policy="fbf", cache_size="8MB", workers=16,
                  parallel_chain_reads=False),
    )
    report_line("fbf serial-reads", rep)


if __name__ == "__main__":
    main()
