#!/usr/bin/env python
"""FBF on Azure-style Local Reconstruction Codes (paper footnote 3).

Demonstrates the LRC extension end to end: encode an LRC(12,2,2) stripe
over GF(256), fail blocks in escalating patterns, plan recovery over
local/global parity chains, derive FBF priorities from chain sharing,
rebuild real payloads, and compare FBF vs LRU on a multi-failure trace.

Run:  python examples/lrc_recovery.py
"""

import numpy as np

from repro.engine import LRCBackend, simulate_trace
from repro.lrc import (
    LRCCode,
    LRCWorkloadConfig,
    execute_plan,
    generate_lrc_failures,
    plan_lrc_recovery,
)


def show_plan(code, failed):
    plan = plan_lrc_recovery(code, failed)
    prio_hist = {p: sum(1 for v in plan.priorities.values() if v == p)
                 for p in (1, 2, 3)}
    print(f"  failed {list(failed)}")
    print(f"    equations: {[e.chain_id for e in plan.equations]}   "
          f"unique reads: {plan.unique_reads}, requests: {plan.total_requests}")
    print(f"    priorities: {prio_hist}")
    return plan


def main() -> None:
    code = LRCCode(12, 2, 2)
    print(f"{code.name}: {code.k} data blocks in {code.l} groups of "
          f"{code.group_size}, {code.l} local + {code.g} global parities\n")

    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (code.k, 64), dtype=np.uint8)
    blocks = code.encode(data)
    assert code.verify(blocks)

    print("recovery planning over local/global chains:")
    plans = [
        show_plan(code, [("d", 4)]),                       # local repair
        show_plan(code, [("d", 0), ("d", 1)]),             # same group: + global
        show_plan(code, [("d", 0), ("d", 1), ("d", 2)]),   # needs both globals
        show_plan(code, [("d", 0), ("d", 1), ("d", 6), ("d", 7)]),  # 2+2 split
    ]

    # execute the hardest plan on real payloads
    plan = plans[-1]
    survivors = {b: v for b, v in blocks.items() if b not in set(plan.failed)}
    solution = execute_plan(plan, survivors)
    for b in plan.failed:
        assert np.array_equal(solution[b], blocks[b])
    print("\n2+2 failure split rebuilt bit-exactly over GF(256) ✓\n")

    # trace-level comparison
    cfg = LRCWorkloadConfig(n_events=150, seed=17,
                            batch_size_weights=(0.3, 0.3, 0.25, 0.15))
    events = generate_lrc_failures(code, cfg)
    print(f"{len(events)} failure batches "
          f"(multi-failure heavy), 4 workers, 4 cache blocks each:")
    backend = LRCBackend(code)
    for pol in ("lru", "arc", "fbf"):
        res = simulate_trace(backend, events, policy=pol,
                             capacity_blocks=16, workers=4)
        print(f"  {pol:4s} hit ratio {res.hit_ratio:6.2%}  "
              f"disk reads {res.disk_reads}")


if __name__ == "__main__":
    main()
