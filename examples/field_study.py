#!/usr/bin/env python
"""A year in the life of an array: field rates, scrubbing, online repair.

Puts the calibrated pieces together: error arrivals at the rates the
paper's cited studies measured, a background scrubber that takes real
time to find them, foreground traffic that occasionally trips over failed
chunks, FBF-cached background repair, and the MTTDL consequence.

Run:  python examples/field_study.py
"""

from repro import SimConfig, make_code
from repro.analysis import mttdl_3dft
from repro.sim import run_online_recovery
from repro.workloads import (
    AppWorkloadConfig,
    FieldModel,
    expected_error_count,
    generate_app_requests,
    generate_field_trace,
)


def main() -> None:
    layout = make_code("tip", 11)
    model = FieldModel()
    duration_days = 365.0

    print(f"deployment: one {layout.name} p=11 array "
          f"({layout.num_disks} disks), observed {duration_days:.0f} days")
    expected = expected_error_count(model, layout.num_disks, duration_days)
    print(f"calibrated LSE model: {model.lse_disk_fraction:.2%} of disks in "
          f"{model.study_months:.0f} months, x{model.events_per_affected_disk:.0f} "
          f"re-occurrence -> E[error events] = {expected:.1f}/array-year\n")

    # Sample several array-years until we get a busy one to show.
    errors = []
    for seed in range(50):
        errors = generate_field_trace(
            layout, duration_days=duration_days, array_stripes=50_000,
            model=model, seed=seed,
        )
        if len(errors) >= 3:
            break
    print(f"sampled array-year (seed {seed}): {len(errors)} partial stripe errors")
    for e in errors[:5]:
        print(f"  day {e.time / 86400:6.1f}: disk {e.disk}, stripe {e.stripe}, "
              f"{e.length} chunks")

    # Foreground traffic across the same window.
    apps = generate_app_requests(
        layout,
        AppWorkloadConfig(
            n_requests=3000, seed=1, array_stripes=50_000,
            working_set=2000, interarrival=duration_days * 86400 / 3000,
        ),
    )

    for detection, kwargs in [
        ("immediate", {}),
        ("scrub", dict(scrub_scan_time=60.0, scrub_cycle=50_000)),
    ]:
        rep = run_online_recovery(
            layout, errors, apps,
            SimConfig(policy="fbf", cache_size="4MB", workers=4),
            detection=detection, **kwargs,
        )
        print(f"\ndetection={detection}:")
        print(f"  mean detection latency: "
              f"{rep.mean_detection_latency / 3600:.1f} hours")
        print(f"  degraded foreground reads: {rep.degraded_reads} "
              f"({rep.access_detections} errors found by access)")

    # The reliability frame: repair time vs MTTDL.
    mtbf = 1_000_000.0
    for repair_hours, label in [(24.0, "1-day repair"), (2.4, "2.4-hour repair")]:
        mttdl = mttdl_3dft(layout.num_disks, mtbf, repair_hours)
        print(f"\nMTTDL with {label}: {mttdl:.3e} hours "
              f"({mttdl / 8766:.2e} years)")
    print("-> every hour shaved off detection+repair multiplies MTTDL;"
          " that is the window FBF attacks.")


if __name__ == "__main__":
    main()
