#!/usr/bin/env python
"""From cache policy to reliability: MTTDL impact of FBF.

Connects the pipeline end to end the way the paper's introduction argues:
partial stripe errors -> recovery time (window of vulnerability) -> mean
time to data loss.  Measures reconstruction time for FBF and LRU on the
simulator, converts the difference into an MTTDL statement with the
Markov model, and shows the analytic reuse-distance view of *why* FBF
wins.

Run:  python examples/reliability_analysis.py
"""

from repro import SimConfig, make_code, run_reconstruction
from repro.analysis import (
    expected_reads,
    lru_hit_curve,
    recovery_reuse_profile,
    wov_improvement,
)
from repro.core import generate_plan
from repro.workloads import ErrorTraceConfig, generate_errors


def main() -> None:
    layout = make_code("tip", 11)
    errors = generate_errors(layout, ErrorTraceConfig(n_errors=80, seed=3))

    # 1. Measure recovery speed under both policies (tight cache).
    reports = {}
    for policy in ("lru", "fbf"):
        reports[policy] = run_reconstruction(
            layout, errors, SimConfig(policy=policy, cache_size="4MB", workers=16)
        )
    lru_t = reports["lru"].reconstruction_time
    fbf_t = reports["fbf"].reconstruction_time
    print(f"reconstruction time: LRU {lru_t:.3f}s  FBF {fbf_t:.3f}s "
          f"({100 * (lru_t - fbf_t) / lru_t:.1f}% faster)\n")

    # 2. Convert into reliability: the batch stands in for a repair window.
    cmp = wov_improvement(
        n_disks=layout.num_disks,
        disk_mtbf_hours=1_000_000.0,
        baseline_repair_hours=lru_t / 3600.0 * 1e6,   # scale to a 1TB-disk-sized job
        improved_repair_hours=fbf_t / 3600.0 * 1e6,
    )
    print(f"window of vulnerability shrinks {cmp.wov_reduction_percent:.1f}%")
    print(f"MTTDL grows {cmp.mttdl_gain_factor:.2f}x "
          f"(3DFT MTTDL scales with the cube of the repair rate)\n")

    # 3. The analytic view: why FBF needs less cache than LRU.
    failed = [(r, 0) for r in range(layout.rows)]
    profile = recovery_reuse_profile(layout, failed, "fbf")
    print(f"one whole-column error on {layout.name} p={layout.p}:")
    print(f"  {profile.total_requests} requests, "
          f"{profile.rereferences} rereferences")
    print(f"  reuse distances by priority: "
          f"{ {k: sorted(v) for k, v in profile.distances_by_priority.items()} }")
    need = profile.min_lru_capacity_for_all_hits()
    pinned = sum(len(v) for k, v in profile.distances_by_priority.items())
    print(f"  LRU needs {need} blocks to catch every rereference; "
          f"FBF pins ~{pinned} blocks in Queue2/Queue3 instead")

    plan = generate_plan(layout, failed, "fbf")
    curve = lru_hit_curve(plan.request_sequence, [4, 8, 16, 32, need])
    print(f"  exact LRU hit curve for this stripe: "
          f"{ {c: round(h, 3) for c, h in curve.items()} }\n")

    # 4. The scheme-level expectation, independent of any cache.
    for mode in ("typical", "fbf", "greedy"):
        exp = expected_reads(layout, mode)
        print(f"  E[unique reads | {mode:8s}] = {exp.expected_unique_reads:6.2f} "
              f"(sharing ratio {exp.sharing_ratio:.3f})")


if __name__ == "__main__":
    main()
