#!/usr/bin/env python
"""Compare replacement policies on a recovery workload (mini Figure 8/9).

Generates a synthetic partial-stripe-error trace for each code, then
replays the recovery request stream against all nine registered policies
(the paper's four baselines, FBF, and the related-work extras) across a
sweep of cache sizes, printing hit ratio and disk-read tables.

Run:  python examples/cache_policy_comparison.py [--code tip] [--p 7]
"""

import argparse

from repro import available_codes, make_code
from repro.cache import available_policies
from repro.sim import PlanCache, simulate_cache_trace
from repro.workloads import ErrorTraceConfig, generate_errors

# smallest size = WORKERS: a cache smaller than the SOR worker count
# cannot be split evenly and the engine rejects the partition
CACHE_BLOCKS = (8, 16, 32, 64, 128, 256)
WORKERS = 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--code", default="tip", choices=available_codes())
    parser.add_argument("--p", type=int, default=7)
    parser.add_argument("--errors", type=int, default=120)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    layout = make_code(args.code, args.p)
    errors = generate_errors(
        layout, ErrorTraceConfig(n_errors=args.errors, seed=args.seed)
    )
    plans = PlanCache(layout, "fbf")
    policies = sorted(available_policies())

    print(f"{layout.name} p={args.p}, {args.errors} partial stripe errors, "
          f"{WORKERS} SOR workers (cache split evenly)\n")

    header = f"{'blocks':>7} " + " ".join(f"{p:>7}" for p in policies)
    print("hit ratio")
    print(header)
    results = {}
    for blocks in CACHE_BLOCKS:
        row = [f"{blocks:>7}"]
        for pol in policies:
            res = simulate_cache_trace(
                layout, errors, policy=pol, capacity_blocks=blocks,
                workers=WORKERS, plan_cache=plans,
            )
            results[(blocks, pol)] = res
            row.append(f"{res.hit_ratio:>7.3f}")
        print(" ".join(row))

    print("\ndisk reads")
    print(header)
    for blocks in CACHE_BLOCKS:
        row = [f"{blocks:>7}"]
        for pol in policies:
            row.append(f"{results[(blocks, pol)].disk_reads:>7d}")
        print(" ".join(row))

    # Summarize FBF's edge over the paper's baselines.
    print("\nmax FBF improvement on hit ratio:")
    for baseline in ("fifo", "lru", "lfu", "arc"):
        best = max(
            (results[(b, "fbf")].hit_ratio - results[(b, baseline)].hit_ratio)
            / max(results[(b, baseline)].hit_ratio, 1e-9)
            for b in CACHE_BLOCKS
            if results[(b, baseline)].hit_ratio > 0
        )
        print(f"  vs {baseline:5s}: {best:7.1%}")


if __name__ == "__main__":
    main()
