"""Update complexity of LRC codes (for comparison with the 3DFT codes).

An LRC data write patches its group's local parity plus every global
parity: ``1 + g`` parity writes, uniformly across data blocks — the
regularity that makes LRC attractive for write-heavy deployments, in
contrast to the XOR 3DFT codes' row-parity coupling and adjusters
(:mod:`repro.codes.update`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .code import Block, LRCCode

__all__ = ["LRCUpdateComplexity", "lrc_update_complexity", "lrc_parities_touched"]


@dataclass(frozen=True)
class LRCUpdateComplexity:
    code: str
    average: float
    minimum: int
    maximum: int

    @property
    def is_uniform(self) -> bool:
        return self.minimum == self.maximum


def lrc_parities_touched(code: LRCCode) -> dict[Block, int]:
    """Per data block: parity blocks a write must patch (from the actual
    constraint matrix, so zero coefficients don't count)."""
    out: dict[Block, int] = {}
    idx = code.block_index
    parity_rows = code.constraint_matrix
    for block in code.data_blocks:
        col = parity_rows[:, idx[block]]
        out[block] = int(np.count_nonzero(col))
    return out


def lrc_update_complexity(code: LRCCode) -> LRCUpdateComplexity:
    values = np.array(list(lrc_parities_touched(code).values()))
    return LRCUpdateComplexity(
        code=code.name,
        average=float(values.mean()),
        minimum=int(values.min()),
        maximum=int(values.max()),
    )
