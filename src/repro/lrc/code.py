"""Local Reconstruction Codes (Huang et al., USENIX ATC 2012).

An ``LRC(k, l, g)`` stripe has ``k`` data blocks split into ``l`` equal
local groups, one XOR *local parity* per group, and ``g`` Reed-Solomon
*global parities*.

For ``g <= 2`` the global coefficients follow the Azure LRC paper's
subfield construction, which makes the code *Maximally Recoverable* —
every information-theoretically decodable erasure pattern actually
decodes.  Block ``j`` of group ``t`` gets coefficient
``alpha = gamma_t * beta_j`` in the first global parity and ``alpha**2``
in the second, where the ``beta_j`` are nonzero elements of the GF(16)
subfield of GF(2^8) and ``gamma_t`` are representatives of distinct
cosets of ``GF(16)*`` in ``GF(256)*``.  Why it works (the 2+2 failure
split, the hard case): the joint determinant factors as
``(a+b)(c+d)((a+b)+(c+d))`` with ``a+b in gamma_s GF(16)*`` and
``c+d in gamma_t GF(16)*`` — within-group sums stay inside their own
coset, cosets are disjoint, so no factor vanishes.  This bounds
``group_size <= 15`` and ``l <= 17``.

For ``g >= 3`` a Cauchy matrix is used instead: all patterns with at most
``g + 1`` erasures decode (any such pattern reduces to an invertible
Cauchy submatrix), but maximal recoverability of larger mixed patterns is
not guaranteed — ``decodable()`` always reports the truth either way.

Azure's production code is ``LRC(12, 2, 2)``; the FBF paper's footnote 3
says FBF "can be applied ... by investigating relationships among
global/local parity chains during the recovery" — this module provides
the code itself; :mod:`repro.lrc.scheme` provides that investigation.

Block naming: ``("d", i)`` data block i, ``("lp", j)`` local parity of
group j, ``("gp", m)`` global parity m.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Literal

import numpy as np

from .gf256 import cauchy_matrix, gf_matmul, gf_mul, gf_pow, gf_rank, gf_solve

__all__ = ["Block", "LRCChain", "LRCCode"]

Block = tuple[str, int]


def _gf16_subfield() -> list[int]:
    """Nonzero elements of the GF(16) subfield of GF(2^8), sorted.

    GF(16)* is the order-15 subgroup of GF(256)*: the elements satisfying
    ``x ** 16 == x``.
    """
    return sorted(x for x in range(1, 256) if gf_pow(x, 16) == x)


def _mr_coefficients(k: int, l: int, g: int) -> np.ndarray:
    """Maximally recoverable global coefficients for g <= 2 (see module doc)."""
    group_size = k // l
    betas = _gf16_subfield()
    if group_size > len(betas):
        raise ValueError(
            f"MR construction supports group sizes up to {len(betas)}, "
            f"got {group_size}"
        )
    if l > 17:
        raise ValueError(f"MR construction supports up to 17 groups, got {l}")
    # gamma_t = 2**t: exponents 0..16 hit the 17 distinct cosets of
    # GF(16)* (index 17 subgroup of the order-255 group).
    alphas = np.zeros(k, dtype=np.uint8)
    for t in range(l):
        gamma = gf_pow(2, t)
        for j in range(group_size):
            alphas[t * group_size + j] = gf_mul(gamma, betas[j])
    coeffs = np.zeros((g, k), dtype=np.uint8)
    for m in range(g):
        for i in range(k):
            coeffs[m, i] = gf_pow(int(alphas[i]), m + 1)
    return coeffs


@dataclass(frozen=True)
class LRCChain:
    """One parity relation: ``parity = combine(coefficients, members)``.

    Local chains have all-ones coefficients (pure XOR); global chains
    carry Cauchy coefficients over every data block.
    """

    kind: Literal["local", "global"]
    index: int
    members: tuple[Block, ...]
    parity: Block

    @property
    def chain_id(self) -> str:
        return f"{'L' if self.kind == 'local' else 'G'}{self.index}"

    @property
    def blocks(self) -> tuple[Block, ...]:
        """Members plus the parity block itself."""
        return self.members + (self.parity,)

    def __contains__(self, block: object) -> bool:
        return block in self.blocks

    def others(self, block: Block) -> tuple[Block, ...]:
        if block not in self.blocks:
            raise KeyError(f"{block} not in chain {self.chain_id}")
        return tuple(b for b in self.blocks if b != block)


class LRCCode:
    """An ``LRC(k, l, g)`` code over GF(2^8)."""

    def __init__(self, k: int = 12, l: int = 2, g: int = 2):
        if k < 1 or l < 1 or g < 0:
            raise ValueError(f"invalid LRC parameters k={k}, l={l}, g={g}")
        if k % l != 0:
            raise ValueError(f"k={k} must divide evenly into l={l} groups")
        self.k = k
        self.l = l
        self.g = g
        self.group_size = k // l
        if g == 0:
            self._global_coeffs = np.zeros((0, k), np.uint8)
        elif g <= 2:
            self._global_coeffs = _mr_coefficients(k, l, g)
        else:
            self._global_coeffs = cauchy_matrix(g, k)

    # -- structure -----------------------------------------------------------
    @property
    def name(self) -> str:
        return f"LRC({self.k},{self.l},{self.g})"

    @property
    def n_blocks(self) -> int:
        return self.k + self.l + self.g

    @cached_property
    def data_blocks(self) -> tuple[Block, ...]:
        return tuple(("d", i) for i in range(self.k))

    @cached_property
    def parity_blocks(self) -> tuple[Block, ...]:
        return tuple(("lp", j) for j in range(self.l)) + tuple(
            ("gp", m) for m in range(self.g)
        )

    @cached_property
    def all_blocks(self) -> tuple[Block, ...]:
        return self.data_blocks + self.parity_blocks

    def group_of(self, data_index: int) -> int:
        if not 0 <= data_index < self.k:
            raise IndexError(f"data index {data_index} out of range")
        return data_index // self.group_size

    @cached_property
    def chains(self) -> tuple[LRCChain, ...]:
        chains: list[LRCChain] = []
        for j in range(self.l):
            members = tuple(
                ("d", i) for i in range(j * self.group_size, (j + 1) * self.group_size)
            )
            chains.append(LRCChain("local", j, members, ("lp", j)))
        for m in range(self.g):
            chains.append(LRCChain("global", m, self.data_blocks, ("gp", m)))
        return tuple(chains)

    def chains_for(self, block: Block) -> tuple[LRCChain, ...]:
        return tuple(ch for ch in self.chains if block in ch)

    # -- linear algebra view ---------------------------------------------------
    @cached_property
    def block_index(self) -> dict[Block, int]:
        return {b: i for i, b in enumerate(self.all_blocks)}

    @cached_property
    def constraint_matrix(self) -> np.ndarray:
        """(l+g) x n coefficient matrix with ``M @ blocks == 0``."""
        m = np.zeros((self.l + self.g, self.n_blocks), dtype=np.uint8)
        idx = self.block_index
        for j in range(self.l):
            for i in range(j * self.group_size, (j + 1) * self.group_size):
                m[j, idx[("d", i)]] = 1
            m[j, idx[("lp", j)]] = 1
        for g_i in range(self.g):
            row = self.l + g_i
            for i in range(self.k):
                m[row, idx[("d", i)]] = self._global_coeffs[g_i, i]
            m[row, idx[("gp", g_i)]] = 1
        return m

    # -- encode / decode ---------------------------------------------------------
    def encode(self, data: np.ndarray) -> dict[Block, np.ndarray]:
        """Encode ``data`` of shape (k, payload) into a full block map."""
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {data.shape[0]}")
        blocks: dict[Block, np.ndarray] = {
            ("d", i): data[i].copy() for i in range(self.k)
        }
        for j in range(self.l):
            acc = np.zeros(data.shape[1], dtype=np.uint8)
            for i in range(j * self.group_size, (j + 1) * self.group_size):
                acc ^= data[i]
            blocks[("lp", j)] = acc
        if self.g:
            gp = gf_matmul(self._global_coeffs, data)
            for m in range(self.g):
                blocks[("gp", m)] = gp[m]
        return blocks

    def verify(self, blocks: dict[Block, np.ndarray]) -> bool:
        """True iff every chain relation holds."""
        idx = self.block_index
        payload = np.stack([blocks[b] for b in self.all_blocks])
        return not gf_matmul(self.constraint_matrix, payload).any()

    def decodable(self, erased: Iterable[Block]) -> bool:
        """Whether an erasure pattern is recoverable."""
        erased_list = sorted(set(erased), key=self.block_index.__getitem__)
        if not erased_list:
            return True
        cols = [self.block_index[b] for b in erased_list]
        sub = self.constraint_matrix[:, cols]
        return gf_rank(sub) == len(cols)

    def decode(
        self, blocks: dict[Block, np.ndarray], erased: Iterable[Block]
    ) -> dict[Block, np.ndarray]:
        """Rebuild ``erased`` blocks in place inside ``blocks``.

        Raises ``ValueError`` if the pattern exceeds the code's power.
        """
        erased_list = sorted(set(erased), key=self.block_index.__getitem__)
        if not erased_list:
            return blocks
        for b in erased_list:
            if b not in self.block_index:
                raise KeyError(f"unknown block {b}")
        erased_set = set(erased_list)
        cols = [self.block_index[b] for b in erased_list]
        a = self.constraint_matrix[:, cols]
        # rhs: for each chain, the combination of *surviving* blocks.
        survivors = [b for b in self.all_blocks if b not in erased_set]
        surv_cols = [self.block_index[b] for b in survivors]
        payload_len = len(next(iter(blocks.values())))
        surv_payload = np.stack([blocks[b] for b in survivors]) if survivors else (
            np.zeros((0, payload_len), dtype=np.uint8)
        )
        b_rhs = gf_matmul(self.constraint_matrix[:, surv_cols], surv_payload)
        try:
            solution = gf_solve(a, b_rhs)
        except ValueError:
            raise ValueError(
                f"{self.name}: erasure pattern {erased_list} is undecodable"
            ) from None
        solution = np.atleast_2d(solution)
        for row, block in zip(solution, erased_list):
            blocks[block] = row.astype(np.uint8)
        return blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
