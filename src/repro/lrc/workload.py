"""Failure workloads for LRC stripes.

The XOR-code workload model (contiguous chunks on one disk) doesn't map
onto LRC's flat block layout, so LRC failure events are *batches of
failed blocks within one stripe*: mostly single-block failures (the
dominant case LRC optimizes for), with a tail of multi-block batches —
always rejection-sampled to stay within the code's recovery power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import make_rng
from .code import Block, LRCCode

__all__ = ["LRCFailureEvent", "LRCWorkloadConfig", "generate_lrc_failures"]


@dataclass(frozen=True, order=True)
class LRCFailureEvent:
    """One stripe's failure batch."""

    time: float
    stripe: int
    failed: tuple[Block, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")
        if self.stripe < 0:
            raise ValueError(f"negative stripe {self.stripe}")
        if not self.failed:
            raise ValueError("empty failure batch")


@dataclass(frozen=True)
class LRCWorkloadConfig:
    n_events: int = 100
    array_stripes: int = 100_000
    #: P(batch has exactly i+1 failures); padded/truncated as needed.
    batch_size_weights: tuple[float, ...] = (0.70, 0.18, 0.08, 0.04)
    #: mean seconds between events.
    interarrival: float = 10.0
    seed: int | None = 42

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ValueError(f"n_events must be >= 1, got {self.n_events}")
        if self.array_stripes < self.n_events:
            raise ValueError("array_stripes must be >= n_events")
        if not self.batch_size_weights or min(self.batch_size_weights) < 0:
            raise ValueError("batch_size_weights must be non-negative")
        if sum(self.batch_size_weights) <= 0:
            raise ValueError("batch_size_weights must sum to > 0")
        if self.interarrival <= 0:
            raise ValueError("interarrival must be > 0")


def generate_lrc_failures(
    code: LRCCode, config: LRCWorkloadConfig
) -> list[LRCFailureEvent]:
    """Sample a deterministic, always-decodable failure trace."""
    rng = make_rng(config.seed)
    weights = np.asarray(config.batch_size_weights, dtype=float)
    weights = weights / weights.sum()
    max_batch = len(weights)
    blocks = list(code.all_blocks)
    used: set[int] = set()
    events: list[LRCFailureEvent] = []
    now = 0.0
    for _ in range(config.n_events):
        now += float(rng.exponential(config.interarrival))
        stripe = int(rng.integers(0, config.array_stripes))
        while stripe in used:
            stripe = int(rng.integers(0, config.array_stripes))
        used.add(stripe)
        size = int(rng.choice(max_batch, p=weights)) + 1
        for _ in range(200):
            picks = rng.choice(len(blocks), size=size, replace=False)
            failed = tuple(sorted(blocks[i] for i in picks))
            if code.decodable(failed):
                break
        else:  # pragma: no cover - decodable batches are plentiful
            raise RuntimeError("could not sample a decodable failure batch")
        events.append(LRCFailureEvent(time=now, stripe=stripe, failed=failed))
    return events
