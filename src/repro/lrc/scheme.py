"""FBF-style recovery planning for Local Reconstruction Codes.

The FBF paper's footnote 3: RS-based codes "like Local Reconstruction
Codes can be applied with FBF as well, by investigating relationships
among global/local parity chains during the recovery."  This module is
that investigation:

1. **Equation selection** — for a batch of failed blocks, pick a minimal
   set of parity relations (local chains preferred: they read one group,
   not the whole stripe) whose coefficient submatrix over the failures
   has full rank.  Groups with a single failure repair locally; groups
   with several failures pull in global chains (and their own local
   chain, which is a cheap extra equation).
2. **Request stream** — each selected equation reads its surviving
   members; blocks referenced by several equations repeat in the stream,
   exactly the rereference structure FBF exploits in the XOR codes.
3. **Priorities** — per block, the number of selected equations that
   reference it, capped at 3 (paper Table II), ready to feed
   :class:`repro.core.FBFCache` as the per-request hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from .code import Block, LRCChain, LRCCode
from .gf256 import gf_matmul, gf_rank, gf_solve

__all__ = ["LRCRecoveryPlan", "plan_lrc_recovery", "execute_plan"]


@dataclass(frozen=True)
class LRCRecoveryPlan:
    """Selected equations and the read stream to repair one failure batch."""

    code: LRCCode
    failed: tuple[Block, ...]
    equations: tuple[LRCChain, ...]

    @cached_property
    def reads_per_equation(self) -> tuple[tuple[Block, ...], ...]:
        failed_set = set(self.failed)
        return tuple(
            tuple(sorted(b for b in eq.blocks if b not in failed_set))
            for eq in self.equations
        )

    @cached_property
    def request_sequence(self) -> tuple[Block, ...]:
        return tuple(b for reads in self.reads_per_equation for b in reads)

    @cached_property
    def chain_share_count(self) -> dict[Block, int]:
        counts: dict[Block, int] = {}
        for reads in self.reads_per_equation:
            for b in reads:
                counts[b] = counts.get(b, 0) + 1
        return counts

    @cached_property
    def priorities(self) -> dict[Block, int]:
        """FBF priorities (Table II: shares capped at 3, default 1)."""
        return {b: min(n, 3) for b, n in self.chain_share_count.items()}

    @property
    def unique_reads(self) -> int:
        return len(self.chain_share_count)

    @property
    def total_requests(self) -> int:
        return len(self.request_sequence)


def _equation_rank(code: LRCCode, equations: Sequence[LRCChain], failed: Sequence[Block]) -> int:
    if not equations:
        return 0
    idx = code.block_index
    rows = code.constraint_matrix
    chain_row = {ch.chain_id: i for i, ch in enumerate(code.chains)}
    cols = [idx[b] for b in failed]
    sub = np.stack([rows[chain_row[eq.chain_id]][cols] for eq in equations])
    return gf_rank(sub)


def plan_lrc_recovery(code: LRCCode, failed: Iterable[Block]) -> LRCRecoveryPlan:
    """Select a full-rank, read-cheap equation set for ``failed`` blocks.

    Greedy: local chains containing at least one failure first (shortest
    read lists), then global chains, each added only if it increases the
    rank over the failed blocks.  Raises ``ValueError`` when the pattern
    exceeds the code's recovery power.
    """
    failed_list = sorted(set(failed), key=lambda b: (b[0], b[1]))
    if not failed_list:
        raise ValueError("no failed blocks given")
    for b in failed_list:
        if b not in code.block_index:
            raise KeyError(f"unknown block {b}")
    if not code.decodable(failed_list):
        raise ValueError(
            f"{code.name}: failure pattern {failed_list} is undecodable"
        )

    failed_set = set(failed_list)
    # candidates: any chain touching a failure; locals first, then globals,
    # and within each kind, fewest surviving reads first.
    candidates = [
        ch for ch in code.chains if any(b in failed_set for b in ch.blocks)
    ]
    candidates.sort(
        key=lambda ch: (
            ch.kind != "local",
            sum(1 for b in ch.blocks if b not in failed_set),
            ch.index,
        )
    )
    chosen: list[LRCChain] = []
    rank = 0
    for ch in candidates:
        if rank == len(failed_list):
            break
        trial = chosen + [ch]
        new_rank = _equation_rank(code, trial, failed_list)
        if new_rank > rank:
            chosen.append(ch)
            rank = new_rank
    if rank < len(failed_list):  # pragma: no cover - guarded by decodable()
        raise ValueError(
            f"{code.name}: could not assemble a full-rank equation set for "
            f"{failed_list}"
        )
    return LRCRecoveryPlan(code=code, failed=tuple(failed_list), equations=tuple(chosen))


def execute_plan(
    plan: LRCRecoveryPlan, blocks: dict[Block, np.ndarray]
) -> dict[Block, np.ndarray]:
    """Solve the plan's equations on real payloads; returns failed -> bytes.

    ``blocks`` must contain every surviving block the plan reads; failed
    blocks are ignored if present (they are the unknowns).
    """
    code = plan.code
    idx = code.block_index
    chain_row = {ch.chain_id: i for i, ch in enumerate(code.chains)}
    cols = [idx[b] for b in plan.failed]
    a = np.stack(
        [code.constraint_matrix[chain_row[eq.chain_id]][cols] for eq in plan.equations]
    )
    payload_len = len(next(iter(blocks.values())))
    b_rhs = np.zeros((len(plan.equations), payload_len), dtype=np.uint8)
    for row, (eq, reads) in enumerate(zip(plan.equations, plan.reads_per_equation)):
        coeff_row = code.constraint_matrix[chain_row[eq.chain_id]]
        for block in reads:
            b_rhs[row] ^= gf_matmul(
                np.array([[coeff_row[idx[block]]]], dtype=np.uint8),
                blocks[block][None, :],
            )[0]
    solution = np.atleast_2d(gf_solve(a, b_rhs))
    return {block: solution[i] for i, block in enumerate(plan.failed)}
