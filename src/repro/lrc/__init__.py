"""Local Reconstruction Codes + FBF (the paper's footnote-3 extension).

* :mod:`repro.lrc.gf256` — GF(2^8) arithmetic for Reed-Solomon parities.
* :mod:`repro.lrc.code` — the ``LRC(k, l, g)`` code: encode, verify,
  decode, chain structure.
* :mod:`repro.lrc.scheme` — FBF-style recovery planning over local and
  global parity chains, producing the same request-stream + priority
  interface the XOR codes feed into the cache simulators.

Replay lives in the unified engine: wrap the code in an
:class:`repro.engine.LRCBackend` and call
:func:`repro.engine.simulate_trace` / :func:`repro.engine.run_timed_replay`.
"""

from .code import Block, LRCChain, LRCCode
from .rs import RSCode
from .scheme import LRCRecoveryPlan, execute_plan, plan_lrc_recovery
from .update import LRCUpdateComplexity, lrc_parities_touched, lrc_update_complexity
from .workload import LRCFailureEvent, LRCWorkloadConfig, generate_lrc_failures

__all__ = [
    "Block",
    "LRCChain",
    "LRCCode",
    "RSCode",
    "LRCRecoveryPlan",
    "execute_plan",
    "plan_lrc_recovery",
    "LRCFailureEvent",
    "LRCWorkloadConfig",
    "generate_lrc_failures",
    "LRCUpdateComplexity",
    "lrc_parities_touched",
    "lrc_update_complexity",
]
