"""Plain Reed-Solomon erasure coding (the paper's reference [11]).

``RS(k, m)`` over GF(2^8) with a Cauchy generator: any ``m`` erasures
decode, and — the property LRC was invented to fix — repairing even a
*single* lost block requires reading ``k`` survivors.  Provided as the
baseline that makes the LRC/FBF repair-cost numbers meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .gf256 import cauchy_matrix, gf_matmul, gf_rank, gf_solve

__all__ = ["RSCode"]


class RSCode:
    """Systematic Reed-Solomon code: k data blocks + m parity blocks."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0:
            raise ValueError(f"invalid RS parameters k={k}, m={m}")
        if k + m > 255:
            raise ValueError(f"k + m = {k + m} exceeds GF(256) limits")
        self.k = k
        self.m = m
        self._coeffs = cauchy_matrix(m, k) if m else np.zeros((0, k), np.uint8)

    @property
    def name(self) -> str:
        return f"RS({self.k},{self.m})"

    @property
    def n_blocks(self) -> int:
        return self.k + self.m

    @cached_property
    def generator(self) -> np.ndarray:
        """(k+m) x k systematic generator: identity atop the Cauchy rows."""
        return np.concatenate(
            [np.eye(self.k, dtype=np.uint8), self._coeffs], axis=0
        )

    def encode(self, data: np.ndarray) -> np.ndarray:
        """(k, payload) data -> (k+m, payload) codeword."""
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {data.shape[0]}")
        return gf_matmul(self.generator, data)

    def decodable(self, erased: list[int]) -> bool:
        erased_set = set(erased)
        if any(not 0 <= e < self.n_blocks for e in erased_set):
            raise IndexError(f"erased indices {sorted(erased_set)} out of range")
        if len(erased_set) > self.m:
            return False
        survivors = [i for i in range(self.n_blocks) if i not in erased_set]
        sub = self.generator[survivors[: self.k]]
        # any k survivor rows of a Cauchy-extended systematic generator are
        # invertible, but verify rather than assume:
        return gf_rank(self.generator[survivors]) == self.k

    def repair_reads(self, erased: list[int]) -> int:
        """Survivor blocks that must be read to repair ``erased`` — always
        ``k`` for RS, regardless of how little was lost."""
        if not erased:
            return 0
        if not self.decodable(erased):
            raise ValueError(f"{self.name}: {sorted(set(erased))} is undecodable")
        return self.k

    def decode(self, codeword: np.ndarray, erased: list[int]) -> np.ndarray:
        """Rebuild the full codeword in place from any >= k survivors."""
        codeword = np.asarray(codeword, dtype=np.uint8).copy()
        erased_set = sorted(set(erased))
        if not erased_set:
            return codeword
        if not self.decodable(erased_set):
            raise ValueError(f"{self.name}: {erased_set} is undecodable")
        survivors = [i for i in range(self.n_blocks) if i not in set(erased_set)][
            : self.k
        ]
        a = self.generator[survivors]
        b = codeword[survivors]
        data = gf_solve(a, b)
        rebuilt = gf_matmul(self.generator, np.atleast_2d(data))
        for e in erased_set:
            codeword[e] = rebuilt[e]
        return codeword
