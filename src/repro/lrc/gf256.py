"""Arithmetic over GF(2^8) for Reed-Solomon-style parities.

The four XOR codes need only GF(2); Local Reconstruction Codes add
*global* parities built from Reed-Solomon coefficients, which live in
GF(2^8) (the field used by Azure's LRC and most RS deployments).

Implementation: classic log/antilog tables over the AES-adjacent
primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), with numpy
vectorization so chunk payloads multiply element-wise in one shot.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF_ORDER",
    "gf_add",
    "gf_mul",
    "gf_inv",
    "gf_div",
    "gf_pow",
    "gf_matmul",
    "gf_solve",
    "gf_rank",
    "cauchy_matrix",
]

GF_ORDER = 256
_PRIMITIVE_POLY = 0x11D

# -- table construction (module import time, ~microseconds) -------------------
_EXP = np.zeros(512, dtype=np.uint8)  # doubled to skip mod-255 in hot paths
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIMITIVE_POLY
_EXP[255:510] = _EXP[:255]


def gf_add(a, b):
    """Addition (== subtraction) in GF(2^8) is XOR."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def gf_mul(a, b) -> np.ndarray:
    """Element-wise product; handles scalars and arrays symmetrically."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    out = _EXP[(_LOG[a.astype(np.int32)] + _LOG[b.astype(np.int32)])]
    # anything multiplied by zero is zero (log[0] is a garbage sentinel)
    out = np.where((a == 0) | (b == 0), 0, out)
    return out.astype(np.uint8)


def gf_inv(a) -> np.ndarray:
    """Multiplicative inverse; raises on zero."""
    a = np.asarray(a, dtype=np.uint8)
    if np.any(a == 0):
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a.astype(np.int32)]].astype(np.uint8)


def gf_div(a, b) -> np.ndarray:
    """Element-wise quotient ``a / b``; raises on division by zero."""
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, n: int) -> int:
    """Scalar power ``a ** n``."""
    if a == 0:
        return 0 if n else 1
    return int(_EXP[(_LOG[a] * (n % 255)) % 255])


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    ``b`` may be a matrix of payload columns; the product is computed row
    by row with vectorized multiplies and XOR reduction.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        coeffs = a[i]
        nz = np.nonzero(coeffs)[0]
        for j in nz:
            out[i] ^= gf_mul(coeffs[j], b[j])
    return out


def gf_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x == b`` over GF(2^8) by Gaussian elimination.

    Requires full column rank (unique solution); raises ``ValueError``
    otherwise.  ``b`` may carry multiple right-hand-side columns (payload
    bytes), all solved in one elimination.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8)).copy()
    b = np.asarray(b, dtype=np.uint8)
    vector = b.ndim == 1
    if vector:
        b = b[:, None]
    b = b.copy()
    rows, cols = a.shape
    if b.shape[0] != rows:
        raise ValueError(f"rhs rows {b.shape[0]} != matrix rows {rows}")
    row = 0
    pivots: list[int] = []
    for col in range(cols):
        nz = np.nonzero(a[row:, col])[0]
        if nz.size == 0:
            continue
        pivot = row + int(nz[0])
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        inv = gf_inv(a[row, col])
        a[row] = gf_mul(a[row], inv)
        b[row] = gf_mul(b[row], inv)
        for r in range(rows):
            if r != row and a[r, col]:
                factor = a[r, col]
                a[r] ^= gf_mul(factor, a[row])
                b[r] ^= gf_mul(factor, b[row])
        pivots.append(col)
        row += 1
        if row == rows:
            break
    if len(pivots) < cols:
        raise ValueError(
            f"system is rank deficient: rank {len(pivots)} < {cols} unknowns"
        )
    x = np.zeros((cols, b.shape[1]), dtype=np.uint8)
    for r, col in enumerate(pivots):
        x[col] = b[r]
    return x[:, 0] if vector else x


def gf_rank(a: np.ndarray) -> int:
    """Rank over GF(2^8)."""
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8)).copy()
    rows, cols = a.shape
    rank = 0
    for col in range(cols):
        nz = np.nonzero(a[rank:, col])[0]
        if nz.size == 0:
            continue
        pivot = rank + int(nz[0])
        if pivot != rank:
            a[[rank, pivot]] = a[[pivot, rank]]
        a[rank] = gf_mul(a[rank], gf_inv(a[rank, col]))
        for r in range(rows):
            if r != rank and a[r, col]:
                a[r] ^= gf_mul(a[r, col], a[rank])
        rank += 1
        if rank == rows:
            break
    return rank


def cauchy_matrix(n_rows: int, n_cols: int) -> np.ndarray:
    """A Cauchy matrix over GF(2^8): every square submatrix is invertible.

    Used for global-parity coefficients so that *any* combination of
    erasures within the code's distance is decodable.
    """
    if n_rows + n_cols > GF_ORDER:
        raise ValueError(
            f"Cauchy matrix needs {n_rows + n_cols} distinct field points, "
            f"GF(256) has only {GF_ORDER}"
        )
    xs = np.arange(n_rows, dtype=np.uint8)
    ys = np.arange(n_rows, n_rows + n_cols, dtype=np.uint8)
    out = np.zeros((n_rows, n_cols), dtype=np.uint8)
    for i, x in enumerate(xs):
        out[i] = gf_inv(np.bitwise_xor(x, ys))
    return out
