"""Trace-driven cache simulation for LRC recovery (footnote-3 experiment).

Mirrors :func:`repro.sim.simulate_cache_trace` for the LRC world: each
failure event's recovery plan produces a request stream over
``(stripe, block)`` keys with FBF priorities; any registered replacement
policy replays the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from .code import Block, LRCCode
from .scheme import LRCRecoveryPlan, plan_lrc_recovery
from .workload import LRCFailureEvent

__all__ = ["LRCTraceResult", "simulate_lrc_trace"]


@dataclass
class LRCTraceResult:
    policy: str
    code: str
    capacity_blocks: int
    workers: int
    n_events: int
    requests: int
    hits: int
    disk_reads: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def simulate_lrc_trace(
    code: LRCCode,
    events: Sequence[LRCFailureEvent],
    policy: str = "fbf",
    capacity_blocks: int = 8,
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
) -> LRCTraceResult:
    """Replay the recovery streams of ``events`` through a cache."""
    if capacity_blocks < 0:
        raise ValueError(f"capacity_blocks must be >= 0, got {capacity_blocks}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    events = sorted(events)
    workers = min(workers, len(events)) or 1
    per_worker = capacity_blocks // workers
    if policy_factory is not None:
        policies = [policy_factory(per_worker) for _ in range(workers)]
    else:
        policies = [make_policy(policy, per_worker) for _ in range(workers)]

    plan_memo: dict[tuple[Block, ...], LRCRecoveryPlan] = {}
    for i, event in enumerate(events):
        cache = policies[i % workers]
        plan = plan_memo.get(event.failed)
        if plan is None:
            plan = plan_lrc_recovery(code, event.failed)
            plan_memo[event.failed] = plan
        for block in plan.request_sequence:
            cache.request(
                (event.stripe, block), priority=plan.priorities.get(block, 1)
            )

    hits = sum(p.stats.hits for p in policies)
    misses = sum(p.stats.misses for p in policies)
    return LRCTraceResult(
        policy=policy if policy_factory is None else getattr(policies[0], "name", "custom"),
        code=code.name,
        capacity_blocks=capacity_blocks,
        workers=workers,
        n_events=len(events),
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )
