"""A functional 3DFT RAID array: real bytes, real parity maintenance.

This is the array whose recovery the paper's cache accelerates, as an
actual working implementation: chunk reads and writes (writes XOR-patch
every parity chain the chunk belongs to — read-modify-write), degraded
reads, scrubbing (chain verification detects silent corruption), and
partial stripe repair driven by the same recovery planner the simulators
use.

Addressing: logical chunk ``i`` of stripe ``s`` maps to the ``i``-th data
cell of the layout; parities are internal.  Disk offsets follow the same
convention as the timed simulator: stripe-major within each disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codes.decoder import solve_decode
from ..codes.encoder import Encoder, empty_stripe
from ..codes.layout import Cell, CellKind, CodeLayout
from ..core.scheme import SchemeMode, UnrecoverableError, generate_plan
from .blockdev import BlockDevice, ChunkError, DiskFailure

__all__ = ["ScrubReport", "RepairReport", "RAIDArray"]


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of a scrub pass."""

    stripes_checked: int
    media_errors: tuple[tuple[int, Cell], ...]
    parity_mismatches: tuple[tuple[int, str], ...]  # (stripe, chain_id)

    @property
    def clean(self) -> bool:
        return not self.media_errors and not self.parity_mismatches


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one partial stripe repair."""

    stripe: int
    repaired_cells: tuple[Cell, ...]
    chunks_read: int
    scheme_mode: str


class RAIDArray:
    """A working erasure-coded array over :class:`BlockDevice` disks."""

    def __init__(
        self,
        layout: CodeLayout,
        chunk_size: int = 4096,
        stripes: int = 64,
    ):
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.layout = layout
        self.chunk_size = chunk_size
        self.stripes = stripes
        self.encoder = Encoder(layout)
        self.disks = [
            BlockDevice(disk_id=i, chunk_size=chunk_size,
                        num_chunks=stripes * layout.rows)
            for i in range(layout.num_disks)
        ]
        # logical address -> cell lookup
        self._data_cells = layout.data_cells
        self._combination = self.encoder.combination
        self._data_pos = {cell: i for i, cell in enumerate(layout.data_cells)}

    # -- addressing ------------------------------------------------------------
    @property
    def chunks_per_stripe(self) -> int:
        """Logical (data) chunks per stripe."""
        return len(self._data_cells)

    @property
    def capacity_chunks(self) -> int:
        return self.stripes * self.chunks_per_stripe

    def _offset(self, stripe: int, cell: Cell) -> int:
        if not 0 <= stripe < self.stripes:
            raise IndexError(f"stripe {stripe} outside 0..{self.stripes}")
        return stripe * self.layout.rows + cell[0]

    def _cell_of(self, logical: int) -> tuple[int, Cell]:
        if not 0 <= logical < self.capacity_chunks:
            raise IndexError(
                f"logical chunk {logical} outside 0..{self.capacity_chunks}"
            )
        stripe, index = divmod(logical, self.chunks_per_stripe)
        return stripe, self._data_cells[index]

    # -- raw cell I/O -----------------------------------------------------------
    def read_cell(self, stripe: int, cell: Cell) -> np.ndarray:
        return self.disks[cell[1]].read(self._offset(stripe, cell))

    def write_cell(self, stripe: int, cell: Cell, payload: np.ndarray) -> None:
        self.disks[cell[1]].write(self._offset(stripe, cell), payload)

    # -- logical I/O --------------------------------------------------------------
    def read(self, logical: int) -> np.ndarray:
        """Read one logical chunk; degraded-reads through parity on error."""
        stripe, cell = self._cell_of(logical)
        try:
            return self.read_cell(stripe, cell)
        except (ChunkError, DiskFailure):
            return self._degraded_read(stripe, cell)

    def _failed_cells(self, stripe: int) -> set[Cell]:
        return {
            cell
            for cell in self.layout.all_cells
            if self._offset(stripe, cell) in self.disks[cell[1]].bad_chunks
            or self.disks[cell[1]].failed
        }

    def _degraded_read(self, stripe: int, cell: Cell) -> np.ndarray:
        """Serve a read of a failed chunk through a clean parity chain
        (or a full decode when every chain is contaminated)."""
        failed = self._failed_cells(stripe)
        eligible = [
            ch for ch in self.layout.chains_for(cell)
            if not (ch.cells & failed) - {cell}
        ]
        if eligible:
            chain = min(eligible, key=lambda ch: len(ch.cells))
            out = np.zeros(self.chunk_size, dtype=np.uint8)
            for other in sorted(chain.others(cell)):
                out ^= self.read_cell(stripe, other)
            return out
        payload = empty_stripe(self.layout, self.chunk_size)
        for other in self.layout.all_cells:
            if other not in failed:
                payload[other[0], other[1]] = self.read_cell(stripe, other)
        solve_decode(self.layout, payload, sorted(failed))
        return payload[cell[0], cell[1]].copy()

    def write(self, logical: int, payload: np.ndarray) -> None:
        """Write one logical chunk, XOR-patching every affected parity.

        Read-modify-write: ``delta = old ^ new`` is XORed into each parity
        chunk the data cell feeds (per the encoder's combination matrix) —
        the write path whose cost :func:`repro.codes.update_complexity`
        measures.

        Degraded writes: if the target chunk is media-failed, its old
        contents are rebuilt through parity, the new payload is written
        to the chunk's spare (clearing the media error), and parities are
        patched as usual — the sector-sparing write path.
        """
        stripe, cell = self._cell_of(logical)
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.shape != (self.chunk_size,):
            raise ValueError(f"payload shape {payload.shape} != ({self.chunk_size},)")
        try:
            old = self.read_cell(stripe, cell)
            delta = old ^ payload
            self.write_cell(stripe, cell, payload)
        except ChunkError:
            old = self._degraded_read(stripe, cell)
            delta = old ^ payload
            self.disks[cell[1]].repair_chunk(self._offset(stripe, cell), payload)
        if not delta.any():
            return
        col = self._combination[:, self._data_pos[cell]]
        for parity_index in np.nonzero(col)[0]:
            parity_cell = self.layout.parity_cells[int(parity_index)]
            try:
                current = self.read_cell(stripe, parity_cell)
                self.write_cell(stripe, parity_cell, current ^ delta)
            except ChunkError:
                # The parity chunk is media-failed: its content is already
                # lost and will be recomputed from data at repair time, so
                # there is nothing to patch.
                continue

    # -- integrity -------------------------------------------------------------
    def scrub(self, stripes: range | None = None) -> ScrubReport:
        """Verify every parity chain; collect media errors and mismatches."""
        target = stripes if stripes is not None else range(self.stripes)
        media: list[tuple[int, Cell]] = []
        mismatches: list[tuple[int, str]] = []
        for stripe in target:
            payloads: dict[Cell, np.ndarray | None] = {}
            for cell in self.layout.all_cells:
                try:
                    payloads[cell] = self.read_cell(stripe, cell)
                except ChunkError:
                    payloads[cell] = None
                    media.append((stripe, cell))
            for chain in self.layout.chains:
                acc = np.zeros(self.chunk_size, dtype=np.uint8)
                complete = True
                for cell in chain.cells:
                    p = payloads[cell]
                    if p is None:
                        complete = False
                        break
                    acc ^= p
                if complete and acc.any():
                    mismatches.append((stripe, chain.chain_id))
        return ScrubReport(
            stripes_checked=len(target),
            media_errors=tuple(media),
            parity_mismatches=tuple(mismatches),
        )

    def scrub_and_repair(self, mode: SchemeMode = "fbf") -> ScrubReport:
        """One maintenance cycle: scrub, repair every flagged stripe,
        re-scrub, and return the *final* report (clean on success).

        Parity mismatches (silent corruption) cannot be attributed to a
        specific chunk by the scrub alone, so they are left in the report
        for operator attention; media errors are repaired in place.
        """
        first = self.scrub()
        for stripe in sorted({s for s, _ in first.media_errors}):
            self.repair_partial_stripe(stripe, mode=mode)
        return self.scrub()

    def repair_partial_stripe(
        self, stripe: int, mode: SchemeMode = "fbf"
    ) -> RepairReport:
        """Repair all media-failed chunks of one stripe.

        Three escalating strategies, mirroring a real controller:

        1. single-pass chain plan (the paper's partial stripe recovery) —
           always sufficient for failures confined to one disk;
        2. iterative peeling — repair whatever chunk currently has a
           clean chain, then retry the rest (multi-disk partials where a
           parity chunk depends on a data chunk that must go first);
        3. full linear decode over GF(2) — any pattern within the code's
           erasure-correcting power.
        """
        failed = [
            cell
            for cell in self.layout.all_cells
            if self._offset(stripe, cell) in self.disks[cell[1]].bad_chunks
        ]
        if not failed:
            return RepairReport(stripe=stripe, repaired_cells=(),
                                chunks_read=0, scheme_mode=mode)
        reads = 0
        repaired: list[Cell] = []
        remaining = set(failed)

        def execute(plan) -> None:
            nonlocal reads
            for assignment in plan.assignments:
                out = np.zeros(self.chunk_size, dtype=np.uint8)
                for other in assignment.reads:
                    out ^= self.read_cell(stripe, other)
                    reads += 1
                cell = assignment.failed_cell
                self.disks[cell[1]].repair_chunk(self._offset(stripe, cell), out)
                repaired.append(cell)
                remaining.discard(cell)

        try:
            execute(generate_plan(self.layout, sorted(remaining), mode))
        except UnrecoverableError:
            # Peel: repair any chunk whose chain avoids the other failures.
            progress = True
            while remaining and progress:
                progress = False
                for cell in sorted(remaining):
                    others = remaining - {cell}
                    eligible = [
                        ch for ch in self.layout.chains_for(cell)
                        if not (ch.cells & others)
                    ]
                    if eligible:
                        chain = min(eligible, key=lambda ch: len(ch.cells))
                        out = np.zeros(self.chunk_size, dtype=np.uint8)
                        for other in sorted(chain.others(cell)):
                            out ^= self.read_cell(stripe, other)
                            reads += 1
                        self.disks[cell[1]].repair_chunk(
                            self._offset(stripe, cell), out
                        )
                        repaired.append(cell)
                        remaining.discard(cell)
                        progress = True
            if remaining:
                # Full linear decode: read every surviving cell once.
                payload = empty_stripe(self.layout, self.chunk_size)
                for cell in self.layout.all_cells:
                    if cell not in remaining:
                        payload[cell[0], cell[1]] = self.read_cell(stripe, cell)
                        reads += 1
                solve_decode(self.layout, payload, sorted(remaining))
                for cell in sorted(remaining):
                    self.disks[cell[1]].repair_chunk(
                        self._offset(stripe, cell), payload[cell[0], cell[1]]
                    )
                    repaired.append(cell)
                remaining.clear()
        return RepairReport(
            stripe=stripe,
            repaired_cells=tuple(repaired),
            chunks_read=reads,
            scheme_mode=mode,
        )
