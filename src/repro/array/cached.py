"""A buffer cache in front of the functional array.

:class:`CachedRAIDArray` wraps a :class:`~repro.array.raid.RAIDArray`
with any replacement policy from :mod:`repro.cache`: chunk reads go
through the cache, and partial stripe repair feeds the policy the FBF
priority hints from the recovery plan — the whole paper, functional
edition.  Useful to *count* (rather than simulate) the disk reads a
policy saves on real repairs.
"""

from __future__ import annotations

import numpy as np

from ..cache.base import CachePolicy
from ..codes.layout import Cell
from ..core.priorities import PriorityDictionary
from ..core.scheme import SchemeMode, generate_plan
from .raid import RAIDArray, RepairReport

__all__ = ["CachedRAIDArray"]


class CachedRAIDArray:
    """Read-through chunk cache over a functional RAID array.

    The cache stores chunk payloads keyed by ``(stripe, cell)``.  Writes
    update the cached copy when present (write-through) and invalidate
    nothing else — parity cells patched by the write path are refreshed
    too, keeping cache and disks coherent at all times.
    """

    def __init__(self, array: RAIDArray, policy: CachePolicy):
        self.array = array
        self.policy = policy
        self._contents: dict[tuple[int, Cell], np.ndarray] = {}
        self.disk_reads = 0

    # -- internal --------------------------------------------------------------
    def _evict_orphans(self) -> None:
        """Drop cached payloads whose keys the policy evicted."""
        for key in [k for k in self._contents if k not in self.policy]:
            del self._contents[key]

    def _get(self, stripe: int, cell: Cell, priority: int | None = None) -> np.ndarray:
        key = (stripe, cell)
        hit = self.policy.request(key, priority=priority)
        if hit:
            return self._contents[key].copy()
        payload = self.array.read_cell(stripe, cell)
        self.disk_reads += 1
        if key in self.policy:  # capacity 0 -> never resident
            self._contents[key] = payload.copy()
        self._evict_orphans()
        return payload

    # -- public I/O --------------------------------------------------------------
    def read(self, logical: int) -> np.ndarray:
        stripe, cell = self.array._cell_of(logical)
        try:
            return self._get(stripe, cell)
        except Exception:
            return self.array.read(logical)  # degraded path, uncached

    def write(self, logical: int, payload: np.ndarray) -> None:
        stripe, cell = self.array._cell_of(logical)
        self.array.write(logical, payload)
        # refresh any cached copies this write touched (data + parities)
        for key in list(self._contents):
            k_stripe, k_cell = key
            if k_stripe == stripe:
                self._contents[key] = self.array.read_cell(k_stripe, k_cell)

    # -- repair ---------------------------------------------------------------
    def repair_partial_stripe(
        self, stripe: int, mode: SchemeMode = "fbf"
    ) -> RepairReport:
        """Chain repair fetching through the cache with FBF priorities."""
        failed = sorted(self.array._failed_cells(stripe))
        if not failed:
            return RepairReport(stripe=stripe, repaired_cells=(),
                                chunks_read=0, scheme_mode=mode)
        plan = generate_plan(self.array.layout, failed, mode)
        priorities = PriorityDictionary(plan)
        reads = 0
        for assignment in plan.assignments:
            out = np.zeros(self.array.chunk_size, dtype=np.uint8)
            for other in assignment.reads:
                out ^= self._get(stripe, other, priorities.lookup(other))
                reads += 1
            cell = assignment.failed_cell
            self.array.disks[cell[1]].repair_chunk(
                self.array._offset(stripe, cell), out
            )
        return RepairReport(
            stripe=stripe,
            repaired_cells=tuple(a.failed_cell for a in plan.assignments),
            chunks_read=reads,
            scheme_mode=mode,
        )
