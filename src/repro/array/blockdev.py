"""In-memory block devices with fault injection.

The functional (non-timed) half of the storage substrate: disks that
actually store bytes, can be told to fail — whole device, or chunk ranges
(media errors) — and can silently corrupt data (the §II-C error class
scrubbing exists for).  The :class:`~repro.array.raid.RAIDArray` builds on
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChunkError", "DiskFailure", "BlockDevice"]


class ChunkError(IOError):
    """Raised when reading a failed/unreadable chunk."""


class DiskFailure(IOError):
    """Raised when accessing a failed device."""


@dataclass
class BlockDevice:
    """A chunk-addressed in-memory disk.

    Unwritten chunks read back as zeros (like a fresh drive).  Failure
    modes:

    * :meth:`fail_device` — the whole disk stops responding;
    * :meth:`fail_chunks` — specific chunks return media errors
      (latent sector errors at chunk granularity);
    * :meth:`corrupt_chunk` — bit flips that reads do NOT report
      (silent corruption; only a scrub can find it).
    """

    disk_id: int
    chunk_size: int
    num_chunks: int
    _data: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _bad_chunks: set[int] = field(default_factory=set, repr=False)
    _device_failed: bool = False
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {self.num_chunks}")

    # -- health ------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return self._device_failed

    @property
    def bad_chunks(self) -> frozenset[int]:
        return frozenset(self._bad_chunks)

    def fail_device(self) -> None:
        self._device_failed = True

    def fail_chunks(self, start: int, count: int = 1) -> None:
        """Mark a contiguous chunk range unreadable (media error)."""
        self._check_range(start, count)
        self._bad_chunks.update(range(start, start + count))

    def corrupt_chunk(self, index: int, xor_mask: int = 0xFF) -> None:
        """Silently flip bits in a chunk (reads will NOT error)."""
        self._check_range(index, 1)
        current = self._read_raw(index)
        self._data[index] = current ^ np.uint8(xor_mask)

    def repair_chunk(self, index: int, payload: np.ndarray) -> None:
        """Write recovered data and clear the media error (chunk sparing)."""
        self.write(index, payload, _allow_bad=True)
        self._bad_chunks.discard(index)

    # -- I/O ----------------------------------------------------------------
    def _check_range(self, start: int, count: int) -> None:
        if not (0 <= start and start + count <= self.num_chunks):
            raise IndexError(
                f"chunks [{start}, {start + count}) outside 0..{self.num_chunks}"
            )

    def _read_raw(self, index: int) -> np.ndarray:
        stored = self._data.get(index)
        if stored is None:
            return np.zeros(self.chunk_size, dtype=np.uint8)
        return stored.copy()

    def read(self, index: int) -> np.ndarray:
        self._check_range(index, 1)
        if self._device_failed:
            raise DiskFailure(f"disk {self.disk_id} has failed")
        if index in self._bad_chunks:
            raise ChunkError(f"disk {self.disk_id} chunk {index}: media error")
        self.reads += 1
        return self._read_raw(index)

    def write(self, index: int, payload: np.ndarray, _allow_bad: bool = False) -> None:
        self._check_range(index, 1)
        if self._device_failed:
            raise DiskFailure(f"disk {self.disk_id} has failed")
        if index in self._bad_chunks and not _allow_bad:
            raise ChunkError(f"disk {self.disk_id} chunk {index}: media error")
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.shape != (self.chunk_size,):
            raise ValueError(
                f"payload shape {payload.shape} != ({self.chunk_size},)"
            )
        self.writes += 1
        self._data[index] = payload.copy()
