"""Functional RAID array: real bytes, parity-maintaining writes, scrub, repair."""

from .blockdev import BlockDevice, ChunkError, DiskFailure
from .cached import CachedRAIDArray
from .raid import RAIDArray, RepairReport, ScrubReport

__all__ = [
    "BlockDevice",
    "ChunkError",
    "DiskFailure",
    "CachedRAIDArray",
    "RAIDArray",
    "RepairReport",
    "ScrubReport",
]
