"""Command-line entry point: ``repro-fbf <command> [options]``.

Every subcommand draws from one shared flag vocabulary (built by the
``_add_*_flags`` helpers, so the spellings cannot drift):

* ``--scale {quick,full}`` — grid size;
* ``--workers`` — the *simulated* SOR worker count, everywhere;
* ``--engine-workers`` — process-pool fan-out: an int, ``0`` for
  in-process serial, or ``auto`` for ``os.cpu_count()``;
* ``--errors`` / ``--seed`` / ``--cache-mbs`` — workload overrides.

Examples::

    repro-fbf fig8 --scale quick
    repro-fbf bench all --scale quick --engine-workers auto
    repro-fbf cluster --scale quick
    repro-fbf obs fig8 --scale full --jsonl obs.jsonl
    repro-fbf trace --code tip --p 7 --errors 100 --out trace.txt
    repro-fbf info --code star --p 5
    repro-fbf serve --synthetic 0 --port 7777 --metrics-port 9100
    repro-fbf advise --port 7777
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from .bench import (
    EXPERIMENT_NAMES,
    FULL,
    QUICK,
    Scale,
    ablation_demotion,
    ablation_scheme,
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    figure_report,
    table4_overhead,
    table4_report,
    table5_max_improvement,
    table5_report,
)
from .codes.registry import available_codes, make_code
from .obs import emit
from .workloads import ErrorTraceConfig, generate_errors, write_trace

__all__ = ["main", "build_parser"]

EXPERIMENTS = (
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table4",
    "table5",
    "ablation-scheme",
    "ablation-demotion",
)


# -- shared flag vocabulary ----------------------------------------------------

def _add_scale_flag(p: argparse.ArgumentParser, default: str = "full") -> None:
    p.add_argument(
        "--scale", choices=("quick", "full"), default=default,
        help=f"grid size (default: {default})",
    )


def _add_workload_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--errors", type=int, help="override: number of partial stripe errors")
    p.add_argument("--seed", type=int, help="override: workload seed")
    p.add_argument(
        "--workers", type=int, default=None,
        help="override: simulated SOR worker count",
    )
    p.add_argument(
        "--cache-mbs", type=str,
        help="override: comma-separated cache sizes in MB (e.g. 8,16,32)",
    )


def _add_engine_flags(p: argparse.ArgumentParser, default_workers: str = "auto") -> None:
    p.add_argument(
        "--engine-workers", default=None, metavar="N",
        help="process-pool size: an int, 0 = in-process serial, or 'auto' "
             f"= os.cpu_count() (default: {default_workers})",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache directory",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="disable single-pass group replay; compute every hit-ratio "
             "cell through the per-point golden path",
    )
    p.add_argument(
        "--replay-backend", choices=("python", "numpy"), default="python",
        help="batched hit-ratio replay backend: the per-request python "
             "loop (golden reference) or the vector fleet (bit-identical "
             "rows; default: python)",
    )
    p.add_argument(
        "--stackdist", choices=("exact", "sampled"), default="exact",
        help="plain-LRU stack-distance profile: exact Fenwick or SHARDS "
             "sampling at --shards-rate (approximate rows, O(sample) "
             "memory; default: exact)",
    )
    p.add_argument(
        "--shards-rate", type=float, default=0.01, metavar="R",
        help="SHARDS spatial sampling rate in (0, 1] for "
             "--stackdist sampled (default: 0.01)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbf",
        description="Reproduce the FBF (ICPP 2017) evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for exp in EXPERIMENTS:
        p = sub.add_parser(exp, help=f"run the {exp} experiment")
        _add_scale_flag(p, default="full")
        _add_workload_flags(p)

    b = sub.add_parser(
        "bench",
        help="run a named experiment through the parallel sweep engine",
    )
    b.add_argument(
        "experiment",
        choices=(*EXPERIMENT_NAMES, "all"),
        help="which sweep to run ('all' = every experiment)",
    )
    _add_scale_flag(b, default="quick")
    _add_workload_flags(b)
    _add_engine_flags(b, default_workers="auto")
    b.add_argument(
        "--out", default=".",
        help="directory for BENCH_<experiment>.json (default: .)",
    )
    b.add_argument(
        "--check-serial", action="store_true",
        help="also run serially and fail if the outputs diverge",
    )
    b.add_argument(
        "--show", action="store_true",
        help="print the experiment's figure/table report, not just timings",
    )

    o = sub.add_parser(
        "obs",
        help="run one experiment with observability on and summarize "
             "kernel/engine/bench metrics",
    )
    o.add_argument(
        "experiment", nargs="?", default="fig8", choices=EXPERIMENT_NAMES,
        help="which sweep to observe (default: fig8)",
    )
    _add_scale_flag(o, default="quick")
    _add_workload_flags(o)
    _add_engine_flags(o, default_workers="0")
    o.add_argument(
        "--jsonl", metavar="PATH",
        help="also write the metrics as a JSON-lines artifact",
    )
    o.add_argument(
        "--prometheus", metavar="PATH",
        help="also write the metrics in Prometheus text format",
    )
    o.add_argument(
        "--no-kernel-probe", action="store_true",
        help="skip the small DES probe that feeds kernel-layer metrics "
             "when the chosen grid has no event-simulation points",
    )

    t = sub.add_parser("trace", help="generate a partial-stripe-error trace file")
    t.add_argument("--code", default="tip", choices=available_codes())
    t.add_argument("--p", type=int, default=7)
    t.add_argument("--errors", type=int, default=100)
    t.add_argument("--seed", type=int, default=42)
    t.add_argument("--out", default="-", help="output path (default stdout)")

    i = sub.add_parser("info", help="describe a code layout")
    i.add_argument("--code", default="tip", choices=available_codes())
    i.add_argument("--p", type=int, default=5)

    r = sub.add_parser("replay", help="replay a trace file against all policies")
    r.add_argument("trace", help="trace file from the `trace` command")
    r.add_argument("--code", default="tip", choices=available_codes())
    r.add_argument("--p", type=int, default=7)
    r.add_argument("--blocks", type=int, default=64, help="total cache blocks")
    r.add_argument("--workers", type=int, default=8,
                   help="simulated SOR worker count")

    m = sub.add_parser(
        "mttdl", help="reliability impact of a reconstruction-time improvement"
    )
    m.add_argument("--disks", type=int, default=8)
    m.add_argument("--mtbf-hours", type=float, default=1_000_000.0)
    m.add_argument("--baseline-hours", type=float, required=True,
                   help="repair time under the baseline policy")
    m.add_argument("--improved-hours", type=float, required=True,
                   help="repair time under FBF")

    lrc = sub.add_parser("lrc", help="FBF on LRC(k,l,g) — the footnote-3 extension")
    lrc.add_argument("--k", type=int, default=12)
    lrc.add_argument("--l", type=int, default=2)
    lrc.add_argument("--g", type=int, default=2)
    lrc.add_argument("--events", type=int, default=150)
    lrc.add_argument("--seed", type=int, default=17)
    lrc.add_argument("--blocks", type=str, default="8,16,32,64")

    v = sub.add_parser(
        "verify",
        help="payload-verified recovery across every code/p/scheme (correctness grid)",
    )
    v.add_argument("--errors", type=int, default=10)
    v.add_argument("--seed", type=int, default=7)

    cl = sub.add_parser(
        "cluster",
        help="rack-aware recovery scenario: EC decode vs replication, "
             "healthy and with a limplocked node",
    )
    cl.add_argument("--code", default="tip", choices=available_codes())
    cl.add_argument("--p", type=int, default=7)
    _add_scale_flag(cl, default="quick")
    cl.add_argument("--errors", type=int, help="override: number of partial stripe errors")
    cl.add_argument("--seed", type=int, help="override: workload seed")

    rb = sub.add_parser("rebuild", help="whole-disk rebuild read savings (ref [22])")
    rb.add_argument("--code", default="tip", choices=available_codes())
    rb.add_argument("--p", type=int, default=11)
    rb.add_argument("--stripes", type=int, default=20)
    rb.add_argument("--workers", type=int, default=8,
                    help="simulated SOR worker count")

    rep = sub.add_parser("report", help="regenerate every figure/table into a directory")
    rep.add_argument("--out", default="fbf-report", help="output directory")
    _add_scale_flag(rep, default="full")
    _add_workload_flags(rep)
    _add_engine_flags(rep, default_workers="0")

    s = sub.add_parser(
        "serve",
        help="run the always-on cache advisor: ingest an error stream, "
             "answer advise queries, export serve.* metrics",
    )
    s.add_argument("--code", default="tip", choices=available_codes())
    s.add_argument("--p", type=int, default=7)
    s.add_argument(
        "--scheme", choices=("typical", "fbf", "greedy"), default="fbf",
        help="recovery scheme the advisor replays under (default: fbf)",
    )
    s.add_argument(
        "--workers", type=int, default=32,
        help="simulated SOR worker count per evaluation (default: 32)",
    )
    s.add_argument(
        "--policies", type=str, default=None,
        help="comma-separated candidate policies (default: fifo,lru,lfu,arc,fbf)",
    )
    s.add_argument(
        "--cache-mbs", type=str, default=None,
        help="comma-separated candidate cache sizes in MB "
             "(default: 2,4,8,16,32,64)",
    )
    s.add_argument(
        "--window-events", type=int, default=192,
        help="sliding evaluation window, in events (default: 192)",
    )
    s.add_argument(
        "--batch-events", type=int, default=24,
        help="ingest batch size between evaluations (default: 24)",
    )
    s.add_argument(
        "--queue-limit", type=int, default=1024,
        help="bounded ingest queue; overflow is shed and counted "
             "(default: 1024)",
    )
    s.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file: resumed on start, rewritten periodically "
             "and on drain",
    )
    s.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="batches between checkpoints (0 = only on shutdown; default: 8)",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument(
        "--port", type=int, default=0,
        help="ingest/query TCP port (0 = ephemeral, printed on start)",
    )
    s.add_argument(
        "--metrics-port", type=int, default=0,
        help="Prometheus /metrics port (0 = ephemeral, printed on start)",
    )
    s.add_argument(
        "--stdin", action="store_true",
        help="also ingest JSON-lines records from stdin (EOF drains and exits)",
    )
    s.add_argument(
        "--synthetic", type=int, default=None, metavar="N",
        help="drive the server with N synthetic load batches (0 = endless)",
    )
    s.add_argument(
        "--synthetic-seed", type=int, default=42,
        help="seed for the synthetic load generator (default: 42)",
    )
    s.add_argument(
        "--synthetic-interval", type=float, default=0.05, metavar="SECS",
        help="pause between synthetic batches (default: 0.05)",
    )
    s.add_argument(
        "--engine-workers", default=None, metavar="N",
        help="shard grid evaluations across a process pool: an int or "
             "'auto' (default: in-process)",
    )

    a = sub.add_parser(
        "advise",
        help="query a running advisor: which policy/capacity should this "
             "array run?",
    )
    a.add_argument("--host", default="127.0.0.1")
    a.add_argument("--port", type=int, required=True,
                   help="the advisor's ingest/query port")
    a.add_argument("--code", default=None, choices=available_codes(),
                   help="array code of the asking deployment (default: "
                        "the server's)")
    a.add_argument("--p", type=int, default=None)
    a.add_argument("--workers", type=int, default=None,
                   help="evaluate at this SOR fan-out instead of the "
                        "server default")
    a.add_argument("--timeout", type=float, default=30.0)

    c = sub.add_parser(
        "check",
        help="run simlint (domain static analysis) over source trees",
    )
    c.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    c.add_argument(
        "--select", type=str, default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    c.add_argument(
        "--list-rules", action="store_true",
        help="describe every rule and exit",
    )
    c.add_argument(
        "--format", dest="fmt", choices=("text", "json", "sarif"),
        default="text", help="diagnostic output format (default: text)",
    )
    c.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="parallel analysis processes (0 = auto)",
    )
    c.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file analysis cache",
    )
    c.add_argument(
        "--cache-dir", default=None,
        help="directory for the analysis cache (default: ./.simlint_cache.json)",
    )
    c.add_argument(
        "--baseline", default=None,
        help="baseline file of accepted findings (default: the committed one)",
    )
    c.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, including baselined ones",
    )
    c.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and re-check",
    )
    c.add_argument(
        "--update-api-manifest", action="store_true",
        help="rewrite the repro.api surface manifest (API001) and re-check",
    )
    return parser


# -- flag resolution -----------------------------------------------------------

def _resolve_scale(args: argparse.Namespace) -> tuple[str, Scale]:
    """(scale name, Scale with workload overrides applied)."""
    name = args.scale
    scale = QUICK if name == "quick" else FULL
    overrides: dict = {}
    if args.errors is not None:
        overrides["n_errors"] = args.errors
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if args.cache_mbs:
        overrides["cache_mbs"] = tuple(
            float(x) for x in args.cache_mbs.split(",") if x.strip()
        )
    return name, replace(scale, **overrides) if overrides else scale


def _engine_config(
    args: argparse.Namespace,
    default_workers: int | str = "auto",
    default_cache: bool = False,
):
    """Build the EngineConfig shared by bench/report/obs from their flags."""
    from .bench import EngineConfig, default_cache_dir

    workers: int | str | None = args.engine_workers
    if workers is None:
        workers = default_workers
    if workers != "auto":
        workers = int(workers)
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir() if default_cache else None
    return EngineConfig(
        workers=workers,
        cache_dir=cache_dir,
        batch=not args.no_batch,
        replay_backend=getattr(args, "replay_backend", "python"),
        stackdist=getattr(args, "stackdist", "exact"),
        shards_rate=getattr(args, "shards_rate", 0.01),
    )


_BENCH_METRICS = {
    "fig8": ("hit_ratio", "Figure 8: cache hit ratio", ".4f"),
    "fig9": ("disk_reads", "Figure 9: disk reads (TIP)", "d"),
    "fig10": ("avg_response_time", "Figure 10: average response time (s)", ".5f"),
    "fig11": ("reconstruction_time", "Figure 11: reconstruction time (s, TIP)", ".3f"),
    "ablation-scheme": ("hit_ratio", "Ablation: recovery scheme (hit ratio)", ".4f"),
    "ablation-demotion": ("hit_ratio", "Ablation: demotion on hit (hit ratio)", ".4f"),
}


def _run_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .api.v2.bench import GridRequest, run_grid
    from .bench import (
        EngineConfig,
        bench_summary,
        experiment_grid,
        rows_equivalent,
        write_bench_json,
    )

    scale_name, scale = _resolve_scale(args)
    engine = _engine_config(args, default_workers="auto", default_cache=True)
    names = list(EXPERIMENT_NAMES) if args.experiment == "all" else [args.experiment]

    divergent: list[str] = []
    for name in names:
        grid = experiment_grid(name, scale)
        result = run_grid(GridRequest(points=tuple(grid), engine=engine))
        extra: dict[str, object] = {}
        if args.check_serial:
            serial = run_grid(
                GridRequest(
                    points=tuple(grid),
                    engine=EngineConfig(workers=0, cache_dir=None, batch=False),
                )
            )
            # Simulated metrics must match bit for bit; the measured
            # overhead columns legitimately vary (see DESIGN §9).
            identical = rows_equivalent(serial.points, result.points)
            extra["serial_identical"] = identical
            extra["serial_wall_s"] = serial.wall_s
            if not identical:
                divergent.append(name)
        emit(bench_summary(name, scale_name, result))
        if args.check_serial:
            status = "DIVERGED" if name in divergent else "identical"
            emit(f"{'serial check':>14} {status} "
                 f"(serial wall {extra['serial_wall_s']:.2f} s)")
        if args.show and name in _BENCH_METRICS:
            metric, title, spec = _BENCH_METRICS[name]
            emit()
            emit(figure_report(result.points, metric, title, spec))
        elif args.show and name == "table4":
            emit()
            emit(table4_report(result.points))
        elif args.show and name == "cluster":
            from .bench import cluster_report

            emit()
            emit(cluster_report(result.points))
        path = write_bench_json(
            Path(args.out) / f"BENCH_{name.replace('-', '_')}.json",
            name,
            scale_name,
            result,
            extra,
        )
        emit(f"{'bench json':>14} {path}")
        emit()
    if divergent:
        emit(f"parallel/serial outputs DIVERGED for: {', '.join(divergent)}")
        return 1
    return 0


def _run_cluster(args: argparse.Namespace) -> int:
    """The rack-aware scenario with the full per-run detail (DESIGN §15).

    The ``cluster`` bench grid reports the SweepPoint columns; this
    subcommand additionally surfaces the measured bottleneck link, its
    utilization, and the nodes the fail-slow detector flags.
    """
    from .sim.cluster import ClusterSpec, run_cluster_recovery

    scale = QUICK if args.scale == "quick" else FULL
    n_errors = args.errors if args.errors is not None else scale.n_errors
    seed = args.seed if args.seed is not None else scale.seed
    emit(f"cross-rack recovery on a 3x3 rack cluster, 1 MB chunks "
         f"({args.code} p={args.p}, {n_errors} errors, seed {seed})")
    head = (f"{'state':>8} {'mode':>5} {'policy':>7} {'hit':>8} "
            f"{'xrack(MB)':>10} {'recover(s)':>11} {'p99(s)':>8} "
            f"{'bottleneck':>13} {'util':>5}  suspects")
    emit(head)
    emit("-" * len(head))
    for limplock in (False, True):
        for redundancy, policy in (
            ("ec", "fbf"), ("ec", "lru"), ("ec", "arc"), ("rep", "rep")
        ):
            spec = ClusterSpec(
                redundancy=redundancy,
                code=args.code,
                p=args.p,
                policy=policy if redundancy == "ec" else "fbf",
                n_errors=n_errors,
                seed=seed,
                workers=min(scale.workers, 8),
                limplock=limplock,
            )
            rep = run_cluster_recovery(spec)
            state = "limplock" if limplock else "healthy"
            suspects = ",".join(str(n) for n in rep.limplock_suspects) or "-"
            emit(f"{state:>8} {rep.redundancy:>5} {rep.policy:>7} "
                 f"{rep.hit_ratio:>8.4f} {rep.cross_rack_mb:>10.1f} "
                 f"{rep.recovery_time:>11.3f} {rep.p99_response_time:>8.4f} "
                 f"{rep.bottleneck:>13} {rep.bottleneck_utilization:>5.2f}  "
                 f"{suspects}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The always-on advisor service (DESIGN §17)."""
    import asyncio

    from .serve import AdvisorServer, ServeConfig, SyntheticSource

    kwargs: dict = dict(
        code=args.code,
        p=args.p,
        scheme_mode=args.scheme,
        workers=args.workers,
        window_events=args.window_events,
        batch_events=args.batch_events,
        queue_limit=args.queue_limit,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    if args.policies:
        kwargs["policies"] = tuple(
            x.strip() for x in args.policies.split(",") if x.strip()
        )
    if args.cache_mbs:
        kwargs["cache_mbs"] = tuple(
            float(x) for x in args.cache_mbs.split(",") if x.strip()
        )
    try:
        config = ServeConfig(**kwargs)
    except ValueError as exc:
        emit(f"invalid serve configuration: {exc}", stream=sys.stderr)
        return 2

    pool = None
    if args.engine_workers not in (None, "0", 0):
        from .bench.engine import EnginePool

        pool = EnginePool(
            workers="auto" if args.engine_workers == "auto"
            else int(args.engine_workers)
        )

    async def run() -> None:
        server = AdvisorServer(
            config,
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            pool=pool,
            read_stdin=args.stdin,
        )
        await server.start()
        emit(
            f"advisor for {config.code} p={config.p} serving on "
            f"{args.host}:{server.port} "
            f"(metrics http://{args.host}:{server.metrics_port}/metrics)"
            + (" [resumed from checkpoint]" if server.resumed else "")
        )
        feeder = None
        if args.synthetic is not None:
            source = SyntheticSource(
                config.code,
                config.p,
                seed=args.synthetic_seed,
                chunk=config.batch_events,
            )

            async def feed() -> None:
                n = args.synthetic if args.synthetic > 0 else None
                for batch in source.batches(n):
                    if server._stop.is_set():
                        return
                    server.feed(batch)
                    await asyncio.sleep(args.synthetic_interval)

            feeder = asyncio.ensure_future(feed())
        try:
            await server.serve_forever()
        finally:
            if feeder is not None:
                feeder.cancel()
        emit(f"drained; final stats: {server.stats()}")

    try:
        asyncio.run(run())
    finally:
        if pool is not None:
            pool.close()
    return 0


def _run_advise(args: argparse.Namespace) -> int:
    """One ``advise`` round trip against a running advisor."""
    import asyncio
    import json

    async def query() -> dict:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        request: dict = {"op": "advise"}
        if args.code is not None:
            request["code"] = args.code
        if args.p is not None:
            request["p"] = args.p
        if args.workers is not None:
            request["workers"] = args.workers
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), args.timeout)
        writer.close()
        await writer.wait_closed()
        return json.loads(line)

    try:
        answer = asyncio.run(query())
    except (OSError, asyncio.TimeoutError) as exc:
        emit(f"advise failed: cannot reach {args.host}:{args.port} ({exc})",
             stream=sys.stderr)
        return 1
    if not answer.get("ok"):
        emit(f"advise refused: {answer.get('error')}", stream=sys.stderr)
        return 1
    advice = answer["advice"]
    emit(json.dumps(advice, indent=2, sort_keys=True))
    emit(
        f"run {advice['policy']} at {advice['cache_mb']:g} MB "
        f"({advice['capacity_blocks']} blocks): hit ratio "
        f"{advice['hit_ratio']:.4f} over the last "
        f"{advice['window_events']} events "
        f"(confidence {advice['confidence']:.2f})",
        stream=sys.stderr,
    )
    return 0


def _kernel_probe(scale: Scale) -> None:
    """A small DES run so kernel-layer metrics are populated.

    The hit-ratio grids never enter the event kernel; ``repro-fbf obs``
    runs this probe (unless ``--no-kernel-probe``) so the summary's
    kernel section reflects a real dispatch loop rather than ``(no
    data)``.  The probe is tiny and fixed-shape; only the workload seed
    follows the selected scale.
    """
    from .engine import make_backend
    from .engine.timed import run_timed_replay
    from .sim import SimConfig

    backend = make_backend("tip", 7)
    events = backend.generate_events(8, scale.seed)
    run_timed_replay(backend, events, SimConfig(workers=4))


def _run_obs(args: argparse.Namespace) -> int:
    from . import obs
    from .bench import bench_summary, experiment_grid, run_grid

    scale_name, scale = _resolve_scale(args)
    engine = _engine_config(args, default_workers=0, default_cache=False)
    if engine.resolved_workers() > 0:
        emit(
            "note: obs state is process-local; pooled workers only feed "
            "the bench layer. Use --engine-workers 0 for full coverage."
        )
    grid = experiment_grid(args.experiment, scale)
    # Observe a cold, self-contained run: warm per-process memos (shared
    # backends/streams/plan caches) would hide the engine layer's work.
    from .bench.engine import _reset_worker_state

    _reset_worker_state()
    registry = obs.enable(fresh=True)
    result = run_grid(grid, engine)
    if not args.no_kernel_probe and not any(p.kind == "des" for p in grid):
        _kernel_probe(scale)
    obs.disable()
    emit(bench_summary(args.experiment, scale_name, result))
    emit()
    emit(obs.render_summary(registry.snapshot()))
    if args.jsonl:
        emit(f"wrote {obs.write_jsonl(registry, args.jsonl)}")
    if args.prometheus:
        emit(f"wrote {obs.write_prometheus(registry, args.prometheus)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cmd = args.command

    if cmd == "info":
        layout = make_code(args.code, args.p)
        emit(layout.description or layout.name)
        emit(
            f"{layout.num_disks} disks, {layout.rows} rows, "
            f"{len(layout.data_cells)} data cells, "
            f"{len(layout.parity_cells)} parity cells, "
            f"{len(layout.chains)} chains"
        )
        emit(layout.ascii_grid())
        return 0

    if cmd == "check":
        from .checks import run_check

        select = None
        if args.select:
            select = [part.strip() for part in args.select.split(",") if part.strip()]
        return run_check(
            args.paths,
            select=select,
            list_rules=args.list_rules,
            fmt=args.fmt,
            jobs=args.jobs,
            no_cache=args.no_cache,
            cache_dir=args.cache_dir,
            baseline=args.baseline,
            no_baseline=args.no_baseline,
            update_baseline=args.update_baseline,
            update_api_manifest=args.update_api_manifest,
        )

    if cmd == "bench":
        return _run_bench(args)

    if cmd == "serve":
        return _run_serve(args)

    if cmd == "advise":
        return _run_advise(args)

    if cmd == "obs":
        return _run_obs(args)

    if cmd == "cluster":
        return _run_cluster(args)

    if cmd == "verify":
        from .sim import SimConfig, run_reconstruction

        failures = 0
        emit(f"{'code':>12} {'p':>3} {'scheme':>8} {'chunks':>7} {'mismatch':>9}")
        for code in available_codes():
            for p in (5, 7):
                layout = make_code(code, p)
                errs = generate_errors(
                    layout, ErrorTraceConfig(n_errors=args.errors, seed=args.seed)
                )
                for scheme in ("typical", "fbf", "greedy"):
                    rep = run_reconstruction(
                        layout, errs,
                        SimConfig(workers=4, verify_payloads=True,
                                  scheme_mode=scheme),
                    )
                    ok = rep.payload_mismatches == 0
                    failures += not ok
                    emit(f"{layout.name:>12} {p:>3} {scheme:>8} "
                         f"{rep.payload_chunks_verified:>7d} "
                         f"{rep.payload_mismatches:>9d}")
        emit("\nall recoveries bit-exact ✓" if failures == 0
             else f"\n{failures} configurations FAILED verification")
        return 0 if failures == 0 else 1

    if cmd == "rebuild":
        from .sim import SimConfig, rebuild_read_savings, run_disk_rebuild

        layout = make_code(args.code, args.p)
        emit(f"{layout.name} p={args.p}: per-stripe unique reads to rebuild each disk")
        emit(f"{'disk':>5} {'typical':>8} {'greedy':>8} {'saved':>7}")
        for disk in range(layout.num_disks):
            s = rebuild_read_savings(layout, disk, "greedy")
            emit(f"{disk:>5} {s.typical_unique_reads:>8} "
                 f"{s.scheme_unique_reads:>8} {s.read_reduction:>7.1%}")
        emit(f"\ntimed rebuild of disk 0 ({args.stripes} stripes, "
             f"{args.workers} workers, FBF cache):")
        for scheme in ("typical", "greedy"):
            rep = run_disk_rebuild(
                layout, 0, args.stripes,
                SimConfig(workers=args.workers, scheme_mode=scheme),
            )
            emit(f"  {scheme:8s} reads={rep.disk_reads:6d} "
                 f"time={rep.reconstruction_time:.3f}s")
        return 0

    if cmd == "report":
        from .bench import write_full_report

        _, scale = _resolve_scale(args)
        engine = _engine_config(args, default_workers=0, default_cache=False)
        paths = write_full_report(scale, args.out, engine)
        emit(f"wrote {len(paths)} reports to {args.out}/")
        for path in paths:
            emit(f"  {path.name}")
        return 0

    if cmd == "replay":
        from .cache.registry import available_policies
        from .engine import PlanCache, make_backend, simulate_trace
        from .workloads import read_trace

        backend = make_backend(args.code, args.p)
        errors = read_trace(args.trace)
        plans = PlanCache(backend)
        emit(f"{len(errors)} errors from {args.trace}; {backend.code_label} "
             f"p={args.p}, {args.blocks} blocks over {args.workers} workers")
        emit(f"{'policy':>8} {'hit ratio':>10} {'disk reads':>11}")
        for policy in sorted(available_policies()):
            res = simulate_trace(
                backend, errors, policy=policy,
                capacity_blocks=args.blocks, workers=args.workers,
                plan_cache=plans,
            )
            emit(f"{policy:>8} {res.hit_ratio:>10.4f} {res.disk_reads:>11d}")
        return 0

    if cmd == "mttdl":
        from .analysis import wov_improvement

        cmp = wov_improvement(
            args.disks, args.mtbf_hours, args.baseline_hours, args.improved_hours
        )
        emit(f"window of vulnerability: {args.baseline_hours:.3f}h -> "
             f"{args.improved_hours:.3f}h ({cmp.wov_reduction_percent:.1f}% smaller)")
        emit(f"MTTDL: {cmp.baseline_mttdl_hours:.3e}h -> "
             f"{cmp.improved_mttdl_hours:.3e}h "
             f"({cmp.mttdl_gain_factor:.2f}x)")
        return 0

    if cmd == "lrc":
        from .engine import PlanCache, make_backend, simulate_trace

        backend = make_backend(f"lrc({args.k},{args.l},{args.g})")
        events = backend.generate_events(args.events, args.seed)
        plans = PlanCache(backend)
        blocks_list = [int(x) for x in args.blocks.split(",") if x.strip()]
        policies = ("fifo", "lru", "lfu", "arc", "fbf")
        emit(f"{backend.code_label}: {len(events)} failure batches, 4 workers")
        emit(f"{'blocks':>7} " + " ".join(f"{p:>8}" for p in policies))
        for blocks in blocks_list:
            row = [f"{blocks:>7}"]
            for policy in policies:
                res = simulate_trace(
                    backend, events, policy=policy, capacity_blocks=blocks,
                    workers=4, plan_cache=plans,
                )
                row.append(f"{res.hit_ratio:>8.4f}")
            emit(" ".join(row))
        return 0

    if cmd == "trace":
        layout = make_code(args.code, args.p)
        errors = generate_errors(
            layout, ErrorTraceConfig(n_errors=args.errors, seed=args.seed)
        )
        meta = {"code": args.code, "p": str(args.p), "seed": str(args.seed)}
        if args.out == "-":
            write_trace(sys.stdout, errors, metadata=meta)
        else:
            write_trace(args.out, errors, metadata=meta)
            emit(f"wrote {len(errors)} errors to {args.out}")
        return 0

    _, scale = _resolve_scale(args)
    if cmd == "fig8":
        emit(figure_report(fig8_hit_ratio(scale), "hit_ratio",
                           "Figure 8: cache hit ratio during reconstruction"))
    elif cmd == "fig9":
        emit(figure_report(fig9_read_ops(scale), "disk_reads",
                           "Figure 9: disk reads during reconstruction (TIP)", "d"))
    elif cmd == "fig10":
        emit(figure_report(fig10_response_time(scale), "avg_response_time",
                           "Figure 10: average response time (s)", ".5f"))
    elif cmd == "fig11":
        emit(figure_report(fig11_reconstruction_time(scale), "reconstruction_time",
                           "Figure 11: reconstruction time (s, TIP)", ".3f"))
    elif cmd == "table4":
        emit(table4_report(table4_overhead(scale)))
    elif cmd == "table5":
        emit(table5_report(table5_max_improvement(scale)))
    elif cmd == "ablation-scheme":
        emit(figure_report(ablation_scheme(scale), "hit_ratio",
                           "Ablation: recovery scheme selection (hit ratio)"))
    elif cmd == "ablation-demotion":
        emit(figure_report(ablation_demotion(scale), "hit_ratio",
                           "Ablation: demote-on-hit vs sticky (hit ratio)"))
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown command {cmd}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
