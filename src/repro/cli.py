"""Command-line entry point: ``repro-fbf <experiment> [options]``.

Examples::

    repro-fbf fig8 --quick
    repro-fbf fig11 --errors 200 --workers 64
    repro-fbf table5
    repro-fbf trace --code tip --p 7 --errors 100 --out trace.txt
    repro-fbf info --code star --p 5
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from .bench import (
    EXPERIMENT_NAMES,
    FULL,
    QUICK,
    Scale,
    ablation_demotion,
    ablation_scheme,
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    figure_report,
    table4_overhead,
    table4_report,
    table5_max_improvement,
    table5_report,
)
from .codes.registry import available_codes, make_code
from .workloads import ErrorTraceConfig, generate_errors, write_trace

__all__ = ["main", "build_parser"]

EXPERIMENTS = (
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table4",
    "table5",
    "ablation-scheme",
    "ablation-demotion",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbf",
        description="Reproduce the FBF (ICPP 2017) evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for exp in EXPERIMENTS:
        p = sub.add_parser(exp, help=f"run the {exp} experiment")
        p.add_argument("--quick", action="store_true", help="small, fast scale")
        p.add_argument("--errors", type=int, help="number of partial stripe errors")
        p.add_argument("--workers", type=int, help="SOR worker count")
        p.add_argument("--seed", type=int, help="workload seed")
        p.add_argument(
            "--cache-mbs",
            type=str,
            help="comma-separated cache sizes in MB (e.g. 8,16,32)",
        )

    b = sub.add_parser(
        "bench",
        help="run a named experiment through the parallel sweep engine",
    )
    b.add_argument(
        "experiment",
        choices=(*EXPERIMENT_NAMES, "all"),
        help="which sweep to run ('all' = every experiment)",
    )
    b.add_argument(
        "--scale", choices=("quick", "full"), default="quick",
        help="grid size (default: quick)",
    )
    b.add_argument(
        "--workers", default="auto",
        help="process-pool size: an int, 0 = in-process serial, "
             "or 'auto' = os.cpu_count() (default)",
    )
    b.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache directory "
             "(default: $XDG_CACHE_HOME/repro-fbf or ~/.cache/repro-fbf)",
    )
    b.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache",
    )
    b.add_argument(
        "--no-batch", action="store_true",
        help="disable single-pass group replay; compute every hit-ratio "
             "cell through the per-point golden path",
    )
    b.add_argument(
        "--out", default=".",
        help="directory for BENCH_<experiment>.json (default: .)",
    )
    b.add_argument(
        "--check-serial", action="store_true",
        help="also run serially and fail if the outputs diverge",
    )
    b.add_argument(
        "--show", action="store_true",
        help="print the experiment's figure/table report, not just timings",
    )
    b.add_argument("--errors", type=int, help="override: number of errors")
    b.add_argument("--seed", type=int, help="override: workload seed")
    b.add_argument("--sor-workers", type=int,
                   help="override: simulated SOR worker count")
    b.add_argument(
        "--cache-mbs", type=str,
        help="override: comma-separated cache sizes in MB (e.g. 8,16,32)",
    )

    t = sub.add_parser("trace", help="generate a partial-stripe-error trace file")
    t.add_argument("--code", default="tip", choices=available_codes())
    t.add_argument("--p", type=int, default=7)
    t.add_argument("--errors", type=int, default=100)
    t.add_argument("--seed", type=int, default=42)
    t.add_argument("--out", default="-", help="output path (default stdout)")

    i = sub.add_parser("info", help="describe a code layout")
    i.add_argument("--code", default="tip", choices=available_codes())
    i.add_argument("--p", type=int, default=5)

    r = sub.add_parser("replay", help="replay a trace file against all policies")
    r.add_argument("trace", help="trace file from the `trace` command")
    r.add_argument("--code", default="tip", choices=available_codes())
    r.add_argument("--p", type=int, default=7)
    r.add_argument("--blocks", type=int, default=64, help="total cache blocks")
    r.add_argument("--workers", type=int, default=8)

    m = sub.add_parser(
        "mttdl", help="reliability impact of a reconstruction-time improvement"
    )
    m.add_argument("--disks", type=int, default=8)
    m.add_argument("--mtbf-hours", type=float, default=1_000_000.0)
    m.add_argument("--baseline-hours", type=float, required=True,
                   help="repair time under the baseline policy")
    m.add_argument("--improved-hours", type=float, required=True,
                   help="repair time under FBF")

    lrc = sub.add_parser("lrc", help="FBF on LRC(k,l,g) — the footnote-3 extension")
    lrc.add_argument("--k", type=int, default=12)
    lrc.add_argument("--l", type=int, default=2)
    lrc.add_argument("--g", type=int, default=2)
    lrc.add_argument("--events", type=int, default=150)
    lrc.add_argument("--seed", type=int, default=17)
    lrc.add_argument("--blocks", type=str, default="8,16,32,64")

    v = sub.add_parser(
        "verify",
        help="payload-verified recovery across every code/p/scheme (correctness grid)",
    )
    v.add_argument("--errors", type=int, default=10)
    v.add_argument("--seed", type=int, default=7)

    rb = sub.add_parser("rebuild", help="whole-disk rebuild read savings (ref [22])")
    rb.add_argument("--code", default="tip", choices=available_codes())
    rb.add_argument("--p", type=int, default=11)
    rb.add_argument("--stripes", type=int, default=20)
    rb.add_argument("--workers", type=int, default=8)

    rep = sub.add_parser("report", help="regenerate every figure/table into a directory")
    rep.add_argument("--out", default="fbf-report", help="output directory")
    rep.add_argument("--quick", action="store_true")
    rep.add_argument("--errors", type=int)
    rep.add_argument("--workers", type=int)
    rep.add_argument("--seed", type=int)
    rep.add_argument("--cache-mbs", type=str)
    rep.add_argument(
        "--engine-workers", default="0",
        help="process-pool size for the sweeps: int, 0 = serial (default), "
             "or 'auto'",
    )
    rep.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache directory (default: off)",
    )

    c = sub.add_parser(
        "check",
        help="run simlint (domain static analysis) over source trees",
    )
    c.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    c.add_argument(
        "--select", type=str, default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    c.add_argument(
        "--list-rules", action="store_true",
        help="describe every rule and exit",
    )
    return parser


def _scale_from(args: argparse.Namespace) -> Scale:
    scale = QUICK if args.quick else FULL
    overrides = {}
    if args.errors is not None:
        overrides["n_errors"] = args.errors
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cache_mbs:
        overrides["cache_mbs"] = tuple(
            float(x) for x in args.cache_mbs.split(",") if x.strip()
        )
    return replace(scale, **overrides) if overrides else scale


def _bench_scale(args: argparse.Namespace) -> Scale:
    scale = QUICK if args.scale == "quick" else FULL
    overrides = {}
    if args.errors is not None:
        overrides["n_errors"] = args.errors
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.sor_workers is not None:
        overrides["workers"] = args.sor_workers
    if args.cache_mbs:
        overrides["cache_mbs"] = tuple(
            float(x) for x in args.cache_mbs.split(",") if x.strip()
        )
    return replace(scale, **overrides) if overrides else scale


_BENCH_METRICS = {
    "fig8": ("hit_ratio", "Figure 8: cache hit ratio", ".4f"),
    "fig9": ("disk_reads", "Figure 9: disk reads (TIP)", "d"),
    "fig10": ("avg_response_time", "Figure 10: average response time (s)", ".5f"),
    "fig11": ("reconstruction_time", "Figure 11: reconstruction time (s, TIP)", ".3f"),
    "ablation-scheme": ("hit_ratio", "Ablation: recovery scheme (hit ratio)", ".4f"),
    "ablation-demotion": ("hit_ratio", "Ablation: demotion on hit (hit ratio)", ".4f"),
}


def _run_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import (
        EngineConfig,
        bench_summary,
        default_cache_dir,
        experiment_grid,
        rows_equivalent,
        run_grid,
        write_bench_json,
    )

    scale = _bench_scale(args)
    workers: int | str = args.workers if args.workers == "auto" else int(args.workers)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    engine = EngineConfig(
        workers=workers, cache_dir=cache_dir, batch=not args.no_batch
    )
    names = list(EXPERIMENT_NAMES) if args.experiment == "all" else [args.experiment]

    divergent: list[str] = []
    for name in names:
        grid = experiment_grid(name, scale)
        result = run_grid(grid, engine)
        extra: dict[str, object] = {}
        if args.check_serial:
            serial = run_grid(
                grid, EngineConfig(workers=0, cache_dir=None, batch=False)
            )
            # Simulated metrics must match bit for bit; the measured
            # overhead columns legitimately vary (see DESIGN §9).
            identical = rows_equivalent(serial.points, result.points)
            extra["serial_identical"] = identical
            extra["serial_wall_s"] = serial.wall_s
            if not identical:
                divergent.append(name)
        print(bench_summary(name, args.scale, result))
        if args.check_serial:
            status = "DIVERGED" if name in divergent else "identical"
            print(f"{'serial check':>14} {status} "
                  f"(serial wall {extra['serial_wall_s']:.2f} s)")
        if args.show and name in _BENCH_METRICS:
            metric, title, spec = _BENCH_METRICS[name]
            print()
            print(figure_report(result.points, metric, title, spec))
        elif args.show and name == "table4":
            print()
            print(table4_report(result.points))
        path = write_bench_json(
            Path(args.out) / f"BENCH_{name.replace('-', '_')}.json",
            name,
            args.scale,
            result,
            extra,
        )
        print(f"{'bench json':>14} {path}")
        print()
    if divergent:
        print(f"parallel/serial outputs DIVERGED for: {', '.join(divergent)}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cmd = args.command

    if cmd == "info":
        layout = make_code(args.code, args.p)
        print(layout.description or layout.name)
        print(
            f"{layout.num_disks} disks, {layout.rows} rows, "
            f"{len(layout.data_cells)} data cells, "
            f"{len(layout.parity_cells)} parity cells, "
            f"{len(layout.chains)} chains"
        )
        print(layout.ascii_grid())
        return 0

    if cmd == "check":
        from .checks import run_check

        select = None
        if args.select:
            select = [part.strip() for part in args.select.split(",") if part.strip()]
        return run_check(args.paths, select=select, list_rules=args.list_rules)

    if cmd == "bench":
        return _run_bench(args)

    if cmd == "verify":
        from .sim import SimConfig, run_reconstruction

        failures = 0
        print(f"{'code':>12} {'p':>3} {'scheme':>8} {'chunks':>7} {'mismatch':>9}")
        for code in available_codes():
            for p in (5, 7):
                layout = make_code(code, p)
                errs = generate_errors(
                    layout, ErrorTraceConfig(n_errors=args.errors, seed=args.seed)
                )
                for scheme in ("typical", "fbf", "greedy"):
                    rep = run_reconstruction(
                        layout, errs,
                        SimConfig(workers=4, verify_payloads=True,
                                  scheme_mode=scheme),
                    )
                    ok = rep.payload_mismatches == 0
                    failures += not ok
                    print(f"{layout.name:>12} {p:>3} {scheme:>8} "
                          f"{rep.payload_chunks_verified:>7d} "
                          f"{rep.payload_mismatches:>9d}")
        print("\nall recoveries bit-exact ✓" if failures == 0
              else f"\n{failures} configurations FAILED verification")
        return 0 if failures == 0 else 1

    if cmd == "rebuild":
        from .sim import SimConfig, rebuild_read_savings, run_disk_rebuild

        layout = make_code(args.code, args.p)
        print(f"{layout.name} p={args.p}: per-stripe unique reads to rebuild each disk")
        print(f"{'disk':>5} {'typical':>8} {'greedy':>8} {'saved':>7}")
        for disk in range(layout.num_disks):
            s = rebuild_read_savings(layout, disk, "greedy")
            print(f"{disk:>5} {s.typical_unique_reads:>8} "
                  f"{s.scheme_unique_reads:>8} {s.read_reduction:>7.1%}")
        print(f"\ntimed rebuild of disk 0 ({args.stripes} stripes, "
              f"{args.workers} workers, FBF cache):")
        for scheme in ("typical", "greedy"):
            rep = run_disk_rebuild(
                layout, 0, args.stripes,
                SimConfig(workers=args.workers, scheme_mode=scheme),
            )
            print(f"  {scheme:8s} reads={rep.disk_reads:6d} "
                  f"time={rep.reconstruction_time:.3f}s")
        return 0

    if cmd == "report":
        from .bench import EngineConfig, write_full_report

        scale = _scale_from(args)
        workers: int | str = (
            args.engine_workers
            if args.engine_workers == "auto"
            else int(args.engine_workers)
        )
        engine = EngineConfig(workers=workers, cache_dir=args.cache_dir)
        paths = write_full_report(scale, args.out, engine)
        print(f"wrote {len(paths)} reports to {args.out}/")
        for path in paths:
            print(f"  {path.name}")
        return 0

    if cmd == "replay":
        from .cache.registry import available_policies
        from .engine import PlanCache, make_backend, simulate_trace
        from .workloads import read_trace

        backend = make_backend(args.code, args.p)
        errors = read_trace(args.trace)
        plans = PlanCache(backend)
        print(f"{len(errors)} errors from {args.trace}; {backend.code_label} "
              f"p={args.p}, {args.blocks} blocks over {args.workers} workers")
        print(f"{'policy':>8} {'hit ratio':>10} {'disk reads':>11}")
        for policy in sorted(available_policies()):
            res = simulate_trace(
                backend, errors, policy=policy,
                capacity_blocks=args.blocks, workers=args.workers,
                plan_cache=plans,
            )
            print(f"{policy:>8} {res.hit_ratio:>10.4f} {res.disk_reads:>11d}")
        return 0

    if cmd == "mttdl":
        from .analysis import wov_improvement

        cmp = wov_improvement(
            args.disks, args.mtbf_hours, args.baseline_hours, args.improved_hours
        )
        print(f"window of vulnerability: {args.baseline_hours:.3f}h -> "
              f"{args.improved_hours:.3f}h ({cmp.wov_reduction_percent:.1f}% smaller)")
        print(f"MTTDL: {cmp.baseline_mttdl_hours:.3e}h -> "
              f"{cmp.improved_mttdl_hours:.3e}h "
              f"({cmp.mttdl_gain_factor:.2f}x)")
        return 0

    if cmd == "lrc":
        from .engine import PlanCache, make_backend, simulate_trace

        backend = make_backend(f"lrc({args.k},{args.l},{args.g})")
        events = backend.generate_events(args.events, args.seed)
        plans = PlanCache(backend)
        blocks_list = [int(x) for x in args.blocks.split(",") if x.strip()]
        policies = ("fifo", "lru", "lfu", "arc", "fbf")
        print(f"{backend.code_label}: {len(events)} failure batches, 4 workers")
        print(f"{'blocks':>7} " + " ".join(f"{p:>8}" for p in policies))
        for blocks in blocks_list:
            row = [f"{blocks:>7}"]
            for policy in policies:
                res = simulate_trace(
                    backend, events, policy=policy, capacity_blocks=blocks,
                    workers=4, plan_cache=plans,
                )
                row.append(f"{res.hit_ratio:>8.4f}")
            print(" ".join(row))
        return 0

    if cmd == "trace":
        layout = make_code(args.code, args.p)
        errors = generate_errors(
            layout, ErrorTraceConfig(n_errors=args.errors, seed=args.seed)
        )
        meta = {"code": args.code, "p": str(args.p), "seed": str(args.seed)}
        if args.out == "-":
            write_trace(sys.stdout, errors, metadata=meta)
        else:
            write_trace(args.out, errors, metadata=meta)
            print(f"wrote {len(errors)} errors to {args.out}")
        return 0

    scale = _scale_from(args)
    if cmd == "fig8":
        print(figure_report(fig8_hit_ratio(scale), "hit_ratio",
                            "Figure 8: cache hit ratio during reconstruction"))
    elif cmd == "fig9":
        print(figure_report(fig9_read_ops(scale), "disk_reads",
                            "Figure 9: disk reads during reconstruction (TIP)", "d"))
    elif cmd == "fig10":
        print(figure_report(fig10_response_time(scale), "avg_response_time",
                            "Figure 10: average response time (s)", ".5f"))
    elif cmd == "fig11":
        print(figure_report(fig11_reconstruction_time(scale), "reconstruction_time",
                            "Figure 11: reconstruction time (s, TIP)", ".3f"))
    elif cmd == "table4":
        print(table4_report(table4_overhead(scale)))
    elif cmd == "table5":
        print(table5_report(table5_max_improvement(scale)))
    elif cmd == "ablation-scheme":
        print(figure_report(ablation_scheme(scale), "hit_ratio",
                            "Ablation: recovery scheme selection (hit ratio)"))
    elif cmd == "ablation-demotion":
        print(figure_report(ablation_demotion(scale), "hit_ratio",
                            "Ablation: demote-on-hit vs sticky (hit ratio)"))
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown command {cmd}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
