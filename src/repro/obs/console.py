"""The one sanctioned console funnel for library/CLI text output.

simlint's OBS001 rule forbids bare ``print()`` anywhere under
``src/repro``: scattered prints cannot be captured, redirected or
silenced coherently, and they bypass the observability layer entirely.
Everything user-facing routes through :func:`emit` instead — one
choke point that tests can point at a buffer and future exporters can
tee.
"""

from __future__ import annotations

import sys
from typing import TextIO

__all__ = ["emit"]


def emit(text: str = "", stream: TextIO | None = None) -> None:
    """Write one line of user-facing output (defaults to stdout).

    ``sys.stdout`` is resolved per call, not at import, so pytest's
    capture and ``contextlib.redirect_stdout`` both keep working.
    """
    out = stream if stream is not None else sys.stdout
    out.write(f"{text}\n")
