"""Exporters: JSON-lines (machine artifact) and Prometheus text format.

Both read a :class:`~repro.obs.metrics.MetricRegistry` snapshot, so they
can run after :func:`repro.obs.disable` — the CLI records a run, stops
the clock, then exports.

JSONL layout (one JSON object per line, ``type`` discriminates):

* ``meta`` — schema version and export wall time;
* ``counter`` / ``gauge`` / ``histogram`` — one per metric;
* ``span_summary`` — per-name aggregate (count / total_s / max_s);
* ``span`` — each raw span (bounded; ``meta.spans_dropped`` counts the
  overflow).

The Prometheus exporter emits the standard text exposition format with
metric names mangled ``repro_<name with [.-] -> _>``; histograms expand
to ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from .metrics import MetricRegistry

__all__ = [
    "write_jsonl",
    "to_prometheus",
    "write_prometheus",
    "prometheus_http_payload",
]

JSONL_SCHEMA = 1


def _finite(value: float) -> float | None:
    """JSON-safe float: inf/nan (empty-histogram min/max) become null."""
    return value if value == value and abs(value) != float("inf") else None


def jsonl_records(registry: MetricRegistry) -> list[dict[str, Any]]:
    """The JSONL document as a list of records (tests consume this)."""
    snap = registry.snapshot()
    records: list[dict[str, Any]] = [
        {
            "type": "meta",
            "schema": JSONL_SCHEMA,
            "exported_at": time.time(),
            "spans_dropped": snap["spans_dropped"],
        }
    ]
    for name, value in snap["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in snap["gauges"].items():
        records.append({"type": "gauge", "name": name, "value": value})
    for name, hist in snap["histograms"].items():
        records.append({"type": "histogram", "name": name, **hist})
    for name, agg in snap["spans"].items():
        records.append({"type": "span_summary", "name": name, **agg})
    for span in registry.spans:
        records.append(
            {
                "type": "span",
                "name": span.name,
                "start_s": span.start_s,
                "duration_s": span.duration_s,
                "attrs": span.attrs,
            }
        )
    return records


def write_jsonl(registry: MetricRegistry, path: str | Path) -> Path:
    """Write the registry as a JSON-lines artifact; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(record, sort_keys=True, default=_finite)
        for record in jsonl_records(registry)
    ]
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out


def _prom_name(name: str) -> str:
    mangled = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{mangled}"


def to_prometheus(registry: MetricRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snap["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, hist in snap["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {hist['sum']}")
        lines.append(f"{prom}_count {hist['count']}")
    # Span aggregates surface as synthetic counters so scrapers see them.
    for name, agg in snap["spans"].items():
        prom = _prom_name(f"span.{name}")
        lines.append(f"# TYPE {prom}_seconds_total counter")
        lines.append(f"{prom}_seconds_total {agg['total_s']}")
        lines.append(f"{prom}_count {agg['count']}")
    return "\n".join(lines) + "\n"


#: Content type of the Prometheus text exposition format, version 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_http_payload(registry: MetricRegistry | None) -> bytes:
    """A complete HTTP/1.1 ``200`` response carrying the scrape body.

    The serve layer's ``/metrics`` endpoint answers scrapes over a bare
    asyncio stream, so the whole response — status line, headers, body —
    is rendered here where the exposition format lives.  ``None`` (obs
    never enabled) yields an empty, still-valid exposition body.
    """
    body = (to_prometheus(registry) if registry is not None else "").encode(
        "utf-8"
    )
    head = (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {PROMETHEUS_CONTENT_TYPE}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


def write_prometheus(registry: MetricRegistry, path: str | Path) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(to_prometheus(registry), encoding="utf-8")
    return out
