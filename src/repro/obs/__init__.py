"""``repro.obs`` — zero-overhead-when-off observability (DESIGN.md §12).

Three pieces behind one switch:

* **metrics** (:mod:`~repro.obs.metrics`): ``__slots__``
  counter/gauge/histogram primitives in a :class:`MetricRegistry`, with
  a shared :data:`NULL_METRIC` no-op for the disabled path;
* **trace spans** (:meth:`MetricRegistry.span` via :func:`span`):
  perf-counter-timed phases with attributes, recorded through a context
  manager, instrumenting the DES kernel (event dispatch, resource
  waits), the unified engine (stream decode, grid replay, plan-cache
  churn) and the bench engine (per-point wall time, result-cache
  effectiveness, worker utilization);
* **exporters** (:mod:`~repro.obs.export`): JSON-lines and Prometheus
  text format, plus the ``repro-fbf obs`` CLI summary
  (:mod:`~repro.obs.summary`).

Typical use::

    from repro import obs

    registry = obs.enable(fresh=True)
    ...  # run simulations
    obs.disable()
    print_summary = obs.render_summary(registry.snapshot())

Set ``REPRO_OBS=1`` in the environment to enable collection at import
time (useful under the process-pool driver, where each worker decides
for itself).

The overhead contract: with obs **disabled** (the default), instrumented
hot paths pay one module-attribute truth test per coarse operation —
``repro.bench.replay_bench`` rows stay bit-identical and its aggregate
wall time stays within 2% of the committed baseline (the CI gate).
"""

from __future__ import annotations

import os

from .console import emit
from .export import to_prometheus, write_jsonl, write_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullMetric,
    Span,
)
from .runtime import (
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    registry,
    span,
)
from .summary import render_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullMetric",
    "NULL_METRIC",
    "Span",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "span",
    "enable",
    "disable",
    "enabled",
    "registry",
    "emit",
    "render_summary",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
]

if os.environ.get("REPRO_OBS", "").lower() in ("1", "true", "on", "yes"):
    enable()
