"""Metric primitives: ``__slots__`` counters/gauges/histograms + registry.

Instrumentation in this repo follows one rule: **the hot path pays only
when observability is on**.  Call sites never construct metrics inline;
they go through :mod:`repro.obs.runtime`, which hands back the shared
:data:`NULL_METRIC` / :data:`NULL_SPAN` singletons while disabled — every
update method on those is an empty function, so a mistakenly retained
handle stays harmless.  When enabled, handles resolve to real objects in
one :class:`MetricRegistry`, which the exporters
(:mod:`repro.obs.export`) and the ``repro-fbf obs`` summary read.

Metric names are dotted, ``<layer>.<subsystem>.<quantity>`` —
``kernel.events_dispatched``, ``engine.plan_cache.hits``,
``bench.point_seconds`` — so the summary can group by layer and the
Prometheus exporter can mangle deterministically (dots become
underscores under a ``repro_`` prefix).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullMetric",
    "NULL_METRIC",
    "Span",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
]

#: Log-spaced default histogram bounds (seconds); the overflow bucket is
#: implicit.  Suitable for both wall-clock phase times and virtual-time
#: resource waits, which span microseconds to minutes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A distribution over fixed bucket bounds (count/sum/min/max kept).

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot is
    the overflow bucket.  Bounds are cumulative ("le" semantics), so the
    Prometheus exporter can emit them directly.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the target bucket; observations in
        the overflow bucket resolve to the tracked exact maximum, and
        the first bucket interpolates up from the tracked minimum.
        Returns NaN while empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i == len(self.bounds):  # overflow bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[i])
                hi = self.bounds[i]
                frac = (rank - cumulative) / n
                # clamp to the tracked extremes: bucket bounds can
                # overshoot what was actually observed
                return min(self.max, max(self.min, lo + (hi - lo) * frac))
            cumulative += n
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p99": self.quantile(0.99) if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class NullMetric:
    """The disabled-path stand-in for every metric *and* span handle.

    One shared instance (:data:`NULL_METRIC`) answers every update method
    with a no-op and works as a no-op context manager, so instrumented
    code can hold a single handle type regardless of the obs state.
    """

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "NullMetric":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def __setitem__(self, key: str, value: Any) -> None:
        pass


NULL_METRIC = NullMetric()


class Span:
    """A timed phase: perf-counter duration plus free-form attributes.

    Spans are recorded through :meth:`MetricRegistry.span` as a context
    manager; ``span["key"] = value`` attaches attributes from inside the
    block.  The registry keeps a bounded raw list (for the JSONL export)
    and unbounded per-name aggregates (for the summary), so FULL-scale
    runs cannot grow memory without bound.
    """

    __slots__ = ("name", "attrs", "start_s", "duration_s", "_registry")

    def __init__(self, name: str, attrs: dict[str, Any], registry: "MetricRegistry"):
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.duration_s = 0.0
        self._registry = registry

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        from time import perf_counter

        self.start_s = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        from time import perf_counter

        self.duration_s = perf_counter() - self.start_s
        self._registry._record_span(self)


class MetricRegistry:
    """All metrics and spans of one observed run.

    Metric accessors are get-or-create and type-checked: asking for
    ``counter(name)`` after ``gauge(name)`` is a programming error and
    raises immediately rather than silently aliasing.
    """

    __slots__ = ("_metrics", "_spans", "_span_stats", "max_spans", "spans_dropped")

    def __init__(self, max_spans: int = 4096):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._spans: list[Span] = []
        self._span_stats: dict[str, list[float]] = {}  # name -> [count, total, max]
        self.max_spans = max_spans
        self.spans_dropped = 0

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def span(self, name: str, attrs: Mapping[str, Any] | None = None) -> Span:
        return Span(name, dict(attrs) if attrs else {}, self)

    def _record_span(self, span: Span) -> None:
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
        else:
            self.spans_dropped += 1
        stats = self._span_stats.get(span.name)
        if stats is None:
            self._span_stats[span.name] = [1, span.duration_s, span.duration_s]
        else:
            stats[0] += 1
            stats[1] += span.duration_s
            if span.duration_s > stats[2]:
                stats[2] = span.duration_s

    def metrics(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self._metrics.values()

    @property
    def spans(self) -> list[Span]:
        return self._spans

    def snapshot(self) -> dict[str, Any]:
        """Everything, as plain JSON-ready data (the exporters' input)."""
        counters: dict[str, int | float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                counters[metric.name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.snapshot()
            else:
                histograms[metric.name] = metric.snapshot()
        spans = {
            name: {"count": int(c), "total_s": t, "max_s": m}
            for name, (c, t, m) in sorted(self._span_stats.items())
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
            "spans": spans,
            "spans_dropped": self.spans_dropped,
        }
