"""The obs on/off switch and the module-level no-op fast path.

Instrumented modules import this module once and guard every update
behind the module global :data:`ENABLED`::

    from ..obs import runtime as _obs
    ...
    if _obs.ENABLED:
        _obs.counter("kernel.events_dispatched").inc(n)

With observability off (the default) that guard is one module-attribute
load and a falsy branch — no allocation, no dict lookup, no call — which
is what keeps the replay hot loops within the ≤2% overhead contract
(DESIGN.md §12).  Handle accessors (:func:`counter` & friends) return
the shared :data:`~repro.obs.metrics.NULL_METRIC` while disabled, so
even unguarded call sites degrade to cheap no-ops rather than breaking.

State is process-local by design: a ``ProcessPoolExecutor`` worker has
its own (disabled) copy, so pooled sweeps only observe driver-side
metrics.  The ``repro-fbf obs`` subcommand therefore runs in-process.
"""

from __future__ import annotations

from typing import Any, Mapping

from .metrics import NULL_METRIC, MetricRegistry, NullMetric, Span

__all__ = [
    "ENABLED",
    "enabled",
    "enable",
    "disable",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "span",
]

#: The fast-path flag.  Read directly (``_obs.ENABLED``) from hot code;
#: mutate only through :func:`enable` / :func:`disable`.
ENABLED: bool = False

_REGISTRY: MetricRegistry | None = None


def enabled() -> bool:
    """Is instrumentation currently recording?"""
    return ENABLED


def enable(fresh: bool = False, max_spans: int = 4096) -> MetricRegistry:
    """Turn instrumentation on; returns the active registry.

    ``fresh=True`` discards any previously collected metrics (the CLI
    does this so one ``repro-fbf obs`` invocation summarizes exactly one
    run); the default resumes the existing registry, letting callers
    accumulate across several simulations.
    """
    global ENABLED, _REGISTRY
    if fresh or _REGISTRY is None:
        _REGISTRY = MetricRegistry(max_spans=max_spans)
    ENABLED = True
    return _REGISTRY


def disable() -> None:
    """Stop recording.  The registry survives for export/summary."""
    global ENABLED
    ENABLED = False


def registry() -> MetricRegistry | None:
    """The active registry, or None if :func:`enable` was never called."""
    return _REGISTRY


def counter(name: str):
    """Counter handle — :data:`NULL_METRIC` while disabled."""
    if not ENABLED or _REGISTRY is None:
        return NULL_METRIC
    return _REGISTRY.counter(name)


def gauge(name: str):
    """Gauge handle — :data:`NULL_METRIC` while disabled."""
    if not ENABLED or _REGISTRY is None:
        return NULL_METRIC
    return _REGISTRY.gauge(name)


def histogram(name: str):
    """Histogram handle — :data:`NULL_METRIC` while disabled."""
    if not ENABLED or _REGISTRY is None:
        return NULL_METRIC
    return _REGISTRY.histogram(name)


def span(name: str, attrs: Mapping[str, Any] | None = None) -> Span | NullMetric:
    """A context-manager trace span — a shared no-op while disabled."""
    if not ENABLED or _REGISTRY is None:
        return NULL_METRIC
    return _REGISTRY.span(name, attrs)
