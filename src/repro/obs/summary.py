"""Human-readable rendering of an obs registry — ``repro-fbf obs``.

Metrics are grouped by their leading dotted segment into the layer
sections the acceptance contract names — kernel, engine, bench, cluster
— with any other prefix appended after.  The always-on layers (kernel,
engine, bench) print even with no data (a ``(no data)`` marker keeps a
missing instrumentation layer visible, not silent); ``cluster`` only
exists for topology-backed runs, so it renders only when populated.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_summary", "LAYER_ORDER"]

#: Section order; prefixes not listed here render afterwards, sorted.
LAYER_ORDER: tuple[str, ...] = ("kernel", "engine", "bench", "cluster", "serve")

#: Layers that print a ``(no data)`` section rather than being omitted.
_ALWAYS_ON: frozenset[str] = frozenset({"kernel", "engine", "bench"})


def _layer(name: str) -> str:
    return name.split(".", 1)[0]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_summary(snapshot: Mapping[str, Any]) -> str:
    """Render one registry snapshot as the layered text summary."""
    sections: dict[str, list[str]] = {}

    def add(name: str, text: str) -> None:
        sections.setdefault(_layer(name), []).append(text)

    for name, value in snapshot.get("counters", {}).items():
        add(name, f"  {name:<44} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        add(name, f"  {name:<44} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        mean = hist.get("mean", 0.0)
        peak = hist.get("max")
        p99 = hist.get("p99")
        add(
            name,
            f"  {name:<44} n={hist['count']} mean={_fmt(mean)}"
            + (f" p99={_fmt(p99)}" if p99 is not None else "")
            + (f" max={_fmt(peak)}" if peak is not None else ""),
        )
    for name, agg in snapshot.get("spans", {}).items():
        add(
            name,
            f"  {name:<44} spans={agg['count']} "
            f"total={_fmt(agg['total_s'])}s max={_fmt(agg['max_s'])}s",
        )

    ordered = list(LAYER_ORDER) + sorted(set(sections) - set(LAYER_ORDER))
    lines = ["== observability summary =="]
    for layer in ordered:
        rows = sections.get(layer)
        if not rows and layer not in _ALWAYS_ON:
            continue
        lines.append(f"[{layer}]")
        if rows:
            lines.extend(sorted(rows))
        else:
            lines.append("  (no data)")
    dropped = snapshot.get("spans_dropped", 0)
    if dropped:
        lines.append(f"({dropped} raw spans dropped beyond the retention cap)")
    return "\n".join(lines)
