"""Ingest edge: wire records in, bounded queue, shed-and-count overflow.

The serve loop is single-threaded asyncio, so the queue is a plain
deque — no locks — but its *bound* is the backpressure contract: a
producer that outruns the evaluator sees its overflow shed immediately
(counted under ``serve.ingest.shed``), never buffered without limit.
Slow-consumer memory is therefore capped by ``queue_limit`` regardless
of ingest rate, which is what lets the service run for weeks.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any

from ..obs import runtime as _obs
from ..workloads import PartialStripeError

__all__ = ["parse_record", "BoundedIngestQueue"]

_REQUIRED_FIELDS = ("time", "stripe", "disk", "start_row", "length")


def parse_record(line: str | bytes) -> PartialStripeError:
    """One JSON-lines wire record -> a validated event.

    Raises ``ValueError`` for anything malformed: bad JSON, a non-object
    payload, missing fields, or field values the event type rejects.
    """
    try:
        payload: Any = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON record: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"record must be a JSON object, got {type(payload).__name__}")
    missing = [f for f in _REQUIRED_FIELDS if f not in payload]
    if missing:
        raise ValueError(f"record missing fields: {', '.join(missing)}")
    try:
        return PartialStripeError(
            time=float(payload["time"]),
            stripe=int(payload["stripe"]),
            disk=int(payload["disk"]),
            start_row=int(payload["start_row"]),
            length=int(payload["length"]),
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid record values: {exc}") from None


class BoundedIngestQueue:
    """A shed-on-overflow event queue feeding the advisor's batch loop.

    ``push`` never blocks and never grows the queue past ``limit``: the
    newest event is dropped (shed) once the queue is full, and both
    accepted and shed totals are tracked (``serve.ingest.records`` /
    ``serve.ingest.shed`` when obs is enabled).  ``wait_for_data``
    parks the consumer until at least one event is queued.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._queue: deque[PartialStripeError] = deque()
        self.accepted = 0
        self.shed = 0
        self.invalid = 0
        self._data = asyncio.Event()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, event: PartialStripeError) -> bool:
        """Enqueue one event; returns False (and counts) when shed."""
        if len(self._queue) >= self.limit:
            self.shed += 1
            if _obs.ENABLED:
                _obs.counter("serve.ingest.shed").inc()
            return False
        self._queue.append(event)
        self.accepted += 1
        if _obs.ENABLED:
            _obs.counter("serve.ingest.records").inc()
            _obs.gauge("serve.queue.depth").set(len(self._queue))
        self._data.set()
        return True

    def push_line(self, line: str | bytes) -> bool:
        """Parse one wire record and enqueue it; invalid lines count."""
        try:
            event = parse_record(line)
        except ValueError:
            self.invalid += 1
            if _obs.ENABLED:
                _obs.counter("serve.ingest.invalid").inc()
            return False
        return self.push(event)

    def drain(self, max_items: int) -> list[PartialStripeError]:
        """Pop up to ``max_items`` events in FIFO order."""
        queue = self._queue
        batch = []
        while queue and len(batch) < max_items:
            batch.append(queue.popleft())
        if not queue:
            self._data.clear()
        if _obs.ENABLED:
            _obs.gauge("serve.queue.depth").set(len(queue))
        return batch

    async def wait_for_data(self, timeout: float | None = None) -> bool:
        """Await queued data; False on timeout with an empty queue."""
        if self._queue:
            return True
        try:
            if timeout is None:
                await self._data.wait()
            else:
                await asyncio.wait_for(self._data.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return bool(self._queue)
