"""End-to-end serve smoke: the CI job behind ``python -m repro.serve.smoke``.

Spins up a real :class:`~repro.serve.server.AdvisorServer` on loopback,
streams synthetic wire records at it over TCP, issues an ``advise``
query, scrapes ``/metrics`` over HTTP, then drains the server — and
fails (exit 1) if any of the always-on service's contracts broke:

* every streamed record must land (``shed == 0`` and no invalid lines);
* the served advice must equal, bit for bit, the offline winner of
  ``simulate_grid_pass`` over the same window — the recommendation is a
  replay, not an estimate;
* the Prometheus scrape must carry the ``serve.*`` series, including
  the ``serve.advise.latency`` histogram and its p99 gauge.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..engine.registry import make_backend
from ..engine.stream import ReplayConfig, simulate_grid_pass
from ..obs import emit
from ..utils import parse_size
from .advisor import pick_winner
from .config import ServeConfig
from .loadgen import SyntheticSource, record_lines
from .server import AdvisorServer

__all__ = ["smoke_config", "run_smoke", "main"]

#: Prometheus series the scrape must contain (mangled names).
REQUIRED_SERIES = (
    "repro_serve_ingest_records",
    "repro_serve_ingest_batches",
    "repro_serve_advise_latency_count",
    "repro_serve_advise_latency_p99",
)


def smoke_config() -> ServeConfig:
    """A small-window deployment that keeps the smoke run in seconds."""
    return ServeConfig(
        workers=4,
        cache_mbs=(2.0, 8.0, 32.0),
        window_events=96,
        batch_events=24,
        queue_limit=4096,
    )


async def _send_lines(port: int, text: str) -> None:
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(text.encode("utf-8"))
    await writer.drain()
    writer.close()
    await writer.wait_closed()


async def _query(port: int, request: dict) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(json.dumps(request).encode("utf-8") + b"\n")
    await writer.drain()
    line = await reader.readline()
    writer.close()
    await writer.wait_closed()
    return json.loads(line)


async def _scrape(port: int) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    text = raw.decode("utf-8")
    if "\r\n\r\n" not in text:
        raise AssertionError("metrics response carried no body")
    return text.split("\r\n\r\n", 1)[1]


async def _await_ingested(server: AdvisorServer, total: int, timeout: float) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while server.advisor.interner.events_seen < total:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"ingest stalled: {server.advisor.interner.events_seen}"
                f"/{total} events after {timeout}s"
            )
        await asyncio.sleep(0.05)


def _offline_winner(server: AdvisorServer) -> dict:
    """The advisor's answer, recomputed the offline way from scratch."""
    config = server.config
    backend = make_backend(config.code, config.p, scheme_mode=config.scheme_mode)
    block = parse_size(config.chunk_size)
    grid = [
        ReplayConfig(
            policy=policy,
            capacity_blocks=int(mb * 1024 * 1024) // block,
            workers=config.workers,
            hint=config.hint,
        )
        for policy in config.policies
        for mb in config.cache_mbs
    ]
    rows = simulate_grid_pass(backend, server.advisor.window_events(), grid)
    winner = pick_winner(rows)
    return {
        "policy": winner.policy,
        "capacity_blocks": winner.capacity_blocks,
        "hit_ratio": winner.hit_ratio,
    }


async def run_smoke(n_batches: int = 8, timeout: float = 30.0) -> dict:
    """Run the whole scenario; returns a report dict, raises on failure."""
    config = smoke_config()
    server = AdvisorServer(config)
    await server.start()
    failures: list[str] = []
    try:
        source = SyntheticSource(config.code, config.p, chunk=config.batch_events)
        total = 0
        for batch in source.batches(n_batches):
            await _send_lines(server.port, record_lines(batch))
            total += len(batch)
        await _await_ingested(server, total, timeout)

        answer = await _query(server.port, {"op": "advise"})
        if not answer.get("ok"):
            failures.append(f"advise failed: {answer}")
        advice = answer.get("advice", {})

        offline = _offline_winner(server)
        for field in ("policy", "capacity_blocks", "hit_ratio"):
            if advice.get(field) != offline[field]:
                failures.append(
                    f"served advice diverged from offline replay on "
                    f"{field}: {advice.get(field)!r} != {offline[field]!r}"
                )

        stats = (await _query(server.port, {"op": "stats"}))["stats"]
        if stats["shed"] != 0:
            failures.append(f"ingest shed {stats['shed']} records")
        if stats["invalid"] != 0:
            failures.append(f"{stats['invalid']} records failed to parse")
        if stats["events_seen"] != total:
            failures.append(
                f"events_seen {stats['events_seen']} != streamed {total}"
            )

        scrape = await _scrape(server.metrics_port)
        present = {
            line.split(" ")[0].split("{")[0]
            for line in scrape.splitlines()
            if line and not line.startswith("#")
        }
        for series in REQUIRED_SERIES:
            if series not in present:
                failures.append(f"/metrics missing series {series}")
        shed_lines = [
            line
            for line in scrape.splitlines()
            if line.startswith("repro_serve_ingest_shed ")
        ]
        if any(float(line.split()[1]) != 0 for line in shed_lines):
            failures.append(f"nonzero shed in scrape: {shed_lines}")
    finally:
        server.request_shutdown()
        await server.serve_forever()
    if failures:
        raise AssertionError("; ".join(failures))
    return {
        "streamed": total,
        "advice": advice,
        "offline": offline,
        "stats": stats,
        "series": sorted(s for s in present if s.startswith("repro_serve")),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="end-to-end smoke of the repro-fbf advisor service"
    )
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    try:
        report = asyncio.run(run_smoke(args.batches, args.timeout))
    except AssertionError as exc:
        emit(f"serve smoke FAILED: {exc}", stream=sys.stderr)
        return 1
    emit(json.dumps(report, indent=2, sort_keys=True))
    emit("serve smoke OK", stream=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
