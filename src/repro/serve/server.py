"""The always-on advisor service: asyncio ingest, query, and metrics.

One single-threaded event loop owns everything:

* a JSON-lines TCP endpoint where each line is either an ingest record
  (no ``"op"`` key — parsed into the bounded queue, overflow shed) or a
  query object (``{"op": "advise" | "stats" | "ping" | "shutdown"}``,
  answered with one JSON line);
* an optional stdin reader accepting the same wire records, so
  ``generator | repro-fbf serve --stdin`` works without a socket;
* a batch loop draining the queue ``batch_events`` at a time into the
  :class:`~repro.serve.advisor.CacheAdvisor`, checkpointing every
  ``checkpoint_every`` batches;
* a bare-bones HTTP responder serving the Prometheus scrape at
  ``/metrics``.

Shutdown (``SIGTERM``/``SIGINT``/the ``shutdown`` op) is a graceful
drain: listeners stop accepting, every event already queued is batched
into the advisor, a final checkpoint lands, and only then does
:meth:`AdvisorServer.serve_forever` return.  Nothing accepted is ever
dropped by shutdown — only queue overflow sheds, and that is counted.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Sequence

from ..obs import runtime as _obs
from ..obs.export import prometheus_http_payload
from ..workloads import PartialStripeError
from .advisor import CacheAdvisor
from .checkpoint import restore_advisor, write_checkpoint
from .config import ArraySpec, ServeConfig
from .ingest import BoundedIngestQueue

__all__ = ["AdvisorServer"]

_IDLE_TICK = 0.2  # seconds between shutdown checks while the queue is idle


class AdvisorServer:
    """The serve loop: sockets and signals outside, one advisor inside."""

    def __init__(
        self,
        config: ServeConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = 0,
        pool=None,
        read_stdin: bool = False,
    ):
        self.config = config
        self.host = host
        self._want_port = port
        self._want_metrics_port = metrics_port
        self.read_stdin = read_stdin
        self.queue = BoundedIngestQueue(config.queue_limit)
        restored = (
            restore_advisor(config, config.checkpoint_path, pool=pool)
            if config.checkpoint_path
            else None
        )
        self.resumed = restored is not None
        self.advisor = restored or CacheAdvisor(config, pool=pool)
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._stop = asyncio.Event()
        self._drained = asyncio.Event()
        self._batches_since_checkpoint = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int | None:
        """The bound query/ingest port (None before :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind listeners, install signal handlers, start the batch loop."""
        if not _obs.enabled():
            _obs.enable()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._want_port
        )
        if self._want_metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, self._want_metrics_port
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break  # platform without unix signal support
        self._tasks.append(asyncio.ensure_future(self._batch_loop()))
        if self.read_stdin:
            self._tasks.append(asyncio.ensure_future(self._stdin_loop()))
        if _obs.ENABLED:
            _obs.gauge("serve.up").set(1)

    def request_shutdown(self) -> None:
        """Begin the graceful drain; idempotent, safe from a signal."""
        self._stop.set()

    async def serve_forever(self) -> None:
        """Block until a shutdown request, then drain and close."""
        await self._stop.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        # Stop accepting before draining, so the drain has a fixed end.
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
        await self._drained.wait()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for server in (self._server, self._metrics_server):
            if server is not None:
                try:
                    await server.wait_closed()
                except Exception:  # pragma: no cover
                    pass
        if self.config.checkpoint_path:
            write_checkpoint(self.config.checkpoint_path, self.advisor)
        if _obs.ENABLED:
            _obs.gauge("serve.up").set(0)

    # -- ingest plumbing ----------------------------------------------------

    def feed(self, events: Sequence[PartialStripeError]) -> int:
        """Push events straight into the queue (loadgen path); returns
        how many were accepted before overflow shed the rest."""
        accepted = 0
        for event in events:
            if self.queue.push(event):
                accepted += 1
        return accepted

    async def _batch_loop(self) -> None:
        config = self.config
        while True:
            if self._stop.is_set() and not len(self.queue):
                break
            got = await self.queue.wait_for_data(timeout=_IDLE_TICK)
            if not got:
                continue
            batch = self.queue.drain(config.batch_events)
            if not batch:
                continue
            self.advisor.ingest(batch)
            self._batches_since_checkpoint += 1
            if (
                config.checkpoint_path
                and config.checkpoint_every
                and self._batches_since_checkpoint >= config.checkpoint_every
            ):
                write_checkpoint(config.checkpoint_path, self.advisor)
                self._batches_since_checkpoint = 0
        self._drained.set()

    async def _stdin_loop(self) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(lambda: protocol, sys.stdin)
        while not self._stop.is_set():
            line = await reader.readline()
            if not line:
                self.request_shutdown()  # EOF on the pipe ends the stream
                break
            if line.strip():
                self.queue.push_line(line)

    # -- the wire -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                op = self._peek_op(line)
                if op is None:
                    self.queue.push_line(line)
                    continue
                response = self._answer(op)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                if op.get("op") == "shutdown":
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    @staticmethod
    def _peek_op(line: bytes) -> dict | None:
        """A query line is a JSON object carrying ``"op"``; anything else
        (including malformed JSON) is treated as an ingest record so the
        invalid counter — not a protocol error — absorbs garbage."""
        if b'"op"' not in line:
            return None
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        if isinstance(payload, dict) and "op" in payload:
            return payload
        return None

    def _answer(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "advise":
                spec = ArraySpec(
                    code=request.get("code", self.config.code),
                    p=int(request.get("p", self.config.p)),
                    workers=(
                        int(request["workers"])
                        if request.get("workers") is not None
                        else None
                    ),
                )
                return {"ok": True, "op": op, "advice": self.advisor.advise(spec).to_dict()}
            if op == "stats":
                return {"ok": True, "op": op, "stats": self.stats()}
            if op == "shutdown":
                self.request_shutdown()
                return {"ok": True, "op": op}
            return {"ok": False, "error": f"unknown op: {op!r}"}
        except ValueError as exc:
            return {"ok": False, "op": op, "error": str(exc)}

    def stats(self) -> dict:
        start, stop = self.advisor.window_bounds()
        return {
            "accepted": self.queue.accepted,
            "shed": self.queue.shed,
            "invalid": self.queue.invalid,
            "queued": len(self.queue),
            "batches": self.advisor.batches,
            "evaluations": self.advisor.evaluations,
            "out_of_order": self.advisor.out_of_order,
            "events_seen": self.advisor.interner.events_seen,
            "window": [start, stop],
            "n_blocks": self.advisor.interner.n_blocks,
            "resumed": self.resumed,
        }

    # -- metrics scrape -----------------------------------------------------

    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await reader.readline()  # request line; path is ignored
            writer.write(prometheus_http_payload(_obs.registry()))
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
