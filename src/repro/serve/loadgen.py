"""Deterministic synthetic load for the advisor service.

The generator replays the same field-calibrated partial-stripe-error
model the offline experiments use (:func:`repro.workloads.generate_errors`)
in *chunks*, re-stamping arrival times so the concatenated stream stays
strictly time-monotone — the ordering contract the advisor's incremental
interner relies on.  Chunk ``i`` draws from seed ``seed + i``, so any
prefix of the stream is a pure function of ``(layout, seed)`` and a
restarted generator reproduces it bit for bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Sequence

from ..codes.registry import make_code
from ..workloads import ErrorTraceConfig, PartialStripeError, generate_errors

__all__ = ["SyntheticSource", "records_for", "record_lines"]


class SyntheticSource:
    """An endless, deterministic stream of partial-stripe-error batches."""

    def __init__(
        self,
        code: str = "tip",
        p: int = 7,
        seed: int = 42,
        chunk: int = 48,
        gap: float = 1.0,
    ):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if gap <= 0:
            raise ValueError(f"gap must be > 0, got {gap}")
        self.layout = make_code(code, p)
        self.seed = seed
        self.chunk = chunk
        self.gap = gap
        self._chunk_index = 0
        self._clock = 0.0

    def next_batch(self) -> list[PartialStripeError]:
        """The next ``chunk`` events, strictly after every prior event."""
        raw = generate_errors(
            self.layout,
            ErrorTraceConfig(
                n_errors=self.chunk, seed=self.seed + self._chunk_index
            ),
        )
        base = self._clock
        first = raw[0].time if raw else 0.0
        batch = [
            replace(e, time=base + self.gap + (e.time - first)) for e in raw
        ]
        if batch:
            self._clock = batch[-1].time
        self._chunk_index += 1
        return batch

    def batches(self, n_batches: int | None = None) -> Iterator[list[PartialStripeError]]:
        """Yield batches forever (or ``n_batches`` of them)."""
        produced = 0
        while n_batches is None or produced < n_batches:
            yield self.next_batch()
            produced += 1


def records_for(events: Sequence[PartialStripeError]) -> list[dict]:
    """Events as JSON-able ingest records (the wire schema)."""
    return [
        {
            "time": e.time,
            "stripe": e.stripe,
            "disk": e.disk,
            "start_row": e.start_row,
            "length": e.length,
        }
        for e in events
    ]


def record_lines(events: Sequence[PartialStripeError]) -> str:
    """Events as JSON-lines text, ready to pipe into ``repro-fbf serve``."""
    import json

    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records_for(events))
