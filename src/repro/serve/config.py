"""Typed request/result contracts of the cache-advisor service.

Everything the serve layer exchanges — with its operator (via
:class:`ServeConfig`), with its clients (:class:`ArraySpec` in,
:class:`Advice` out) — is a frozen dataclass validated at construction,
so a malformed deployment or query fails loudly at the edge instead of
deep inside an asyncio task.  The same types are re-exported as the
``repro.api.v2.serve`` namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServeConfig", "ArraySpec", "Advice"]

#: Default candidate policies the advisor races against each other.
DEFAULT_POLICIES: tuple[str, ...] = ("fifo", "lru", "lfu", "arc", "fbf")

#: Default candidate cache capacities (MB), the QUICK-scale axis.
DEFAULT_CACHE_MBS: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class ServeConfig:
    """One advisor deployment: the array it serves and its serving knobs.

    The simulation vocabulary matches the bench layer (``workers`` is
    the *simulated* SOR worker count; ``chunk_size`` converts MB to
    block counts).  The serving knobs bound every resource the always-on
    loop consumes: ``queue_limit`` caps the ingest queue (overflow is
    shed and counted, never buffered), ``window_events`` caps the replay
    window, and ``compact_factor`` caps the interner's retained log at
    ``compact_factor * window_events`` before it is rebased.
    """

    # -- the served array ---------------------------------------------------
    code: str = "tip"
    p: int = 7
    scheme_mode: str = "fbf"
    hint: str = "priority"
    workers: int = 32  #: simulated SOR worker count per evaluation

    # -- the candidate grid -------------------------------------------------
    policies: tuple[str, ...] = DEFAULT_POLICIES
    cache_mbs: tuple[float, ...] = DEFAULT_CACHE_MBS
    chunk_size: str = "32KB"

    # -- serving knobs ------------------------------------------------------
    window_events: int = 192  #: sliding evaluation window (events)
    batch_events: int = 24  #: ingest batch size between evaluations
    queue_limit: int = 1024  #: bounded ingest queue; overflow is shed
    compact_factor: int = 4  #: retained log cap, in windows
    checkpoint_path: str | None = None
    checkpoint_every: int = 8  #: batches between checkpoints (0 = final only)

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("policies must not be empty")
        if not self.cache_mbs:
            raise ValueError("cache_mbs must not be empty")
        if any(mb <= 0 for mb in self.cache_mbs):
            raise ValueError(f"cache_mbs must be positive, got {self.cache_mbs}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.window_events < 1:
            raise ValueError(
                f"window_events must be >= 1, got {self.window_events}"
            )
        if self.batch_events < 1:
            raise ValueError(f"batch_events must be >= 1, got {self.batch_events}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.compact_factor < 2:
            raise ValueError(
                f"compact_factor must be >= 2 (the window must fit), "
                f"got {self.compact_factor}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    def fingerprint(self) -> dict:
        """The simulation-relevant identity a checkpoint must match.

        Serving knobs (queue sizes, checkpoint cadence) may change across
        a restart without invalidating replay state; the array, the
        candidate grid and the window geometry may not.
        """
        return {
            "code": self.code,
            "p": self.p,
            "scheme_mode": self.scheme_mode,
            "hint": self.hint,
            "workers": self.workers,
            "policies": list(self.policies),
            "cache_mbs": list(self.cache_mbs),
            "chunk_size": self.chunk_size,
            "window_events": self.window_events,
        }


@dataclass(frozen=True)
class ArraySpec:
    """An ``advise`` query: which array is asking, and at what fan-out.

    ``code``/``p`` must match the deployment (the advisor's window was
    replayed against that array's recovery plans; advice for a different
    geometry would be fabricated).  ``workers`` may override the
    deployment default — the window is then re-evaluated at that SOR
    fan-out.
    """

    code: str = "tip"
    p: int = 7
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class Advice:
    """The advisor's answer: run this policy at this capacity.

    ``confidence`` is deterministic in the window state:
    ``fill * (1 - 1 / (1 + 100 * lead))`` where ``fill`` is the observed
    fraction of a full window and ``lead`` is the winner's hit-ratio
    margin over the runner-up — 0 when the top candidates tie, saturating
    toward ``fill`` as the lead widens.
    """

    policy: str
    cache_mb: float
    capacity_blocks: int
    hit_ratio: float
    confidence: float
    window_events: int  #: events actually in the evaluated window
    window_start: int  #: log position of the window's first event
    evaluated: int  #: candidate (policy x capacity) rows ranked
    workers: int  #: SOR fan-out the evaluation used

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)
