"""The cache advisor: a sliding-window grid replay answering ``advise``.

The advisor owns a :class:`~repro.engine.stream.StreamInterner` over the
live event log and a candidate (policy x capacity) grid.  Each query
replays the most recent ``window_events`` events through
:func:`~repro.engine.stream.simulate_grid_pass` — the *same* function,
on the same interned representation, that the offline bench engine uses
— so an advisor recommendation is bit-for-bit the offline winner for
that window: ``simulate_grid_pass(backend, window, configs)`` offline
and :meth:`CacheAdvisor.evaluate` return identical rows, and
:func:`pick_winner` is the single ranking both sides share.

Evaluations are memoized per window position, so a burst of ``advise``
queries between ingest batches costs one replay.  With an
:class:`~repro.bench.engine.EnginePool`, the candidate grid is sharded
across pool workers (row-identical: every cell is an independent
deterministic replay); without one, the whole grid rides a single
interned pass in-process.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..engine.registry import make_backend
from ..engine.stream import ReplayConfig, StreamInterner, simulate_grid_pass
from ..engine.tracesim import TraceSimResult
from ..obs import runtime as _obs
from ..utils import parse_size
from ..workloads import PartialStripeError
from .config import Advice, ArraySpec, ServeConfig

__all__ = ["CacheAdvisor", "pick_winner"]


def pick_winner(rows: Sequence[TraceSimResult]) -> TraceSimResult:
    """The canonical ranking: best hit ratio, cheapest capacity, name.

    Shared by the advisor and the offline comparison in tests — the
    acceptance contract is that both rank *identical* rows, so the rule
    lives in exactly one place.
    """
    if not rows:
        raise ValueError("cannot pick a winner from zero rows")
    return min(
        rows, key=lambda r: (-r.hit_ratio, r.capacity_blocks, r.policy)
    )


def _confidence(fill: float, lead: float) -> float:
    """``fill * (1 - 1/(1 + 100*lead))`` — see :class:`Advice`."""
    return fill * (1.0 - 1.0 / (1.0 + 100.0 * max(lead, 0.0)))


def _evaluate_shard(payload: tuple) -> list[dict]:
    """Pool entry point: replay one shard of the candidate grid.

    Backends and plan caches come from the bench engine's per-process
    memos, so a long-lived :class:`~repro.bench.engine.EnginePool`
    worker pays the setup once across every window it evaluates.  Rows
    travel back as dicts (dataclass fields), keeping the payload plain.
    """
    from dataclasses import asdict

    from ..bench.engine import _backend_for, _plans_for

    code, p, scheme_mode, hint, records, specs = payload
    backend = _backend_for(code, p, scheme_mode)
    events = [PartialStripeError(**r) for r in records]
    configs = [
        ReplayConfig(
            policy=policy, capacity_blocks=capacity, workers=workers, hint=hint
        )
        for policy, capacity, workers in specs
    ]
    rows = simulate_grid_pass(
        backend, events, configs, plan_cache=_plans_for(code, p, scheme_mode)
    )
    return [asdict(row) for row in rows]


class CacheAdvisor:
    """Sliding-window policy/capacity advisor for one array deployment."""

    def __init__(self, config: ServeConfig, pool=None):
        self.config = config
        self.pool = pool
        self.backend = make_backend(
            config.code, config.p, scheme_mode=config.scheme_mode
        )
        self.interner = StreamInterner(self.backend, hint=config.hint)
        self.block_size = parse_size(config.chunk_size)
        # Eager validation: every candidate capacity must give each SOR
        # worker at least one block, or evaluation would raise later.
        for mb in config.cache_mbs:
            blocks = self._blocks(mb)
            if 0 < blocks < config.workers:
                raise ValueError(
                    f"cache_mb={mb} is {blocks} blocks — fewer than "
                    f"workers={config.workers}; every SOR worker needs a "
                    "non-empty slice"
                )
        self.batches = 0
        self.evaluations = 0
        self.out_of_order = 0
        self._grids: dict[int, list[ReplayConfig]] = {}
        self._memo: tuple[tuple[int, int, int], list[TraceSimResult]] | None = None

    # -- geometry -----------------------------------------------------------

    def _blocks(self, cache_mb: float) -> int:
        return int(cache_mb * 1024 * 1024) // self.block_size

    def grid(self, workers: int) -> list[ReplayConfig]:
        """The candidate grid at one SOR fan-out (memoized)."""
        cached = self._grids.get(workers)
        if cached is None:
            cached = self._grids[workers] = [
                ReplayConfig(
                    policy=policy,
                    capacity_blocks=self._blocks(mb),
                    workers=workers,
                    hint=self.config.hint,
                )
                for policy in self.config.policies
                for mb in self.config.cache_mbs
            ]
        return cached

    def window_bounds(self) -> tuple[int, int]:
        """Current evaluation window as ``[start, stop)`` log positions."""
        stop = self.interner.events_seen
        start = max(
            self.interner.first_event, stop - self.config.window_events
        )
        return start, stop

    def window_events(self) -> list[PartialStripeError]:
        """The events the next evaluation will replay (offline comparator)."""
        start, stop = self.window_bounds()
        return self.interner.events_slice(start, stop)

    # -- ingest -------------------------------------------------------------

    def ingest(self, events: Sequence[PartialStripeError]) -> int:
        """Append one batch (sorted); returns how many events landed.

        Batches are sorted before interning; an event older than the
        retained log's tail is counted (``out_of_order``) but still
        accepted in arrival position — replay order is arrival order.
        """
        batch = sorted(events)
        if not batch:
            return 0
        tail = self.interner.events_slice(
            max(self.interner.events_seen - 1, self.interner.first_event)
        )
        if tail and batch[0] < tail[-1]:
            self.out_of_order += 1
            if _obs.ENABLED:
                _obs.counter("serve.ingest.out_of_order").inc()
        n = self.interner.extend(batch)
        self.batches += 1
        self._memo = None
        cap = self.config.compact_factor * self.config.window_events
        if self.interner.events_seen - self.interner.first_event > cap:
            self.interner.compact(self.config.window_events)
        if _obs.ENABLED:
            start, stop = self.window_bounds()
            _obs.counter("serve.ingest.batches").inc()
            _obs.gauge("serve.window.events").set(stop - start)
            _obs.gauge("serve.window.blocks").set(self.interner.n_blocks)
        return n

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, workers: int | None = None) -> list[TraceSimResult]:
        """Replay the current window over the candidate grid.

        Returns one row per grid cell, bit-for-bit equal to the offline
        ``simulate_grid_pass(backend, window_events(), grid(workers))``.
        Memoized until the next ingest batch moves the window.
        """
        workers = workers if workers is not None else self.config.workers
        start, stop = self.window_bounds()
        key = (start, stop, workers)
        if self._memo is not None and self._memo[0] == key:
            return self._memo[1]
        configs = self.grid(workers)
        t0 = time.perf_counter()
        if self.pool is not None and self.pool.resolved_workers() > 1:
            rows = self._evaluate_pooled(start, stop, workers, configs)
        else:
            rows = simulate_grid_pass(
                self.backend,
                self.interner.events_slice(start, stop),
                configs,
                plan_cache=self.interner.plan_cache,
                stream=self.interner.window(start, stop),
            )
        self.evaluations += 1
        self._memo = (key, rows)
        if _obs.ENABLED:
            _obs.counter("serve.evaluate.count").inc()
            _obs.histogram("serve.evaluate.seconds").observe(
                time.perf_counter() - t0
            )
        return rows

    def _evaluate_pooled(
        self, start: int, stop: int, workers: int, configs: list[ReplayConfig]
    ) -> list[TraceSimResult]:
        """Shard the grid across the engine pool; row order preserved."""
        from .loadgen import records_for

        n_shards = min(self.pool.resolved_workers(), len(configs))
        records = records_for(self.interner.events_slice(start, stop))
        shards: list[list[tuple]] = [[] for _ in range(n_shards)]
        for i, config in enumerate(configs):
            shards[i % n_shards].append(
                (config.policy, config.capacity_blocks, config.workers)
            )
        payloads = [
            (
                self.config.code,
                self.config.p,
                self.config.scheme_mode,
                self.config.hint,
                records,
                shard,
            )
            for shard in shards
        ]
        shard_rows = list(self.pool.map(_evaluate_shard, payloads))
        rows: list[TraceSimResult | None] = [None] * len(configs)
        for s, result in enumerate(shard_rows):
            for j, row in enumerate(result):
                rows[s + j * n_shards] = TraceSimResult(**row)
        return [row for row in rows if row is not None]

    # -- the query ----------------------------------------------------------

    def advise(self, spec: ArraySpec | None = None) -> Advice:
        """Answer "what policy/capacity should this array run?"."""
        t0 = time.perf_counter()
        if spec is None:
            spec = ArraySpec(code=self.config.code, p=self.config.p)
        if spec.code != self.config.code or spec.p != self.config.p:
            raise ValueError(
                f"advisor serves {self.config.code} p={self.config.p}, "
                f"not {spec.code} p={spec.p}"
            )
        workers = spec.workers if spec.workers is not None else self.config.workers
        rows = self.evaluate(workers)
        winner = pick_winner(rows)
        runners = [r.hit_ratio for r in rows if r is not winner]
        lead = winner.hit_ratio - max(runners) if runners else winner.hit_ratio
        start, stop = self.window_bounds()
        fill = min(1.0, (stop - start) / self.config.window_events)
        advice = Advice(
            policy=winner.policy,
            cache_mb=winner.capacity_blocks * self.block_size / (1024 * 1024),
            capacity_blocks=winner.capacity_blocks,
            hit_ratio=winner.hit_ratio,
            confidence=_confidence(fill, lead),
            window_events=stop - start,
            window_start=start,
            evaluated=len(rows),
            workers=winner.workers,
        )
        if _obs.ENABLED:
            latency = time.perf_counter() - t0
            _obs.counter("serve.advise.count").inc()
            hist = _obs.histogram("serve.advise.latency")
            hist.observe(latency)
            p99 = hist.quantile(0.99)
            if p99 == p99:  # skip the empty-histogram NaN
                _obs.gauge("serve.advise.latency.p99").set(p99)
        return advice

    # -- checkpoint payload ---------------------------------------------------

    def state(self) -> dict:
        """Replay state for checkpointing (events + counters + positions)."""
        from .loadgen import records_for

        return {
            "fingerprint": self.config.fingerprint(),
            "dropped": self.interner.first_event,
            "events": records_for(
                self.interner.events_slice(self.interner.first_event)
            ),
            "batches": self.batches,
            "evaluations": self.evaluations,
            "out_of_order": self.out_of_order,
        }

    @classmethod
    def from_state(
        cls, config: ServeConfig, state: dict, pool=None
    ) -> "CacheAdvisor":
        """Rebuild an advisor whose replay state matches the checkpoint.

        Re-interning the retained events reproduces the interner arrays
        bit for bit (interning is a pure function of the event sequence,
        and ``compact`` leaves exactly the state a fresh interner fed the
        suffix would hold), so a restored advisor's next evaluation
        equals the pre-crash one.
        """
        if state.get("fingerprint") != config.fingerprint():
            raise ValueError(
                "checkpoint fingerprint does not match this ServeConfig; "
                "refusing to resume replay state for a different deployment"
            )
        advisor = cls(config, pool=pool)
        events = [PartialStripeError(**r) for r in state.get("events", ())]
        advisor.interner.extend(events)
        advisor.interner._dropped = int(state.get("dropped", 0))
        advisor.batches = int(state.get("batches", 0))
        advisor.evaluations = int(state.get("evaluations", 0))
        advisor.out_of_order = int(state.get("out_of_order", 0))
        return advisor
