"""``repro.serve`` — the always-on cache-advisor service.

The serving counterpart to the offline bench engine: an asyncio front
end that ingests partial-stripe-error streams (JSON lines over TCP or
stdin, or the deterministic synthetic generator), replays a sliding
window of them across a candidate policy x capacity grid with
:func:`~repro.engine.stream.simulate_grid_pass`, and answers
``advise(array_spec)`` queries whose recommendation is bit-for-bit the
offline winner for that window.  Backpressure is shed-and-count at a
bounded queue, state checkpoints atomically, and shutdown drains.

Public surface (re-exported as ``repro.api.v2.serve``):

* :class:`ServeConfig` / :class:`ArraySpec` / :class:`Advice` — the
  typed contracts;
* :class:`CacheAdvisor` / :func:`pick_winner` — the sliding-window
  evaluator and the canonical ranking;
* :class:`AdvisorServer` — the asyncio service;
* :class:`BoundedIngestQueue` / :func:`parse_record` — the ingest edge;
* :class:`SyntheticSource` / :func:`record_lines` — deterministic load;
* :func:`write_checkpoint` / :func:`load_checkpoint` /
  :func:`restore_advisor` — durability.
"""

from .advisor import CacheAdvisor, pick_winner
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    load_checkpoint,
    restore_advisor,
    write_checkpoint,
)
from .config import DEFAULT_CACHE_MBS, DEFAULT_POLICIES, Advice, ArraySpec, ServeConfig
from .ingest import BoundedIngestQueue, parse_record
from .loadgen import SyntheticSource, record_lines, records_for
from .server import AdvisorServer

__all__ = [
    "ServeConfig",
    "ArraySpec",
    "Advice",
    "DEFAULT_POLICIES",
    "DEFAULT_CACHE_MBS",
    "CacheAdvisor",
    "pick_winner",
    "AdvisorServer",
    "BoundedIngestQueue",
    "parse_record",
    "SyntheticSource",
    "records_for",
    "record_lines",
    "CHECKPOINT_SCHEMA",
    "write_checkpoint",
    "load_checkpoint",
    "restore_advisor",
]
