"""Durable advisor state: atomic JSON checkpoints, fingerprint-gated.

A checkpoint is the advisor's retained event log plus counters and the
deployment fingerprint, written atomically (temp file + ``os.replace``
in the same directory) so a crash mid-write leaves the previous
checkpoint intact.  Restoring replays the retained events through a
fresh interner — interning is a pure function of the event sequence, so
the restored advisor's next evaluation is bit-identical to what the
pre-crash process would have produced.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..obs import runtime as _obs
from .advisor import CacheAdvisor
from .config import ServeConfig

__all__ = [
    "CHECKPOINT_SCHEMA",
    "write_checkpoint",
    "load_checkpoint",
    "restore_advisor",
]

#: Bump when the checkpoint payload shape changes; loaders reject others.
CHECKPOINT_SCHEMA = 1


def write_checkpoint(path: str | Path, advisor: CacheAdvisor) -> Path:
    """Atomically persist the advisor's replay state; returns the path."""
    path = Path(path)
    payload = {"schema": CHECKPOINT_SCHEMA, "state": advisor.state()}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if _obs.ENABLED:
        _obs.counter("serve.checkpoint.writes").inc()
        _obs.gauge("serve.checkpoint.bytes").set(len(text))
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read and validate one checkpoint payload; raises ``ValueError``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt checkpoint {path}: {exc}") from None
    if not isinstance(payload, dict) or "state" not in payload:
        raise ValueError(f"corrupt checkpoint {path}: missing state")
    schema = payload.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"checkpoint {path} has schema {schema!r}; "
            f"this build reads schema {CHECKPOINT_SCHEMA}"
        )
    return payload["state"]


def restore_advisor(
    config: ServeConfig, path: str | Path, pool=None
) -> CacheAdvisor | None:
    """Resume from ``path`` if it exists; None means start fresh.

    A present-but-incompatible checkpoint (corrupt, wrong schema, or a
    fingerprint for a different deployment) raises rather than silently
    discarding replay state — the operator chose durability, so losing
    it should be loud.
    """
    path = Path(path)
    if not path.exists():
        return None
    state = load_checkpoint(path)
    advisor = CacheAdvisor.from_state(config, state, pool=pool)
    if _obs.ENABLED:
        _obs.counter("serve.checkpoint.restores").inc()
    return advisor
