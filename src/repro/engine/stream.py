"""Interned request streams and the single-pass grid replay.

The hit-ratio grids (Figures 8/9, the ablations, the LRC footnote) sweep
many (policy x capacity x workers) configurations over the *same*
recovery request stream.  Per-point :func:`~repro.engine.tracesim.
simulate_trace` decodes that stream from scratch every time: plan lookup
per event, ``(stripe, unit)`` tuple build per request, nested-tuple
hashing inside every policy dict.  This module decodes **once**:

* :func:`intern_stream` materializes ``event -> plan -> (unit, hint)``
  into an :class:`InternedStream` — block keys mapped to dense ints in
  first-seen order, hints in a parallel array — reusing the shared
  :class:`~repro.engine.tracesim.PlanCache`;
* :func:`simulate_grid_pass` steps every configuration over the decoded
  stream and returns the same :class:`~repro.engine.tracesim.
  TraceSimResult` rows as the per-point loop, bit for bit;
* plain-LRU configurations skip stepping entirely: a Mattson
  reuse-distance profile (:mod:`repro.engine.stackdist`) yields the
  exact LRU hit count at *every* capacity from one pass per worker
  substream.

Interning is exact, not approximate: every policy keys its bookkeeping
dicts on the request key's identity and never iterates them in hash
order (enforced by simlint's DET002/DET003), so a bijective key renaming
cannot change a single hit/miss decision.  Likewise the SOR round-robin
deal makes worker caches fully independent, so replaying each worker's
substream contiguously is decision-for-decision identical to the
interleaved order.
"""

from __future__ import annotations

import weakref
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..obs import runtime as _obs
from .backend import CodeBackend, make_priority_model
from .stackdist import SampledStackDistanceProfile, StackDistanceProfile
from .tracesim import PlanCache, TraceSimResult, effective_partition

__all__ = [
    "InternedStream",
    "intern_stream",
    "StreamInterner",
    "ReplayConfig",
    "simulate_grid_pass",
]

try:  # numpy is optional: every caller falls back to the python path.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the env
    _np = None

#: Registry policies whose decisions ignore the priority hint entirely —
#: their substream replay can drop the hint argument from the hot call.
#: Only FBF (and arbitrary factories) consume hints.
HINT_FREE_POLICIES = frozenset(
    {"fifo", "lru", "lfu", "arc", "lru2", "2q", "lrfu", "fbr", "mq", "lirs"}
)

#: Policies that admit every missed key and never displace a resident
#: block before the cache is full (verified per algorithm).  For these, a
#: worker whose capacity covers its substream's whole working set never
#: evicts, so its hit count is policy-independent: requests minus
#: distinct blocks.  2Q/LIRS-style policies bound internal segments below
#: total capacity and are excluded.
SATURATION_SAFE_POLICIES = frozenset({"fifo", "lru", "lfu", "arc", "fbf"})


class InternedStream:
    """One decoded request stream: dense block ids + parallel hint array.

    Requests are stored flat as machine-int ``array('i')`` buffers
    (``bids``/``hints``), roughly 4x smaller than the per-event tuples of
    boxed ints they replaced, with ``offsets[i]:offsets[i+1]`` delimiting
    event *i*'s slice.  ``keys[bid]`` recovers the original
    ``(stripe, unit)`` key for block id ``bid``.  :meth:`worker_substreams`
    deals events round-robin into per-worker flat ``(bids, hints)``
    parallel ``array('i')`` pairs — still the ``Sequence[int]`` the
    policies' ``request_many`` consumes, and exactly the buffer
    ``np.frombuffer`` views zero-copy for the vector backend — memoized
    per worker count, since a sweep group replays the same deal for every
    policy and capacity.
    """

    __slots__ = ("backend", "hint", "keys", "bids", "hints", "offsets",
                 "total_requests", "_worker_split")

    def __init__(
        self,
        backend: CodeBackend,
        hint: str,
        keys: tuple[Any, ...],
        bids: array,
        hints: array,
        offsets: array,
    ):
        if len(bids) != len(hints):
            raise ValueError("bids and hints must be parallel arrays")
        if len(offsets) == 0 or offsets[-1] != len(bids):
            raise ValueError("offsets must cover the request arrays")
        self.backend = backend
        self.hint = hint
        self.keys = keys
        self.bids = bids
        self.hints = hints
        self.offsets = offsets
        self.total_requests = len(bids)
        self._worker_split: dict[int, list[tuple[array, array]]] = {}

    @property
    def n_events(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_blocks(self) -> int:
        """Distinct blocks touched by the stream."""
        return len(self.keys)

    @property
    def event_pairs(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Per-event ``(bid, hint)`` tuples (compat/introspection view).

        Materialized on demand — the flat arrays are the storage format.
        """
        bids, hints, offsets = self.bids, self.hints, self.offsets
        return tuple(
            tuple(zip(bids[offsets[i] : offsets[i + 1]],
                      hints[offsets[i] : offsets[i + 1]]))
            for i in range(len(offsets) - 1)
        )

    def worker_substreams(self, workers: int) -> list[tuple[array, array]]:
        """Per-worker ``(block_ids, hints)`` parallel arrays (round-robin).

        Event *i* goes to worker ``i % workers`` — the SOR deal of
        :func:`~repro.engine.tracesim.simulate_trace`.  Worker caches are
        independent, so each worker's contiguous substream replays to the
        same decisions as the interleaved original.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cached = self._worker_split.get(workers)
        if cached is None:
            all_bids, all_hints, offsets = self.bids, self.hints, self.offsets
            n_events = len(offsets) - 1
            cached = []
            for w in range(workers):
                bids = array("i")
                hints = array("i")
                for i in range(w, n_events, workers):
                    start, stop = offsets[i], offsets[i + 1]
                    bids += all_bids[start:stop]
                    hints += all_hints[start:stop]
                cached.append((bids, hints))
            self._worker_split[workers] = cached
        return cached


def _intern_python(
    events_sorted: list, get_plan, sequence
) -> tuple[tuple[Any, ...], array, array, array]:
    """Reference interning loop: one dict probe per request."""
    index: dict[Any, int] = {}
    bids = array("i")
    hints = array("i")
    offsets = array("i", [0])
    append_bid = bids.append
    append_hint = hints.append
    for event in events_sorted:
        stripe = event.stripe
        for unit, hint_value in sequence(get_plan(event)):
            key = (stripe, unit)
            bid = index.get(key)
            if bid is None:
                bid = index[key] = len(index)
            append_bid(bid)
            append_hint(hint_value)
        offsets.append(len(bids))
    # dict preserves insertion order, so tuple(index) is keys-by-bid.
    return tuple(index), bids, hints, offsets


#: Per-(PlanCache, hint) interning state — unit registry plus per-plan
#: (uids, hints) arrays — reused across intern calls so that re-interning
#: the same backend's events (grid benches, repeated experiments) skips
#: the per-pair python loop entirely.  Keyed weakly: state dies with its
#: PlanCache (which keeps every plan alive, making ``id(plan)`` stable).
_INTERN_STATE: "weakref.WeakKeyDictionary[PlanCache, dict]" = \
    weakref.WeakKeyDictionary()


def _intern_numpy(
    events_sorted: list, get_plan, sequence, state: tuple | None = None
) -> tuple[tuple[Any, ...], array, array, array]:
    """Vectorized interning: identical output to :func:`_intern_python`.

    The python loop runs per *plan* (memoized unit/hint arrays; plans are
    shared PlanCache objects), not per request; the per-request work —
    ``(stripe, unit) -> dense first-seen id`` — becomes one
    ``np.unique`` over 64-bit pair codes plus an argsort of the first
    occurrence indices, which recovers exactly the first-seen order the
    dict-based loop assigns.  Internal unit ids only disambiguate pair
    codes — any injective assignment yields the same output — so the
    registry may be shared across calls via ``state``.
    """
    np = _np
    if state is None:
        state = ({}, [], {})
    unit_ids, unit_list, plan_memo = state
    uid_parts: list = []
    hint_parts: list = []
    stripes: list[int] = []
    lens: list[int] = []
    for event in events_sorted:
        plan = get_plan(event)
        memo = plan_memo.get(id(plan))
        if memo is None:
            pairs = list(sequence(plan))
            uids = np.empty(len(pairs), dtype=np.int64)
            hvals = np.empty(len(pairs), dtype=np.int32)
            for j, (unit, hint_value) in enumerate(pairs):
                uid = unit_ids.get(unit)
                if uid is None:
                    uid = unit_ids[unit] = len(unit_list)
                    unit_list.append(unit)
                uids[j] = uid
                hvals[j] = hint_value
            # the plan ref pins id(plan) for the memo's whole lifetime
            memo = plan_memo[id(plan)] = (uids, hvals, plan)
        uid_parts.append(memo[0])
        hint_parts.append(memo[1])
        stripes.append(event.stripe)
        lens.append(len(memo[0]))

    n_units = max(len(unit_list), 1)
    if stripes and max(abs(s) for s in stripes) >= (1 << 62) // n_units:
        # pair codes would overflow int64; take the reference loop.
        return _intern_python(events_sorted, get_plan, sequence)
    lens_np = np.asarray(lens, dtype=np.int64)
    if uid_parts:
        all_uids = np.concatenate(uid_parts)
        all_hints = np.concatenate(hint_parts)
    else:
        all_uids = np.empty(0, dtype=np.int64)
        all_hints = np.empty(0, dtype=np.int32)
    codes = np.repeat(np.asarray(stripes, dtype=np.int64), lens_np) * n_units
    codes += all_uids
    uniq, first_idx, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    # uniq is sorted by code value; rank first occurrences by stream
    # position to recover the dict loop's first-seen id assignment.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    bids_np = rank[inverse].astype(np.int32)
    first_seen = uniq[order]
    strp = (first_seen // n_units).tolist()
    uidx = (first_seen % n_units).tolist()
    keys = tuple((s, unit_list[i]) for s, i in zip(strp, uidx))
    bids = array("i")
    bids.frombytes(bids_np.tobytes())
    hints = array("i")
    hints.frombytes(all_hints.astype(np.int32, copy=False).tobytes())
    offsets = array("i")
    offsets.frombytes(
        np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lens_np)]
        ).astype(np.int32).tobytes()
    )
    return keys, bids, hints, offsets


def intern_stream(
    backend: CodeBackend,
    events: Sequence[Any],
    hint: str = "priority",
    plan_cache: PlanCache | None = None,
) -> InternedStream:
    """Decode ``events`` once into an :class:`InternedStream`.

    Events are sorted exactly as :func:`~repro.engine.tracesim.
    simulate_trace` sorts them, plans come from the shared ``plan_cache``
    memo, and block keys are interned to dense ints in first-seen order
    (deterministic: a function of the sorted event stream alone — the
    vectorized and python interning paths produce identical streams).
    """
    model = make_priority_model(hint)
    if plan_cache is None:
        plan_cache = PlanCache(backend)
    elif plan_cache.backend is not backend:
        raise ValueError("plan_cache was built for a different backend")

    obs_on = _obs.ENABLED
    if obs_on:
        before_hits, before_misses = plan_cache.counts()
        decode_span = _obs.span(
            "engine.intern_stream", {"code": backend.code_label, "hint": hint}
        )
        decode_span.__enter__()

    if _np is None:
        keys, bids, hints, offsets = _intern_python(
            sorted(events), plan_cache.get, model.sequence
        )
    else:
        per_hint = _INTERN_STATE.setdefault(plan_cache, {})
        state = per_hint.get(hint)
        if state is None:
            state = per_hint[hint] = ({}, [], {})
        keys, bids, hints, offsets = _intern_numpy(
            sorted(events), plan_cache.get, model.sequence, state
        )
    stream = InternedStream(backend, hint, keys, bids, hints, offsets)
    if obs_on:
        decode_span["events"] = stream.n_events
        decode_span["blocks"] = stream.n_blocks
        decode_span.__exit__(None, None, None)
        after_hits, after_misses = plan_cache.counts()
        _obs.counter("engine.streams_interned").inc()
        _obs.counter("engine.stream.events").inc(stream.n_events)
        _obs.counter("engine.stream.requests").inc(stream.total_requests)
        _obs.counter("engine.plan_cache.hits").inc(after_hits - before_hits)
        _obs.counter("engine.plan_cache.misses").inc(after_misses - before_misses)
        _obs.gauge("engine.plan_cache.entries").set(len(plan_cache))
    return stream


class StreamInterner:
    """Incremental interning over an advancing event log (the serve layer).

    :func:`intern_stream` decodes a complete, already-known trace.  A
    long-lived advisor instead sees events *arrive*: it appends each
    batch as it lands and replays a sliding window of the most recent
    events.  This class keeps the interning state (the block-key index,
    the flat ``bids``/``hints``/``offsets`` arrays, the shared
    :class:`~repro.engine.tracesim.PlanCache`) alive across appends, so
    each batch costs one plan decode per *new* plan rather than a full
    re-intern of the window.

    Equivalence contract: when events are appended in globally sorted
    order (the serve ingest path sorts each batch, and the synthetic /
    trace sources emit monotonically increasing times),
    ``interner.window(start, stop)`` is bit-for-bit identical to
    ``intern_stream(backend, events[start:stop])`` — same keys, same
    dense ids, same hints — because dense ids are assigned in first-seen
    order within the window either way (property-tested in
    ``tests/engine/test_stream_interner.py``).

    Memory is bounded by :meth:`compact`, which drops a consumed prefix
    and rebases the retained suffix exactly as :meth:`window` does.
    ``events_seen`` keeps counting across compactions, so window indices
    are stable log positions, not buffer offsets.
    """

    __slots__ = ("backend", "hint", "plan_cache", "_model", "_index",
                 "_bids", "_hints", "_offsets", "_events", "_dropped")

    def __init__(
        self,
        backend: CodeBackend,
        hint: str = "priority",
        plan_cache: PlanCache | None = None,
    ):
        if plan_cache is None:
            plan_cache = PlanCache(backend)
        elif plan_cache.backend is not backend:
            raise ValueError("plan_cache was built for a different backend")
        self.backend = backend
        self.hint = hint
        self.plan_cache = plan_cache
        self._model = make_priority_model(hint)
        self._index: dict[Any, int] = {}
        self._bids = array("i")
        self._hints = array("i")
        self._offsets = array("i", [0])
        self._events: list[Any] = []
        self._dropped = 0  #: events removed from the left by compact()

    @property
    def events_seen(self) -> int:
        """Total events ever appended (stable log length, survives compact)."""
        return self._dropped + len(self._events)

    @property
    def n_blocks(self) -> int:
        return len(self._index)

    @property
    def first_event(self) -> int:
        """Log index of the oldest retained event."""
        return self._dropped

    def extend(self, events: Iterable[Any]) -> int:
        """Intern ``events`` in the given order; returns how many arrived.

        The caller owns ordering: the serve batcher sorts each batch and
        feeds batches in arrival order, which keeps the log globally
        sorted for time-monotone sources.
        """
        index = self._index
        bids, hints, offsets = self._bids, self._hints, self._offsets
        get_plan, sequence = self.plan_cache.get, self._model.sequence
        n = 0
        for event in events:
            stripe = event.stripe
            for unit, hint_value in sequence(get_plan(event)):
                key = (stripe, unit)
                bid = index.get(key)
                if bid is None:
                    bid = index[key] = len(index)
                bids.append(bid)
                hints.append(hint_value)
            offsets.append(len(bids))
            self._events.append(event)
            n += 1
        return n

    def events_slice(self, start: int, stop: int | None = None) -> list[Any]:
        """The retained events for log positions ``[start, stop)``."""
        lo = start - self._dropped
        if lo < 0:
            raise ValueError(
                f"event {start} was compacted away (oldest retained: "
                f"{self._dropped})"
            )
        hi = None if stop is None else stop - self._dropped
        return self._events[lo:hi]

    def window(self, start: int, stop: int | None = None) -> InternedStream:
        """An :class:`InternedStream` over log positions ``[start, stop)``.

        Dense ids are rebased to first-seen order *within the window*, so
        the result equals a fresh ``intern_stream`` of the same slice.
        """
        lo = start - self._dropped
        if lo < 0:
            raise ValueError(
                f"event {start} was compacted away (oldest retained: "
                f"{self._dropped})"
            )
        hi = len(self._events) if stop is None else stop - self._dropped
        if not 0 <= lo <= hi <= len(self._events):
            raise ValueError(
                f"window [{start}, {stop}) outside the retained log "
                f"[{self._dropped}, {self.events_seen})"
            )
        offsets = self._offsets
        req_lo, req_hi = offsets[lo], offsets[hi]
        old_bids = self._bids
        remap: dict[int, int] = {}
        new_keys: list[Any] = []
        bids = array("i")
        append = bids.append
        # key_of is materialized lazily: only ids first seen in the
        # window need their (stripe, unit) key recovered.
        key_of: tuple[Any, ...] | None = None
        for i in range(req_lo, req_hi):
            old = old_bids[i]
            new = remap.get(old)
            if new is None:
                if key_of is None:
                    key_of = tuple(self._index)
                new = remap[old] = len(new_keys)
                new_keys.append(key_of[old])
            append(new)
        new_offsets = array("i", (offsets[i] - req_lo for i in range(lo, hi + 1)))
        return InternedStream(
            self.backend,
            self.hint,
            tuple(new_keys),
            bids,
            self._hints[req_lo:req_hi],
            new_offsets,
        )

    def compact(self, keep_last: int) -> int:
        """Drop all but the last ``keep_last`` events; returns how many went.

        Rebases the retained suffix through :meth:`window`'s machinery, so
        every later ``window``/``snapshot`` call sees exactly the state a
        fresh interner fed only the suffix would hold.  The block-key
        index is rebuilt from the suffix, releasing keys only the dropped
        prefix touched.
        """
        excess = len(self._events) - max(keep_last, 0)
        if excess <= 0:
            return 0
        rebased = self.window(self._dropped + excess)
        self._index = {key: i for i, key in enumerate(rebased.keys)}
        self._bids = rebased.bids
        self._hints = rebased.hints
        self._offsets = rebased.offsets
        self._events = self._events[excess:]
        self._dropped += excess
        return excess

    def snapshot(self) -> InternedStream:
        """The whole retained log as one :class:`InternedStream`."""
        return InternedStream(
            self.backend,
            self.hint,
            tuple(self._index),
            array("i", self._bids),
            array("i", self._hints),
            array("i", self._offsets),
        )


@dataclass
class ReplayConfig:
    """One grid cell: the replay parameters of a ``simulate_trace`` call."""

    policy: str = "fbf"
    capacity_blocks: int = 64
    workers: int = 1
    policy_factory: Callable[[int], CachePolicy] | None = None
    policy_kwargs: dict | None = None
    hint: str = "priority"
    sanitize: bool = False


def _is_plain_lru(config: ReplayConfig) -> bool:
    """Eligible for the stack-distance fast path: exactly registry LRU.

    Anything that could perturb decisions or needs the stepped machinery
    (a custom factory, constructor kwargs, the sanitizer wrapper) takes
    the stepped path; FBF/ARC/LFU and friends lack LRU's inclusion
    property and always step.
    """
    return (
        config.policy == "lru"
        and config.policy_factory is None
        and not config.policy_kwargs
        and not config.sanitize
    )


def _replay_stepped(
    stream: InternedStream,
    config: ReplayConfig,
    worker_distincts: Sequence[int] | None = None,
) -> TraceSimResult:
    """Step one configuration over the decoded stream (any policy).

    ``worker_distincts`` (per-worker working-set sizes, only passed for
    :func:`_is_saturation_eligible` configs) lets individual workers skip
    the replay when their outcome is forced: a worker whose slice covers
    its whole working set never evicts, and one with zero reuse never
    hits — both give exactly ``hits = requests - distinct``.
    """
    workers, per_worker = effective_partition(
        config.capacity_blocks, config.workers, stream.n_events
    )
    kwargs = config.policy_kwargs or {}
    if config.policy_factory is not None:
        factory = config.policy_factory
    else:
        factory = lambda cap: make_policy(config.policy, cap, **kwargs)
    if config.sanitize:
        # Imported here for the same reason as simulate_trace: repro.checks
        # imports the event kernel, which cycles through repro.sim.
        from ..checks.sanitizer import SimSanitizer

        base_factory = factory
        factory = lambda cap: SimSanitizer(base_factory(cap))

    hint_free = (
        config.policy_factory is None
        and not config.sanitize
        and config.policy in HINT_FREE_POLICIES
    )
    hits = misses = 0
    policies: list[CachePolicy] = []
    for w, (bids, hints) in enumerate(stream.worker_substreams(workers)):
        if worker_distincts is not None:
            distinct = worker_distincts[w]
            if (0 < per_worker and distinct <= per_worker) or distinct == len(bids):
                hits += len(bids) - distinct
                misses += distinct
                continue
        cache = factory(per_worker)
        policies.append(cache)
        # One batch call per worker: the policy's request_many replays
        # its substream in a single inlined loop over the interned ids;
        # hint-free policies skip the hint array entirely.
        cache.request_many(bids, None if hint_free else hints)

    if not policies:
        # every worker was skipped; a probe instance supplies the label
        policies.append(factory(per_worker))
    hits += sum(p.stats.hits for p in policies)
    misses += sum(p.stats.misses for p in policies)
    return TraceSimResult(
        policy=(
            config.policy
            if config.policy_factory is None
            else getattr(policies[0], "name", "custom")
        ),
        scheme_mode=stream.backend.scheme_label,
        code=stream.backend.code_label,
        p=stream.backend.p,
        capacity_blocks=config.capacity_blocks,
        workers=workers,
        per_worker_blocks=per_worker,
        n_errors=stream.n_events,
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )


def _replay_lru_fast(
    stream: InternedStream,
    config: ReplayConfig,
    profiles: dict[int, list],
    profile_factory: Callable[[Sequence[int]], Any] = StackDistanceProfile,
) -> TraceSimResult:
    """LRU via reuse distances: hits at any capacity, no stepping.

    ``profile_factory`` selects the profile flavor: the exact Fenwick
    :class:`~repro.engine.stackdist.StackDistanceProfile` (default) or a
    SHARDS :class:`~repro.engine.stackdist.SampledStackDistanceProfile`
    bound to a sampling rate — anything with ``hits_at(capacity)``.
    """
    workers, per_worker = effective_partition(
        config.capacity_blocks, config.workers, stream.n_events
    )
    per_worker_profiles = profiles.get(workers)
    if per_worker_profiles is None:
        per_worker_profiles = profiles[workers] = [
            profile_factory(bids)
            for bids, _ in stream.worker_substreams(workers)
        ]
    hits = sum(p.hits_at(per_worker) for p in per_worker_profiles)
    requests = stream.total_requests
    return TraceSimResult(
        policy="lru",
        scheme_mode=stream.backend.scheme_label,
        code=stream.backend.code_label,
        p=stream.backend.p,
        capacity_blocks=config.capacity_blocks,
        workers=workers,
        per_worker_blocks=per_worker,
        n_errors=stream.n_events,
        requests=requests,
        hits=hits,
        disk_reads=requests - hits,
    )


def _is_saturation_eligible(config: ReplayConfig) -> bool:
    """Known admit-all/evict-only-full registry policy, unwrapped."""
    return (
        config.policy in SATURATION_SAFE_POLICIES
        and config.policy_factory is None
        and not config.policy_kwargs
        and not config.sanitize
    )


def _is_vector_eligible(config: ReplayConfig) -> bool:
    """Plain registry policy with a vector kernel, unwrapped."""
    from .vector import VECTOR_POLICIES

    return (
        config.policy in VECTOR_POLICIES
        and config.policy_factory is None
        and not config.policy_kwargs
        and not config.sanitize
    )


def _replay_vector_rows(
    configs: Sequence[ReplayConfig],
    stream_for: Callable[[str], InternedStream],
    lru_fast_path: bool,
) -> dict[int, TraceSimResult]:
    """Solve every vector-eligible config in one fleet; rows by index.

    Configs are grouped into one :class:`~repro.engine.vector.
    VectorFleet` job per ``(hint, workers)`` pair, so the whole grid
    costs one batched step loop per policy family.  Rows are
    bit-identical to :func:`_replay_stepped` (property-tested).  The
    caller decides who owns plain LRU via ``lru_fast_path``: True keeps
    it on the reuse-distance profile path (the sampled-profile case),
    False routes it through the fleet's rank-histogram kernel.
    """
    plan: dict[int, tuple[str, int, int, str]] = {}
    groups: dict[tuple[str, int], set[int]] = {}
    pols: set[str] = set()
    for i, config in enumerate(configs):
        if not _is_vector_eligible(config):
            continue
        if lru_fast_path and _is_plain_lru(config):
            continue
        st = stream_for(config.hint)
        workers, per_worker = effective_partition(
            config.capacity_blocks, config.workers, st.n_events
        )
        if per_worker < 1:  # degenerate zero-capacity cell: step it
            continue
        groups.setdefault((config.hint, workers), set()).add(per_worker)
        pols.add(config.policy)
        plan[i] = (config.hint, workers, per_worker, config.policy)
    if not plan:
        return {}
    from .vector import VectorFleet

    fleet = VectorFleet()
    job_of = {
        key: fleet.add(stream_for(key[0]), key[1], caps)
        for key, caps in groups.items()
    }
    solved = fleet.solve(sorted(pols))
    rows: dict[int, TraceSimResult] = {}
    for i, (hint, workers, per_worker, policy) in plan.items():
        st = stream_for(hint)
        hits = solved[job_of[(hint, workers)]][policy][per_worker]
        requests = st.total_requests
        rows[i] = TraceSimResult(
            policy=policy,
            scheme_mode=st.backend.scheme_label,
            code=st.backend.code_label,
            p=st.backend.p,
            capacity_blocks=configs[i].capacity_blocks,
            workers=workers,
            per_worker_blocks=per_worker,
            n_errors=st.n_events,
            requests=requests,
            hits=hits,
            disk_reads=requests - hits,
        )
    return rows


def simulate_grid_pass(
    backend: CodeBackend,
    events: Sequence[Any],
    configs: Iterable[ReplayConfig],
    plan_cache: PlanCache | None = None,
    stream: InternedStream | None = None,
    lru_fast_path: bool = True,
    replay_backend: str = "python",
    stackdist: str = "exact",
    shards_rate: float = 0.01,
) -> list[TraceSimResult]:
    """Replay every configuration over one decoded stream, in one pass.

    Returns one :class:`~repro.engine.tracesim.TraceSimResult` per
    config, in config order, each bit-for-bit equal to the row the
    per-point ``simulate_trace(backend, events, ...)`` call would
    produce.  The stream is decoded once per distinct hint model (block
    ids are hint-independent, so the LRU reuse-distance profiles and
    per-worker working-set sizes are shared across hints); pass
    ``stream`` to reuse an already-interned stream for its hint.

    Two exact fast paths skip stepping (``lru_fast_path=False`` disables
    both — the equivalence tests' lever):

    * plain LRU at any capacity, via the Mattson reuse-distance profile;
    * *saturated* cells of any :data:`SATURATION_SAFE_POLICIES` policy —
      when every worker's capacity slice covers its substream's whole
      working set, no policy ever evicts and the hit count is exactly
      requests minus distinct blocks.

    ``replay_backend="numpy"`` solves every vector-eligible cell (plain
    FIFO/LRU/LFU/ARC/FBF) through one :class:`~repro.engine.vector.
    VectorFleet` batch instead of per-request stepping — rows stay
    bit-for-bit identical; ineligible cells (custom factories, kwargs,
    the sanitizer) silently take the python path.  ``stackdist=
    "sampled"`` swaps the plain-LRU fast path's exact Fenwick profile
    for the SHARDS sampled one at ``shards_rate`` — the one knob that
    trades row exactness (bounded hit-ratio error, O(sample) memory)
    for scale.
    """
    configs = list(configs)
    if replay_backend not in ("python", "numpy"):
        raise ValueError(
            f"replay_backend must be 'python' or 'numpy', got {replay_backend!r}"
        )
    if stackdist not in ("exact", "sampled"):
        raise ValueError(
            f"stackdist must be 'exact' or 'sampled', got {stackdist!r}"
        )
    if not 0.0 < shards_rate <= 1.0:
        raise ValueError(f"shards_rate must be in (0, 1], got {shards_rate}")
    if replay_backend == "numpy" and _np is None:
        raise RuntimeError(
            "replay_backend='numpy' requires numpy, which is not installed"
        )
    if stackdist == "sampled":
        profile_factory = lambda bids: SampledStackDistanceProfile(
            bids, rate=shards_rate
        )
    else:
        profile_factory = StackDistanceProfile
    obs_on = _obs.ENABLED
    if obs_on:
        pass_span = _obs.span(
            "engine.grid_pass",
            {"code": backend.code_label, "n_configs": len(configs),
             "backend": replay_backend},
        )
        pass_span.__enter__()
        n_lru_fast = n_stepped = n_vector = 0
    streams: dict[str, InternedStream] = {}
    if stream is not None:
        if stream.backend is not backend:
            raise ValueError("stream was interned for a different backend")
        streams[stream.hint] = stream

    def stream_for(hint: str) -> InternedStream:
        cached = streams.get(hint)
        if cached is None:
            cached = streams[hint] = intern_stream(
                backend, events, hint=hint, plan_cache=plan_cache
            )
        return cached

    # workers -> per-worker-substream reuse-distance profiles, shared by
    # every plain-LRU config in the group (ids are hint-independent).
    lru_profiles: dict[int, list[StackDistanceProfile]] = {}
    # workers -> per-worker distinct-block counts (the saturation check).
    worker_distincts: dict[int, list[int]] = {}
    vector_rows: dict[int, TraceSimResult] = {}
    if replay_backend == "numpy":
        # The fleet's LRU rank-histogram kernel beats building per-worker
        # Fenwick profiles, so plain LRU rides the fleet too — unless the
        # caller explicitly asked for the SHARDS sampled profile.
        vector_rows = _replay_vector_rows(
            configs, stream_for, lru_fast_path and stackdist == "sampled"
        )
    results: list[TraceSimResult] = []
    for i, config in enumerate(configs):
        row = vector_rows.get(i)
        if row is not None:
            results.append(row)
            if obs_on:
                n_vector += 1
            continue
        st = stream_for(config.hint)
        if lru_fast_path and _is_plain_lru(config):
            results.append(
                _replay_lru_fast(st, config, lru_profiles, profile_factory)
            )
            if obs_on:
                n_lru_fast += 1
            continue
        distincts = None
        if lru_fast_path and _is_saturation_eligible(config):
            workers, _ = effective_partition(
                config.capacity_blocks, config.workers, st.n_events
            )
            distincts = worker_distincts.get(workers)
            if distincts is None:
                distincts = worker_distincts[workers] = [
                    len(set(bids)) for bids, _ in st.worker_substreams(workers)
                ]
        results.append(_replay_stepped(st, config, worker_distincts=distincts))
        if obs_on:
            n_stepped += 1
    if obs_on:
        pass_span["lru_fast_rows"] = n_lru_fast
        pass_span["stepped_rows"] = n_stepped
        pass_span["vector_rows"] = n_vector
        pass_span.__exit__(None, None, None)
        _obs.counter("engine.grid.passes").inc()
        _obs.counter("engine.grid.configs").inc(len(configs))
        _obs.counter("engine.grid.lru_fast_rows").inc(n_lru_fast)
        _obs.counter("engine.grid.stepped_rows").inc(n_stepped)
        _obs.counter("engine.grid.vector_rows").inc(n_vector)
    return results
