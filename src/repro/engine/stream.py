"""Interned request streams and the single-pass grid replay.

The hit-ratio grids (Figures 8/9, the ablations, the LRC footnote) sweep
many (policy x capacity x workers) configurations over the *same*
recovery request stream.  Per-point :func:`~repro.engine.tracesim.
simulate_trace` decodes that stream from scratch every time: plan lookup
per event, ``(stripe, unit)`` tuple build per request, nested-tuple
hashing inside every policy dict.  This module decodes **once**:

* :func:`intern_stream` materializes ``event -> plan -> (unit, hint)``
  into an :class:`InternedStream` — block keys mapped to dense ints in
  first-seen order, hints in a parallel array — reusing the shared
  :class:`~repro.engine.tracesim.PlanCache`;
* :func:`simulate_grid_pass` steps every configuration over the decoded
  stream and returns the same :class:`~repro.engine.tracesim.
  TraceSimResult` rows as the per-point loop, bit for bit;
* plain-LRU configurations skip stepping entirely: a Mattson
  reuse-distance profile (:mod:`repro.engine.stackdist`) yields the
  exact LRU hit count at *every* capacity from one pass per worker
  substream.

Interning is exact, not approximate: every policy keys its bookkeeping
dicts on the request key's identity and never iterates them in hash
order (enforced by simlint's DET002/DET003), so a bijective key renaming
cannot change a single hit/miss decision.  Likewise the SOR round-robin
deal makes worker caches fully independent, so replaying each worker's
substream contiguously is decision-for-decision identical to the
interleaved order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..obs import runtime as _obs
from .backend import CodeBackend, make_priority_model
from .stackdist import StackDistanceProfile
from .tracesim import PlanCache, TraceSimResult, effective_partition

__all__ = ["InternedStream", "intern_stream", "ReplayConfig", "simulate_grid_pass"]

#: Registry policies whose decisions ignore the priority hint entirely —
#: their substream replay can drop the hint argument from the hot call.
#: Only FBF (and arbitrary factories) consume hints.
HINT_FREE_POLICIES = frozenset(
    {"fifo", "lru", "lfu", "arc", "lru2", "2q", "lrfu", "fbr", "mq", "lirs"}
)

#: Policies that admit every missed key and never displace a resident
#: block before the cache is full (verified per algorithm).  For these, a
#: worker whose capacity covers its substream's whole working set never
#: evicts, so its hit count is policy-independent: requests minus
#: distinct blocks.  2Q/LIRS-style policies bound internal segments below
#: total capacity and are excluded.
SATURATION_SAFE_POLICIES = frozenset({"fifo", "lru", "lfu", "arc", "fbf"})


class InternedStream:
    """One decoded request stream: dense block ids + parallel hint array.

    ``keys[bid]`` recovers the original ``(stripe, unit)`` key for block
    id ``bid``; ``event_pairs[i]`` is event *i*'s request sequence as
    ``(bid, hint)`` pairs in issue order.  :meth:`worker_substreams`
    deals events round-robin into per-worker flat ``(bids, hints)``
    parallel tuples — memoized per worker count, since a sweep group
    replays the same deal for every policy and capacity.
    """

    __slots__ = ("backend", "hint", "keys", "event_pairs", "total_requests",
                 "_worker_split")

    def __init__(
        self,
        backend: CodeBackend,
        hint: str,
        keys: tuple[Any, ...],
        event_pairs: tuple[tuple[tuple[int, int], ...], ...],
    ):
        self.backend = backend
        self.hint = hint
        self.keys = keys
        self.event_pairs = event_pairs
        self.total_requests = sum(len(pairs) for pairs in event_pairs)
        self._worker_split: dict[int, list[tuple[tuple[int, ...], tuple[int, ...]]]] = {}

    @property
    def n_events(self) -> int:
        return len(self.event_pairs)

    @property
    def n_blocks(self) -> int:
        """Distinct blocks touched by the stream."""
        return len(self.keys)

    def worker_substreams(
        self, workers: int
    ) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Per-worker ``(block_ids, hints)`` parallel tuples (round-robin).

        Event *i* goes to worker ``i % workers`` — the SOR deal of
        :func:`~repro.engine.tracesim.simulate_trace`.  Worker caches are
        independent, so each worker's contiguous substream replays to the
        same decisions as the interleaved original.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cached = self._worker_split.get(workers)
        if cached is None:
            split: list[tuple[list[int], list[int]]] = [
                ([], []) for _ in range(workers)
            ]
            for i, pairs in enumerate(self.event_pairs):
                bids, hints = split[i % workers]
                for bid, hint_value in pairs:
                    bids.append(bid)
                    hints.append(hint_value)
            cached = self._worker_split[workers] = [
                (tuple(bids), tuple(hints)) for bids, hints in split
            ]
        return cached


def intern_stream(
    backend: CodeBackend,
    events: Sequence[Any],
    hint: str = "priority",
    plan_cache: PlanCache | None = None,
) -> InternedStream:
    """Decode ``events`` once into an :class:`InternedStream`.

    Events are sorted exactly as :func:`~repro.engine.tracesim.
    simulate_trace` sorts them, plans come from the shared ``plan_cache``
    memo, and block keys are interned to dense ints in first-seen order
    (deterministic: a function of the sorted event stream alone).
    """
    model = make_priority_model(hint)
    if plan_cache is None:
        plan_cache = PlanCache(backend)
    elif plan_cache.backend is not backend:
        raise ValueError("plan_cache was built for a different backend")

    obs_on = _obs.ENABLED
    if obs_on:
        before_hits, before_misses = plan_cache.counts()
        decode_span = _obs.span(
            "engine.intern_stream", {"code": backend.code_label, "hint": hint}
        )
        decode_span.__enter__()

    index: dict[Any, int] = {}
    event_pairs: list[tuple[tuple[int, int], ...]] = []
    get_plan = plan_cache.get
    sequence = model.sequence
    for event in sorted(events):
        stripe = event.stripe
        pairs = []
        append = pairs.append
        for unit, hint_value in sequence(get_plan(event)):
            key = (stripe, unit)
            bid = index.get(key)
            if bid is None:
                bid = index[key] = len(index)
            append((bid, hint_value))
        event_pairs.append(tuple(pairs))
    # dict preserves insertion order, so tuple(index) is keys-by-bid.
    stream = InternedStream(backend, hint, tuple(index), tuple(event_pairs))
    if obs_on:
        decode_span["events"] = stream.n_events
        decode_span["blocks"] = stream.n_blocks
        decode_span.__exit__(None, None, None)
        after_hits, after_misses = plan_cache.counts()
        _obs.counter("engine.streams_interned").inc()
        _obs.counter("engine.stream.events").inc(stream.n_events)
        _obs.counter("engine.stream.requests").inc(stream.total_requests)
        _obs.counter("engine.plan_cache.hits").inc(after_hits - before_hits)
        _obs.counter("engine.plan_cache.misses").inc(after_misses - before_misses)
        _obs.gauge("engine.plan_cache.entries").set(len(plan_cache))
    return stream


@dataclass
class ReplayConfig:
    """One grid cell: the replay parameters of a ``simulate_trace`` call."""

    policy: str = "fbf"
    capacity_blocks: int = 64
    workers: int = 1
    policy_factory: Callable[[int], CachePolicy] | None = None
    policy_kwargs: dict | None = None
    hint: str = "priority"
    sanitize: bool = False


def _is_plain_lru(config: ReplayConfig) -> bool:
    """Eligible for the stack-distance fast path: exactly registry LRU.

    Anything that could perturb decisions or needs the stepped machinery
    (a custom factory, constructor kwargs, the sanitizer wrapper) takes
    the stepped path; FBF/ARC/LFU and friends lack LRU's inclusion
    property and always step.
    """
    return (
        config.policy == "lru"
        and config.policy_factory is None
        and not config.policy_kwargs
        and not config.sanitize
    )


def _replay_stepped(
    stream: InternedStream,
    config: ReplayConfig,
    worker_distincts: Sequence[int] | None = None,
) -> TraceSimResult:
    """Step one configuration over the decoded stream (any policy).

    ``worker_distincts`` (per-worker working-set sizes, only passed for
    :func:`_is_saturation_eligible` configs) lets individual workers skip
    the replay when their outcome is forced: a worker whose slice covers
    its whole working set never evicts, and one with zero reuse never
    hits — both give exactly ``hits = requests - distinct``.
    """
    workers, per_worker = effective_partition(
        config.capacity_blocks, config.workers, stream.n_events
    )
    kwargs = config.policy_kwargs or {}
    if config.policy_factory is not None:
        factory = config.policy_factory
    else:
        factory = lambda cap: make_policy(config.policy, cap, **kwargs)
    if config.sanitize:
        # Imported here for the same reason as simulate_trace: repro.checks
        # imports the event kernel, which cycles through repro.sim.
        from ..checks.sanitizer import SimSanitizer

        base_factory = factory
        factory = lambda cap: SimSanitizer(base_factory(cap))

    hint_free = (
        config.policy_factory is None
        and not config.sanitize
        and config.policy in HINT_FREE_POLICIES
    )
    hits = misses = 0
    policies: list[CachePolicy] = []
    for w, (bids, hints) in enumerate(stream.worker_substreams(workers)):
        if worker_distincts is not None:
            distinct = worker_distincts[w]
            if (0 < per_worker and distinct <= per_worker) or distinct == len(bids):
                hits += len(bids) - distinct
                misses += distinct
                continue
        cache = factory(per_worker)
        policies.append(cache)
        # One batch call per worker: the policy's request_many replays
        # its substream in a single inlined loop over the interned ids;
        # hint-free policies skip the hint array entirely.
        cache.request_many(bids, None if hint_free else hints)

    if not policies:
        # every worker was skipped; a probe instance supplies the label
        policies.append(factory(per_worker))
    hits += sum(p.stats.hits for p in policies)
    misses += sum(p.stats.misses for p in policies)
    return TraceSimResult(
        policy=(
            config.policy
            if config.policy_factory is None
            else getattr(policies[0], "name", "custom")
        ),
        scheme_mode=stream.backend.scheme_label,
        code=stream.backend.code_label,
        p=stream.backend.p,
        capacity_blocks=config.capacity_blocks,
        workers=workers,
        per_worker_blocks=per_worker,
        n_errors=stream.n_events,
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )


def _replay_lru_fast(
    stream: InternedStream,
    config: ReplayConfig,
    profiles: dict[int, list[StackDistanceProfile]],
) -> TraceSimResult:
    """LRU via reuse distances: exact hits at any capacity, no stepping."""
    workers, per_worker = effective_partition(
        config.capacity_blocks, config.workers, stream.n_events
    )
    per_worker_profiles = profiles.get(workers)
    if per_worker_profiles is None:
        per_worker_profiles = profiles[workers] = [
            StackDistanceProfile(bids)
            for bids, _ in stream.worker_substreams(workers)
        ]
    hits = sum(p.hits_at(per_worker) for p in per_worker_profiles)
    requests = stream.total_requests
    return TraceSimResult(
        policy="lru",
        scheme_mode=stream.backend.scheme_label,
        code=stream.backend.code_label,
        p=stream.backend.p,
        capacity_blocks=config.capacity_blocks,
        workers=workers,
        per_worker_blocks=per_worker,
        n_errors=stream.n_events,
        requests=requests,
        hits=hits,
        disk_reads=requests - hits,
    )


def _is_saturation_eligible(config: ReplayConfig) -> bool:
    """Known admit-all/evict-only-full registry policy, unwrapped."""
    return (
        config.policy in SATURATION_SAFE_POLICIES
        and config.policy_factory is None
        and not config.policy_kwargs
        and not config.sanitize
    )


def simulate_grid_pass(
    backend: CodeBackend,
    events: Sequence[Any],
    configs: Iterable[ReplayConfig],
    plan_cache: PlanCache | None = None,
    stream: InternedStream | None = None,
    lru_fast_path: bool = True,
) -> list[TraceSimResult]:
    """Replay every configuration over one decoded stream, in one pass.

    Returns one :class:`~repro.engine.tracesim.TraceSimResult` per
    config, in config order, each bit-for-bit equal to the row the
    per-point ``simulate_trace(backend, events, ...)`` call would
    produce.  The stream is decoded once per distinct hint model (block
    ids are hint-independent, so the LRU reuse-distance profiles and
    per-worker working-set sizes are shared across hints); pass
    ``stream`` to reuse an already-interned stream for its hint.

    Two exact fast paths skip stepping (``lru_fast_path=False`` disables
    both — the equivalence tests' lever):

    * plain LRU at any capacity, via the Mattson reuse-distance profile;
    * *saturated* cells of any :data:`SATURATION_SAFE_POLICIES` policy —
      when every worker's capacity slice covers its substream's whole
      working set, no policy ever evicts and the hit count is exactly
      requests minus distinct blocks.
    """
    configs = list(configs)
    obs_on = _obs.ENABLED
    if obs_on:
        pass_span = _obs.span(
            "engine.grid_pass",
            {"code": backend.code_label, "n_configs": len(configs)},
        )
        pass_span.__enter__()
        n_lru_fast = n_stepped = 0
    streams: dict[str, InternedStream] = {}
    if stream is not None:
        if stream.backend is not backend:
            raise ValueError("stream was interned for a different backend")
        streams[stream.hint] = stream

    def stream_for(hint: str) -> InternedStream:
        cached = streams.get(hint)
        if cached is None:
            cached = streams[hint] = intern_stream(
                backend, events, hint=hint, plan_cache=plan_cache
            )
        return cached

    # workers -> per-worker-substream reuse-distance profiles, shared by
    # every plain-LRU config in the group (ids are hint-independent).
    lru_profiles: dict[int, list[StackDistanceProfile]] = {}
    # workers -> per-worker distinct-block counts (the saturation check).
    worker_distincts: dict[int, list[int]] = {}
    results: list[TraceSimResult] = []
    for config in configs:
        st = stream_for(config.hint)
        if lru_fast_path and _is_plain_lru(config):
            results.append(_replay_lru_fast(st, config, lru_profiles))
            if obs_on:
                n_lru_fast += 1
            continue
        distincts = None
        if lru_fast_path and _is_saturation_eligible(config):
            workers, _ = effective_partition(
                config.capacity_blocks, config.workers, st.n_events
            )
            distincts = worker_distincts.get(workers)
            if distincts is None:
                distincts = worker_distincts[workers] = [
                    len(set(bids)) for bids, _ in st.worker_substreams(workers)
                ]
        results.append(_replay_stepped(st, config, worker_distincts=distincts))
        if obs_on:
            n_stepped += 1
    if obs_on:
        pass_span["lru_fast_rows"] = n_lru_fast
        pass_span["stepped_rows"] = n_stepped
        pass_span.__exit__(None, None, None)
        _obs.counter("engine.grid.passes").inc()
        _obs.counter("engine.grid.configs").inc(len(configs))
        _obs.counter("engine.grid.lru_fast_rows").inc(n_lru_fast)
        _obs.counter("engine.grid.stepped_rows").inc(n_stepped)
    return results
