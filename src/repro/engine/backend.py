"""Recovery-engine protocols: code backends, plans, priority models.

The paper evaluates FBF on four XOR 3DFT codes and (footnote 3) on a
Local Reconstruction Code.  Everything the cache study needs from a code
is the same small contract:

* a deterministic failure workload (``generate_events``);
* a mapping from one failure event to a :class:`EnginePlan` — the ordered
  recovery *steps*, each reading the surviving members of one parity
  relation (``build_plan``), memoizable by a shape key (``plan_key``);
* per-block FBF metadata derived from the plan: chain-share counts and
  the Table II priorities.

:class:`CodeBackend` captures that contract; the replay engines in
:mod:`repro.engine.tracesim` (untimed) and :mod:`repro.engine.timed`
(event-kernel) are each written once against it, so adding a code means
writing one adapter — never another simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Hashable, Protocol, runtime_checkable

__all__ = [
    "Unit",
    "RecoveryStep",
    "EnginePlan",
    "CodeBackend",
    "PriorityModel",
    "TablePriorityModel",
    "SharePriorityModel",
    "PRIORITY_MODELS",
    "make_priority_model",
    "MAX_PRIORITY",
]

#: A cache/storage unit: an XOR-code cell ``(row, disk)`` or an LRC block
#: ``("d"|"lp"|"gp", i)``.  The engine treats units as opaque hashables.
Unit = Hashable

MAX_PRIORITY = 3


@dataclass(frozen=True)
class RecoveryStep:
    """One repair step: rebuild ``target`` from the ``reads`` of one chain.

    ``detail`` carries the backend's native object for this step (an XOR
    :class:`~repro.core.scheme.ChainAssignment`, an LRC equation) so
    backend-aware consumers — the verifying datapath, analysis code — can
    reach the full structure without the engine knowing about it.
    """

    target: Unit
    reads: tuple[Unit, ...]
    detail: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class EnginePlan:
    """A complete recovery plan for one failure event, engine view.

    ``steps`` are ordered; the request stream replays each step's reads in
    sequence.  Units read by several steps repeat in the stream — the
    rereference structure FBF exploits.  ``source`` holds the backend's
    native plan object(s) for compatibility shims and analysis; it never
    participates in equality.
    """

    steps: tuple[RecoveryStep, ...]
    source: Any = field(default=None, compare=False)

    @cached_property
    def request_sequence(self) -> tuple[Unit, ...]:
        """Every unit read during recovery, in issue order."""
        return tuple(unit for step in self.steps for unit in step.reads)

    @cached_property
    def share_counts(self) -> dict[Unit, int]:
        """unit -> number of steps (selected chains) that read it."""
        counts: dict[Unit, int] = {}
        for step in self.steps:
            for unit in step.reads:
                counts[unit] = counts.get(unit, 0) + 1
        return counts

    @cached_property
    def priorities(self) -> dict[Unit, int]:
        """FBF priorities (paper Table II): share counts capped at 3."""
        return {u: min(n, MAX_PRIORITY) for u, n in self.share_counts.items()}

    def priority_of(self, unit: Unit) -> int:
        """Table II priority with the paper's default of 1 for unknowns."""
        return self.priorities.get(unit, 1)

    @cached_property
    def priority_requests(self) -> tuple[tuple[Unit, int], ...]:
        """``(unit, Table II priority)`` pairs in issue order.

        Every unit in :attr:`request_sequence` is read by at least one
        step, so it always has an entry in :attr:`priorities` — the
        pairs can be precomputed once per plan and replayed without a
        per-request lookup (the trace replay's hot path).
        """
        prio = self.priorities
        return tuple((unit, prio[unit]) for unit in self.request_sequence)

    @cached_property
    def share_requests(self) -> tuple[tuple[Unit, int], ...]:
        """``(unit, raw share count)`` pairs in issue order."""
        counts = self.share_counts
        return tuple((unit, counts[unit]) for unit in self.request_sequence)

    @property
    def targets(self) -> tuple[Unit, ...]:
        return tuple(step.target for step in self.steps)

    @property
    def unique_reads(self) -> int:
        """Distinct units that must come from disk at least once."""
        return len(self.share_counts)

    @property
    def total_requests(self) -> int:
        return len(self.request_sequence)


@runtime_checkable
class CodeBackend(Protocol):
    """What the replay engines need from an erasure code.

    Implementations must be deterministic: equal constructor parameters
    give plans and events that are equal value for value (the sweep
    engine's process pool and result cache both rely on it).
    """

    @property
    def code_label(self) -> str:
        """Row label, e.g. ``"TIP-code"`` or ``"LRC(12,2,2)"``."""
        ...

    @property
    def scheme_label(self) -> str:
        """Chain-selection mode label (``"fbf"``/``"typical"``/...)."""
        ...

    @property
    def p(self) -> int:
        """The prime parameter for XOR codes; 0 where not applicable."""
        ...

    def plan_key(self, event: Any) -> Hashable:
        """Memo key: events with equal keys share one recovery plan."""
        ...

    def build_plan(self, event: Any) -> EnginePlan:
        """The recovery plan for one failure event."""
        ...

    def generate_events(self, n: int, seed: int | None) -> list[Any]:
        """A deterministic failure trace of ``n`` events (sorted by time)."""
        ...


# -- priority models ----------------------------------------------------------

class PriorityModel(Protocol):
    """Turns a plan into the per-request hint fed to the cache policy."""

    name: str

    def bind(self, plan: EnginePlan) -> Callable[[Unit], int]:
        """A fast unit -> hint lookup for one plan's replay."""
        ...

    def sequence(self, plan: EnginePlan) -> tuple[tuple[Unit, int], ...]:
        """The plan's request stream pre-paired with hints (cached on
        the plan); what the trace replay iterates."""
        ...


class TablePriorityModel:
    """The paper's Table II hint: share count capped at 3, default 1."""

    name = "priority"

    def bind(self, plan: EnginePlan) -> Callable[[Unit], int]:
        get = plan.priorities.get
        return lambda unit: get(unit, 1)

    def sequence(self, plan: EnginePlan) -> tuple[tuple[Unit, int], ...]:
        return plan.priority_requests


class SharePriorityModel:
    """Raw chain-share counts (>= 1), for many-queue FBF variants."""

    name = "share"

    def bind(self, plan: EnginePlan) -> Callable[[Unit], int]:
        get = plan.share_counts.get
        return lambda unit: max(get(unit, 0), 1)

    def sequence(self, plan: EnginePlan) -> tuple[tuple[Unit, int], ...]:
        return plan.share_requests


PRIORITY_MODELS: dict[str, PriorityModel] = {
    "priority": TablePriorityModel(),
    "share": SharePriorityModel(),
}


def make_priority_model(hint: str) -> PriorityModel:
    """Resolve a hint name to its :class:`PriorityModel`."""
    try:
        return PRIORITY_MODELS[hint]
    except KeyError:
        raise ValueError(
            f"hint must be one of {', '.join(sorted(PRIORITY_MODELS))}, "
            f"got {hint!r}"
        ) from None
