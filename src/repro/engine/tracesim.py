"""The unified fast trace replay (no event clock), one per repo.

Hit ratio and disk-read counts (paper Figures 8 and 9) depend only on
the request *sequence*, not on timing, so this module replays recovery
request streams directly against a replacement policy — orders of
magnitude faster than the event simulation, which is reserved for the
timing metrics (Figures 10 and 11).

This is the single implementation behind every code: the
:class:`~repro.engine.backend.CodeBackend` supplies plans and events,
the replay supplies SOR worker partitioning, plan memoization, hint
models, the sanitizer hook and the result row.  The legacy per-world
entry points (``repro.sim.simulate_cache_trace``) are thin adapters over
:func:`simulate_trace`; ``repro.lrc.tracesim`` is gone.

Worker partitioning matches the paper's SOR extension: events are dealt
round-robin to ``workers`` policies, each sized ``capacity // workers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import cycle
from typing import Any, Callable, Hashable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..obs import runtime as _obs
from .backend import CodeBackend, EnginePlan, make_priority_model

__all__ = [
    "TraceSimResult",
    "PlanCache",
    "simulate_trace",
    "effective_partition",
]


@dataclass
class TraceSimResult:
    """Counters from one trace replay — any code backend, one schema."""

    policy: str
    scheme_mode: str
    code: str
    p: int
    capacity_blocks: int
    workers: int
    per_worker_blocks: int
    n_errors: int
    requests: int
    hits: int
    disk_reads: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def n_events(self) -> int:
        """Alias of ``n_errors`` (LRC batches are "events", not errors)."""
        return self.n_errors


class PlanCache:
    """Key-memoized recovery plans for one backend (shared across runs).

    One instance per backend is meant to be *shared* across every run
    that uses it — all cache sizes and policies of a sweep group, and all
    trace replays of one engine worker — since plans are deterministic
    functions of the backend's :meth:`~repro.engine.backend.CodeBackend.
    plan_key`.  ``max_entries`` bounds the memo (FIFO eviction of the
    oldest key) for long-lived sharing; the distinct-key count is small
    (``O(disks x rows^2)`` for the XOR codes), so the default is
    unbounded.
    """

    def __init__(self, backend: CodeBackend, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.backend = backend
        self.max_entries = max_entries
        self._memo: dict[Hashable, EnginePlan] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, event: Any) -> EnginePlan:
        key = self.backend.plan_key(event)
        plan = self._memo.get(key)
        if plan is None:
            self._misses += 1
            plan = self.backend.build_plan(event)
            if self.max_entries is not None and len(self._memo) >= self.max_entries:
                # FIFO: drop the oldest key (dict preserves insertion
                # order, so eviction is deterministic).
                del self._memo[next(iter(self._memo))]
            self._memo[key] = plan
        else:
            self._hits += 1
        return plan

    def stats(self) -> dict[str, int]:
        """Lifetime counters: plan-memo hits/misses and live entries."""
        return {"hits": self._hits, "misses": self._misses, "entries": len(self._memo)}

    def counts(self) -> tuple[int, int]:
        """``(hits, misses)`` — the cheap snapshot obs deltas are made of."""
        return self._hits, self._misses


def effective_partition(
    capacity_blocks: int, workers: int, n_events: int
) -> tuple[int, int]:
    """Resolve the SOR partition: ``(effective workers, blocks per worker)``.

    The effective worker count is capped at the event count (a worker
    with no events contributes nothing and would skew the capacity
    split).  A partition where every worker gets a zero-block slice of a
    *non-zero* cache is a configuration error, not a degenerate cache —
    it silently measures nothing — so it raises instead of truncating.
    """
    if capacity_blocks < 0:
        raise ValueError(f"capacity_blocks must be >= 0, got {capacity_blocks}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    eff_workers = min(workers, n_events) or 1
    if 0 < capacity_blocks < eff_workers:
        raise ValueError(
            f"workers={eff_workers} exceeds capacity_blocks={capacity_blocks}: "
            "every SOR worker would get a zero-block cache slice; lower "
            "workers or raise the cache size"
        )
    return eff_workers, capacity_blocks // eff_workers


def simulate_trace(
    backend: CodeBackend,
    events: Sequence[Any],
    policy: str = "fbf",
    capacity_blocks: int = 64,
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
    plan_cache: PlanCache | None = None,
    policy_kwargs: dict | None = None,
    hint: str = "priority",
    sanitize: bool = False,
) -> TraceSimResult:
    """Replay the recovery request stream of ``events`` through a cache.

    ``capacity_blocks`` is the *total* cache in chunks; with ``workers > 1``
    it is partitioned evenly (integer division, like the paper's per-process
    cache slices) by :func:`effective_partition`, which raises
    :class:`ValueError` when the effective worker count exceeds a non-zero
    capacity (every worker would silently get a zero-block cache).  The
    resolved slice is recorded on ``TraceSimResult.per_worker_blocks``.  ``hint`` selects the :class:`~repro.engine.backend.
    PriorityModel` accompanying each request: ``"priority"`` (the paper's
    1..3 value) or ``"share"`` (the raw chain share count, for many-queue
    FBF variants).  ``sanitize`` wraps every policy in
    :class:`repro.checks.SimSanitizer`, which raises
    :class:`repro.checks.InvariantViolation` the moment a cache invariant
    (FBF single-residency, demotion order, capacity accounting) breaks.

    With :mod:`repro.obs` enabled the call is wrapped in an
    ``engine.simulate_trace`` span and publishes replay/request counters
    plus the plan-cache hit/miss delta; disabled, the only added cost is
    this one flag test.
    """
    if _obs.ENABLED:
        if plan_cache is None:
            plan_cache = PlanCache(backend)
        before_hits, before_misses = plan_cache.counts()
        with _obs.span(
            "engine.simulate_trace",
            {
                "code": backend.code_label,
                "policy": policy if policy_factory is None else "custom",
                "capacity_blocks": capacity_blocks,
                "workers": workers,
            },
        ):
            result = _simulate_trace_impl(
                backend,
                events,
                policy=policy,
                capacity_blocks=capacity_blocks,
                workers=workers,
                policy_factory=policy_factory,
                plan_cache=plan_cache,
                policy_kwargs=policy_kwargs,
                hint=hint,
                sanitize=sanitize,
            )
        after_hits, after_misses = plan_cache.counts()
        _obs.counter("engine.replays").inc()
        _obs.counter("engine.requests").inc(result.requests)
        _obs.counter("engine.cache_hits").inc(result.hits)
        _obs.counter("engine.plan_cache.hits").inc(after_hits - before_hits)
        _obs.counter("engine.plan_cache.misses").inc(after_misses - before_misses)
        _obs.gauge("engine.plan_cache.entries").set(len(plan_cache))
        return result
    return _simulate_trace_impl(
        backend,
        events,
        policy=policy,
        capacity_blocks=capacity_blocks,
        workers=workers,
        policy_factory=policy_factory,
        plan_cache=plan_cache,
        policy_kwargs=policy_kwargs,
        hint=hint,
        sanitize=sanitize,
    )


def _simulate_trace_impl(
    backend: CodeBackend,
    events: Sequence[Any],
    policy: str = "fbf",
    capacity_blocks: int = 64,
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
    plan_cache: PlanCache | None = None,
    policy_kwargs: dict | None = None,
    hint: str = "priority",
    sanitize: bool = False,
) -> TraceSimResult:
    """The replay body — identical with obs on or off (row equality)."""
    model = make_priority_model(hint)
    if plan_cache is None:
        plan_cache = PlanCache(backend)
    elif plan_cache.backend is not backend:
        raise ValueError("plan_cache was built for a different backend")

    events = sorted(events)
    workers, per_worker = effective_partition(capacity_blocks, workers, len(events))
    kwargs = policy_kwargs or {}
    if policy_factory is not None:
        policies = [policy_factory(per_worker) for _ in range(workers)]
    else:
        policies = [make_policy(policy, per_worker, **kwargs) for _ in range(workers)]
    if sanitize:
        # Imported here: repro.checks imports the event kernel, which
        # would cycle through repro.sim at module import time.
        from ..checks.sanitizer import SimSanitizer

        policies = [SimSanitizer(p) for p in policies]

    # Hot loop: the (unit, hint) pairs are precomputed once per plan
    # shape (cached on the EnginePlan), so the per-request work is one
    # tuple build and one policy call.
    get_plan = plan_cache.get
    sequence = model.sequence
    for event, cache in zip(events, cycle(policies)):
        stripe = event.stripe
        request = cache.request
        for unit, hint_value in sequence(get_plan(event)):
            request((stripe, unit), priority=hint_value)

    hits = sum(p.stats.hits for p in policies)
    misses = sum(p.stats.misses for p in policies)
    return TraceSimResult(
        policy=policy if policy_factory is None else getattr(policies[0], "name", "custom"),
        scheme_mode=backend.scheme_label,
        code=backend.code_label,
        p=backend.p,
        capacity_blocks=capacity_blocks,
        workers=workers,
        per_worker_blocks=per_worker,
        n_errors=len(events),
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )
