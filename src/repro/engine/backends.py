"""The two backend families: XOR 3DFT codes and Local Reconstruction Codes.

Each adapter translates its world's native planner into the engine
contract of :mod:`repro.engine.backend`:

* :class:`XORBackend` — wraps :func:`repro.core.generate_plan` over a
  :class:`~repro.codes.layout.CodeLayout` (TIP, HDD1, STAR,
  Triple-STAR).  Steps mirror the plan's chain assignments; the plan key
  is the error's ``(disk, start_row, length)`` shape — the paper's "same
  format of partial stripe error" memo.
* :class:`LRCBackend` — wraps :func:`repro.lrc.plan_lrc_recovery` over an
  :class:`~repro.lrc.LRCCode`.  Steps pair each failed block with one
  selected equation (the greedy planner picks exactly one rank-raising
  equation per failure); the plan key is the failed-block batch itself.

Both produce byte-identical request streams and priorities to the
pre-unification replay implementations — pinned by
``tests/engine/test_golden_equivalence.py``.

Imports of :mod:`repro.sim` are deferred into the geometry/datapath
factories: the sim package's controller imports this module, so a
module-level import would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable

from ..codes.layout import CodeLayout
from ..core.priorities import PriorityDictionary
from ..core.scheme import SchemeMode, generate_plan
from ..lrc.code import LRCCode
from ..lrc.scheme import plan_lrc_recovery
from ..lrc.workload import LRCFailureEvent, LRCWorkloadConfig, generate_lrc_failures
from ..workloads.errors import ErrorTraceConfig, PartialStripeError, generate_errors
from .backend import EnginePlan, RecoveryStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.array import ArrayGeometry, FlatGeometry
    from ..sim.datapath import VerifyingDataPath

__all__ = ["XORBackend", "LRCBackend"]

#: Multi-failure-heavy batch weights for LRC benchmark workloads: the
#: single-failure-dominant field distribution makes every recovery a local
#: repair with no chain overlap, which exercises nothing; the overlap FBF
#: targets appears once batches routinely span groups (cf. the CLI's
#: footnote-3 sweep).
LRC_BENCH_WEIGHTS: tuple[float, ...] = (0.3, 0.3, 0.25, 0.15)


class XORBackend:
    """Engine adapter for the four XOR 3DFT array codes."""

    def __init__(self, layout: CodeLayout, scheme_mode: SchemeMode = "fbf"):
        if scheme_mode not in ("typical", "fbf", "greedy"):
            raise ValueError(f"unknown scheme mode {scheme_mode!r}")
        self.layout = layout
        self.scheme_mode: SchemeMode = scheme_mode

    def __repr__(self) -> str:
        return f"XORBackend({self.layout.name}, p={self.layout.p}, {self.scheme_mode})"

    @property
    def code_label(self) -> str:
        return self.layout.name

    @property
    def scheme_label(self) -> str:
        return self.scheme_mode

    @property
    def p(self) -> int:
        return self.layout.p

    def plan_key(self, event: PartialStripeError) -> Hashable:
        return event.shape

    def build_plan(self, event: PartialStripeError) -> EnginePlan:
        plan = generate_plan(self.layout, event.cells(self.layout), self.scheme_mode)
        steps = tuple(
            RecoveryStep(target=a.failed_cell, reads=a.reads, detail=a)
            for a in plan.assignments
        )
        return EnginePlan(steps=steps, source=(plan, PriorityDictionary(plan)))

    def generate_events(self, n: int, seed: int | None) -> list[PartialStripeError]:
        return generate_errors(self.layout, ErrorTraceConfig(n_errors=n, seed=seed))

    # -- timed-replay hooks ---------------------------------------------------
    def make_geometry(self, chunk_size: int, stripes: int) -> "ArrayGeometry":
        from ..sim.array import ArrayGeometry

        return ArrayGeometry(layout=self.layout, chunk_size=chunk_size, stripes=stripes)

    def make_datapath(self, payload_size: int, seed: int) -> "VerifyingDataPath":
        from ..sim.datapath import PayloadOracle, VerifyingDataPath

        return VerifyingDataPath(
            PayloadOracle(self.layout, payload_size=payload_size, seed=seed)
        )


class LRCBackend:
    """Engine adapter for ``LRC(k, l, g)`` (the paper's footnote 3)."""

    def __init__(
        self,
        code: LRCCode | None = None,
        batch_size_weights: tuple[float, ...] = LRC_BENCH_WEIGHTS,
    ):
        self.code = code if code is not None else LRCCode()
        self.batch_size_weights = batch_size_weights

    def __repr__(self) -> str:
        return f"LRCBackend({self.code.name})"

    @property
    def code_label(self) -> str:
        return self.code.name

    @property
    def scheme_label(self) -> str:
        # LRC planning has a single strategy (greedy full-rank equation
        # selection, locals first) — reported under the paper's label.
        return "fbf"

    @property
    def p(self) -> int:
        return 0

    def plan_key(self, event: LRCFailureEvent) -> Hashable:
        return event.failed

    def build_plan(self, event: LRCFailureEvent) -> EnginePlan:
        plan = plan_lrc_recovery(self.code, event.failed)
        # The greedy planner adds exactly one rank-raising equation per
        # failed block, so the two tuples zip one-to-one.  Reads stay in
        # equation order — the stream the LRC replay always produced.
        steps = tuple(
            RecoveryStep(target=target, reads=reads, detail=eq)
            for target, eq, reads in zip(
                plan.failed, plan.equations, plan.reads_per_equation
            )
        )
        return EnginePlan(steps=steps, source=plan)

    def generate_events(self, n: int, seed: int | None) -> list[LRCFailureEvent]:
        return generate_lrc_failures(
            self.code,
            LRCWorkloadConfig(
                n_events=n, seed=seed, batch_size_weights=self.batch_size_weights
            ),
        )

    # -- timed-replay hooks ---------------------------------------------------
    def make_geometry(self, chunk_size: int, stripes: int) -> "FlatGeometry":
        from ..sim.array import FlatGeometry

        return FlatGeometry(
            units=self.code.all_blocks, chunk_size=chunk_size, stripes=stripes
        )

    def make_datapath(self, payload_size: int, seed: int) -> Any:
        raise ValueError(
            f"verify_payloads is not supported by {self.code.name}: the LRC "
            "datapath solves equations jointly per batch, not per chain"
        )
