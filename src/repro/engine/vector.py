"""Vectorized (numpy) grid replay: policy state as arrays, not dicts.

The stepped python replay walks every request through ``request_many``
once per (policy, capacity, workers) cell.  This module replays the same
interned streams as **lanes**: one lane per (per-worker capacity x SOR
worker) pair, all lanes advanced together one *time step* — request
``t`` of every worker substream — per iteration.  The python loop is
then O(longest substream), a few hundred steps for the fig8/fig9 axes,
and every per-request decision becomes a numpy op across all lanes.

Because each step costs a roughly fixed number of numpy dispatches
regardless of how many lanes it touches, the backend is built around a
**fleet**: lanes from *different streams* (codes) — and for the two
bucket-structured policies, from different *policies* — share one step
loop.  Lanes are sorted by substream length across the whole fleet, so
the active set at step ``t`` is always a contiguous prefix and the five
codes' grids cost one max-length loop instead of five.

Exactness, not approximation.  Each kernel mirrors its policy's
``request_many`` decision-for-decision:

* **fifo** — hits never reorder arrival, so residency is one compare of
  the block's admission index against the lane's admission counter
  (the same trick ``FIFOCache.request_many`` uses); the update is
  branchless (``where(hit, old, counter)``).
* **lru** — a block's recency rank equals its Mattson reuse distance,
  counted as "blocks with a later last access"; a hit at capacity ``c``
  is ``rank < c``, so one rank histogram per stream answers every
  capacity at once (pinned to the Fenwick profile by the equivalence
  tests).
* **lfu / fbf** — one unified *bucket* kernel: both keep blocks in
  priority buckets with LRU order inside each bucket and evict from the
  smallest occupied bucket.  LFU moves a hit up one bucket and admits
  at 1; FBF (registry default: 3 queues, demote-on-hit) moves a hit
  *down* one bucket and admits at ``min(priority, 3)``.  A per-lane
  flag selects the transition, so both policies ride one loop.
* **arc** — cases I-IV exactly as the python ``ARCCache``, four lists
  as packed state codes, the adaptation target ``p`` in float64 with
  bit-identical arithmetic, and the two ``_replace`` flavors (``>``
  vs ``>=`` on a B2 ghost hit) preserved.

Queue-ordered eviction uses **packed rings** (:class:`_Rings`): per
(lane, queue) doubly-linked circular lists over a step-major arena —
step ``t``'s appends land in a contiguous slot range, so a whole step's
links are slice writes.  Rings hold *only current entries*: a block's
old entry is unlinked the moment it moves, so the ring head is always
the true LRU victim and "is this ring empty" is one structural probe.
Each block's state word packs ``(queue-code << shift) | ring-slot``
into int32, making presence, queue membership, and queue position one
gather; the bucket kernel additionally keeps a per-lane occupancy
bitmask whose lowest set bit (read off the float exponent) is the
victim bucket.

Two structural exactness facts the kernels lean on:

* LFU's mirrored ``min_freq`` always equals the smallest occupied
  bucket at eviction time (every miss re-anchors it at 1 with the
  admitted block, and the hit path bumps it exactly when its bucket
  drains), so the victim bucket is ``argmax(counts > 0)`` and the
  python mirror needs no replica here.
* A lane whose per-worker capacity covers its worker's whole working
  set never evicts, so every policy scores it identically:
  ``hits = requests - distinct``.  Such saturated lanes are solved
  analytically and never enter a kernel.

Blocks are renamed to per-worker-local dense ids (policies never compare
ids, only test equality — the same argument that makes interning exact),
and every policy admits on miss / evicts only when full, so unsaturated
lanes at any capacity step exactly.

The python path remains the golden reference: the property tests replay
random small grids through both backends and require bit-identical rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover
    from .stream import InternedStream

try:  # gate, don't require: callers fall back to the python backend.
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the env
    np = None

__all__ = ["NUMPY_AVAILABLE", "VECTOR_POLICIES", "VectorFleet", "VectorReplay"]

NUMPY_AVAILABLE = np is not None

#: Registry policies with an exact vector kernel.
VECTOR_POLICIES = frozenset({"fifo", "lru", "lfu", "arc", "fbf"})

# Guard on the per-worker substream length; the packed node words in
# _Rings bound total arena slots, not steps, so this is just a sanity
# ceiling far beyond the bench axes.
_MAX_STEPS = 1 << 24

# ARC list codes in the packed state word.
_T1, _T2, _B1, _B2 = 1, 2, 3, 4


class _WorkerView:
    """Per-worker-local request matrix, workers sorted by length.

    ``req[t, j]`` is the ``t``-th request of the ``j``-th *longest*
    worker substream as a dense local id in ``[0, n_local[j])``;
    ``hints[t, j]`` carries the FBF favorability class of the same
    request.  Sorting workers by length keeps every stream's active
    workers a contiguous prefix at any step.
    """

    __slots__ = ("workers", "steps", "n_local", "lengths", "req", "hints",
                 "max_local", "max_freq", "total_requests")

    def __init__(self, stream: "InternedStream", workers: int):
        subs = stream.worker_substreams(workers)
        self.workers = workers
        raw_lengths = np.array(
            [len(b) for b, _ in subs] or [0], dtype=np.int64
        )[: len(subs)]
        order = np.argsort(-raw_lengths, kind="stable")
        lengths = raw_lengths[order]
        self.lengths = lengths
        steps = self.steps = int(lengths[0]) if len(subs) else 0
        if steps >= _MAX_STEPS:
            raise ValueError("substream too long for the vector backend")
        total = int(lengths.sum())
        hints = np.ones((steps, workers), dtype=np.int32)
        if total:
            # One combined unique over worker-tagged block ids replaces
            # the per-worker loop: tags sort by (worker, bid), so each
            # worker's distinct blocks are a contiguous run and the
            # local id is the rank within that run -- exactly what the
            # per-worker np.unique produced.
            cat = np.concatenate(
                [np.frombuffer(subs[w][0], dtype=np.int32) for w in order]
            ).astype(np.int64)
            hcat = np.concatenate(
                [np.frombuffer(subs[w][1], dtype=np.int32) for w in order]
            )
            jidx = np.repeat(np.arange(workers, dtype=np.int64), lengths)
            row0 = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            t_in = np.arange(total, dtype=np.int64) - np.repeat(row0, lengths)
            n_keys = max(stream.n_blocks, 1)
            uniq, inv = np.unique(jidx * n_keys + cat, return_inverse=True)
            ustart = np.searchsorted(
                uniq, np.arange(workers, dtype=np.int64) * n_keys
            )
            n_local = np.diff(np.append(ustart, len(uniq)))
            # Local ids are < n_local <= substream length: int16 halves
            # the request-matrix traffic whenever they fit.
            req_dt = np.int16 if int(n_local.max()) < 2**15 else np.int32
            req = np.zeros((steps, workers), dtype=req_dt)
            flat = t_in * workers + jidx
            req.ravel()[flat] = (inv - ustart[jidx]).astype(req_dt)
            hints.ravel()[flat] = hcat
            max_freq = int(np.bincount(inv).max())
        else:
            n_local = np.zeros(max(workers, 1), dtype=np.int64)[:workers]
            req = np.zeros((steps, workers), dtype=np.int16)
            max_freq = 1
        self.n_local = n_local
        self.req = req
        self.hints = hints
        self.max_local = int(n_local.max()) if workers else 0
        self.max_freq = max_freq
        self.total_requests = int(lengths.sum())


class _Rings:
    """Per-(lane, queue) doubly-linked circular lists over a packed arena.

    Unlike a lazy queue, rings hold *only current entries*: when a block
    moves (or is evicted), its old entry is unlinked on the spot, so the
    head of a ring is always its oldest resident and "queue non-empty"
    is a structural fact.  The layout is tuned for the kernels' step
    loop:

    * the arena is *step-major and prefix-packed*: step ``t``'s slots
      are the contiguous run ``rowstart[t] + [0, phases * m_t)``, sized
      by the active-lane prefix — appending a whole step is three slice
      writes plus one link scatter, and the arena holds exactly one slot
      per (active lane, step, phase), nothing more;
    * each ring owns a dummy slot that is both head and tail anchor —
      appending to an empty ring and to a populated one are the same
      link writes;
    * each lane owns a self-looped *trash* slot; a block with no live
      entry points there, so unlinking "nothing" degenerates to writing
      the trash slot's links to itself.

    Slot indices (arena + dummies + trash) fit in ``shift`` bits so the
    kernels can pack a small per-block code (bucket / ARC list) into the
    high bits of one int32 node pointer — block state and queue position
    are then a single gather.  Lanes touch disjoint slots, so one
    vectorized call may operate on any set of distinct lanes.
    """

    __slots__ = ("nxt", "prv", "ab", "rowstart", "dummy0", "trash",
                 "shift", "_L")

    def __init__(self, lanes: "_Lanes", n_queues: int, phases: int = 1):
        L = lanes.n_lanes
        counts = np.asarray(lanes.prefix, dtype=np.int64) * phases
        rowstart = np.concatenate(([0], np.cumsum(counts)))
        arena = int(rowstart[-1])
        total = arena + L * n_queues + L
        # Codes share the node word above `shift`; int32 caps the sum
        # of index and code bits at 31.
        shift = max(total.bit_length(), 1)
        if shift + max(n_queues - 1, 1).bit_length() > 31:
            raise ValueError("lane set too large for packed ring nodes")
        self.shift = shift
        self.rowstart = rowstart.tolist()
        self.dummy0 = arena
        self._L = L
        self.ab = np.empty(arena, dtype=np.int32)
        self.nxt = np.empty(total, dtype=np.int32)
        self.prv = np.empty(total, dtype=np.int32)
        anchors = np.arange(arena, total, dtype=np.int32)
        self.nxt[arena:] = anchors  # empty rings + self-looped trash
        self.prv[arena:] = anchors
        self.trash = anchors[L * n_queues:]

    def unlink(self, slots) -> None:
        """Unlink entry slots (trash slots unlink to a harmless self-loop)."""
        nxt, prv = self.nxt, self.prv
        pp = prv[slots]
        pn = nxt[slots]
        nxt[pp] = pn
        prv[pn] = pp

    def append_step(self, q, lanes, start: int, m: int, blocks):
        """Append one slot per active lane at tails of rings ``q``.

        The step's slots are the contiguous run ``[start, start + m)``
        (same order as ``lanes``), so the per-slot writes are slices;
        returns the int32 slot ids.
        """
        nxt, prv = self.nxt, self.prv
        slots = np.arange(start, start + m, dtype=np.int32)
        self.ab[start:start + m] = blocks
        dq = q * self._L + lanes + self.dummy0
        tl = prv[dq]
        nxt[tl] = slots
        prv[start:start + m] = tl
        nxt[start:start + m] = dq
        prv[dq] = slots
        return slots

    def append_at(self, q, lanes, slots, blocks) -> None:
        """Append at arbitrary (reserved, unique) slot ids."""
        nxt, prv = self.nxt, self.prv
        self.ab[slots] = blocks
        dq = q * self._L + lanes + self.dummy0
        tl = prv[dq]
        nxt[tl] = slots
        prv[slots] = tl
        nxt[slots] = dq
        prv[dq] = slots

    def pop_head(self, q, lanes):
        """Unlink and return (slot, block, now-empty) at the heads of ``q``.

        Rings must be non-empty — guaranteed structurally by the
        kernels: they only pop rings whose occupancy they just checked
        or whose size their counters prove positive, exactly where the
        python policies pop.
        """
        nxt, prv = self.nxt, self.prv
        dv = q * self._L + lanes + self.dummy0
        victim = nxt[dv]
        vn = nxt[victim]
        nxt[dv] = vn
        prv[vn] = dv
        return victim, self.ab[victim], vn == dv


class _LaneSpec:
    """One (stream view, capacity set) contribution to a lane set."""

    __slots__ = ("view", "caps", "flavor", "slot_offset")

    def __init__(self, view: _WorkerView, caps: tuple[int, ...],
                 flavor: str | None, slot_offset: int):
        self.view = view
        self.caps = caps
        self.flavor = flavor  # "lfu" | "fbf" | None
        self.slot_offset = slot_offset


class _Lanes:
    """Fleet lane set: unsaturated (capacity, worker) lanes of many specs.

    A lane exists only where ``cap < n_local[worker]`` — saturated cells
    never evict and are scored analytically.  Lanes are sorted by
    substream length across *all* specs, so the per-step active set is
    the prefix ``[:prefix[t]]``.  ``kflat[t]`` is the flat index of each
    active lane's (lane, block) state cell; ``kloc[t]`` the local block
    id; ``admit[t]`` the admission bucket (bucket kernel only);
    ``slot`` maps each lane to its (spec, capacity) output slot.
    """

    __slots__ = ("n_lanes", "state_size", "base", "widths", "capv",
                 "lengths", "prefix", "last_step", "kflat", "kloc",
                 "admit", "is_lfu", "slot", "n_slots", "n_buckets", "ar")

    def __init__(self, specs: Sequence[_LaneSpec], with_admit: bool = False):
        lens, caps, slots, widths, worker_of, lfu = [], [], [], [], [], []
        for spec in specs:
            view = spec.view
            caps_arr = np.asarray(spec.caps, dtype=np.int64)
            live = caps_arr[None, :] < view.n_local[:, None]
            per_worker = live.sum(axis=1)
            workers = np.repeat(
                np.arange(view.workers, dtype=np.int64), per_worker
            )
            if workers.size:
                cap_idx = np.concatenate(
                    [np.flatnonzero(live[w]) for w in range(view.workers)
                     if per_worker[w]]
                )
            else:
                cap_idx = np.empty(0, dtype=np.int64)
            lens.append(view.lengths[workers])
            caps.append(caps_arr[cap_idx])
            slots.append(cap_idx + spec.slot_offset)
            widths.append(np.full(workers.size, view.max_local, np.int64))
            worker_of.append(workers)
            lfu.append(np.full(workers.size, spec.flavor == "lfu", bool))
        lengths = np.concatenate(lens) if lens else np.empty(0, np.int64)
        order = np.argsort(-lengths, kind="stable")
        lengths = lengths[order]
        self.lengths = lengths
        L = self.n_lanes = int(lengths.size)
        self.capv = np.concatenate(caps)[order].astype(np.int32) if L else \
            np.empty(0, np.int32)
        self.slot = np.concatenate(slots)[order] if L else \
            np.empty(0, np.int64)
        self.is_lfu = np.concatenate(lfu)[order] if L else np.empty(0, bool)
        widths_s = np.concatenate(widths)[order] if L else \
            np.empty(0, np.int64)
        self.widths = widths_s
        base = np.concatenate(([0], np.cumsum(widths_s)))[:-1]
        self.state_size = int(widths_s.sum())
        if self.state_size < 2**31:  # halve the kflat gather-index matrix
            base = base.astype(np.int32)
        self.base = base
        steps = int(lengths[0]) if L else 0
        self.last_step = steps
        # active[t] = lanes with a request at step t (length > t, hence
        # strictly before -t in the ascending -lengths: side="left").
        self.prefix = np.searchsorted(
            -lengths, -np.arange(steps), side="left"
        ).tolist()
        self.n_slots = max(
            (s.slot_offset + len(s.caps) for s in specs), default=0
        )
        # Request/admit matrices: build spec-contiguous column blocks,
        # then permute columns into global lane order in one gather
        # (much cheaper than scattering strided columns per spec).
        kloc_dt = np.result_type(
            np.int16, *(s.view.req.dtype for s in specs)
        ) if specs else np.int16
        kloc_u = np.zeros((steps, L), dtype=kloc_dt)
        admit_u = np.ones((steps, L), dtype=np.int8) if with_admit else None
        max_freq = 1
        col0 = 0
        for si, spec in enumerate(specs):
            view = spec.view
            workers = worker_of[si]
            n = workers.size
            if n:
                # view.req spans the view's longest worker, which may be
                # longer than `steps` when that worker's every cell is
                # saturated; rows past `steps` belong to no active lane.
                rows = min(view.steps, steps)
                kloc_u[:rows, col0:col0 + n] = view.req[:rows, workers]
                if spec.flavor == "lfu":
                    max_freq = max(max_freq, view.max_freq)
                elif spec.flavor == "fbf" and admit_u is not None:
                    if view.hints.size and int(view.hints.min()) < 1:
                        raise ValueError("priority must be a positive int")
                    admit_u[:rows, col0:col0 + n] = np.minimum(
                        view.hints[:rows, workers], 3
                    )
            col0 += n
        self.kloc = kloc_u[:, order] if L else kloc_u
        self.admit = admit_u[:, order] if (with_admit and L) else admit_u
        self.kflat = self.base[None, :] + self.kloc
        # Bucket count for the unified kernel: LFU frequencies go up to
        # max_freq; FBF uses 1..3 (plus the unused ring 0).
        self.n_buckets = max(max_freq + 1, 4)
        self.ar = np.arange(L, dtype=np.int64)


def _saturated_hits(view: _WorkerView, caps: tuple[int, ...]) -> list[int]:
    """Analytic hits of the saturated cells, per capacity."""
    caps_arr = np.asarray(caps, dtype=np.int64)
    live = caps_arr[None, :] < view.n_local[:, None]
    extra = (view.lengths - view.n_local).astype(np.int64)
    return [int(extra[~live[:, c]].sum()) for c in range(len(caps))]


def _kernel_fifo(lanes: _Lanes):
    """FIFO: hit iff the block's admission index is within the last
    ``cap`` admissions of the lane (hits never reorder arrival)."""
    last_admit = np.full(lanes.state_size, -1, dtype=np.int32)
    adm = np.zeros(lanes.n_lanes, dtype=np.int32)
    hits = np.zeros(lanes.n_lanes, dtype=np.int64)
    capv = lanes.capv
    kflat = lanes.kflat
    prefix = lanes.prefix
    for t in range(lanes.last_step):
        m = prefix[t]
        kk = kflat[t, :m]
        la = last_admit[kk]
        hit = (la >= 0) & (la >= adm[:m] - capv[:m])
        hits[:m] += hit
        last_admit[kk] = np.where(hit, la, adm[:m])
        adm[:m] += ~hit
    return hits


def _kernel_bucket(lanes: _Lanes):
    """Unified LFU/FBF: priority buckets with in-bucket LRU order,
    victim from the smallest occupied bucket.  Per-lane ``is_lfu``
    selects hit-promote/admit-at-1 (LFU) vs hit-demote/admit-at-hint
    (FBF).  Each block's node word packs (bucket << shift) | ring slot,
    so presence, bucket, and queue position are one gather; rings hold
    only current entries, so occupancy checks and victim picks are
    structural."""
    L = lanes.n_lanes
    FQ = lanes.n_buckets
    rings = _Rings(lanes, FQ)
    S = rings.shift
    node = np.repeat(rings.trash, lanes.widths)
    size = np.zeros(L, dtype=np.int32)
    hits = np.zeros(L, dtype=np.int64)
    capv = lanes.capv
    # Hit transition as one fused op: LFU promotes, FBF demotes (floored
    # at 1); misses are overwritten by the admission bucket anyway.
    dirv = np.where(lanes.is_lfu, 1, -1).astype(np.int32)
    one = np.int32(1 << S)
    mask = np.int32((1 << S) - 1)
    # Per-lane bucket-occupancy bitmask (bit b set = ring b non-empty):
    # the victim bucket is the lowest set bit — read off the float
    # exponent, exact for any bucket count — instead of probing every
    # ring's dummy per evicting lane.
    occ = np.zeros(L, dtype=np.int64 if FQ > 31 else np.int32)
    one_b = occ.dtype.type(1)
    nxt = rings.nxt
    base = lanes.base
    trash0 = int(rings.trash[0])
    ar32 = np.arange(L, dtype=np.int32)
    arL = ar32 + np.int32(rings.dummy0)
    rowstart = rings.rowstart
    prefix = lanes.prefix
    steps = lanes.last_step
    kks = [lanes.kflat[t, :prefix[t]] for t in range(steps)]
    klocs = [lanes.kloc[t, :prefix[t]] for t in range(steps)]
    adms = [lanes.admit[t, :prefix[t]] for t in range(steps)]
    for t in range(steps):
        m = prefix[t]
        kk = kks[t]
        nv = node[kk]
        hit = nv >= one
        hits[:m] += hit
        b = nv >> S
        up = np.maximum(b + dirv[:m], 1)
        newb = np.where(hit, up, adms[t])
        # Unlink the block's current entry (no-op self-loop on miss).
        rings.unlink(nv & mask)
        # Clear old-bucket bits whose ring the unlink emptied (miss
        # lanes probe the unused bucket-0 dummy and clear unused bit 0).
        dqo = b * L + arL[:m]
        occ[:m] &= ~((nxt[dqo] == dqo) * np.left_shift(one_b, b))
        miss = ~hit
        evm = miss & (size[:m] >= capv[:m])
        if evm.any():
            ev = np.flatnonzero(evm)
            x = occ[ev]
            vq = np.frexp((x & -x).astype(np.float64))[1] - 1
            _, vb, emptied = rings.pop_head(vq, ev)
            node[base[ev] + vb] = trash0 + ev
            occ[ev] = x & ~(np.left_shift(one_b, vq) * emptied)
        size[:m] += miss ^ evm
        slots = rings.append_step(newb, ar32[:m], rowstart[t], m, klocs[t])
        occ[:m] |= np.left_shift(one_b, newb)
        node[kk] = (newb << S) | slots
    return hits


def _kernel_arc(lanes: _Lanes):
    """ARC cases I-IV, four lists as node codes, float64 ``p``.

    Each directory block's node word packs (list code << shift) | ring
    slot — 0 absent, 1/2 = T1/T2, 3/4 = B1/B2.  Only four occupancy
    counters are maintained (T1, T2, L1 = T1+B1, whole directory);
    B1/B2 sizes are derived in the ghost branch.  Case II and III share
    one merged ``_replace`` (the ``>`` vs ``>=`` flavors fold into a
    per-lane strictness flag), and case IV's drops and replacements
    collapse into one five-group head pop: the groups touch disjoint
    (lane, ring) pairs and none of their decisions depends on another
    group's update.
    """
    L = lanes.n_lanes
    rings = _Rings(lanes, 5, phases=2)
    S = rings.shift
    node = np.repeat(rings.trash, lanes.widths)
    t1n = np.zeros(L, dtype=np.int32)
    t2n = np.zeros(L, dtype=np.int32)
    l1n = np.zeros(L, dtype=np.int32)
    ldn = np.zeros(L, dtype=np.int32)
    p = np.zeros(L, dtype=np.float64)
    hits = np.zeros(L, dtype=np.int64)
    capv = lanes.capv
    cfloat = capv.astype(np.float64)
    base = lanes.base
    trash0 = np.int32(rings.trash[0])
    one32 = np.int32(1)
    ar32 = np.arange(L, dtype=np.int32)
    rowstart = rings.rowstart
    mask = np.int32((1 << S) - 1)
    t1c = np.int32(_T1)
    t2c = np.int32(_T2)
    qcodes = np.array([_B1, _T1, _B2, _T1, _T2], dtype=np.int64)
    prefix = lanes.prefix
    steps = lanes.last_step
    kks = [lanes.kflat[t, :prefix[t]] for t in range(steps)]
    klocs = [lanes.kloc[t, :prefix[t]] for t in range(steps)]

    def demote(sel, vq, gbase):
        """Evict rings ``vq``'s LRU entries to the matching ghost ring."""
        _, vb, _ = rings.pop_head(vq, sel)
        vcell = base[sel] + vb
        gq = vq + 2
        gslot = (sel + gbase).astype(np.int32)
        rings.append_at(gq, sel, gslot, vb)
        node[vcell] = (gq.astype(np.int32) << S) | gslot
        return vcell

    with np.errstate(divide="ignore", invalid="ignore"):
        for t in range(steps):
            m = prefix[t]
            kk = kks[t]
            gbase = rowstart[t] + m  # this step's phase-1 (ghost) slots
            nv = node[kk]
            e = nv >> S
            # Case I: resident hit — T1 entries move to T2 (leaving L1).
            r1 = e == _T1
            hit = r1 | (e == _T2)
            hits[:m] += hit
            t1n[:m] -= r1
            t2n[:m] += r1
            l1n[:m] -= r1
            # Unlink the block's entry (ghosts too; miss = trash no-op).
            rings.unlink(nv & mask)
            # Cases II/III: ghost hit — adapt p, make room, go to T2.
            gh = e >= _B1
            if gh.any():
                sel = np.flatnonzero(gh)  # == the ghost lanes' ids
                in2 = e[sel] == _B2
                b1v = l1n[sel] - t1n[sel]
                b2v = ldn[sel] - l1n[sel] - t2n[sel]
                psel = p[sel]
                pup = np.minimum(cfloat[sel],
                                 psel + np.maximum(b2v / b1v, 1.0))
                pdn = np.maximum(0.0, psel - np.maximum(b1v / b2v, 1.0))
                psel = np.where(in2, pdn, pup)
                p[sel] = psel
                tl = t1n[sel]
                cond = (tl >= 1) & np.where(in2, tl >= psel, tl > psel)
                demote(sel, np.where(cond, 1, 2), gbase)
                t1n[sel] -= cond
                t2n[sel] -= ~cond
                l1n[sel] -= ~in2  # the hit ghost leaves B1...
                t2n[sel] += 1     # ...or B2 (derived) and joins T2
            # Case IV: cold miss — trim the directory, admit into T1.
            missm = e == 0
            anymiss = bool(missm.any())
            if anymiss:
                ms = np.flatnonzero(missm)
                cm = capv[ms]
                t1m = t1n[ms]
                l1 = l1n[ms]
                ld = ldn[ms]
                case_a = l1 == cm
                a1m = case_a & (t1m < cm)
                a2m = case_a ^ a1m
                case_b = ~case_a & (ld >= cm)
                b2cm = case_b & (ld == cm + cm)
                repm = a1m | case_b
                rl = ms[repm]
                t1r = t1m[repm]
                cond = (t1r >= 1) & (t1r > p[rl])
                groups = [ms[a1m], ms[a2m], ms[b2cm], rl[cond], rl[~cond]]
                sizes = [g.size for g in groups]
                sel = np.concatenate(groups)
                if sel.size:
                    n_drop = sizes[0] + sizes[1] + sizes[2]
                    qv = np.repeat(qcodes, sizes)
                    _, vb, _ = rings.pop_head(qv, sel)
                    vcell = base[sel] + vb
                    node[vcell[:n_drop]] = trash0 + sel[:n_drop]
                    grl = sel[n_drop:]
                    if grl.size:
                        gq = qv[n_drop:] + 2
                        gslot = (grl + gbase).astype(np.int32)
                        rings.append_at(gq, grl, gslot, vb[n_drop:])
                        node[vcell[n_drop:]] = \
                            (gq.astype(np.int32) << S) | gslot
                    t1n[groups[3]] -= 1
                    t2n[groups[4]] -= 1
                # Admission +1 fused with the drop decrements: groups 0/1
                # leave L1, groups 0/1/2 leave the directory, group 1
                # leaves T1.
                t1n[ms] += one32 - a2m
                l1n[ms] += one32 - case_a
                ldn[ms] += one32 - (case_a | b2cm)
            # Request lands in T1 on a miss, T2 on any kind of hit.
            code = np.where(missm, t1c, t2c) if anymiss \
                else np.full(m, _T2, dtype=np.int32)
            slots = rings.append_step(code, ar32[:m], rowstart[t], m,
                                      klocs[t])
            node[kk] = (code << S) | slots
    return hits


def _lru_fleet(jobs: Sequence[tuple[_WorkerView, tuple[int, ...]]]):
    """All jobs' LRU hits from one rank-histogram loop.

    A block's recency rank equals its reuse distance, so one histogram
    of ranks per job answers every capacity (including saturated ones)
    as a prefix sum — the vector twin of the Fenwick fast path.
    """
    n_jobs = len(jobs)
    lengths = np.concatenate([v.lengths for v, _ in jobs]) if n_jobs else \
        np.empty(0, np.int64)
    job_of = np.concatenate(
        [np.full(v.workers, j, np.int64) for j, (v, _) in enumerate(jobs)]
    ) if n_jobs else np.empty(0, np.int64)
    col_of = np.concatenate(
        [np.arange(v.workers, dtype=np.int64) for v, _ in jobs]
    ) if n_jobs else np.empty(0, np.int64)
    order = np.argsort(-lengths, kind="stable")
    lengths = lengths[order]
    job_of = job_of[order]
    col_of = col_of[order]
    W = int(lengths.size)
    steps = int(lengths[0]) if W else 0
    nloc = max((v.max_local for v, _ in jobs), default=0)
    H = nloc + 1
    req_dt = np.result_type(
        np.int16, *(v.req.dtype for v, _ in jobs)
    ) if n_jobs else np.int16
    req = np.zeros((steps, W), dtype=req_dt)
    for j, (view, _) in enumerate(jobs):
        cols = np.flatnonzero(job_of == j)
        req[: view.steps, cols] = view.req[:, col_of[cols]]
    active = np.searchsorted(
        -lengths, -np.arange(steps), side="left"
    ).tolist()
    last_dt = np.int16 if steps < 2**15 - 1 else np.int32
    last = np.full((W, nloc), -1, dtype=last_dt)
    histmul = job_of * H
    hist = np.zeros(n_jobs * H, dtype=np.int64)
    ar = np.arange(W, dtype=np.int64)
    for t in range(steps):
        kw = active[t]
        k = req[t, :kw]
        rows = ar[:kw]
        la = last[rows, k]
        seen = la >= 0
        rank = (last[:kw] > la[:, None]).sum(axis=1)
        rid = (histmul[:kw] + rank)[seen]
        hist += np.bincount(rid, minlength=hist.size)
        last[rows, k] = last_dt(t)
    cum = hist.reshape(n_jobs, H).cumsum(axis=1) if n_jobs else \
        hist.reshape(0, H)
    out = []
    for j, (_, caps) in enumerate(jobs):
        out.append({c: int(cum[j, min(c, H) - 1]) for c in caps})
    return out


def _check_caps(per_worker_caps: Iterable[int]) -> tuple[int, ...]:
    caps = tuple(sorted({int(c) for c in per_worker_caps}))
    if not caps or caps[0] <= 0:
        raise ValueError("per-worker capacities must be positive ints")
    return caps


class VectorFleet:
    """Batched vector replay of many (stream, workers, capacities) jobs.

    All jobs' lanes share one length-sorted lane set per policy family,
    so the step loop runs once at the longest substream's length for
    the whole fleet — this is what the bench's numpy axis times.

    >>> fleet = VectorFleet()
    >>> idx = fleet.add(stream, workers=16, per_worker_caps=[4, 64])
    >>> fleet.solve(["lru", "fbf"])[idx]["fbf"][4]
    """

    def __init__(self):
        self._jobs: list[tuple["InternedStream", int, tuple[int, ...]]] = []
        self._views: dict[int, _WorkerView] = {}

    def add(self, stream: "InternedStream", workers: int,
            per_worker_caps: Iterable[int]) -> int:
        if np is None:  # pragma: no cover - numpy is baked into the env
            raise RuntimeError("numpy is not available")
        caps = _check_caps(per_worker_caps)
        self._jobs.append((stream, int(workers), caps))
        return len(self._jobs) - 1

    def _view(self, job: int) -> _WorkerView:
        view = self._views.get(job)
        if view is None:
            stream, workers, _ = self._jobs[job]
            view = self._views[job] = _WorkerView(stream, workers)
        return view

    def _specs(self, flavor: str | None, pol_index: int = 0) -> list[_LaneSpec]:
        specs = []
        n_jobs = len(self._jobs)
        for job, (_, _, caps) in enumerate(self._jobs):
            specs.append(_LaneSpec(
                self._view(job), caps, flavor,
                (pol_index * n_jobs + job) * _SLOT_STRIDE,
            ))
        return specs

    def solve(self, policies: Iterable[str]) -> list[dict]:
        """Per-job ``{policy: {per_worker_cap: hits}}`` maps."""
        pols = list(dict.fromkeys(policies))
        bad = sorted(set(pols) - VECTOR_POLICIES)
        if bad:
            raise ValueError(f"no vector kernel for policies: {bad}")
        if len(self._jobs) * _SLOT_STRIDE >= 2 ** 31:
            raise ValueError("too many jobs for one fleet")
        for _, _, caps in self._jobs:
            if len(caps) > _SLOT_STRIDE:
                raise ValueError("too many capacities for one fleet job")
        out: list[dict] = [{} for _ in self._jobs]
        obs_on = _obs.ENABLED
        span = None
        if obs_on:
            span = _obs.span("engine.vector_fleet",
                             {"n_jobs": len(self._jobs),
                              "policies": ",".join(pols)})
            span.__enter__()
        try:
            if "lru" in pols:
                rows = _lru_fleet(
                    [(self._view(j), caps)
                     for j, (_, _, caps) in enumerate(self._jobs)]
                )
                if obs_on:
                    _obs.counter("engine.vector.kernel_runs").inc()
                for job, row in enumerate(rows):
                    out[job]["lru"] = row
            # fifo and arc run on identical plain lane sets: build once.
            plain = _Lanes(self._specs(None)) \
                if ("fifo" in pols or "arc" in pols) else None
            if "fifo" in pols:
                self._run_queue_kernel(_kernel_fifo, plain, ["fifo"], out)
            bucket = [pol for pol in ("lfu", "fbf") if pol in pols]
            if bucket:
                specs = []
                for pi, pol in enumerate(bucket):
                    specs.extend(self._specs(pol, pi))
                lanes = _Lanes(specs, with_admit=True)
                self._run_queue_kernel(_kernel_bucket, lanes, bucket, out)
            if "arc" in pols:
                self._run_queue_kernel(_kernel_arc, plain, ["arc"], out)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        return out

    def _run_queue_kernel(self, kernel, lanes: _Lanes,
                          pols: Sequence[str], out: list[dict]) -> None:
        # Every cell saturated -> no lanes; the analytic term below is
        # the whole answer and the kernels may not index empty rings.
        lane_hits = kernel(lanes) if lanes.n_lanes \
            else np.zeros(0, dtype=np.int64)
        if _obs.ENABLED:
            _obs.counter("engine.vector.kernel_runs").inc()
            _obs.counter("engine.vector.lane_steps").inc(
                int(lanes.lengths.sum())
            )
        per_slot = np.zeros(len(self._jobs) * len(pols) * _SLOT_STRIDE,
                            dtype=np.int64)
        np.add.at(per_slot, lanes.slot, lane_hits)
        for pi, pol in enumerate(pols):
            for job, (_, _, caps) in enumerate(self._jobs):
                sat = _saturated_hits(self._view(job), caps)
                off = (pi * len(self._jobs) + job) * _SLOT_STRIDE
                out[job][pol] = {
                    c: int(per_slot[off + ci]) + sat[ci]
                    for ci, c in enumerate(caps)
                }


#: Output slots reserved per (job, policy) pair in a fleet lane set.
_SLOT_STRIDE = 64


class VectorReplay:
    """Single-stream vector replay with memoized views and results.

    ``hits(policy, workers, per_worker_caps)`` answers a whole capacity
    column of the grid at once; ``hits_many`` shares one fleet solve
    across policies.  Results are bit-identical to the stepped python
    replay (property-tested), so ``simulate_grid_pass`` can swap this
    in per configuration group without changing any row.
    """

    def __init__(self, stream: "InternedStream"):
        if np is None:  # pragma: no cover - numpy is baked into the env
            raise RuntimeError("numpy is not available")
        self._stream = stream
        self._views: dict[int, _WorkerView] = {}
        self._memo: dict[tuple, Mapping[int, int]] = {}

    def view(self, workers: int) -> _WorkerView:
        view = self._views.get(workers)
        if view is None:
            view = self._views[workers] = _WorkerView(self._stream, workers)
        return view

    def hits(self, policy: str, workers: int,
             per_worker_caps: Iterable[int]) -> dict[int, int]:
        """Hits per per-worker capacity for one policy."""
        return dict(self.hits_many([policy], workers, per_worker_caps)[policy])

    def hits_many(self, policies: Iterable[str], workers: int,
                  per_worker_caps: Iterable[int]) -> dict[str, dict[int, int]]:
        """Hits per per-worker capacity for several policies at once."""
        caps = _check_caps(per_worker_caps)
        pols = list(dict.fromkeys(policies))
        missing = [p for p in pols
                   if (p, workers, caps) not in self._memo]
        if missing:
            span = None
            if _obs.ENABLED:
                span = _obs.span(
                    "engine.vector_replay",
                    {"policies": ",".join(missing),
                     "workers": workers, "n_caps": len(caps)},
                )
                span.__enter__()
            try:
                fleet = VectorFleet()
                job = fleet.add(self._stream, workers, caps)
                fleet._views[job] = self.view(workers)
                solved = fleet.solve(missing)[job]
                if span is not None:
                    span["steps"] = self.view(workers).steps
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
            for pol in missing:
                self._memo[(pol, workers, caps)] = solved[pol]
        return {p: dict(self._memo[(p, workers, caps)]) for p in pols}
