"""The pluggable recovery-engine core (DESIGN.md §10).

One engine, N code backends: every simulator in this repo — the fast
untimed trace replay and the timed event-kernel replay — is written once
against the :class:`~repro.engine.backend.CodeBackend` protocol, and the
four XOR 3DFT codes plus the LRC code plug in as adapters.

* :mod:`repro.engine.backend` — the protocols: ``CodeBackend``,
  ``EnginePlan``/``RecoveryStep``, ``PriorityModel``.
* :mod:`repro.engine.backends` — the adapters: :class:`XORBackend`
  (TIP/HDD1/STAR/Triple-STAR over :func:`repro.core.generate_plan`),
  :class:`LRCBackend` (:func:`repro.lrc.plan_lrc_recovery`).
* :mod:`repro.engine.registry` — name -> backend resolution
  (``make_backend("tip", 7)``, ``make_backend("lrc(12,2,2)")``).
* :mod:`repro.engine.tracesim` — the untimed replay:
  :func:`simulate_trace`, :class:`PlanCache`, :class:`TraceSimResult`.
* :mod:`repro.engine.timed` — the timed replay:
  :func:`run_timed_replay`.
"""

from .backend import (
    MAX_PRIORITY,
    CodeBackend,
    EnginePlan,
    PriorityModel,
    RecoveryStep,
    SharePriorityModel,
    TablePriorityModel,
    Unit,
    make_priority_model,
)
from .backends import LRCBackend, XORBackend
from .registry import available_backends, make_backend, register_backend
from .timed import run_timed_replay
from .tracesim import PlanCache, TraceSimResult, simulate_trace

__all__ = [
    "MAX_PRIORITY",
    "CodeBackend",
    "EnginePlan",
    "PriorityModel",
    "RecoveryStep",
    "SharePriorityModel",
    "TablePriorityModel",
    "Unit",
    "make_priority_model",
    "LRCBackend",
    "XORBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "run_timed_replay",
    "PlanCache",
    "TraceSimResult",
    "simulate_trace",
]
