"""The pluggable recovery-engine core (DESIGN.md §10).

One engine, N code backends: every simulator in this repo — the fast
untimed trace replay and the timed event-kernel replay — is written once
against the :class:`~repro.engine.backend.CodeBackend` protocol, and the
four XOR 3DFT codes plus the LRC code plug in as adapters.

* :mod:`repro.engine.backend` — the protocols: ``CodeBackend``,
  ``EnginePlan``/``RecoveryStep``, ``PriorityModel``.
* :mod:`repro.engine.backends` — the adapters: :class:`XORBackend`
  (TIP/HDD1/STAR/Triple-STAR over :func:`repro.core.generate_plan`),
  :class:`LRCBackend` (:func:`repro.lrc.plan_lrc_recovery`).
* :mod:`repro.engine.registry` — name -> backend resolution
  (``make_backend("tip", 7)``, ``make_backend("lrc(12,2,2)")``).
* :mod:`repro.engine.tracesim` — the untimed replay:
  :func:`simulate_trace`, :class:`PlanCache`, :class:`TraceSimResult`.
* :mod:`repro.engine.stream` — the single-pass grid replay (DESIGN.md
  §11): :func:`intern_stream`, :func:`simulate_grid_pass`.
* :mod:`repro.engine.stackdist` — Mattson reuse-distance profiling, the
  LRU all-capacities fast path behind the grid replay, exact (Fenwick)
  and SHARDS-sampled.
* :mod:`repro.engine.vector` — the numpy vector replay backend:
  :class:`VectorReplay`/:class:`VectorFleet` batch whole (policy x
  capacity x worker) grids into array kernels, bit-identical to the
  stepped replay.
* :mod:`repro.engine.timed` — the timed replay:
  :func:`run_timed_replay`.
"""

from .backend import (
    MAX_PRIORITY,
    CodeBackend,
    EnginePlan,
    PriorityModel,
    RecoveryStep,
    SharePriorityModel,
    TablePriorityModel,
    Unit,
    make_priority_model,
)
from .backends import LRCBackend, XORBackend
from .registry import available_backends, make_backend, register_backend
from .stackdist import SampledStackDistanceProfile, StackDistanceProfile
from .stream import InternedStream, ReplayConfig, intern_stream, simulate_grid_pass
from .timed import run_timed_replay
from .vector import (
    NUMPY_AVAILABLE,
    VECTOR_POLICIES,
    VectorFleet,
    VectorReplay,
)
from .tracesim import PlanCache, TraceSimResult, effective_partition, simulate_trace

__all__ = [
    "MAX_PRIORITY",
    "CodeBackend",
    "EnginePlan",
    "PriorityModel",
    "RecoveryStep",
    "SharePriorityModel",
    "TablePriorityModel",
    "Unit",
    "make_priority_model",
    "LRCBackend",
    "XORBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "run_timed_replay",
    "PlanCache",
    "TraceSimResult",
    "simulate_trace",
    "effective_partition",
    "InternedStream",
    "ReplayConfig",
    "intern_stream",
    "simulate_grid_pass",
    "StackDistanceProfile",
    "SampledStackDistanceProfile",
    "NUMPY_AVAILABLE",
    "VECTOR_POLICIES",
    "VectorFleet",
    "VectorReplay",
]
