"""Name-based registry of recovery-engine code backends.

One namespace over both worlds: the four XOR 3DFT codes (which need the
prime ``p``) and ``lrc`` / ``lrc(k,l,g)`` specs.  The sweep engine, the
CLI and the bench grids resolve backends exclusively through
:func:`make_backend`, so registering a factory here is all a new code
needs to join every experiment.
"""

from __future__ import annotations

import re
from typing import Callable

from ..codes.registry import CODES as _XOR_CODES
from ..codes.registry import make_code
from .backend import CodeBackend
from .backends import LRCBackend, XORBackend

__all__ = ["BACKENDS", "available_backends", "make_backend", "register_backend"]

#: factory(spec, p, scheme_mode) -> CodeBackend.  ``spec`` is the full
#: (normalised) name as given, so one factory can serve a parameterised
#: family like ``lrc(12,2,2)``.
BackendFactory = Callable[[str, "int | None", str], CodeBackend]


def _xor_factory(code_name: str) -> BackendFactory:
    def build(spec: str, p: int | None, scheme_mode: str) -> CodeBackend:
        if p is None:
            raise ValueError(f"backend {spec!r} requires the prime parameter p")
        return XORBackend(make_code(code_name, p), scheme_mode)

    return build


_LRC_SPEC = re.compile(r"^lrc(?:\((\d+),(\d+),(\d+)\))?$")


def _lrc_factory(spec: str, p: int | None, scheme_mode: str) -> CodeBackend:
    match = _LRC_SPEC.match(spec)
    if match is None:
        raise ValueError(f"bad LRC spec {spec!r}; expected 'lrc' or 'lrc(k,l,g)'")
    if match.group(1) is None:
        return LRCBackend()
    from ..lrc.code import LRCCode

    params = tuple(int(x) for x in match.groups())
    return LRCBackend(LRCCode(*params))


BACKENDS: dict[str, BackendFactory] = {
    **{name: _xor_factory(name) for name in _XOR_CODES},
    "lrc": _lrc_factory,
}

_ALIASES = {
    "triplestar": "triple-star",
    "triple_star": "triple-star",
    "tip-code": "tip",
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names (parameterised specs under their stem)."""
    return tuple(BACKENDS)


def register_backend(name: str, factory: BackendFactory) -> None:
    """Add (or replace) a backend factory under ``name``."""
    BACKENDS[name.strip().lower()] = factory


def _normalise(name: str) -> tuple[str, str]:
    """(registry stem, full spec) for a backend name."""
    spec = name.strip().lower()
    spec = _ALIASES.get(spec, spec)
    stem = spec.split("(", 1)[0]
    return _ALIASES.get(stem, stem), spec


def make_backend(
    name: str, p: int | None = None, scheme_mode: str = "fbf"
) -> CodeBackend:
    """Construct a code backend by name.

    XOR codes take the prime via ``p`` (``make_backend("tip", 7)``); LRC
    specs carry their parameters inline (``make_backend("lrc(12,2,2)")``).
    ``scheme_mode`` selects the XOR chain-selection strategy and is
    ignored by codes with a single planner.
    """
    stem, spec = _normalise(name)
    try:
        factory = BACKENDS[stem]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(spec, p, scheme_mode)
