"""Mattson stack-distance profiling: LRU hit counts at every capacity.

LRU has the *inclusion* property (Mattson et al., IBM Systems Journal
1970): the content of a C-block LRU cache is always a subset of a
(C+1)-block one, so a request hits at capacity C iff its reuse distance —
the number of **distinct** blocks referenced since the previous access to
the same block — is strictly less than C.  One pass over the request
stream therefore yields the exact hit count for *all* capacities at once,
which is what the grid replay's LRU fast path exploits: the hit-ratio
axis of Figures 8/9 collapses from one replay per cache size to one
reuse-distance profile per worker substream.

Distinct-count queries use the classic Fenwick-tree (binary indexed
tree) formulation: keep a 0/1 marker at each block's *latest* access
position; the number of distinct blocks between two accesses of a block
is the number of markers strictly between those positions, an
O(log n) prefix-sum query.  Total cost is O(n log n) for an n-request
stream, independent of how many capacities the grid sweeps.

For traces too large for full-trace memory, :class:`SampledStackDistance
Profile` implements SHARDS (Waldspurger et al., FAST '15): spatial
hash-threshold sampling keeps a fixed fraction (or fixed count) of
blocks, reuse distances measured on the sampled substream are rescaled
by the sampling rate, and the profile costs O(n) time and O(sample)
memory with hit-ratio error that shrinks as the sample grows.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterator, Sequence

__all__ = [
    "FenwickTree",
    "reuse_distances",
    "StackDistanceProfile",
    "SampledStackDistanceProfile",
]


class FenwickTree:
    """A binary indexed tree over ``n`` positions (1-based), integer sums."""

    __slots__ = ("n", "_tree")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"size must be >= 0, got {n}")
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` at position ``i`` (1 <= i <= n)."""
        if not 1 <= i <= self.n:
            raise IndexError(f"position {i} out of range 1..{self.n}")
        self._add(i, delta)

    def _add(self, i: int, delta: int) -> None:
        # Unchecked hot-path variant: callers that can prove 1 <= i <= n
        # once per stream (reuse_distances: positions are enumerate
        # indices) bind this directly instead of paying the range check
        # on every request.
        tree = self._tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix(self, i: int) -> int:
        """Sum of positions ``1..i`` (``i <= 0`` gives 0)."""
        return self._prefix(min(i, self.n))

    def _prefix(self, i: int) -> int:
        # Unchecked hot-path variant of prefix(): requires i <= n.
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def reuse_distances(stream: Sequence[int]) -> Iterator[int]:
    """Yield each request's LRU stack distance; -1 marks a cold first access.

    The distance of a request is the number of distinct blocks accessed
    strictly between it and the previous access to the same block (0 for
    an immediate re-reference).  Works for any hashable block ids; the
    grid replay feeds it interned dense ints.
    """
    tree = FenwickTree(len(stream))
    last: dict[int, int] = {}
    # Positions are enumerate indices, so 1 <= prev < t <= n holds by
    # construction: validate the tree size once here and use the
    # unchecked Fenwick walks in the per-request loop.
    add = tree._add
    prefix = tree._prefix
    get = last.get
    for t, block in enumerate(stream, 1):
        prev = get(block)
        if prev is None:
            yield -1
        else:
            # markers sit at each block's latest access; the block's own
            # marker at ``prev`` is excluded by the half-open (prev, t).
            yield prefix(t - 1) - prefix(prev)
            add(prev, -1)
        add(t, 1)
        last[block] = t


class StackDistanceProfile:
    """One-pass LRU hit counts for a request stream at every capacity.

    ``hits_at(c)`` is exactly the hit count of replaying the stream
    through a c-block LRU cache: a request hits iff its reuse distance is
    finite and ``< c``.  The cumulative histogram saturates at the
    stream's maximum finite distance, so any larger capacity is a cheap
    clamp, and capacity 0 is always 0 hits (matching the degenerate
    zero-capacity replay).
    """

    __slots__ = ("requests", "_cum")

    def __init__(self, stream: Sequence[int]):
        n = self.requests = len(stream)
        hist: dict[int, int] = {}
        # reuse_distances() with the Fenwick walks inlined (profiles sit
        # on the grid replay's critical path; generator + method dispatch
        # costs ~40% here).
        tree = [0] * (n + 1)
        last: dict[int, int] = {}
        get_last = last.get
        get_hist = hist.get
        for t, block in enumerate(stream, 1):
            prev = get_last(block)
            if prev is not None:
                d = 0
                i = t - 1
                while i > 0:
                    d += tree[i]
                    i -= i & -i
                i = prev
                while i > 0:
                    d -= tree[i]
                    i -= i & -i
                hist[d] = get_hist(d, 0) + 1
                i = prev
                while i <= n:
                    tree[i] -= 1
                    i += i & -i
            last[block] = t
            i = t
            while i <= n:
                tree[i] += 1
                i += i & -i
        # _cum[c] = hits at capacity c = #requests with distance < c.
        max_d = max(hist) if hist else -1
        cum = [0] * (max_d + 2)
        running = 0
        for d in range(max_d + 1):
            running += hist.get(d, 0)
            cum[d + 1] = running
        self._cum = cum

    def hits_at(self, capacity: int) -> int:
        """Exact LRU hit count for a ``capacity``-block cache."""
        if capacity <= 0:
            return 0
        cum = self._cum
        return cum[min(capacity, len(cum) - 1)]


_MASK64 = (1 << 64) - 1
_HASH_SPACE = 1 << 64


def _splitmix64(x: int) -> int:
    """SplitMix64 finalizer: a 64-bit bijection used as the spatial hash.

    Deterministic across processes (unlike ``hash()`` on strings) and
    uniform enough that ``hash(block) < rate * 2**64`` samples each
    *block* independently with probability ``rate`` — every access to a
    sampled block is kept, which is what preserves reuse distances.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _numpy_candidates(stream: Sequence[int], threshold: int):
    """Vectorized hash prefilter: (hashes, blocks) with hash < threshold.

    Returns ``None`` when numpy is unavailable or the stream is not a
    clean non-negative integer array — callers fall back to the pure
    python per-request loop (identical hashes either way).
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is baked into the env
        return None
    try:
        arr = np.asarray(stream, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return None
    x = arr + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    if threshold < _HASH_SPACE:
        keep = np.flatnonzero(x < np.uint64(threshold))
        x, arr = x[keep], arr[keep]
    return x.tolist(), arr.tolist()


class SampledStackDistanceProfile:
    """SHARDS: sampled LRU hit counts at every capacity, O(sample) memory.

    Spatial hash-threshold sampling (Waldspurger et al., FAST '15): block
    ``b`` is *sampled* iff ``splitmix64(b) < T``, so the sample is a
    uniform pseudo-random subset of **blocks** and every access to a
    sampled block is observed.  Reuse distances measured on the sampled
    substream underestimate true distances by exactly the sampling rate
    in expectation, so each distance is rescaled by ``1/R`` and each
    sampled reuse contributes weight ``1/R`` to the hit histogram.

    Two operating modes:

    * **fixed-rate** (``max_tracked=None``): ``T = rate * 2**64`` is
      constant; memory is O(rate x distinct blocks).
    * **fixed-size** (``max_tracked=s``): when the tracked set exceeds
      ``s`` blocks the largest-hash block is evicted and ``T`` drops to
      its hash, adapting the effective rate downward (``min_rate`` is
      the final, smallest rate — SHARDS's R_min).  Memory is O(s)
      regardless of trace length.

    The reuse-distance Fenwick tree covers only *sampled* access
    positions and is compacted whenever it outgrows twice the tracked
    set, keeping state bounded by the sample, not the trace.  At
    ``rate=1.0`` every block is sampled, every weight is 1, and
    :meth:`hits_at` equals :class:`StackDistanceProfile` exactly.

    Estimates use the paper's *adjusted* form (SHARDS-adj): raw rescaled
    counts are multiplied by ``requests / E[requests | sample]``, where
    the denominator is the sample's own estimate of the total reference
    count.  This cancels the dominant error term — whole hot blocks
    falling in or out of the spatial sample — and is exactly 1 at
    ``rate=1.0``.

    Block ids must be integers (the interned streams' dense ids); the
    deterministic splitmix hash keeps profiles reproducible across
    processes, which string ``hash()`` would not.
    """

    __slots__ = (
        "requests",
        "rate",
        "min_rate",
        "max_tracked",
        "sampled_requests",
        "peak_tracked",
        "_adjust",
        "_cum",
    )

    def __init__(
        self,
        stream: Sequence[int],
        rate: float = 0.01,
        max_tracked: int | None = None,
    ):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
        if max_tracked is not None and max_tracked < 1:
            raise ValueError(f"max_tracked must be >= 1, got {max_tracked}")
        self.requests = len(stream)
        self.rate = rate
        self.max_tracked = max_tracked
        threshold = _HASH_SPACE if rate >= 1.0 else int(rate * _HASH_SPACE)

        tracked: dict[int, int] = {}  # block -> latest sampled position
        hashes: dict[int, int] = {}  # block -> spatial hash (fixed-size mode)
        heap: list[tuple[int, int]] = []  # (-hash, block) max-heap
        hist: dict[int, float] = {}  # floor(scaled distance) -> weight
        sampled = 0
        peak = 0
        w_total = 0.0  # sample-weighted estimate of total references

        cap = 256  # Fenwick positions before compaction
        tree = [0] * (cap + 1)
        next_pos = 1

        def compact() -> tuple[list[int], int, int]:
            # Renumber tracked blocks 1..k in access order; marker counts
            # between any two live positions are preserved, so distances
            # are unchanged.  Linear-time Fenwick rebuild.
            nonlocal cap
            in_order = sorted(tracked, key=tracked.__getitem__)
            k = len(in_order)
            cap = max(256, 2 * k)
            new_tree = [0] * (cap + 1)
            for i, block in enumerate(in_order, 1):
                tracked[block] = i
                new_tree[i] = 1
            for i in range(1, cap + 1):
                j = i + (i & -i)
                if j <= cap:
                    new_tree[j] += new_tree[i]
            return new_tree, k + 1, cap

        prefiltered = None
        if self.requests >= 4096:
            prefiltered = _numpy_candidates(stream, threshold)
        if prefiltered is not None:
            accesses = zip(*prefiltered)
        else:
            accesses = (
                (_splitmix64(block & _MASK64), block & _MASK64)
                for block in stream
            )

        get_pos = tracked.get
        for h, block in accesses:
            if h >= threshold:
                continue  # rate adapted below the prefilter threshold
            sampled += 1
            rate_now = threshold / _HASH_SPACE
            w_total += 1.0 / rate_now
            prev = get_pos(block)
            if next_pos > cap:
                tree, next_pos, cap = compact()
                prev = get_pos(block)
            pos = next_pos
            next_pos += 1
            if prev is not None:
                d = 0
                i = pos - 1
                while i > 0:
                    d += tree[i]
                    i -= i & -i
                i = prev
                while i > 0:
                    d -= tree[i]
                    i -= i & -i
                bucket = int(d / rate_now)
                hist[bucket] = hist.get(bucket, 0.0) + 1.0 / rate_now
                i = prev
                while i <= cap:
                    tree[i] -= 1
                    i += i & -i
            else:
                hashes[block] = h
                heappush(heap, (-h, block))
            tracked[block] = pos
            i = pos
            while i <= cap:
                tree[i] += 1
                i += i & -i
            if len(tracked) > peak:
                peak = len(tracked)
            if max_tracked is not None and len(tracked) > max_tracked:
                # Fixed-size SHARDS: evict the max-hash block and lower
                # the threshold to its hash, shrinking the rate.
                while True:
                    neg_h, victim = heappop(heap)
                    if hashes.get(victim) == -neg_h:
                        break
                vpos = tracked.pop(victim)
                del hashes[victim]
                threshold = -neg_h
                i = vpos
                while i <= cap:
                    tree[i] -= 1
                    i += i & -i

        self.sampled_requests = sampled
        self.peak_tracked = peak
        self.min_rate = threshold / _HASH_SPACE
        self._adjust = self.requests / w_total if w_total > 0.0 else 1.0
        max_b = max(hist) if hist else -1
        cum = [0.0] * (max_b + 2)
        running = 0.0
        for b in range(max_b + 1):
            running += hist.get(b, 0.0)
            cum[b + 1] = running
        self._cum = cum

    def estimated_hits_at(self, capacity: int) -> float:
        """Adjusted rescaled-sample estimate of the LRU hit count."""
        if capacity <= 0:
            return 0.0
        cum = self._cum
        est = cum[min(capacity, len(cum) - 1)] * self._adjust
        return min(est, float(self.requests))

    def hits_at(self, capacity: int) -> int:
        """Estimated LRU hit count, rounded to an integer row value."""
        return round(self.estimated_hits_at(capacity))

    def hit_ratio_at(self, capacity: int) -> float:
        """Estimated hit ratio in [0, 1] (0 for an empty stream)."""
        if self.requests == 0:
            return 0.0
        return self.estimated_hits_at(capacity) / self.requests
