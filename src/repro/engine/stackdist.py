"""Mattson stack-distance profiling: LRU hit counts at every capacity.

LRU has the *inclusion* property (Mattson et al., IBM Systems Journal
1970): the content of a C-block LRU cache is always a subset of a
(C+1)-block one, so a request hits at capacity C iff its reuse distance —
the number of **distinct** blocks referenced since the previous access to
the same block — is strictly less than C.  One pass over the request
stream therefore yields the exact hit count for *all* capacities at once,
which is what the grid replay's LRU fast path exploits: the hit-ratio
axis of Figures 8/9 collapses from one replay per cache size to one
reuse-distance profile per worker substream.

Distinct-count queries use the classic Fenwick-tree (binary indexed
tree) formulation: keep a 0/1 marker at each block's *latest* access
position; the number of distinct blocks between two accesses of a block
is the number of markers strictly between those positions, an
O(log n) prefix-sum query.  Total cost is O(n log n) for an n-request
stream, independent of how many capacities the grid sweeps.
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = ["FenwickTree", "reuse_distances", "StackDistanceProfile"]


class FenwickTree:
    """A binary indexed tree over ``n`` positions (1-based), integer sums."""

    __slots__ = ("n", "_tree")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"size must be >= 0, got {n}")
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` at position ``i`` (1 <= i <= n)."""
        if not 1 <= i <= self.n:
            raise IndexError(f"position {i} out of range 1..{self.n}")
        tree = self._tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix(self, i: int) -> int:
        """Sum of positions ``1..i`` (``i <= 0`` gives 0)."""
        tree = self._tree
        total = 0
        i = min(i, self.n)
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def reuse_distances(stream: Sequence[int]) -> Iterator[int]:
    """Yield each request's LRU stack distance; -1 marks a cold first access.

    The distance of a request is the number of distinct blocks accessed
    strictly between it and the previous access to the same block (0 for
    an immediate re-reference).  Works for any hashable block ids; the
    grid replay feeds it interned dense ints.
    """
    tree = FenwickTree(len(stream))
    last: dict[int, int] = {}
    add = tree.add
    prefix = tree.prefix
    get = last.get
    for t, block in enumerate(stream, 1):
        prev = get(block)
        if prev is None:
            yield -1
        else:
            # markers sit at each block's latest access; the block's own
            # marker at ``prev`` is excluded by the half-open (prev, t).
            yield prefix(t - 1) - prefix(prev)
            add(prev, -1)
        add(t, 1)
        last[block] = t


class StackDistanceProfile:
    """One-pass LRU hit counts for a request stream at every capacity.

    ``hits_at(c)`` is exactly the hit count of replaying the stream
    through a c-block LRU cache: a request hits iff its reuse distance is
    finite and ``< c``.  The cumulative histogram saturates at the
    stream's maximum finite distance, so any larger capacity is a cheap
    clamp, and capacity 0 is always 0 hits (matching the degenerate
    zero-capacity replay).
    """

    __slots__ = ("requests", "_cum")

    def __init__(self, stream: Sequence[int]):
        n = self.requests = len(stream)
        hist: dict[int, int] = {}
        # reuse_distances() with the Fenwick walks inlined (profiles sit
        # on the grid replay's critical path; generator + method dispatch
        # costs ~40% here).
        tree = [0] * (n + 1)
        last: dict[int, int] = {}
        get_last = last.get
        get_hist = hist.get
        for t, block in enumerate(stream, 1):
            prev = get_last(block)
            if prev is not None:
                d = 0
                i = t - 1
                while i > 0:
                    d += tree[i]
                    i -= i & -i
                i = prev
                while i > 0:
                    d -= tree[i]
                    i -= i & -i
                hist[d] = get_hist(d, 0) + 1
                i = prev
                while i <= n:
                    tree[i] -= 1
                    i += i & -i
            last[block] = t
            i = t
            while i <= n:
                tree[i] += 1
                i += i & -i
        # _cum[c] = hits at capacity c = #requests with distance < c.
        max_d = max(hist) if hist else -1
        cum = [0] * (max_d + 2)
        running = 0
        for d in range(max_d + 1):
            running += hist.get(d, 0)
            cum[d + 1] = running
        self._cum = cum

    def hits_at(self, capacity: int) -> int:
        """Exact LRU hit count for a ``capacity``-block cache."""
        if capacity <= 0:
            return 0
        cum = self._cum
        return cum[min(capacity, len(cum) - 1)]
