"""The unified timed replay over the event kernel, one per repo.

Generalizes the serial/SOR batch reconstruction of
:mod:`repro.sim.reconstruction` to any
:class:`~repro.engine.backend.CodeBackend`: the backend supplies the
array geometry (XOR codes map cells onto a ``rows x disks`` grid, LRC
blocks onto a flat one-block-per-disk layout), the recovery plans and
the optional verifying datapath; the event kernel, disks, timed buffer
cache and controller are shared.

``repro.sim.run_reconstruction`` is now a thin layout-flavoured wrapper
over :func:`run_timed_replay`.

The :mod:`repro.sim` imports are deferred into the function body:
``repro.sim.reconstruction`` imports this module, so module-level
imports would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..cache.base import CachePolicy
from .backend import CodeBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.reconstruction import ReconstructionReport, SimConfig

__all__ = ["run_timed_replay"]


def run_timed_replay(
    backend: CodeBackend,
    events: Sequence[Any],
    config: "SimConfig | None" = None,
    policy_factory: Callable[[int], CachePolicy] | None = None,
) -> "ReconstructionReport":
    """Simulate timed recovery of ``events`` under ``config`` via ``backend``.

    ``policy_factory`` overrides the registry lookup (useful for custom
    policies); it receives the per-worker capacity in blocks.  The
    backend's scheme label wins over ``config.scheme_mode`` (the config
    field parameterises the XOR convenience wrapper, which builds the
    backend from it).
    """
    from ..cache.registry import make_policy
    from ..sim.cache_sim import TimedBufferCache
    from ..sim.controller import RAIDController
    from ..sim.kernel import Environment
    from ..sim.reconstruction import (
        ClusterStats,
        ReconstructionReport,
        SimConfig,
        _worker,
        build_array,
    )
    from ..sim.topology import HeartbeatMonitor, build_topology

    if config is None:
        config = SimConfig()
    if not events:
        raise ValueError("no events to recover")
    events = sorted(events)
    if config.sanitize:
        # Imported here: repro.checks imports the kernel, which would
        # cycle at module import time.
        from ..checks.sanitizer import SanitizedEnvironment

        env: Environment = SanitizedEnvironment(pooling=config.kernel_pooling)
    else:
        env = Environment(pooling=config.kernel_pooling)
    geometry = backend.make_geometry(
        chunk_size=config.chunk_bytes, stripes=config.array_stripes
    )
    topology = None
    heartbeats = None
    if config.topology is not None:
        topology = build_topology(env, config.topology)
        if config.topology.heartbeat_period > 0:
            heartbeats = HeartbeatMonitor(
                topology,
                master=config.topology.controller_node,
                period=config.topology.heartbeat_period,
                miss_threshold=config.topology.heartbeat_miss_threshold,
            )
            heartbeats.start()
    array = build_array(env, geometry, config, topology=topology)
    response_histogram = None
    if config.response_quantiles:
        from ..obs.metrics import Histogram

        # One histogram shared across all worker caches, so the report's
        # p99 covers every chunk request of the run.
        response_histogram = Histogram("sim.cache.response_time")
    datapath = None
    if config.verify_payloads:
        datapath = backend.make_datapath(
            payload_size=config.payload_size, seed=config.payload_seed
        )
    controller = RAIDController(
        env,
        array,
        xor_time_per_chunk=config.xor_time_per_chunk,
        parallel_chain_reads=config.parallel_chain_reads,
        datapath=datapath,
        backend=backend,
    )

    per_worker_blocks = config.cache_blocks_per_worker
    caches: list[TimedBufferCache] = []
    procs = []
    workers = min(config.workers, len(events))
    for w in range(workers):
        if policy_factory is not None:
            policy = policy_factory(per_worker_blocks)
        else:
            policy = make_policy(config.policy, per_worker_blocks, **config.policy_kwargs)
        cache = TimedBufferCache(
            env, policy, array, hit_time=config.hit_time, sanitize=config.sanitize,
            response_histogram=response_histogram,
        )
        caches.append(cache)
        mine = events[w::workers]  # SOR round-robin stripe assignment
        procs.append(
            env.process(
                _worker(env, controller, cache, mine, config.respect_arrival_times),
                name=f"sor-worker-{w}",
            )
        )
    env.run(env.all_of(procs))
    recon_time = env.now
    if config.respect_arrival_times:
        recon_time -= min(e.time for e in events)

    hits = sum(c.policy.stats.hits for c in caches)
    misses = sum(c.policy.stats.misses for c in caches)
    cluster_stats = None
    if topology is not None:
        cluster_stats = ClusterStats(
            racks=len(topology.racks),
            nodes=len(topology.nodes),
            transfers=topology.transfers,
            cross_rack_bytes=topology.cross_rack_bytes,
            intra_rack_bytes=topology.intra_rack_bytes,
            link_utilization=topology.link_utilization(recon_time),
            heartbeat_rtt_max=(
                tuple(sorted(heartbeats.rtt_max.items())) if heartbeats else ()
            ),
            nodes_declared_dead=(
                tuple(sorted(heartbeats.detected_at.items())) if heartbeats else ()
            ),
            limplock_suspects=topology.limplock_suspects(),
        )
    return ReconstructionReport(
        policy=config.policy if policy_factory is None else getattr(
            caches[0].policy, "name", "custom"
        ),
        scheme_mode=backend.scheme_label,
        code=backend.code_label,
        p=backend.p,
        n_errors=len(events),
        chunks_recovered=controller.chunks_recovered,
        reconstruction_time=recon_time,
        avg_response_time=(
            sum(c.log.total for c in caches) / max(1, sum(c.log.count for c in caches))
        ),
        max_response_time=max(c.log.max for c in caches),
        total_requests=sum(c.log.count for c in caches),
        cache_hits=hits,
        cache_misses=misses,
        disk_reads=sum(c.log.disk_reads for c in caches),
        disk_writes=array.total_writes,
        overhead_mean_s=controller.overhead.mean,
        overhead_total_s=controller.overhead.total,
        plan_cache_hits=controller.overhead.plan_cache_hits,
        payload_chunks_verified=datapath.chunks_verified if datapath else 0,
        payload_mismatches=datapath.mismatches if datapath else 0,
        disk_stats=tuple(
            (d.stats.busy_time, d.stats.queue_wait, d.stats.accesses)
            for d in array.disks
        ),
        p99_response_time=(
            response_histogram.quantile(0.99) if response_histogram is not None else None
        ),
        cluster=cluster_stats,
    )
