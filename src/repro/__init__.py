"""repro — Favorable Block First (FBF), an ICPP 2017 reproduction.

A recovery-aware buffer-cache scheme that accelerates partial stripe
recovery of triple-disk-failure-tolerant (3DFT) erasure-coded arrays,
together with everything needed to evaluate it: four 3DFT codes (STAR,
Triple-STAR, TIP, HDD1), classic replacement policies (FIFO/LRU/LFU/ARC
and more), a discrete-event storage simulator, synthetic error-trace
generation, and a benchmark harness regenerating every figure and table
of the paper.

Quick start::

    from repro import make_code, generate_plan, PriorityDictionary, FBFCache

    layout = make_code("tip", 7)                    # 8-disk TIP array
    plan = generate_plan(layout, [(r, 0) for r in range(5)])
    priorities = PriorityDictionary(plan)
    cache = FBFCache(capacity=8)
    for cell in plan.request_sequence:
        cache.request(cell, priority=priorities.lookup(cell))
    print(cache.stats.hit_ratio)
"""

from .cache import (
    ARCCache,
    CachePolicy,
    CacheStats,
    FIFOCache,
    LFUCache,
    LRUCache,
    PAPER_BASELINES,
    available_policies,
    make_policy,
)
from .codes import (
    CodeLayout,
    Direction,
    Encoder,
    ParityChain,
    available_codes,
    decode,
    make_code,
    verify_stripe,
)
from .core import (
    FBFCache,
    PriorityDictionary,
    RecoveryPlan,
    UnrecoverableError,
    generate_plan,
)
from .sim import (
    ReconstructionReport,
    SimConfig,
    run_reconstruction,
    simulate_cache_trace,
)
from .workloads import (
    ErrorTraceConfig,
    PartialStripeError,
    generate_errors,
    read_trace,
    write_trace,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # repro.api (the stable facade) and repro.obs (observability) load
    # lazily: importing the root package must not pay for them, and obs
    # must stay import-light so instrumented modules can import it first.
    if name in ("api", "obs"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "__version__",
    "api",
    "obs",
    # codes
    "CodeLayout",
    "Direction",
    "Encoder",
    "ParityChain",
    "available_codes",
    "decode",
    "make_code",
    "verify_stripe",
    # core
    "FBFCache",
    "PriorityDictionary",
    "RecoveryPlan",
    "UnrecoverableError",
    "generate_plan",
    # cache
    "ARCCache",
    "CachePolicy",
    "CacheStats",
    "FIFOCache",
    "LFUCache",
    "LRUCache",
    "PAPER_BASELINES",
    "available_policies",
    "make_policy",
    # sim
    "ReconstructionReport",
    "SimConfig",
    "run_reconstruction",
    "simulate_cache_trace",
    # workloads
    "ErrorTraceConfig",
    "PartialStripeError",
    "generate_errors",
    "read_trace",
    "write_trace",
]
