"""``repro.api.v2.cluster`` — the rack-aware cluster recovery scenario.

Topology-threaded recovery of a whole placement group: specs in,
a :class:`ClusterReport` out, plus the experiment-grid helper that
sweeps cluster scenarios on the bench engine.
"""

from __future__ import annotations

from ...bench.experiments import cluster_grid
from ...sim.cluster import ClusterReport, ClusterSpec, run_cluster_recovery
from ...sim.topology import TopologySpec

__all__ = [
    "ClusterReport",
    "ClusterSpec",
    "TopologySpec",
    "cluster_grid",
    "run_cluster_recovery",
]
