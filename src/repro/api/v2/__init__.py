"""``repro.api.v2`` — the versioned public surface (DESIGN.md §17).

v1 was one flat module of 49 names; v2 groups the facade into four
namespaces, each with its own API001 manifest so surface drift is
diffed per-namespace:

* :mod:`repro.api.v2.replay` — backends, registries, single-trace and
  interned multi-config replay, vector backend, stack distances;
* :mod:`repro.api.v2.bench` — grid execution (:class:`GridRequest`,
  ``run_grid``, :class:`~repro.bench.engine.EnginePool`) and the
  experiment definitions;
* :mod:`repro.api.v2.cluster` — the rack-aware cluster scenario;
* :mod:`repro.api.v2.serve` — the always-on cache-advisor service.

Observability is ``repro.obs`` directly (unversioned: it is already a
stable, self-contained package).  The v1 spellings keep working through
the :mod:`repro.api` shim, each emitting one :class:`DeprecationWarning`
pointing at its v2 home.
"""

from ... import obs  # noqa: F401  (re-export: api.v2.obs is api v1's `obs`)
from . import bench, cluster, replay, serve

__all__ = ["replay", "bench", "cluster", "serve", "obs"]
