"""``repro.api.v2.serve`` — the always-on cache-advisor service.

The typed contracts (:class:`ServeConfig` in, :class:`Advice` out), the
sliding-window :class:`CacheAdvisor` whose recommendations are
bit-for-bit offline grid winners, the asyncio :class:`AdvisorServer`,
and the supporting edges: bounded ingest, deterministic synthetic load,
and atomic checkpoints.  New in v2 — there is no v1 spelling.
"""

from __future__ import annotations

from ...serve import (
    CHECKPOINT_SCHEMA,
    DEFAULT_CACHE_MBS,
    DEFAULT_POLICIES,
    Advice,
    AdvisorServer,
    ArraySpec,
    BoundedIngestQueue,
    CacheAdvisor,
    ServeConfig,
    SyntheticSource,
    load_checkpoint,
    parse_record,
    pick_winner,
    record_lines,
    records_for,
    restore_advisor,
    write_checkpoint,
)

__all__ = [
    "ServeConfig",
    "ArraySpec",
    "Advice",
    "DEFAULT_POLICIES",
    "DEFAULT_CACHE_MBS",
    "CacheAdvisor",
    "pick_winner",
    "AdvisorServer",
    "BoundedIngestQueue",
    "parse_record",
    "SyntheticSource",
    "records_for",
    "record_lines",
    "CHECKPOINT_SCHEMA",
    "write_checkpoint",
    "load_checkpoint",
    "restore_advisor",
]
