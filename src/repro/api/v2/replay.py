"""``repro.api.v2.replay`` — single-trace and multi-config replay.

The simulation core of the public surface: backends and their
registries, the single-trace simulator, the interned-stream grid pass
(offline and incremental), the vectorized backend, and the
stack-distance profiles.  The kwarg vocabulary is unchanged from v1:
``workers=`` is always the *simulated* SOR worker count.
"""

from __future__ import annotations

from ...cache.registry import PAPER_BASELINES, available_policies, make_policy
from ...codes.registry import available_codes, make_code
from ...engine.backend import CodeBackend, EnginePlan, PriorityModel
from ...engine.registry import available_backends, make_backend, register_backend
from ...engine.stackdist import SampledStackDistanceProfile, StackDistanceProfile
from ...engine.stream import (
    InternedStream,
    ReplayConfig,
    StreamInterner,
    intern_stream,
    simulate_grid_pass,
)
from ...engine.tracesim import (
    PlanCache,
    TraceSimResult,
    effective_partition,
    simulate_trace,
)
from ...engine.vector import (
    NUMPY_AVAILABLE,
    VECTOR_POLICIES,
    VectorFleet,
    VectorReplay,
)

__all__ = [
    # single-trace replay
    "simulate_trace",
    "TraceSimResult",
    "PlanCache",
    "effective_partition",
    # interned multi-config replay (offline and incremental)
    "intern_stream",
    "InternedStream",
    "StreamInterner",
    "ReplayConfig",
    "simulate_grid_pass",
    # vector backend + stack-distance profiles
    "NUMPY_AVAILABLE",
    "VECTOR_POLICIES",
    "VectorFleet",
    "VectorReplay",
    "StackDistanceProfile",
    "SampledStackDistanceProfile",
    # registries
    "available_codes",
    "make_code",
    "available_policies",
    "make_policy",
    "PAPER_BASELINES",
    "available_backends",
    "make_backend",
    "register_backend",
    "CodeBackend",
    "EnginePlan",
    "PriorityModel",
]
