"""``repro.api.v2.bench`` — grid execution and experiment definitions.

v2 makes the execution request a value: :class:`GridRequest` carries the
points *and* how to run them, is frozen, and rejects unknown keys
eagerly (a typo like ``engine_worker=`` fails at construction with a
``TypeError`` naming the key, not deep inside the pool).  ``run_grid``
accepts either a :class:`GridRequest` or the v1 calling convention, so
the v1 shim forwards here unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Mapping, Sequence

from ...bench.engine import (
    ENGINE_CACHE_VERSION,
    EngineConfig,
    EnginePool,
    EngineResult,
    GridPoint,
    PointTiming,
    ResultCache,
    default_cache_dir,
)
from ...bench.engine import run_grid as _run_grid
from ...bench.experiments import (
    EXPERIMENT_NAMES,
    FULL,
    QUICK,
    Scale,
    SweepPoint,
    experiment_grid,
    rows_equivalent,
)

__all__ = [
    "GridRequest",
    "run_grid",
    "GridPoint",
    "EngineConfig",
    "EngineResult",
    "EnginePool",
    "PointTiming",
    "ResultCache",
    "ENGINE_CACHE_VERSION",
    "default_cache_dir",
    "experiment_grid",
    "rows_equivalent",
    "EXPERIMENT_NAMES",
    "Scale",
    "QUICK",
    "FULL",
    "SweepPoint",
]


@dataclass(frozen=True)
class GridRequest:
    """One grid execution, as a value: the points plus how to run them.

    Either pass a full ``engine=`` :class:`EngineConfig`, or use the
    conveniences (``engine_workers=``, ``cache_dir=``, ``batch=``) and
    let :meth:`resolved_engine` assemble one — mixing both is a
    ``TypeError``, same contract as the v1 facade.
    """

    points: tuple[GridPoint, ...]
    engine: EngineConfig | None = None
    engine_workers: int | str | None = None
    cache_dir: str | None = None
    batch: bool | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        conveniences = (self.engine_workers, self.cache_dir, self.batch)
        if self.engine is not None and any(
            value is not None for value in conveniences
        ):
            raise TypeError(
                "pass either engine= or the engine_workers/cache_dir/batch "
                "conveniences, not both"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "GridRequest":
        """Build from a key/value mapping, rejecting unknown keys eagerly.

        The CLI and any config-file front end route through here, so a
        misspelled knob surfaces as ``TypeError: unknown GridRequest
        key(s): ...`` before any simulation work starts.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise TypeError(
                f"unknown GridRequest key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**dict(mapping))

    def resolved_engine(self) -> EngineConfig | None:
        """The :class:`EngineConfig` this request executes under."""
        if self.engine is not None:
            return self.engine
        if any(
            value is not None
            for value in (self.engine_workers, self.cache_dir, self.batch)
        ):
            return EngineConfig(
                workers=self.engine_workers if self.engine_workers is not None else 0,
                cache_dir=self.cache_dir,
                batch=self.batch if self.batch is not None else True,
            )
        return None


def run_grid(
    request: GridRequest | Sequence[GridPoint],
    engine: EngineConfig | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    *,
    engine_workers: int | str | None = None,
    cache_dir=None,
    batch: bool | None = None,
    pool: EnginePool | None = None,
) -> EngineResult:
    """Execute a grid; see :func:`repro.bench.engine.run_grid`.

    Preferred v2 form: ``run_grid(GridRequest(points=...,
    engine_workers="auto"))``.  The v1 form — points first, execution
    options as kwargs — still works and is validated through the same
    :class:`GridRequest`.  ``pool=`` reuses a live
    :class:`EnginePool` across calls instead of spinning a fresh
    process pool per grid.
    """
    if isinstance(request, GridRequest):
        if engine is not None or any(
            value is not None for value in (engine_workers, cache_dir, batch)
        ):
            raise TypeError(
                "pass execution options inside the GridRequest, "
                "not alongside it"
            )
    else:
        request = GridRequest(
            points=tuple(request),
            engine=engine,
            engine_workers=engine_workers,
            cache_dir=cache_dir,
            batch=batch,
        )
    return _run_grid(
        request.points, request.resolved_engine(), on_progress, pool=pool
    )
