"""``repro.api`` — the deprecated v1 facade, now a shim over ``api.v2``.

The public surface lives in the versioned namespaces (DESIGN.md §17):

* :mod:`repro.api.v2.replay` — backends, registries, trace replay;
* :mod:`repro.api.v2.bench` — grid execution and experiments;
* :mod:`repro.api.v2.cluster` — the rack-aware cluster scenario;
* :mod:`repro.api.v2.serve` — the always-on cache-advisor service;
* :mod:`repro.obs` — observability (unversioned).

Every v1 spelling still resolves — ``api.simulate_trace`` is *the same
object* as ``api.v2.replay.simulate_trace`` — but the first access of
each name emits one :class:`DeprecationWarning` naming its v2 home.
Per the deprecation policy (DESIGN.md §12), the old spellings keep
working for one release behind the warning before removal.

Typical v2 use::

    from repro.api.v2 import bench, replay

    backend = replay.make_backend("tip", 7)
    events = backend.generate_events(100, seed=42)
    row = replay.simulate_trace(backend, events, policy="fbf",
                                capacity_blocks=256, workers=32)

    request = bench.GridRequest(
        points=bench.experiment_grid("fig8", bench.QUICK),
        engine_workers="auto",
    )
    result = bench.run_grid(request)
"""

from __future__ import annotations

import importlib
import warnings

__all__ = [
    # replay engine
    "simulate_trace",
    "TraceSimResult",
    "PlanCache",
    "effective_partition",
    "intern_stream",
    "InternedStream",
    "ReplayConfig",
    "simulate_grid_pass",
    # vector backend + stack-distance profiles
    "NUMPY_AVAILABLE",
    "VECTOR_POLICIES",
    "VectorFleet",
    "VectorReplay",
    "StackDistanceProfile",
    "SampledStackDistanceProfile",
    # registries
    "available_codes",
    "make_code",
    "available_policies",
    "make_policy",
    "PAPER_BASELINES",
    "available_backends",
    "make_backend",
    "register_backend",
    "CodeBackend",
    "EnginePlan",
    "PriorityModel",
    # sweep engine
    "run_grid",
    "GridPoint",
    "EngineConfig",
    "EngineResult",
    "PointTiming",
    "ResultCache",
    "ENGINE_CACHE_VERSION",
    "default_cache_dir",
    "experiment_grid",
    "rows_equivalent",
    "EXPERIMENT_NAMES",
    "Scale",
    "QUICK",
    "FULL",
    "SweepPoint",
    # rack-aware cluster scenario
    "ClusterReport",
    "ClusterSpec",
    "TopologySpec",
    "cluster_grid",
    "run_cluster_recovery",
    # observability
    "obs",
]

_REPLAY = "repro.api.v2.replay"
_BENCH = "repro.api.v2.bench"
_CLUSTER = "repro.api.v2.cluster"

#: v1 export -> the v2 module that now owns it.  ``None`` marks names
#: that resolve to a whole module rather than an attribute of one.
_V2_HOMES: dict[str, tuple[str, str | None]] = {
    "simulate_trace": (_REPLAY, "simulate_trace"),
    "TraceSimResult": (_REPLAY, "TraceSimResult"),
    "PlanCache": (_REPLAY, "PlanCache"),
    "effective_partition": (_REPLAY, "effective_partition"),
    "intern_stream": (_REPLAY, "intern_stream"),
    "InternedStream": (_REPLAY, "InternedStream"),
    "ReplayConfig": (_REPLAY, "ReplayConfig"),
    "simulate_grid_pass": (_REPLAY, "simulate_grid_pass"),
    "NUMPY_AVAILABLE": (_REPLAY, "NUMPY_AVAILABLE"),
    "VECTOR_POLICIES": (_REPLAY, "VECTOR_POLICIES"),
    "VectorFleet": (_REPLAY, "VectorFleet"),
    "VectorReplay": (_REPLAY, "VectorReplay"),
    "StackDistanceProfile": (_REPLAY, "StackDistanceProfile"),
    "SampledStackDistanceProfile": (_REPLAY, "SampledStackDistanceProfile"),
    "available_codes": (_REPLAY, "available_codes"),
    "make_code": (_REPLAY, "make_code"),
    "available_policies": (_REPLAY, "available_policies"),
    "make_policy": (_REPLAY, "make_policy"),
    "PAPER_BASELINES": (_REPLAY, "PAPER_BASELINES"),
    "available_backends": (_REPLAY, "available_backends"),
    "make_backend": (_REPLAY, "make_backend"),
    "register_backend": (_REPLAY, "register_backend"),
    "CodeBackend": (_REPLAY, "CodeBackend"),
    "EnginePlan": (_REPLAY, "EnginePlan"),
    "PriorityModel": (_REPLAY, "PriorityModel"),
    "run_grid": (_BENCH, "run_grid"),
    "GridPoint": (_BENCH, "GridPoint"),
    "EngineConfig": (_BENCH, "EngineConfig"),
    "EngineResult": (_BENCH, "EngineResult"),
    "PointTiming": (_BENCH, "PointTiming"),
    "ResultCache": (_BENCH, "ResultCache"),
    "ENGINE_CACHE_VERSION": (_BENCH, "ENGINE_CACHE_VERSION"),
    "default_cache_dir": (_BENCH, "default_cache_dir"),
    "experiment_grid": (_BENCH, "experiment_grid"),
    "rows_equivalent": (_BENCH, "rows_equivalent"),
    "EXPERIMENT_NAMES": (_BENCH, "EXPERIMENT_NAMES"),
    "Scale": (_BENCH, "Scale"),
    "QUICK": (_BENCH, "QUICK"),
    "FULL": (_BENCH, "FULL"),
    "SweepPoint": (_BENCH, "SweepPoint"),
    "ClusterReport": (_CLUSTER, "ClusterReport"),
    "ClusterSpec": (_CLUSTER, "ClusterSpec"),
    "TopologySpec": (_CLUSTER, "TopologySpec"),
    "cluster_grid": (_CLUSTER, "cluster_grid"),
    "run_cluster_recovery": (_CLUSTER, "run_cluster_recovery"),
    "obs": ("repro.obs", None),
}

#: Names that already warned this process — one warning per name, not
#: per access (tests reset this set to re-arm the warnings).
_warned: set[str] = set()


def __getattr__(name: str):
    home = _V2_HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    module_name, attr = home
    if name not in _warned:
        _warned.add(name)
        v2_spelling = f"{module_name}.{attr}" if attr else module_name
        warnings.warn(
            f"repro.api.{name} is deprecated; use {v2_spelling} "
            "(the flat v1 facade will be removed one release after 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
    module = importlib.import_module(module_name)
    return getattr(module, attr) if attr else module


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
