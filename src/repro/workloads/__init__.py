"""Workload generation: error traces, trace files, foreground I/O."""

from .app_io import AppRequest, AppWorkloadConfig, generate_app_requests
from .distributions import SizeDistribution
from .errors import ErrorTraceConfig, PartialStripeError, generate_errors
from .field import FieldModel, expected_error_count, generate_field_trace
from .lba_traces import ByteExtentError, extents_to_errors
from .traces import TRACE_HEADER, TraceFormatError, read_trace, write_trace

__all__ = [
    "AppRequest",
    "AppWorkloadConfig",
    "generate_app_requests",
    "SizeDistribution",
    "ErrorTraceConfig",
    "PartialStripeError",
    "generate_errors",
    "TRACE_HEADER",
    "TraceFormatError",
    "read_trace",
    "write_trace",
    "ByteExtentError",
    "extents_to_errors",
    "FieldModel",
    "expected_error_count",
    "generate_field_trace",
]
