"""Synthetic partial-stripe-error traces (paper §IV-A).

A :class:`PartialStripeError` is a run of contiguous failed chunks on one
disk within one stripe — the paper's fundamental failure unit, bounded by
``(p-1) x chunksize`` (a larger loss is whole-stripe reconstruction,
outside this paper's scope).

The generator reproduces the evaluation's workload model plus the locality
structure the paper cites from Bairavasundaram et al. and Schroeder et al.:

* error sizes uniform on ``[1, p-1]`` chunks (configurable distribution);
* *spatial locality* — with probability ``spatial_locality``, the next
  error lands within ``neighbor_distance`` stripes of the previous one
  ("20% to 60% of all errors have a neighbor within a distance of less
  than 10 sectors");
* *temporal locality* — errors arrive in bursts: short intra-burst gaps,
  long gaps between bursts.

One stripe carries at most one error (the paper treats co-stripe errors
as a single contiguous run).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..codes.layout import Cell, CodeLayout
from ..utils import make_rng
from .distributions import SizeDistribution

__all__ = ["PartialStripeError", "ErrorTraceConfig", "generate_errors"]


@dataclass(frozen=True, order=True)
class PartialStripeError:
    """A contiguous run of failed chunks on one disk of one stripe."""

    time: float
    stripe: int
    disk: int
    start_row: int
    length: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")
        if self.stripe < 0:
            raise ValueError(f"negative stripe {self.stripe}")
        if self.disk < 0:
            raise ValueError(f"negative disk {self.disk}")
        if self.start_row < 0:
            raise ValueError(f"negative start_row {self.start_row}")
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")

    def cells(self, layout: CodeLayout) -> tuple[Cell, ...]:
        """The failed cells within the stripe, top to bottom."""
        if self.disk >= layout.num_disks:
            raise ValueError(
                f"error on disk {self.disk} but {layout.name} has "
                f"{layout.num_disks} disks"
            )
        if self.start_row + self.length > layout.rows:
            raise ValueError(
                f"error rows [{self.start_row}, {self.start_row + self.length}) "
                f"exceed {layout.rows} rows"
            )
        return tuple(
            (r, self.disk) for r in range(self.start_row, self.start_row + self.length)
        )

    @property
    def shape(self) -> tuple[int, int, int]:
        """(disk, start_row, length): the plan-cache key — two errors of the
        same shape share one recovery scheme regardless of stripe."""
        return (self.disk, self.start_row, self.length)


@dataclass(frozen=True)
class ErrorTraceConfig:
    """Knobs for :func:`generate_errors`."""

    n_errors: int = 100
    #: number of stripes in the array (error positions are drawn from it).
    array_stripes: int = 100_000
    size: SizeDistribution = field(default_factory=SizeDistribution)
    #: probability the next error is *placed* near the previous one.
    #: Note the measured neighbor fraction is roughly double this knob
    #: (each clustered placement gives both endpoints a neighbor); the
    #: default is calibrated so :func:`repro.analysis.trace_locality`
    #: measures ~0.4 — mid Schroeder et al.'s 20-60% band.
    spatial_locality: float = 0.22
    #: max stripe distance for a "near" error.
    neighbor_distance: int = 10
    #: mean seconds between bursts / within a burst.
    burst_gap: float = 100.0
    intra_burst_gap: float = 1.0
    #: mean number of errors per burst (geometric).
    burst_length: float = 4.0
    seed: int | None = 42

    def __post_init__(self) -> None:
        if self.n_errors < 1:
            raise ValueError(f"n_errors must be >= 1, got {self.n_errors}")
        if self.array_stripes < self.n_errors:
            raise ValueError(
                f"array_stripes ({self.array_stripes}) must be >= n_errors "
                f"({self.n_errors}) so stripes stay distinct"
            )
        if not 0.0 <= self.spatial_locality <= 1.0:
            raise ValueError(
                f"spatial_locality must be in [0,1], got {self.spatial_locality}"
            )
        if self.neighbor_distance < 1:
            raise ValueError(
                f"neighbor_distance must be >= 1, got {self.neighbor_distance}"
            )
        if self.burst_gap <= 0 or self.intra_burst_gap <= 0:
            raise ValueError("burst gaps must be positive")
        if self.burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {self.burst_length}")


def generate_errors(
    layout: CodeLayout, config: ErrorTraceConfig
) -> list[PartialStripeError]:
    """Sample a deterministic partial-stripe-error trace for ``layout``.

    Returns errors sorted by arrival time, one per stripe.
    """
    rng = make_rng(config.seed)
    max_size = layout.rows  # p - 1 chunks
    used_stripes: set[int] = set()
    errors: list[PartialStripeError] = []
    now = 0.0
    prev_stripe: int | None = None
    burst_remaining = 0

    def fresh_stripe(near: int | None) -> int:
        for _ in range(1000):
            if near is not None:
                delta = int(rng.integers(1, config.neighbor_distance + 1))
                sign = 1 if rng.random() < 0.5 else -1
                candidate = near + sign * delta
                if not 0 <= candidate < config.array_stripes:
                    candidate = near + delta if near + delta < config.array_stripes else near - delta
            else:
                candidate = int(rng.integers(0, config.array_stripes))
            if candidate not in used_stripes and 0 <= candidate < config.array_stripes:
                return candidate
            near = None  # fall back to uniform draws if the neighborhood is full
        raise RuntimeError("could not find a free stripe (array too full of errors)")

    for _ in range(config.n_errors):
        if burst_remaining <= 0:
            now += float(rng.exponential(config.burst_gap))
            burst_remaining = max(1, int(rng.geometric(1.0 / config.burst_length)))
        else:
            now += float(rng.exponential(config.intra_burst_gap))
        burst_remaining -= 1

        near = (
            prev_stripe
            if prev_stripe is not None and rng.random() < config.spatial_locality
            else None
        )
        stripe = fresh_stripe(near)
        used_stripes.add(stripe)
        prev_stripe = stripe

        size = config.size.sample(max_size, rng)
        start = int(rng.integers(0, layout.rows - size + 1))
        disk = int(rng.integers(0, layout.num_disks))
        errors.append(
            PartialStripeError(
                time=now, stripe=stripe, disk=disk, start_row=start, length=size
            )
        )
    return errors
