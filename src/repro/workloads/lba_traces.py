"""Adapter: byte-extent error records -> partial stripe errors.

Field reports (and public error datasets) describe latent sector errors
as per-disk byte extents ``(disk, offset, length)``.  This module maps
such extents onto a layout's stripe/row geometry, producing the
:class:`~repro.workloads.errors.PartialStripeError` batches the rest of
the system consumes.  Extents spanning stripe boundaries split into one
error per stripe; extents are rounded outward to whole chunks (a
partially damaged chunk is a damaged chunk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..codes.layout import CodeLayout
from .errors import PartialStripeError

__all__ = ["ByteExtentError", "extents_to_errors"]


@dataclass(frozen=True)
class ByteExtentError:
    """One reported unreadable byte range on one disk."""

    time: float
    disk: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")
        if self.disk < 0:
            raise ValueError(f"negative disk {self.disk}")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")


def extents_to_errors(
    layout: CodeLayout,
    extents: Iterable[ByteExtentError],
    chunk_size: int = 32 * 1024,
) -> list[PartialStripeError]:
    """Convert byte extents into per-stripe partial stripe errors.

    Disk addressing matches the simulators: chunk ``i`` on a disk belongs
    to stripe ``i // rows``, row ``i % rows``.  Overlapping extents on
    the same stripe/disk are merged into one contiguous error covering
    their union (the paper treats co-stripe errors as one continuous
    run).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    rows = layout.rows
    # (stripe, disk) -> [first_row, last_row, earliest_time]
    merged: dict[tuple[int, int], list] = {}
    for ext in extents:
        if ext.disk >= layout.num_disks:
            raise ValueError(
                f"extent on disk {ext.disk} but {layout.name} has "
                f"{layout.num_disks} disks"
            )
        first_chunk = ext.offset // chunk_size
        last_chunk = (ext.offset + ext.length - 1) // chunk_size
        for chunk in range(first_chunk, last_chunk + 1):
            stripe, row = divmod(chunk, rows)
            key = (stripe, ext.disk)
            entry = merged.get(key)
            if entry is None:
                merged[key] = [row, row, ext.time]
            else:
                entry[0] = min(entry[0], row)
                entry[1] = max(entry[1], row)
                entry[2] = min(entry[2], ext.time)
    errors = [
        PartialStripeError(
            time=time,
            stripe=stripe,
            disk=disk,
            start_row=first,
            length=last - first + 1,
        )
        for (stripe, disk), (first, last, time) in merged.items()
    ]
    errors.sort()
    return errors
