"""Field-calibrated error workloads.

The synthetic generator in :mod:`repro.workloads.errors` exposes abstract
knobs; this module grounds them in the field studies the paper cites:

* Bairavasundaram et al. (SIGMETRICS 2007): latent sector errors appeared
  in **3.45%** of studied disks over 32 months; disks that develop one
  LSE tend to develop more (high re-occurrence).
* Schroeder et al. (ToS 2010): **20-60%** of errors have a neighbour
  within 10 sectors in logical space; errors arrive in temporal bursts.

:func:`generate_field_trace` turns a deployment description (number of
arrays, observation window) into a partial-stripe-error trace with those
statistics, suitable for the online-recovery simulator (times are in
seconds over the whole window) or, sorted, for batch reconstruction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..codes.layout import CodeLayout
from ..utils import make_rng
from .distributions import SizeDistribution
from .errors import PartialStripeError

__all__ = ["FieldModel", "expected_error_count", "generate_field_trace"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class FieldModel:
    """Deployment + error-statistics description."""

    #: fraction of disks developing at least one LSE over the study window
    #: (Bairavasundaram et al.: 3.45% over 32 months).
    lse_disk_fraction: float = 0.0345
    study_months: float = 32.0
    #: once a disk has errors, mean number of distinct error events
    #: (re-occurrence: affected disks see multiple errors).
    events_per_affected_disk: float = 3.0
    #: probability an error lands near the previous one on the same disk
    #: (Schroeder et al.: 20-60% within 10 sectors).
    spatial_locality: float = 0.4
    neighbor_distance: int = 10
    #: mean chunks per error event.
    size: SizeDistribution = field(default_factory=SizeDistribution)
    #: intra-burst spacing in seconds (errors detected close together).
    intra_burst_gap: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.lse_disk_fraction < 1.0:
            raise ValueError(
                f"lse_disk_fraction must be in (0,1), got {self.lse_disk_fraction}"
            )
        if self.study_months <= 0:
            raise ValueError(f"study_months must be > 0, got {self.study_months}")
        if self.events_per_affected_disk < 1:
            raise ValueError(
                f"events_per_affected_disk must be >= 1, got "
                f"{self.events_per_affected_disk}"
            )
        if not 0.0 <= self.spatial_locality <= 1.0:
            raise ValueError(
                f"spatial_locality must be in [0,1], got {self.spatial_locality}"
            )
        if self.intra_burst_gap <= 0:
            raise ValueError(f"intra_burst_gap must be > 0, got {self.intra_burst_gap}")

    @property
    def per_disk_event_rate_per_day(self) -> float:
        """Poisson rate of error events per disk-day.

        Calibrated so that P(disk has >= 1 event over the study window)
        equals ``lse_disk_fraction`` — i.e. ``rate = -ln(1 - f) / T`` —
        then scaled by re-occurrence for the event count.
        """
        days = self.study_months * 30.44
        onset_rate = -math.log(1.0 - self.lse_disk_fraction) / days
        return onset_rate * self.events_per_affected_disk


def expected_error_count(
    model: FieldModel, num_disks: int, duration_days: float
) -> float:
    """Expected number of error events for a deployment and window."""
    if num_disks < 1 or duration_days <= 0:
        raise ValueError("need >= 1 disk and positive duration")
    return model.per_disk_event_rate_per_day * num_disks * duration_days


def generate_field_trace(
    layout: CodeLayout,
    duration_days: float = 365.0,
    array_stripes: int = 100_000,
    model: FieldModel = FieldModel(),
    seed: int | None = 42,
) -> list[PartialStripeError]:
    """Sample a calibrated error trace for one array over a time window.

    Each disk runs an independent Poisson process of error events; events
    on a disk cluster spatially around that disk's previous error with
    probability ``model.spatial_locality``.  Times are seconds from the
    window start; at most one error per stripe is kept (later events on
    an already-hit stripe merge into the run, per the paper's treatment).
    """
    if duration_days <= 0:
        raise ValueError(f"duration_days must be > 0, got {duration_days}")
    rng = make_rng(seed)
    rate = model.per_disk_event_rate_per_day
    horizon = duration_days * _SECONDS_PER_DAY
    used_stripes: set[int] = set()
    errors: list[PartialStripeError] = []
    for disk in range(layout.num_disks):
        t = 0.0
        prev_stripe: int | None = None
        while True:
            t += float(rng.exponential(_SECONDS_PER_DAY / rate))
            if t >= horizon:
                break
            stripe = None
            if (
                prev_stripe is not None
                and rng.random() < model.spatial_locality
            ):
                delta = int(rng.integers(1, model.neighbor_distance + 1))
                candidate = min(
                    max(prev_stripe + (delta if rng.random() < 0.5 else -delta), 0),
                    array_stripes - 1,
                )
                if candidate not in used_stripes:
                    stripe = candidate
            attempts = 0
            while stripe is None:
                candidate = int(rng.integers(0, array_stripes))
                if candidate not in used_stripes:
                    stripe = candidate
                attempts += 1
                if attempts > 1000:
                    raise RuntimeError("array saturated with errors")
            t_event = t
            used_stripes.add(stripe)
            prev_stripe = stripe
            size = model.size.sample(layout.rows, rng)
            start = int(rng.integers(0, layout.rows - size + 1))
            errors.append(
                PartialStripeError(
                    time=t_event, stripe=stripe, disk=disk,
                    start_row=start, length=size,
                )
            )
    errors.sort()
    return errors
