"""On-disk trace format for partial-stripe-error workloads.

A plain text format so traces can be generated once, shared, diffed, and
replayed (the simulators accept any ``list[PartialStripeError]``, wherever
it came from)::

    # repro-fbf-trace v1
    # code=tip p=7 chunk=32KB           <- free-form metadata comments
    # time stripe disk start_row length
    0.000000 1843 0 2 3
    1.271828 1849 5 0 1

Lines starting with ``#`` are comments; fields are whitespace-separated.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from .errors import PartialStripeError

__all__ = ["write_trace", "read_trace", "TraceFormatError", "TRACE_HEADER"]

TRACE_HEADER = "# repro-fbf-trace v1"


class TraceFormatError(ValueError):
    """Raised for malformed trace files."""


def write_trace(
    destination: str | Path | TextIO,
    errors: Iterable[PartialStripeError],
    metadata: dict[str, str] | None = None,
) -> None:
    """Serialize ``errors`` to ``destination`` (path or open text file)."""

    def _write(fh: TextIO) -> None:
        fh.write(TRACE_HEADER + "\n")
        if metadata:
            meta = " ".join(f"{k}={v}" for k, v in sorted(metadata.items()))
            fh.write(f"# {meta}\n")
        fh.write("# time stripe disk start_row length\n")
        for e in errors:
            fh.write(f"{e.time:.6f} {e.stripe} {e.disk} {e.start_row} {e.length}\n")

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            _write(fh)
    else:
        _write(destination)


def read_trace(source: str | Path | TextIO) -> list[PartialStripeError]:
    """Parse a trace file; raises :class:`TraceFormatError` on bad input."""

    def _read(fh: TextIO) -> list[PartialStripeError]:
        first = fh.readline().rstrip("\n")
        if first != TRACE_HEADER:
            raise TraceFormatError(
                f"bad header {first!r}; expected {TRACE_HEADER!r}"
            )
        errors: list[PartialStripeError] = []
        for lineno, line in enumerate(fh, start=2):
            body = line.strip()
            if not body or body.startswith("#"):
                continue
            parts = body.split()
            if len(parts) != 5:
                raise TraceFormatError(
                    f"line {lineno}: expected 5 fields, got {len(parts)}: {body!r}"
                )
            try:
                time = float(parts[0])
                stripe, disk, start, length = (int(x) for x in parts[1:])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from None
            try:
                errors.append(
                    PartialStripeError(
                        time=time,
                        stripe=stripe,
                        disk=disk,
                        start_row=start,
                        length=length,
                    )
                )
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from None
        return errors

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(source)
