"""Foreground application I/O mixed into reconstruction.

The paper motivates holding high-priority chunks partly because "the
application can access these chunks during partial stripe reconstruction".
This module generates a foreground read stream — Zipf-popular stripes with
short sequential runs — that the simulators can interleave with recovery
traffic to study FBF under load (used by the mixed-workload example and
the ablation benches; the paper's headline experiments are recovery-only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codes.layout import Cell, CodeLayout
from ..utils import make_rng

__all__ = ["AppRequest", "AppWorkloadConfig", "generate_app_requests"]


@dataclass(frozen=True, order=True)
class AppRequest:
    """One foreground chunk read."""

    time: float
    stripe: int
    cell: Cell


@dataclass(frozen=True)
class AppWorkloadConfig:
    n_requests: int = 1000
    array_stripes: int = 100_000
    #: Zipf exponent for stripe popularity (>1; larger = more skew).
    zipf_s: float = 1.2
    #: number of distinct hot stripes.
    working_set: int = 512
    #: mean sequential run length in chunks.
    run_length: float = 4.0
    #: mean inter-arrival seconds.
    interarrival: float = 0.01
    seed: int | None = 7

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.zipf_s <= 1.0:
            raise ValueError(f"zipf_s must be > 1, got {self.zipf_s}")
        if self.working_set < 1:
            raise ValueError(f"working_set must be >= 1, got {self.working_set}")
        if self.run_length < 1:
            raise ValueError(f"run_length must be >= 1, got {self.run_length}")
        if self.interarrival <= 0:
            raise ValueError(f"interarrival must be > 0, got {self.interarrival}")


def generate_app_requests(
    layout: CodeLayout, config: AppWorkloadConfig
) -> list[AppRequest]:
    """Sample a deterministic foreground read stream over data cells."""
    rng = make_rng(config.seed)
    # A fixed random mapping from Zipf rank to stripe id keeps hot stripes
    # scattered across the array, like real hot files.
    hot_stripes = rng.choice(
        config.array_stripes, size=min(config.working_set, config.array_stripes),
        replace=False,
    )
    data_cells = layout.data_cells
    requests: list[AppRequest] = []
    now = 0.0
    while len(requests) < config.n_requests:
        now += float(rng.exponential(config.interarrival))
        rank = int(rng.zipf(config.zipf_s))
        stripe = int(hot_stripes[(rank - 1) % len(hot_stripes)])
        start = int(rng.integers(0, len(data_cells)))
        run = max(1, int(rng.geometric(1.0 / config.run_length)))
        for k in range(run):
            if len(requests) >= config.n_requests:
                break
            cell = data_cells[(start + k) % len(data_cells)]
            requests.append(AppRequest(time=now, stripe=stripe, cell=cell))
    return requests
