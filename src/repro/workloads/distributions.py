"""Error-size distributions for partial stripe errors.

The paper draws error sizes uniformly from ``[1, p-1]`` chunks (mean
``(p-1)/2``) and notes FBF "can be proved under other distributions as
well" — so alongside ``uniform`` we provide ``fixed`` and a truncated
``geometric`` favouring small errors (the empirically common case for
latent sector errors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = ["SizeDistribution"]


@dataclass(frozen=True)
class SizeDistribution:
    """Samples error lengths in chunks, always within ``[1, max_size]``."""

    kind: Literal["uniform", "fixed", "geometric"] = "uniform"
    #: for ``fixed``: the constant size; for ``geometric``: the mean.
    parameter: float = 0.0

    def sample(self, max_size: int, rng: np.random.Generator) -> int:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if self.kind == "uniform":
            return int(rng.integers(1, max_size + 1))
        if self.kind == "fixed":
            size = int(self.parameter) or 1
            if not 1 <= size <= max_size:
                raise ValueError(
                    f"fixed size {size} outside [1, {max_size}]"
                )
            return size
        if self.kind == "geometric":
            mean = self.parameter if self.parameter > 0 else max(1.0, max_size / 4)
            p = min(1.0, 1.0 / mean)
            size = int(rng.geometric(p))
            return min(max(size, 1), max_size)
        raise ValueError(f"unknown size distribution {self.kind!r}")

    def mean(self, max_size: int) -> float:
        """Expected sampled size (after truncation, approximately)."""
        if self.kind == "uniform":
            return (1 + max_size) / 2
        if self.kind == "fixed":
            return float(int(self.parameter) or 1)
        if self.kind == "geometric":
            mean = self.parameter if self.parameter > 0 else max(1.0, max_size / 4)
            return min(mean, float(max_size))
        raise ValueError(f"unknown size distribution {self.kind!r}")
