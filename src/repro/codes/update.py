"""Update-complexity metrics for the XOR 3DFT codes.

When an application overwrites one data chunk, every parity chunk whose
chain contains it must be XOR-patched (read-modify-write).  The *update
complexity* of a cell is the number of parity cells it feeds; its
average over data cells is a primary figure of merit for array codes —
TIP-code's headline claim is *optimal* update complexity (3 for a 3DFT:
one parity per direction), while EVENODD-style adjuster codes (STAR,
HDD1) pay extra because adjuster cells feed every chain of a direction.

These metrics come straight from the encoder's parity-combination matrix,
so they reflect the actual constructions in this package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .encoder import Encoder
from .layout import Cell, CodeLayout

__all__ = ["UpdateComplexity", "update_complexity", "parities_touched"]

#: a 3-failure-tolerant code cannot update fewer parities than this.
OPTIMAL_3DFT = 3


@dataclass(frozen=True)
class UpdateComplexity:
    """Distribution of parity writes per single-chunk data update."""

    code: str
    p: int
    average: float
    minimum: int
    maximum: int
    #: data cells hitting the theoretical optimum of 3.
    optimal_fraction: float

    @property
    def is_optimal(self) -> bool:
        """True when every data cell updates exactly 3 parities."""
        return self.minimum == self.maximum == OPTIMAL_3DFT


def parities_touched(layout: CodeLayout, encoder: Encoder | None = None) -> dict[Cell, int]:
    """Per data cell: how many parity chunks an overwrite must patch."""
    enc = encoder if encoder is not None else Encoder(layout)
    counts = enc.combination.sum(axis=0)  # parity x data -> per-data column sum
    return {
        cell: int(counts[i]) for i, cell in enumerate(layout.data_cells)
    }


def update_complexity(layout: CodeLayout) -> UpdateComplexity:
    """Summarize the update cost distribution of a layout."""
    per_cell = parities_touched(layout)
    values = np.array(list(per_cell.values()))
    return UpdateComplexity(
        code=layout.name,
        p=layout.p,
        average=float(values.mean()),
        minimum=int(values.min()),
        maximum=int(values.max()),
        optimal_fraction=float((values == OPTIMAL_3DFT).mean()),
    )
