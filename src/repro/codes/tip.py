"""TIP-code (Zhang, Wu, Li & Guo, DSN 2015) — p+1 disks.

TIP ("Three Independent Parities") tolerates triple failures on ``p + 1``
disks with optimal update complexity.  We model it as the RTP family
shortened to ``p - 2`` data columns (see DESIGN.md §4): three independent
parity directions, no adjusters, ``p + 1`` disks — preserving the chain
geometry the FBF evaluation exercises.
"""

from __future__ import annotations

from ._builders import build_rtp_family
from .layout import CodeLayout

__all__ = ["make_tip"]


def make_tip(p: int) -> CodeLayout:
    """Build the TIP layout for prime ``p`` (``p + 1`` disks)."""
    return build_rtp_family(
        "TIP",
        p,
        num_data=p - 2,
        description=(
            f"TIP-code, p={p}: {p - 2} data disks + row/diagonal/anti-diagonal "
            "parity disks; shortened RTP-style chains."
        ),
    )
