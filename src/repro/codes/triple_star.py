"""Triple-STAR code (Wang, Li & Zhong, 2012) — p+2 disks.

The published Triple-STAR targets optimal *encoding* complexity.  We model
it as the adjuster-free member of the RTP family with ``p - 1`` data
columns: diagonal and anti-diagonal chains run across the data columns and
the row-parity column, so every parity is a plain XOR of a chain with no
adjuster correction — matching the code's minimal-XOR-count character.
(See DESIGN.md §4 for the substitution rationale.)
"""

from __future__ import annotations

from ._builders import build_rtp_family
from .layout import CodeLayout

__all__ = ["make_triple_star"]


def make_triple_star(p: int) -> CodeLayout:
    """Build the Triple-STAR layout for prime ``p`` (``p + 2`` disks)."""
    return build_rtp_family(
        "Triple-STAR",
        p,
        num_data=p - 1,
        description=(
            f"Triple-STAR code, p={p}: {p - 1} data disks + row parity + "
            "diagonal + anti-diagonal parity disks; adjuster-free RTP-style chains."
        ),
    )
