"""Stripe layouts and parity chains for XOR-based 3DFT erasure codes.

Every code in this package lays a stripe out as a grid of *cells* — ``rows``
rows by ``num_disks`` columns, one column per disk.  Each cell holds one
chunk (the paper's recovery unit).  A *parity chain* is a set of cells whose
payloads XOR to zero; one member of the set is the designated parity cell
(where the redundancy is physically stored) and the rest are the covered
cells.  Chains come in three directions — horizontal, diagonal, and
anti-diagonal — which is the structural property FBF exploits.

Codes with EVENODD-style *adjusters* (STAR, HDD1) fold the adjuster
diagonal's cells directly into every chain of that direction, so a chain is
always exactly one XOR-sums-to-zero constraint.  A side effect faithfully
reproduced here: adjuster cells appear in *every* chain of their direction,
which is why the paper observes STAR's adjuster chunks being referenced
more than three times during recovery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Iterable, Mapping, Sequence

import numpy as np

from .gf2 import gf2_rank

__all__ = [
    "Cell",
    "Direction",
    "CellKind",
    "ParityChain",
    "CodeLayout",
    "LayoutError",
]

#: A cell is addressed by (row, column) within a stripe.
Cell = tuple[int, int]


class LayoutError(ValueError):
    """Raised when a layout violates its structural invariants."""


class Direction(Enum):
    """The three parity-chain directions of a 3DFT code."""

    HORIZONTAL = "H"
    DIAGONAL = "D"
    ANTIDIAGONAL = "A"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CellKind(Enum):
    DATA = "data"
    PARITY = "parity"
    UNUSED = "unused"


@dataclass(frozen=True)
class ParityChain:
    """One XOR constraint: the payloads of ``cells`` XOR to zero.

    ``parity_cell`` is the member where the redundancy is stored; it is the
    cell this chain can *recompute*, and any single missing member can be
    rebuilt from the others.
    """

    direction: Direction
    index: int
    cells: frozenset[Cell]
    parity_cell: Cell

    def __post_init__(self) -> None:
        if self.parity_cell not in self.cells:
            raise LayoutError(
                f"parity cell {self.parity_cell} not a member of chain "
                f"{self.direction.value}{self.index}"
            )
        if len(self.cells) < 2:
            raise LayoutError(
                f"chain {self.direction.value}{self.index} has fewer than 2 cells"
            )

    @property
    def chain_id(self) -> str:
        return f"{self.direction.value}{self.index}"

    def others(self, cell: Cell) -> frozenset[Cell]:
        """All chain members except ``cell``."""
        if cell not in self.cells:
            raise KeyError(f"{cell} not in chain {self.chain_id}")
        return self.cells - {cell}

    def columns(self) -> set[int]:
        return {c for _, c in self.cells}

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: object) -> bool:
        return cell in self.cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParityChain({self.chain_id}, {len(self.cells)} cells)"


@dataclass
class CodeLayout:
    """A fully-specified stripe layout for one XOR 3DFT code.

    Concrete codes (STAR, Triple-STAR, TIP, HDD1) construct an instance via
    their module-level ``make(p)`` builders.  The class itself is
    code-agnostic: everything downstream (recovery planning, priorities,
    encoding, decoding, simulation) works purely off the chain structure.
    """

    name: str
    p: int
    rows: int
    num_disks: int
    data_cells: tuple[Cell, ...]
    parity_cells: tuple[Cell, ...]
    chains: tuple[ParityChain, ...]
    description: str = ""
    _chains_by_cell: dict[Cell, tuple[ParityChain, ...]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self.validate()
        by_cell: dict[Cell, list[ParityChain]] = {}
        for chain in self.chains:
            for cell in chain.cells:
                by_cell.setdefault(cell, []).append(chain)
        self._chains_by_cell = {c: tuple(v) for c, v in by_cell.items()}

    # -- structure ------------------------------------------------------
    @property
    def all_cells(self) -> tuple[Cell, ...]:
        return self.data_cells + self.parity_cells

    @cached_property
    def cell_index(self) -> dict[Cell, int]:
        """Stable cell → integer index (for linear-algebra views)."""
        return {cell: i for i, cell in enumerate(self.all_cells)}

    def kind(self, cell: Cell) -> CellKind:
        if cell in self._data_set:
            return CellKind.DATA
        if cell in self._parity_set:
            return CellKind.PARITY
        return CellKind.UNUSED

    @cached_property
    def _data_set(self) -> frozenset[Cell]:
        return frozenset(self.data_cells)

    @cached_property
    def _parity_set(self) -> frozenset[Cell]:
        return frozenset(self.parity_cells)

    def cells_on_disk(self, disk: int) -> tuple[Cell, ...]:
        """All used cells in column ``disk``, in row order."""
        if not 0 <= disk < self.num_disks:
            raise IndexError(f"disk {disk} out of range (0..{self.num_disks - 1})")
        used = self._data_set | self._parity_set
        return tuple((r, disk) for r in range(self.rows) if (r, disk) in used)

    def chains_for(self, cell: Cell) -> tuple[ParityChain, ...]:
        """Every chain the cell participates in (possibly many for adjusters)."""
        return self._chains_by_cell.get(cell, ())

    def chains_in(self, direction: Direction) -> tuple[ParityChain, ...]:
        return tuple(c for c in self.chains if c.direction is direction)

    # -- invariants -------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`LayoutError` if broken."""
        seen: set[Cell] = set()
        for cell in itertools.chain(self.data_cells, self.parity_cells):
            r, c = cell
            if not (0 <= r < self.rows and 0 <= c < self.num_disks):
                raise LayoutError(f"cell {cell} outside {self.rows}x{self.num_disks} grid")
            if cell in seen:
                raise LayoutError(f"cell {cell} declared twice")
            seen.add(cell)
        parity_set = set(self.parity_cells)
        chain_ids = set()
        chain_parity_cells = set()
        for chain in self.chains:
            if chain.chain_id in chain_ids:
                raise LayoutError(f"duplicate chain id {chain.chain_id}")
            chain_ids.add(chain.chain_id)
            if chain.parity_cell not in parity_set:
                raise LayoutError(
                    f"chain {chain.chain_id} stores parity in non-parity cell "
                    f"{chain.parity_cell}"
                )
            if chain.parity_cell in chain_parity_cells:
                raise LayoutError(
                    f"parity cell {chain.parity_cell} used by two chains"
                )
            chain_parity_cells.add(chain.parity_cell)
            for cell in chain.cells:
                if cell not in seen:
                    raise LayoutError(
                        f"chain {chain.chain_id} references undeclared cell {cell}"
                    )
        if chain_parity_cells != parity_set:
            orphans = parity_set - chain_parity_cells
            raise LayoutError(f"parity cells without a chain: {sorted(orphans)}")
        for cell in self.data_cells:
            if not any(cell in chain for chain in self.chains):
                raise LayoutError(f"data cell {cell} not protected by any chain")

    # -- linear-algebra views ---------------------------------------------
    def constraint_matrix(self) -> np.ndarray:
        """Chains × cells incidence matrix over GF(2).

        Row *i* has ones at the cells of chain *i* (including its parity
        cell); a stripe payload vector ``v`` is valid iff ``M @ v == 0``.
        """
        idx = self.cell_index
        m = np.zeros((len(self.chains), len(idx)), dtype=np.uint8)
        for i, chain in enumerate(self.chains):
            for cell in chain.cells:
                m[i, idx[cell]] = 1
        return m

    def erasure_matrix(self, erased: Iterable[Cell]) -> tuple[np.ndarray, list[Cell]]:
        """Constraint submatrix restricted to ``erased`` cells.

        Returns ``(A, erased_list)`` where ``A[i, j] == 1`` iff chain *i*
        contains the *j*-th erased cell.  The pattern is decodable iff
        ``A`` has full column rank.
        """
        erased_list = sorted(set(erased))
        idx = self.cell_index
        for cell in erased_list:
            if cell not in idx:
                raise KeyError(f"cell {cell} is not part of layout {self.name}")
        a = np.zeros((len(self.chains), len(erased_list)), dtype=np.uint8)
        for i, chain in enumerate(self.chains):
            for j, cell in enumerate(erased_list):
                if cell in chain:
                    a[i, j] = 1
        return a, erased_list

    def tolerates(self, erased: Iterable[Cell]) -> bool:
        """True if the erasure pattern is decodable (full column rank)."""
        a, erased_list = self.erasure_matrix(erased)
        if not erased_list:
            return True
        return gf2_rank(a) == len(erased_list)

    def tolerates_disks(self, disks: Sequence[int]) -> bool:
        """True if losing the given whole columns is decodable."""
        erased = [cell for d in disks for cell in self.cells_on_disk(d)]
        return self.tolerates(erased)

    # -- presentation -------------------------------------------------------
    def ascii_grid(self, annotate: Mapping[Cell, str] | None = None) -> str:
        """Render the stripe as a small ASCII grid (docs/examples helper)."""
        annotate = annotate or {}
        width = max(
            4, max((len(v) for v in annotate.values()), default=0) + 1
        )
        lines = [
            "".join(f"d{c:<{width - 1}}" for c in range(self.num_disks))
        ]
        for r in range(self.rows):
            row = []
            for c in range(self.num_disks):
                cell = (r, c)
                if cell in annotate:
                    tag = annotate[cell]
                elif self.kind(cell) is CellKind.DATA:
                    tag = "."
                elif self.kind(cell) is CellKind.PARITY:
                    tag = "P"
                else:
                    tag = " "
                row.append(f"{tag:<{width}}")
            lines.append("".join(row))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodeLayout({self.name}, p={self.p}, {self.rows}x{self.num_disks}, "
            f"{len(self.chains)} chains)"
        )
