"""HDD1 code (Tau & Wang, 2003) — p+1 disks.

HDD1 is a horizontal/dual-diagonal parity placement for triple failure
tolerance on ``p + 1`` disks.  We model it as the STAR family shortened to
``p - 2`` data columns (see DESIGN.md §4): EVENODD-style diagonal and
anti-diagonal chains *with adjusters*, which differentiates its recovery
behaviour from the adjuster-free TIP at the same disk count.
"""

from __future__ import annotations

from ._builders import build_star_family
from .layout import CodeLayout

__all__ = ["make_hdd1"]


def make_hdd1(p: int) -> CodeLayout:
    """Build the HDD1 layout for prime ``p`` (``p + 1`` disks)."""
    return build_star_family(
        "HDD1",
        p,
        num_data=p - 2,
        description=(
            f"HDD1 code, p={p}: {p - 2} data disks + horizontal/diagonal/"
            "anti-diagonal parity disks; EVENODD-style adjusters."
        ),
    )
