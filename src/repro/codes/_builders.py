"""Construction helpers shared by the four 3DFT codes.

Two XOR-code families cover all four codes in the paper's evaluation:

* the **RTP family** (``build_rtp_family``) — row parity plus diagonal and
  anti-diagonal parities where the diagonal chains *include* the row-parity
  column (RDP-style), so no adjuster terms are needed.  Triple-STAR (k=p-1
  data columns) and TIP (k=p-2) are built from this family.
* the **STAR family** (``build_star_family``) — EVENODD-style diagonal and
  anti-diagonal parities over the data columns only, each chain folding in
  the *adjuster* diagonal (the diagonal with no parity cell of its own).
  STAR (k=p data columns) and HDD1 (k=p-2) are built from this family.

Shortening (choosing ``k`` smaller than the family's natural width) deletes
virtual data columns that are implicitly all-zero; it preserves the triple
erasure tolerance of the parent code, which the test suite re-verifies
exhaustively by GF(2) rank checks.

Both families use ``p - 1`` rows plus an imaginary all-zero row ``p - 1``;
cells in the imaginary row are simply omitted from chains.
"""

from __future__ import annotations

from .layout import Cell, CodeLayout, Direction, ParityChain
from ..utils import require_prime

__all__ = ["build_rtp_family", "build_star_family"]


def _check_args(p: int, num_data: int, max_data: int) -> None:
    require_prime(p)
    if p < 3:
        raise ValueError(f"p must be >= 3, got {p}")
    if not 1 <= num_data <= max_data:
        raise ValueError(
            f"num_data must be in [1, {max_data}] for p={p}, got {num_data}"
        )


def build_rtp_family(name: str, p: int, num_data: int, description: str = "") -> CodeLayout:
    """RTP-style layout: diagonal/anti-diagonal chains cover the row-parity column.

    Physical columns: ``0..num_data-1`` data, ``num_data`` row parity,
    ``num_data+1`` diagonal parity, ``num_data+2`` anti-diagonal parity.
    The row-parity column sits at *virtual* column ``p-1`` so the diagonal
    geometry matches the unshortened code.
    """
    _check_args(p, num_data, p - 1)
    rows = p - 1
    row_parity_col = num_data
    diag_col = num_data + 1
    anti_col = num_data + 2
    num_disks = num_data + 3

    # virtual column index -> physical column, for the columns diagonals cover
    covered = {vj: vj for vj in range(num_data)}
    covered[p - 1] = row_parity_col

    data_cells = tuple((r, c) for r in range(rows) for c in range(num_data))
    parity_cells = tuple(
        (r, c) for c in (row_parity_col, diag_col, anti_col) for r in range(rows)
    )

    chains: list[ParityChain] = []
    for i in range(rows):
        cells = frozenset(
            {(i, j) for j in range(num_data)} | {(i, row_parity_col)}
        )
        chains.append(
            ParityChain(Direction.HORIZONTAL, i, cells, (i, row_parity_col))
        )
    for d in range(p - 1):
        cells: set[Cell] = {(d, diag_col)}
        for vj, phys in covered.items():
            i = (d - vj) % p
            if i < rows:
                cells.add((i, phys))
        chains.append(ParityChain(Direction.DIAGONAL, d, frozenset(cells), (d, diag_col)))
    for d in range(p - 1):
        cells = {(d, anti_col)}
        for vj, phys in covered.items():
            i = (d + vj) % p
            if i < rows:
                cells.add((i, phys))
        chains.append(
            ParityChain(Direction.ANTIDIAGONAL, d, frozenset(cells), (d, anti_col))
        )

    return CodeLayout(
        name=name,
        p=p,
        rows=rows,
        num_disks=num_disks,
        data_cells=data_cells,
        parity_cells=parity_cells,
        chains=tuple(chains),
        description=description,
    )


def build_star_family(name: str, p: int, num_data: int, description: str = "") -> CodeLayout:
    """STAR-style layout: EVENODD diagonals over data columns with adjusters.

    Physical columns: ``0..num_data-1`` data, ``num_data`` horizontal
    parity, ``num_data+1`` diagonal parity, ``num_data+2`` anti-diagonal
    parity.  Diagonal ``p-1`` (and anti-diagonal ``p-1``) has no parity
    cell; its data cells — the *adjuster* — are folded into every chain of
    that direction.
    """
    _check_args(p, num_data, p)
    rows = p - 1
    h_col = num_data
    diag_col = num_data + 1
    anti_col = num_data + 2
    num_disks = num_data + 3

    data_cells = tuple((r, c) for r in range(rows) for c in range(num_data))
    parity_cells = tuple(
        (r, c) for c in (h_col, diag_col, anti_col) for r in range(rows)
    )

    diag_adjuster = frozenset(
        (i, j)
        for j in range(num_data)
        for i in [(p - 1 - j) % p]
        if i < rows
    )
    anti_adjuster = frozenset(
        (i, j)
        for j in range(num_data)
        for i in [(p - 1 + j) % p]
        if i < rows
    )

    chains: list[ParityChain] = []
    for i in range(rows):
        cells = frozenset({(i, j) for j in range(num_data)} | {(i, h_col)})
        chains.append(ParityChain(Direction.HORIZONTAL, i, cells, (i, h_col)))
    for d in range(p - 1):
        diag_cells = {
            (i, j)
            for j in range(num_data)
            for i in [(d - j) % p]
            if i < rows
        }
        cells = frozenset(diag_cells | diag_adjuster | {(d, diag_col)})
        chains.append(ParityChain(Direction.DIAGONAL, d, cells, (d, diag_col)))
    for d in range(p - 1):
        anti_cells = {
            (i, j)
            for j in range(num_data)
            for i in [(d + j) % p]
            if i < rows
        }
        cells = frozenset(anti_cells | anti_adjuster | {(d, anti_col)})
        chains.append(ParityChain(Direction.ANTIDIAGONAL, d, cells, (d, anti_col)))

    return CodeLayout(
        name=name,
        p=p,
        rows=rows,
        num_disks=num_disks,
        data_cells=data_cells,
        parity_cells=parity_cells,
        chains=tuple(chains),
        description=description,
    )
