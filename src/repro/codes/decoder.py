"""Erasure decoding for XOR 3DFT codes.

Two decoders, used in combination:

* :func:`peel_decode` — repeatedly rebuild any erased cell that is the only
  missing member of some parity chain.  This is what a RAID controller does
  during recovery, and is always sufficient for the paper's partial-stripe
  errors (all failures on one disk: every chain crosses a column at most
  twice, and the horizontal chain exactly once).
* :func:`solve_decode` — full GF(2) linear solve over the erasure pattern.
  Handles everything peeling cannot (e.g. some triple-column losses where
  no chain has a single missing member initially), at higher cost.

:func:`decode` runs peeling first and falls back to the solver, raising
:class:`DecodeError` only when the pattern is genuinely beyond the code's
erasure-correcting power.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .encoder import xor_cells
from .gf2 import gf2_solve_map
from .layout import Cell, CodeLayout

__all__ = ["DecodeError", "peel_decode", "solve_decode", "decode"]


class DecodeError(ValueError):
    """The erasure pattern exceeds the code's correcting capability."""


def _normalize_erased(layout: CodeLayout, erased: Iterable[Cell]) -> set[Cell]:
    erased_set = set(erased)
    known = set(layout.all_cells)
    unknown = erased_set - known
    if unknown:
        raise KeyError(f"erased cells not in layout {layout.name}: {sorted(unknown)}")
    return erased_set


def peel_decode(
    layout: CodeLayout, stripe: np.ndarray, erased: Iterable[Cell]
) -> set[Cell]:
    """Chain-peeling decode; rebuilds what it can in-place.

    Returns the set of cells still erased afterwards (empty on full
    success).  The payloads of still-erased cells are left untouched.
    """
    remaining = _normalize_erased(layout, erased)
    progress = True
    while remaining and progress:
        progress = False
        for cell in list(remaining):
            for chain in layout.chains_for(cell):
                missing = chain.cells & remaining
                if missing == {cell}:
                    stripe[cell[0], cell[1]] = xor_cells(stripe, chain.others(cell))
                    remaining.discard(cell)
                    progress = True
                    break
    return remaining


def solve_decode(
    layout: CodeLayout, stripe: np.ndarray, erased: Iterable[Cell]
) -> None:
    """Full linear-solve decode; rebuilds all erased cells in-place.

    Raises :class:`DecodeError` if the pattern is undecodable.
    """
    remaining = sorted(_normalize_erased(layout, erased))
    if not remaining:
        return
    a, erased_list = layout.erasure_matrix(remaining)
    try:
        solver = gf2_solve_map(a)
    except ValueError as exc:
        raise DecodeError(
            f"{layout.name}: erasure pattern of {len(erased_list)} cells is "
            f"undecodable ({exc})"
        ) from None
    # b[i] = XOR of the chain's *surviving* members.
    chunk = stripe.shape[2]
    b = np.empty((len(layout.chains), chunk), dtype=np.uint8)
    erased_set = set(erased_list)
    for i, chain in enumerate(layout.chains):
        b[i] = xor_cells(stripe, (c for c in chain.cells if c not in erased_set))
    for j, cell in enumerate(erased_list):
        mask = solver[j].astype(bool)
        if mask.any():
            stripe[cell[0], cell[1]] = np.bitwise_xor.reduce(b[mask], axis=0)
        else:  # pragma: no cover - full-rank solver rows are never empty
            stripe[cell[0], cell[1]] = 0


def decode(
    layout: CodeLayout, stripe: np.ndarray, erased: Iterable[Cell]
) -> None:
    """Rebuild all erased cells in-place: peel first, solve the rest."""
    remaining = peel_decode(layout, stripe, erased)
    if remaining:
        solve_decode(layout, stripe, remaining)
