"""Stripe encoding for XOR 3DFT codes.

A stripe's payload is a ``(rows, num_disks, chunk_size)`` uint8 array; the
encoder fills the parity cells so that every parity chain XORs to zero.

Two paths are provided:

* :class:`Encoder` — precomputes, once per layout, the GF(2) matrix
  expressing each parity cell as an XOR combination of data cells, then
  encodes any payload with pure vectorized XOR.  This is the production
  path.
* :func:`encode_by_chains` — a slow reference encoder that resolves chains
  iteratively (compute any parity whose other members are all known).  The
  test suite cross-checks the two.
"""

from __future__ import annotations

import numpy as np

from .gf2 import gf2_matmul, gf2_solve_map
from .layout import Cell, CodeLayout

__all__ = ["Encoder", "encode_by_chains", "xor_cells", "verify_stripe", "empty_stripe"]


def empty_stripe(layout: CodeLayout, chunk_size: int) -> np.ndarray:
    """Zero-filled stripe payload array for ``layout``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return np.zeros((layout.rows, layout.num_disks, chunk_size), dtype=np.uint8)


def xor_cells(stripe: np.ndarray, cells) -> np.ndarray:
    """XOR of the payloads of ``cells`` (zero chunk if ``cells`` is empty)."""
    out = np.zeros(stripe.shape[2], dtype=np.uint8)
    for r, c in cells:
        out ^= stripe[r, c]
    return out


def verify_stripe(layout: CodeLayout, stripe: np.ndarray) -> bool:
    """True if every parity chain of the stripe XORs to zero."""
    _check_shape(layout, stripe)
    return all(not xor_cells(stripe, chain.cells).any() for chain in layout.chains)


def _check_shape(layout: CodeLayout, stripe: np.ndarray) -> None:
    if stripe.ndim != 3 or stripe.shape[:2] != (layout.rows, layout.num_disks):
        raise ValueError(
            f"stripe shape {stripe.shape} does not match layout "
            f"({layout.rows}, {layout.num_disks}, chunk)"
        )


class Encoder:
    """Fast structured encoder for one :class:`CodeLayout`.

    The parity cells of any XOR code satisfy ``A @ P = B @ D`` over GF(2),
    where ``A``/``B`` are the chain-incidence matrices over parity/data
    cells.  ``A`` is invertible on its column space for a valid code, so
    ``P = (S @ B) @ D`` with ``S`` the precomputed solve operator.  Each row
    of the resulting 0/1 matrix lists exactly which data chunks XOR into one
    parity chunk.
    """

    def __init__(self, layout: CodeLayout):
        self.layout = layout
        idx = layout.cell_index
        n_chains = len(layout.chains)
        a = np.zeros((n_chains, len(layout.parity_cells)), dtype=np.uint8)
        b = np.zeros((n_chains, len(layout.data_cells)), dtype=np.uint8)
        parity_pos = {cell: i for i, cell in enumerate(layout.parity_cells)}
        data_pos = {cell: i for i, cell in enumerate(layout.data_cells)}
        for i, chain in enumerate(layout.chains):
            for cell in chain.cells:
                if cell in parity_pos:
                    a[i, parity_pos[cell]] = 1
                else:
                    b[i, data_pos[cell]] = 1
        s = gf2_solve_map(a)
        #: parity × data 0/1 matrix: which data cells XOR into each parity.
        self.combination = gf2_matmul(s, b)
        self._data_pos = data_pos
        del idx  # cell_index warmed for later users

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        """Fill parity cells in-place from the data cells; returns ``stripe``."""
        lay = self.layout
        _check_shape(lay, stripe)
        chunk = stripe.shape[2]
        data = np.empty((len(lay.data_cells), chunk), dtype=np.uint8)
        for (r, c), i in self._data_pos.items():
            data[i] = stripe[r, c]
        for p_i, (r, c) in enumerate(lay.parity_cells):
            mask = self.combination[p_i].astype(bool)
            if mask.any():
                stripe[r, c] = np.bitwise_xor.reduce(data[mask], axis=0)
            else:
                stripe[r, c] = 0
        return stripe

    def random_stripe(
        self, chunk_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Random data payload, encoded — handy for tests and examples."""
        stripe = empty_stripe(self.layout, chunk_size)
        for r, c in self.layout.data_cells:
            stripe[r, c] = rng.integers(0, 256, size=chunk_size, dtype=np.uint8)
        return self.encode(stripe)


def encode_by_chains(layout: CodeLayout, stripe: np.ndarray) -> np.ndarray:
    """Reference encoder: resolve parities by chain peeling.

    Repeatedly computes any parity cell whose chain has no other unresolved
    parity cell.  Works for every layout in this package (horizontal
    parities depend only on data; diagonal chains then depend on data and at
    most horizontals), and serves as an independent cross-check on
    :class:`Encoder`.
    """
    _check_shape(layout, stripe)
    unresolved = set(layout.parity_cells)
    progress = True
    while unresolved and progress:
        progress = False
        for chain in layout.chains:
            target = chain.parity_cell
            if target not in unresolved:
                continue
            if any(cell in unresolved for cell in chain.cells if cell != target):
                continue
            stripe[target[0], target[1]] = xor_cells(stripe, chain.others(target))
            unresolved.discard(target)
            progress = True
    if unresolved:
        raise ValueError(
            f"chain peeling cannot resolve parities {sorted(unresolved)}; "
            "layout has cyclic parity dependencies"
        )
    return stripe
