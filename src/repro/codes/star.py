"""STAR code (Huang & Xu, 2008) — p+3 disks.

STAR extends EVENODD with an anti-diagonal parity column: ``p`` data
columns, one horizontal parity column, and diagonal / anti-diagonal parity
columns whose chains carry EVENODD adjusters.  The adjuster cells belong to
every chain of their direction, so during recovery they are referenced many
times — the effect the FBF paper credits for STAR's higher hit ratios.
"""

from __future__ import annotations

from ._builders import build_star_family
from .layout import CodeLayout

__all__ = ["make_star"]


def make_star(p: int) -> CodeLayout:
    """Build the STAR layout for prime ``p`` (``p + 3`` disks)."""
    return build_star_family(
        "STAR",
        p,
        num_data=p,
        description=(
            f"STAR code, p={p}: {p} data disks + horizontal/diagonal/"
            "anti-diagonal parity disks; EVENODD-style adjusters."
        ),
    )
