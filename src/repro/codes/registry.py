"""Name-based registry of the available 3DFT codes."""

from __future__ import annotations

from typing import Callable

from .hdd1 import make_hdd1
from .layout import CodeLayout
from .star import make_star
from .tip import make_tip
from .triple_star import make_triple_star

__all__ = ["CODES", "make_code", "available_codes"]

CODES: dict[str, Callable[[int], CodeLayout]] = {
    "star": make_star,
    "triple-star": make_triple_star,
    "tip": make_tip,
    "hdd1": make_hdd1,
}

_ALIASES = {
    "triplestar": "triple-star",
    "triple_star": "triple-star",
    "tip-code": "tip",
}


def available_codes() -> tuple[str, ...]:
    return tuple(CODES)


def make_code(name: str, p: int) -> CodeLayout:
    """Construct a code layout by name (case-insensitive, alias-friendly)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        builder = CODES[key]
    except KeyError:
        raise ValueError(
            f"unknown code {name!r}; available: {', '.join(sorted(CODES))}"
        ) from None
    return builder(p)
