"""Dense linear algebra over GF(2).

All four 3DFT codes in this package are XOR codes: every parity chain is a
constraint "the XOR of these cells is zero".  Erasure decoding and
fault-tolerance verification therefore reduce to linear algebra over GF(2):

* *decoding* an erasure pattern = solving ``A x = b`` where the columns of
  ``A`` index erased cells, each row is one parity chain, and ``b`` is the
  XOR of the chain's surviving cells;
* *verifying* that a code tolerates an erasure pattern = checking that
  ``A`` has full column rank.

Matrices here are small (a stripe has at most a few hundred cells), so a
plain ``uint8`` ndarray with vectorized row elimination is both simple and
fast enough; profiling showed bit-packing is unnecessary at these sizes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_echelon",
    "gf2_rank",
    "gf2_solve",
    "gf2_solve_map",
    "gf2_matmul",
    "is_gf2",
]


def is_gf2(a: np.ndarray) -> bool:
    """True if every entry of ``a`` is 0 or 1."""
    return bool(np.all((a == 0) | (a == 1)))


def _as_gf2(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a, dtype=np.uint8)
    if not is_gf2(a):
        raise ValueError("matrix entries must be 0 or 1")
    return a


def gf2_echelon(a: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-reduce ``a`` over GF(2).

    Returns ``(R, pivots)`` where ``R`` is the reduced row-echelon form and
    ``pivots`` lists the pivot column of each nonzero row, in order.
    """
    r = _as_gf2(a).copy()
    rows, cols = r.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        # Find a pivot at or below `row`.
        nz = np.nonzero(r[row:, col])[0]
        if nz.size == 0:
            continue
        pivot = row + int(nz[0])
        if pivot != row:
            r[[row, pivot]] = r[[pivot, row]]
        # Eliminate the column everywhere else (reduced form).
        mask = r[:, col].astype(bool)
        mask[row] = False
        r[mask] ^= r[row]
        pivots.append(col)
        row += 1
    return r, pivots


def gf2_rank(a: np.ndarray) -> int:
    """Rank of ``a`` over GF(2)."""
    if a.size == 0:
        return 0
    _, pivots = gf2_echelon(a)
    return len(pivots)


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2)."""
    a = _as_gf2(np.atleast_2d(a))
    b = _as_gf2(np.atleast_2d(b))
    return (a.astype(np.uint32) @ b.astype(np.uint32) % 2).astype(np.uint8)


def gf2_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Solve ``a @ x == b`` over GF(2).

    ``b`` may be a vector or a matrix of stacked right-hand sides (one per
    column); the same elimination then solves all of them at once — this is
    how whole 32 KB chunk payloads are decoded in one pass (each bit column
    of the payload is an independent right-hand side).

    Returns one solution (free variables set to 0), or ``None`` if the
    system is inconsistent.  Raises ``ValueError`` if the solution is not
    unique (the erasure pattern is not decodable), because for erasure
    decoding an underdetermined system means lost data.
    """
    a = _as_gf2(np.atleast_2d(a))
    b = _as_gf2(b)
    vector_rhs = b.ndim == 1
    if vector_rhs:
        b = b[:, None]
    if b.shape[0] != a.shape[0]:
        raise ValueError(
            f"rhs has {b.shape[0]} rows but matrix has {a.shape[0]}"
        )
    rows, cols = a.shape
    aug = np.concatenate([a, b], axis=1).astype(np.uint8)
    red, pivots = gf2_echelon(aug)
    # Pivots landing in the RHS block mean 0 == 1 somewhere: inconsistent.
    if any(p >= cols for p in pivots):
        return None
    solution_pivots = [p for p in pivots if p < cols]
    if len(solution_pivots) < cols:
        raise ValueError(
            f"system is underdetermined: rank {len(solution_pivots)} < {cols} unknowns"
        )
    x = np.zeros((cols, b.shape[1]), dtype=np.uint8)
    for row_idx, col in enumerate(solution_pivots):
        x[col] = red[row_idx, cols:]
    return x[:, 0] if vector_rhs else x


def gf2_solve_map(a: np.ndarray) -> np.ndarray:
    """Precompute a solution operator ``S`` with ``x = S @ b`` over GF(2).

    For a matrix ``a`` (constraints × unknowns) with full column rank, the
    returned ``S`` (unknowns × constraints) maps *any consistent* right-hand
    side to the unique solution.  This lets callers run the Gaussian
    elimination once per erasure pattern and then decode arbitrarily many
    payload bytes by pure XOR — exactly how a RAID controller would burn
    the recovery equations into its data path.

    Raises ``ValueError`` if ``a`` does not have full column rank (the
    erasure pattern is undecodable).
    """
    a = _as_gf2(np.atleast_2d(a))
    rows, cols = a.shape
    aug = np.concatenate([a, np.eye(rows, dtype=np.uint8)], axis=1)
    red, pivots = gf2_echelon(aug)
    solution_pivots = [p for p in pivots if p < cols]
    if len(solution_pivots) < cols:
        raise ValueError(
            f"matrix rank {len(solution_pivots)} < {cols} unknowns: pattern undecodable"
        )
    s = np.zeros((cols, rows), dtype=np.uint8)
    row_of_pivot = {col: idx for idx, col in enumerate(pivots)}
    for col in range(cols):
        s[col] = red[row_of_pivot[col], cols:]
    return s
